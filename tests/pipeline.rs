//! Cross-crate integration tests: the full measurement pipeline.
//!
//! These tests exercise the public API end to end — machine + apps +
//! powerscope + odyssey together — the way a downstream user would.

use energy_adaptation::apps::composite::{composite_members, CompositeMode};
use energy_adaptation::apps::datasets::{VideoClip, MAPS, UTTERANCES, VIDEO_CLIPS};
use energy_adaptation::apps::map::MapViewer;
use energy_adaptation::apps::{MapFidelity, SpeechApp, SpeechStrategy, VideoPlayer, VideoVariant};
use energy_adaptation::hw560x::EnergySource;
use energy_adaptation::machine::{Machine, MachineConfig};
use energy_adaptation::odyssey::{GoalConfig, GoalController, PriorityTable};
use energy_adaptation::powerscope::{correlate, PowerScope};
use energy_adaptation::simcore::{SimDuration, SimRng, SimTime};

fn short_clip() -> VideoClip {
    VideoClip {
        duration_s: 15.0,
        ..VIDEO_CLIPS[0]
    }
}

/// The sampled PowerScope profile converges to the machine's exact energy
/// ledger: same total within sampling noise, same ranking of the big
/// consumers.
#[test]
fn sampled_profile_matches_exact_ledger() {
    let mut rng = SimRng::new(1);
    let (scope, observer) = PowerScope::new(1);
    let mut m = Machine::new(MachineConfig::baseline());
    m.add_observer(observer);
    m.add_process(Box::new(VideoPlayer::fixed(
        short_clip(),
        VideoVariant::Full,
        &mut rng,
    )));
    let report = m.run();
    drop(m);
    let profile = correlate(&scope.into_run());
    let err = (profile.total_energy_j() - report.total_j).abs() / report.total_j;
    assert!(err < 0.02, "sampling error {:.3}", err);
    // Each significant bucket's share should match within a few percent.
    for (bucket, exact) in report.buckets.iter().filter(|(_, j)| *j > 10.0) {
        let sampled = profile.process_energy_j(bucket);
        let rel = (sampled - exact).abs() / exact;
        assert!(rel < 0.15, "{bucket}: sampled {sampled} vs exact {exact}");
    }
}

/// Deterministic replay: identical seeds give bit-identical runs.
#[test]
fn runs_are_deterministic() {
    let run = || {
        let mut rng = SimRng::new(77);
        let mut m = Machine::new(MachineConfig::default());
        m.add_process(Box::new(SpeechApp::fixed(
            UTTERANCES.to_vec(),
            SpeechStrategy::Hybrid,
            false,
            &mut rng,
        )));
        m.run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.total_j.to_bits(), b.total_j.to_bits());
    assert_eq!(a.end, b.end);
    assert_eq!(a.buckets, b.buckets);
}

/// The three headline energy regimes order correctly for every
/// application (paper Sections 3.3-3.6): baseline > hardware-only PM >
/// lowest fidelity with PM.
#[test]
fn regimes_order_for_every_app() {
    let energies = |build: &dyn Fn(&mut SimRng, bool, bool) -> Machine| {
        let mut out = Vec::new();
        for (pm, lowest) in [(false, false), (true, false), (true, true)] {
            let mut rng = SimRng::new(5);
            let mut m = build(&mut rng, pm, lowest);
            out.push(m.run().total_j);
        }
        out
    };
    let video = energies(&|rng, pm, lowest| {
        let cfg = if pm {
            MachineConfig::default()
        } else {
            MachineConfig::baseline()
        };
        let variant = if lowest {
            VideoVariant::Combined
        } else {
            VideoVariant::Full
        };
        let mut m = Machine::new(cfg);
        m.add_process(Box::new(VideoPlayer::fixed(short_clip(), variant, rng)));
        m
    });
    let map = energies(&|rng, pm, lowest| {
        let cfg = if pm {
            MachineConfig::default()
        } else {
            MachineConfig::baseline()
        };
        let fid = if lowest {
            MapFidelity::ladder()[0]
        } else {
            MapFidelity::full()
        };
        let mut m = Machine::new(cfg);
        m.add_process(Box::new(MapViewer::fixed(vec![MAPS[0]], fid, rng)));
        m
    });
    for (name, e) in [("video", video), ("map", map)] {
        assert!(
            e[0] > e[1] && e[1] > e[2],
            "{name} regimes out of order: {e:?}"
        );
    }
}

/// Goal-directed adaptation end to end: the controller lands the battery
/// on a 6-minute goal that full fidelity could not reach.
#[test]
fn goal_controller_end_to_end() {
    let initial = 4_300.0;
    let goal = SimDuration::from_secs(360);
    let mut rng = SimRng::new(3);
    let horizon = SimTime::from_secs(1_200);
    let mut m = Machine::new(MachineConfig {
        source: EnergySource::battery(initial),
        ..Default::default()
    });
    let mut pids = Vec::new();
    for member in composite_members(
        CompositeMode::Every {
            period: SimDuration::from_secs(25),
            horizon,
        },
        true,
        &mut rng,
    ) {
        pids.push(m.add_process(Box::new(member)));
    }
    let video = VideoPlayer::adaptive(VIDEO_CLIPS[0], &mut rng).looping_until(horizon);
    let video_pid = m.add_background_process(Box::new(video));
    let priorities = PriorityTable::new(vec![pids[0], video_pid, pids[2], pids[1]]);
    let cfg = GoalConfig::paper(initial, goal);
    let period = cfg.sample_period;
    let (handle, hook) = GoalController::new(cfg, priorities);
    m.add_hook(period, hook);
    let report = m.run_until(horizon);
    // Sanity: full fidelity would burn ~14 W → ~5100 J over 360 s; the
    // 4300 J budget demands degradation.
    assert!(handle.outcome().goal_met, "goal missed: {report:?}");
    assert!(handle.outcome().degrades > 0);
    assert!((report.duration_s() - 360.0).abs() < 2.0);
    assert!(report.residual_j < initial * 0.12);
}

/// Concurrent applications share the machine consistently: energy of the
/// pair is more than either alone but less than the sum (background
/// amortization), and bucket totals still balance.
#[test]
fn concurrency_accounting_balances() {
    let solo = |seed: u64, which: u8| {
        let mut rng = SimRng::new(seed);
        let mut m = Machine::new(MachineConfig::default());
        match which {
            0 => {
                m.add_process(Box::new(VideoPlayer::fixed(
                    short_clip(),
                    VideoVariant::Full,
                    &mut rng,
                )));
            }
            _ => {
                m.add_process(Box::new(SpeechApp::fixed(
                    vec![UTTERANCES[2]],
                    SpeechStrategy::Local,
                    false,
                    &mut rng,
                )));
            }
        }
        m.run().total_j
    };
    let both = {
        let mut rng = SimRng::new(9);
        let mut m = Machine::new(MachineConfig::default());
        m.add_process(Box::new(VideoPlayer::fixed(
            short_clip(),
            VideoVariant::Full,
            &mut rng,
        )));
        m.add_process(Box::new(SpeechApp::fixed(
            vec![UTTERANCES[2]],
            SpeechStrategy::Local,
            false,
            &mut rng,
        )));
        let report = m.run();
        let sum: f64 = report.buckets.iter().map(|(_, j)| j).sum();
        assert!((sum - report.total_j).abs() < 1e-6);
        report.total_j
    };
    let video = solo(9, 0);
    let speech = solo(9, 1);
    assert!(both > video.max(speech));
    assert!(
        both < video + speech,
        "no amortization: {both} >= {video} + {speech}"
    );
}
