//! Live-reconfiguration edge cases on the real supervised goal rig.
//!
//! The graceful-degradation contract of the serving layer: every
//! reconfiguration command — however hostile — ends in a traced
//! rejection or a clean directive, never a panic. These tests drive the
//! supervised k=2 golden rig (the same one the torture sweep replays)
//! through the hostile corners: a goal moved to an already-missed
//! target, a horizon shrunk below elapsed time, a zero or non-finite
//! budget, reconfiguration during an app quarantine, and a dead-letter
//! flood that must escalate into the Supervisor's strike ladder.

use energy_adaptation::experiments::serve::build_session;
use energy_adaptation::simcore::{SimDuration, SimTime};
use energy_adaptation::simserve::{Directive, ReconfigCommand, Sample, Session};

const SEED: u64 = 42;

/// Machine index of the background video player in the supervised rig
/// (added after the speech, web, and map members).
const VIDEO: usize = 3;

fn session() -> Session {
    build_session(SEED).expect("golden supervised rig")
}

/// Flattens an ingest batch into (kind, verdict) pairs for assertion.
fn verdicts(out: &[Directive]) -> Vec<(&'static str, &'static str)> {
    out.iter()
        .filter_map(|d| match d {
            Directive::ReconfigRejected { kind, reason, .. } => Some((*kind, *reason)),
            Directive::ReconfigApplied { kind, .. } => Some((*kind, "applied")),
            _ => None,
        })
        .collect()
}

/// A goal revision pointing at a deadline the session has already passed
/// is rejected with a traced verdict, and the session keeps serving.
#[test]
fn goal_change_to_already_missed_target_is_rejected() {
    let mut s = session();
    let out = s
        .ingest(&[
            Sample::tick(100.0),
            Sample::reconfig(101.0, ReconfigCommand::Goal(SimDuration::from_secs(50))),
            Sample::reconfig(102.0, ReconfigCommand::Goal(SimDuration::ZERO)),
            Sample::tick(110.0),
        ])
        .expect("hostile goal revisions must not kill the session");
    let v = verdicts(&out);
    assert!(v.contains(&("goal", "already_missed")), "{v:?}");
    assert!(v.contains(&("goal", "non_positive")), "{v:?}");
    assert_eq!(s.cursor(), SimTime::from_secs(110));
}

/// Zero, negative, and non-finite budgets are all rejected with distinct
/// traced reasons; a sane budget is applied as a clean directive.
#[test]
fn budget_zero_and_non_finite_are_rejected() {
    let mut s = session();
    let out = s
        .ingest(&[
            Sample::reconfig(10.0, ReconfigCommand::BudgetJ(0.0)),
            Sample::reconfig(11.0, ReconfigCommand::BudgetJ(-250.0)),
            Sample::reconfig(12.0, ReconfigCommand::BudgetJ(f64::NAN)),
            Sample::reconfig(13.0, ReconfigCommand::BudgetJ(f64::INFINITY)),
            Sample::reconfig(14.0, ReconfigCommand::BudgetJ(12_000.0)),
        ])
        .expect("hostile budgets must not kill the session");
    assert_eq!(
        verdicts(&out),
        vec![
            ("budget", "non_positive"),
            ("budget", "non_positive"),
            ("budget", "not_finite"),
            ("budget", "not_finite"),
            ("budget", "applied"),
        ]
    );
}

/// A horizon moved below the session's elapsed time is rejected; a valid
/// shrink is applied and actually bounds `finish()`.
#[test]
fn horizon_shrink_below_elapsed_is_rejected() {
    let mut s = session();
    let out = s
        .ingest(&[
            Sample::tick(300.0),
            Sample::reconfig(301.0, ReconfigCommand::Horizon(SimTime::from_secs(200))),
            Sample::reconfig(302.0, ReconfigCommand::Horizon(SimTime::from_secs(301))),
            Sample::reconfig(303.0, ReconfigCommand::Horizon(SimTime::from_secs(400))),
        ])
        .expect("hostile horizons must not kill the session");
    assert_eq!(
        verdicts(&out),
        vec![
            ("horizon", "below_elapsed"),
            ("horizon", "below_elapsed"),
            ("horizon", "applied"),
        ]
    );
    let report = s.finish().expect("finish at the revised horizon");
    assert_eq!(report.end, SimTime::from_secs(400));
}

/// Reconfiguration during an app quarantine: double quarantine is
/// rejected, a goal revision still applies cleanly, and re-admission
/// round-trips through a Restarted directive.
#[test]
fn reconfig_during_quarantine_is_validated_not_panicked() {
    let mut s = session();
    let out = s
        .ingest(&[
            Sample::reconfig(50.0, ReconfigCommand::Quarantine(VIDEO)),
            Sample::tick(52.0),
            Sample::reconfig(55.0, ReconfigCommand::Quarantine(VIDEO)),
            Sample::reconfig(60.0, ReconfigCommand::Goal(SimDuration::from_secs(1200))),
            Sample::reconfig(65.0, ReconfigCommand::Readmit(VIDEO)),
            Sample::reconfig(66.0, ReconfigCommand::Readmit(VIDEO)),
            Sample::tick(70.0),
        ])
        .expect("reconfig during quarantine must not kill the session");
    let v = verdicts(&out);
    assert!(v.contains(&("quarantine", "applied")), "{v:?}");
    assert!(v.contains(&("quarantine", "already_quarantined")), "{v:?}");
    assert!(v.contains(&("goal", "applied")), "{v:?}");
    assert!(v.contains(&("readmit", "applied")), "{v:?}");
    let pid = VIDEO as u64;
    assert!(
        out.iter()
            .any(|d| matches!(d, Directive::Quarantined { pid: p, .. } if *p == pid)),
        "no Quarantined directive in {out:?}"
    );
    assert!(
        out.iter()
            .any(|d| matches!(d, Directive::Restarted { pid: p, .. } if *p == pid)),
        "no Restarted directive in {out:?}"
    );
}

/// An applied goal revision is live: with the deadline pulled in to
/// 600 s the controller ends the run there, and later samples are
/// dead-lettered as arriving after the stop.
#[test]
fn applied_goal_revision_moves_the_deadline() {
    let mut s = session();
    let out = s
        .ingest(&[
            Sample::reconfig(100.0, ReconfigCommand::Goal(SimDuration::from_secs(600))),
            Sample::tick(650.0),
            Sample::tick(700.0),
        ])
        .expect("goal revision must not kill the session");
    let v = verdicts(&out);
    assert!(v.contains(&("goal", "applied")), "{v:?}");
    assert!(
        out.iter().any(
            |d| matches!(d, Directive::DeadLettered { reason, .. } if *reason == "after_stop")
        ),
        "run did not stop at the revised 600 s goal: {v:?}"
    );
}

/// A flood of malformed samples attributable to one process escalates
/// into the Supervisor ladder: the service posts an external strike and
/// the supervisor traces it under the `service` detector.
#[test]
fn dead_letter_flood_escalates_into_supervisor_strike() {
    let mut s = session();
    // escalate_after is 8 in the standard config; blame the video app.
    let flood: Vec<Sample> = (0..8)
        .map(|_| Sample::tick(f64::NAN).from_origin(VIDEO))
        .collect();
    s.ingest(&flood).expect("flood must not kill the session");
    assert_eq!(s.dead_letters().expect("serving").total(), 8);
    // The strike is drained at the supervisor's next tick (1 s period).
    s.ingest(&[Sample::tick(30.0)]).expect("tick");
    let strikes: Vec<String> = s
        .trace_jsonl()
        .into_iter()
        .filter(|l| l.contains("supervisor_strike") && l.contains("\"detector\":\"service\""))
        .collect();
    assert_eq!(strikes.len(), 1, "expected exactly one escalation strike");
}
