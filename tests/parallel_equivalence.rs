//! Parallel/serial equivalence: the simpar fan-out must be invisible.
//!
//! The work pool's determinism contract (DESIGN.md §13) says any
//! experiment routed through `simcore::par` produces byte-identical
//! results at every thread count, because trial streams are pure
//! functions of `(seed, label, index)` and merges happen in index
//! order. This suite drives the contract end to end: golden-trace
//! scenarios, the trial harness, and both cell-level sweeps, each at
//! 1, 2, and 8 threads.

use experiments::harness::{run_trials, Trials};
use experiments::{benchcli, chaos, energymap, fig16, supervise, tracerec};
use machine::workload::ScriptedWorkload;
use machine::{Machine, MachineConfig};
use simcore::{SimDuration, SimRng};

/// Thread counts the contract is exercised at: serial, the smallest
/// real fan-out, and more workers than this suite has jobs.
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn quick() -> Trials {
    Trials {
        n: 2,
        seed: 42,
        threads: 1,
    }
}

/// Golden scenarios rendered through the bench digests: every scenario
/// digest is identical at every thread count.
#[test]
fn golden_scenarios_identical_across_thread_counts() {
    for scenario in benchcli::SCENARIOS {
        let serial = benchcli::digest(scenario, &quick());
        for threads in THREAD_COUNTS {
            assert_eq!(
                serial,
                benchcli::digest(scenario, &quick().with_threads(threads)),
                "{scenario} diverges at {threads} threads"
            );
        }
    }
}

/// Recorded golden traces are line-for-line identical no matter how the
/// surrounding harness is threaded (tracerec itself is single-machine;
/// this pins that the par feature being linked in changes nothing).
#[test]
fn golden_traces_replay_identically_with_pool_linked() {
    for scenario in tracerec::SCENARIOS {
        let a = tracerec::record(scenario, 42).unwrap();
        let b = tracerec::record(scenario, 42).unwrap();
        assert_eq!(a, b, "{scenario}: replay diverged");
        assert!(!a.is_empty());
    }
}

/// The trial harness merges reports in trial order at every thread
/// count, on a workload with real randomness in it.
#[test]
fn run_trials_reports_identical_across_thread_counts() {
    let build = |rng: &mut SimRng| {
        let mut m = Machine::new(MachineConfig::default());
        let jitter_s = rng.uniform(1.0, 3.0);
        m.add_process(Box::new(ScriptedWorkload::idle_for(
            "w",
            SimDuration::from_secs_f64(jitter_s),
        )));
        m
    };
    let trials = Trials {
        n: 6,
        seed: 7,
        threads: 1,
    };
    let serial: Vec<String> = run_trials(&trials, "pareq", build)
        .iter()
        .map(|r| format!("{r:?}"))
        .collect();
    for threads in THREAD_COUNTS {
        let par: Vec<String> = run_trials(&trials.with_threads(threads), "pareq", build)
            .iter()
            .map(|r| format!("{r:?}"))
            .collect();
        assert_eq!(serial, par, "reports diverge at {threads} threads");
    }
}

/// The chaos sweep's cell fan-out is order-stable: cells come back in
/// sweep order with identical contents at every thread count.
#[test]
fn chaos_sweep_identical_across_thread_counts() {
    let serial = format!(
        "{:?}",
        chaos::run_sweep(&quick(), &[0.0, 0.5], 600, 8_000.0).cells
    );
    for threads in THREAD_COUNTS {
        let par = format!(
            "{:?}",
            chaos::run_sweep(&quick().with_threads(threads), &[0.0, 0.5], 600, 8_000.0).cells
        );
        assert_eq!(serial, par, "chaos cells diverge at {threads} threads");
    }
}

/// Same for the supervision sweep.
#[test]
fn supervise_sweep_identical_across_thread_counts() {
    let trials = Trials {
        n: 1,
        seed: 42,
        threads: 1,
    };
    let serial = format!("{:?}", supervise::run_sweep(&trials, &[0, 2]).cells);
    for threads in THREAD_COUNTS {
        let par = format!(
            "{:?}",
            supervise::run_sweep(&trials.with_threads(threads), &[0, 2]).cells
        );
        assert_eq!(serial, par, "supervise cells diverge at {threads} threads");
    }
}

/// A full rendered figure (table text, captions, everything) is
/// byte-identical serial vs parallel — the user-visible guarantee the
/// `--threads` flag documents.
#[test]
fn rendered_figure_bytes_identical_across_thread_counts() {
    let serial = fig16::render(&quick());
    for threads in THREAD_COUNTS {
        assert_eq!(
            serial,
            fig16::render(&quick().with_threads(threads)),
            "fig16 rendering diverges at {threads} threads"
        );
    }
}

/// Per-call-path energy tables are byte-identical at every thread
/// count: `energymap::render_all` fans the four scenarios out over the
/// pool, and each scenario's profile is a pure function of its seed.
#[test]
fn energymap_tables_identical_across_thread_counts() {
    let [serial_threads, ref fanned @ ..] = THREAD_COUNTS;
    let serial = energymap::render_all(serial_threads).expect("serial energymap render");
    assert_eq!(serial.len(), tracerec::SCENARIOS.len());
    for &threads in fanned {
        let parallel = energymap::render_all(threads).expect("parallel energymap render");
        for ((s_name, s_table), (p_name, p_table)) in serial.iter().zip(&parallel) {
            assert_eq!(
                s_name, p_name,
                "scenario order diverged at {threads} threads"
            );
            assert_eq!(
                s_table, p_table,
                "{s_name}: energymap table diverges at {threads} threads"
            );
        }
    }
}
