//! Cross-seed determinism matrix.
//!
//! The golden traces pin scenario behavior at the canonical seed (42),
//! which leaves a blind spot: a wall-clock read or iteration-order bug
//! that only perturbs *other* seeds would pass the golden gate. This
//! test replays every canonical scenario at four seeds spanning the
//! u64 range — including one above 2^40 to catch truncation — and
//! compares each trace digest against the table checked in at
//! `tests/golden/seed_matrix.txt`.
//!
//! After an intentional behavior change, regenerate by deleting the
//! table and re-running this test: it writes a fresh table and fails
//! once, telling you to commit the file.

use experiments::tracerec;
use simcore::SnapshotHasher;

/// Seeds spanning the u64 range: tiny, small, canonical, above 2^40.
const SEEDS: [u64; 4] = [1, 7, 42, (1 << 40) + 9];

fn table_path() -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/seed_matrix.txt")
}

/// Digest of one scenario's recorded trace at one seed.
fn digest(scenario: &str, seed: u64) -> u64 {
    let lines = tracerec::record(scenario, seed)
        .unwrap_or_else(|e| panic!("recording {scenario} at seed {seed}: {e}"));
    assert!(!lines.is_empty(), "{scenario}@{seed}: empty trace");
    let mut h = SnapshotHasher::new();
    for line in &lines {
        h.write_bytes(line.as_bytes());
    }
    h.finish()
}

fn render_table(rows: &[(String, u64, u64)]) -> String {
    let mut out = String::from(
        "# Cross-seed determinism matrix: scenario seed trace-digest.\n\
         # Regenerate after an intentional behavior change by deleting\n\
         # this file and running `cargo test --test seed_matrix`.\n",
    );
    for (scenario, seed, d) in rows {
        out.push_str(&format!("{scenario} {seed} {d:016x}\n"));
    }
    out
}

#[test]
fn seed_matrix_matches_checked_in_table() {
    let mut rows: Vec<(String, u64, u64)> = Vec::new();
    for scenario in tracerec::SCENARIOS {
        for seed in SEEDS {
            rows.push((scenario.to_string(), seed, digest(scenario, seed)));
        }
    }
    let rendered = render_table(&rows);
    let path = table_path();
    let Ok(expected) = std::fs::read_to_string(&path) else {
        std::fs::write(&path, &rendered).unwrap_or_else(|e| panic!("writing {path:?}: {e}"));
        panic!("{path:?} was missing; a fresh table has been written — inspect and commit it");
    };
    assert_eq!(
        expected, rendered,
        "seed matrix drifted from {path:?}: some scenario now behaves \
         differently at a non-canonical seed (wall-clock read, iteration-order \
         dependence, or an intentional change needing regeneration)"
    );
}

/// Different seeds must give different behavior (the digest actually
/// captures the run), and the same seed must digest identically twice.
#[test]
fn digests_vary_by_seed_and_replay_stably() {
    for scenario in tracerec::SCENARIOS {
        let d42a = digest(scenario, 42);
        let d42b = digest(scenario, 42);
        assert_eq!(d42a, d42b, "{scenario}: replay at one seed diverged");
        let others: Vec<u64> = SEEDS
            .iter()
            .filter(|&&s| s != 42)
            .map(|&s| digest(scenario, s))
            .collect();
        assert!(
            others.iter().any(|&d| d != d42a),
            "{scenario}: every seed produced the same trace — the seed is ignored"
        );
    }
}
