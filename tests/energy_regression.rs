//! Energy-regression gate: the committed per-call-path tables under
//! `tests/golden/energymap_*.txt` must match a fresh replay of every
//! canonical scenario, and a seeded energy change must trip the gate
//! naming the exact diverging path.
//!
//! The negative control works through a test-only hook
//! (`VideoPlayer::with_decode_inflation`, reachable here via
//! `energymap`'s `decode_inflation` parameter and on the CLI via the
//! hidden `--inflate-decode` flag): inflating the fig2 video decode
//! block by +2 % must push `decode_frame`'s exclusive energy — and its
//! ancestors' inclusive energy — outside the 1 % tolerance band.

use experiments::energymap;
use experiments::tracerec::SCENARIOS;

/// Every committed golden table matches a fresh replay exactly (well
/// inside tolerance: the simulation is bit-exact at the golden seed).
#[test]
fn golden_energy_tables_pass_the_gate() {
    for scenario in SCENARIOS {
        match energymap::check(scenario, 1.0) {
            Ok(paths) => assert!(paths > 0, "{scenario}: empty golden table"),
            Err((report, _fresh)) => panic!("{scenario} failed the energy gate:\n{report}"),
        }
    }
}

/// Seeded +2 % decode inflation fails the fig2 gate, and the report
/// names the exact costed block that moved — not just the process.
#[test]
fn seeded_decode_inflation_is_caught_and_named() {
    let (report, fresh) =
        energymap::check("fig2", 1.02).expect_err("+2 % decode inflation passed the 1 % gate");
    assert!(
        report.contains("xanim path video_playback/frame_pipeline/decode_frame"),
        "report does not name the inflated block:\n{report}"
    );
    // Inclusive accounting propagates the drift to every ancestor frame.
    assert!(
        report.contains("xanim path video_playback: inclusive_energy_j"),
        "report does not roll the drift up to the root frame:\n{report}"
    );
    // The fresh table rides along for CI artifact upload.
    assert!(fresh.starts_with("process\tpath\t"), "fresh table missing");
}

/// The inflation hook is scoped to the fig2 video decode block: another
/// scenario's table is byte-untouched by it. (One scenario suffices —
/// only the fig2 builder threads the ratio through at all; this pins
/// that no future change plumbs it into shared code.)
#[test]
fn inflation_hook_does_not_leak_into_other_scenarios() {
    assert_eq!(
        energymap::table("fig13", 7, 1.0).unwrap(),
        energymap::table("fig13", 7, 1.02).unwrap(),
        "fig13: decode inflation leaked outside fig2"
    );
}

/// Golden tables carry D4 unit-suffixed headers and stable path order
/// (BTreeMap iteration: processes alphabetical, paths lexicographic, so
/// parents always precede children).
#[test]
fn golden_tables_have_stable_schema_and_order() {
    for scenario in SCENARIOS {
        let path = energymap::golden_path(scenario);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let mut lines = text.lines();
        assert_eq!(
            lines.next(),
            Some(
                "process\tpath\tsamples\tself_time_s\tself_energy_j\t\
                 inclusive_time_s\tinclusive_energy_j"
            ),
            "{scenario}: header drifted"
        );
        let keys: Vec<(String, String)> = lines
            .map(|l| {
                let mut f = l.split('\t');
                (
                    f.next().unwrap_or_default().to_string(),
                    f.next().unwrap_or_default().to_string(),
                )
            })
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "{scenario}: rows not in stable sorted order");
    }
}
