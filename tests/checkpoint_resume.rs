//! Crash-tolerant control plane: checkpoint/resume proof.
//!
//! The simulation is deterministic, so a checkpoint is a proof point —
//! (simulated time, digest of live state) — and resume is replay: rebuild
//! the identical rig, run to the journaled checkpoint, assert the digest
//! matches, and continue. These tests exercise that end to end on the
//! Section 5 goal workload: a run that "crashes" halfway leaves only its
//! journal behind, and the resumed run reproduces the uninterrupted
//! run's final state bit for bit.

use std::cell::RefCell;
use std::rc::Rc;

use energy_adaptation::apps::composite::{composite_members, CompositeMode};
use energy_adaptation::apps::datasets::VIDEO_CLIPS;
use energy_adaptation::apps::{Misbehavior, VideoPlayer};
use energy_adaptation::hw560x::EnergySource;
use energy_adaptation::machine::{CheckpointHook, Machine, MachineConfig, Workload};
use energy_adaptation::odyssey::goal::MONITOR_OVERHEAD_W;
use energy_adaptation::odyssey::{
    GoalConfig, GoalController, GoalOutcome, PriorityTable, Supervisor, SupervisorConfig,
};
use energy_adaptation::simcore::fault::{FaultSchedule, FaultWindow};
use energy_adaptation::simcore::{
    RunJournal, SimDuration, SimRng, SimTime, TraceCategory, TraceHandle, TraceSink,
};

const GOAL_S: u64 = 240;
const ENERGY_J: f64 = 3000.0;
const CKPT_EVERY: SimDuration = SimDuration::from_secs(30);

/// Everything a run leaves behind: the journal survives a crash; the
/// rest exists only if the run finished.
struct Finished {
    journal: RunJournal,
    final_digest: u64,
    end: SimTime,
    total_bits: u64,
    residual_bits: u64,
    outcome: GoalOutcome,
    trace: Vec<String>,
}

/// Builds the Section 5 goal rig (composite loop + background video,
/// optionally wedged and supervised) and runs it to `stop_at` (a crash)
/// or to completion.
fn run(seed: u64, wedged: bool, supervised: bool, stop_at: Option<SimTime>) -> Finished {
    let mut rng = SimRng::new(seed);
    let cfg = GoalConfig::paper(ENERGY_J, SimDuration::from_secs(GOAL_S));
    let goal = cfg.goal;
    let horizon = SimTime::ZERO + goal * 3 + SimDuration::from_secs(600);
    let mut m = Machine::new(MachineConfig {
        source: EnergySource::battery(cfg.initial_energy_j),
        monitor_overhead_w: MONITOR_OVERHEAD_W,
        ..Default::default()
    });
    // Members arrive as [speech, web, map].
    let members = composite_members(
        CompositeMode::Every {
            period: SimDuration::from_secs(25),
            horizon,
        },
        true,
        &mut rng,
    );
    let mut pids = Vec::new();
    for member in members {
        pids.push(m.add_process(Box::new(member)));
    }
    let video: Box<dyn Workload> =
        Box::new(VideoPlayer::adaptive(VIDEO_CLIPS[0], &mut rng).looping_until(horizon));
    let video: Box<dyn Workload> = if wedged {
        let wedge = FaultSchedule::new(vec![FaultWindow {
            start: SimTime::from_secs(100),
            end: horizon,
        }]);
        Box::new(Misbehavior::hang(video, wedge).restartable())
    } else {
        video
    };
    let video_pid = m.add_background_process(video);
    // Lowest to highest priority: speech, video, map, web.
    let priorities = PriorityTable::new(vec![pids[0], video_pid, pids[2], pids[1]]);
    let sample_period = cfg.sample_period;
    let (handle, controller) = GoalController::new(cfg, priorities);
    m.add_hook(sample_period, controller);
    if supervised {
        let sup_cfg = SupervisorConfig::standard();
        let period = sup_cfg.period;
        let (_sup_handle, mut sup) = Supervisor::new(sup_cfg);
        sup.watch(video_pid, vec![0.5, 0.8, 1.2, 2.0], 3);
        sup.attach_goal(handle.clone());
        m.add_hook(period, sup);
    }
    let journal = Rc::new(RefCell::new(RunJournal::new(CKPT_EVERY)));
    m.add_hook(CKPT_EVERY, Box::new(CheckpointHook::new(journal.clone())));
    let trace = TraceHandle::new(
        TraceSink::new()
            .with_categories(&TraceCategory::CONTROL_PLANE)
            .with_jsonl(),
    );
    m.set_trace(trace.clone());

    let report = m.run_until(stop_at.unwrap_or(horizon));
    let final_digest = m.state_digest();
    drop(m);
    Finished {
        journal: Rc::try_unwrap(journal).expect("sole owner").into_inner(),
        final_digest,
        end: report.end,
        total_bits: report.total_j.to_bits(),
        residual_bits: report.residual_j.to_bits(),
        outcome: handle.outcome(),
        trace: trace.jsonl(),
    }
}

/// Sim time of a JSONL trace line (every line starts `{"time_s":…,`).
fn time_of(line: &str) -> f64 {
    let rest = line
        .strip_prefix("{\"time_s\":")
        .expect("trace line starts with time_s");
    let end = rest.find(',').expect("comma after time_s");
    rest[..end].parse().expect("numeric sim time")
}

/// The tentpole proof: a run that crashes halfway leaves a journal; the
/// resumed run (replay of the identical configuration) passes through the
/// crashed run's last checkpoint with a matching digest and finishes in
/// exactly the state the uninterrupted run reached — bit for bit.
#[test]
fn resume_after_crash_reproduces_uninterrupted_run() {
    let uninterrupted = run(42, false, false, None);
    assert!(
        uninterrupted.journal.checkpoints().len() >= 4,
        "expected several checkpoints, got {:?}",
        uninterrupted.journal.checkpoints()
    );

    // Crash mid-run, off any checkpoint boundary. Only the journal
    // survives the crash.
    let crash_at = SimTime::from_secs(137);
    let crashed = run(42, false, false, Some(crash_at));
    let salvage = *crashed
        .journal
        .latest_at_or_before(crash_at)
        .expect("a checkpoint before the crash");
    assert_eq!(salvage.t, SimTime::from_secs(120));

    // Resume = replay. The resumed run must pass through the salvaged
    // checkpoint bit-identically (the resume-time digest assertion)...
    let resumed = run(42, false, false, None);
    assert!(
        resumed.journal.verify(salvage.t, salvage.digest),
        "resumed run diverged from the salvaged checkpoint {salvage:?}"
    );
    // ...and every checkpoint the crashed run recorded is a prefix of the
    // resumed run's journal.
    assert_eq!(
        crashed.journal.checkpoints(),
        &resumed.journal.checkpoints()[..crashed.journal.checkpoints().len()],
    );

    // Final state: bit-for-bit identical to the uninterrupted run.
    assert_eq!(resumed.final_digest, uninterrupted.final_digest);
    assert_eq!(resumed.end, uninterrupted.end);
    assert_eq!(resumed.total_bits, uninterrupted.total_bits);
    assert_eq!(resumed.residual_bits, uninterrupted.residual_bits);
    assert_eq!(resumed.outcome, uninterrupted.outcome);
    assert_eq!(
        resumed.journal.checkpoints(),
        uninterrupted.journal.checkpoints()
    );
}

/// Trace-level crash/resume equivalence: the crashed run's event stream
/// is a prefix of the resumed run's, the resumed run's stream equals the
/// uninterrupted run's byte-for-byte, and from the salvaged checkpoint
/// onward the resumed events match the uninterrupted ones
/// event-for-event — resume loses nothing and invents nothing.
#[test]
fn resumed_trace_matches_uninterrupted_event_for_event() {
    let uninterrupted = run(42, false, false, None);
    let crash_at = SimTime::from_secs(137);
    let crashed = run(42, false, false, Some(crash_at));
    let resumed = run(42, false, false, None);

    assert!(!uninterrupted.trace.is_empty(), "control-plane trace empty");
    // Replay *is* resume: the full resumed stream matches byte-for-byte.
    assert_eq!(resumed.trace, uninterrupted.trace);

    // The crash kept a proper prefix of the stream...
    assert!(crashed.trace.len() < resumed.trace.len());
    assert_eq!(crashed.trace[..], resumed.trace[..crashed.trace.len()]);

    // ...and from the salvaged checkpoint on, the resumed run reproduces
    // the uninterrupted run's events one for one.
    let salvage = crashed
        .journal
        .latest_at_or_before(crash_at)
        .expect("a checkpoint before the crash")
        .t
        .as_secs_f64();
    let after = |lines: &[String]| -> Vec<String> {
        lines
            .iter()
            .filter(|l| time_of(l) >= salvage)
            .cloned()
            .collect()
    };
    let resumed_after = after(&resumed.trace);
    assert!(
        !resumed_after.is_empty(),
        "no events after the resume point"
    );
    for (i, (r, u)) in resumed_after
        .iter()
        .zip(after(&uninterrupted.trace).iter())
        .enumerate()
    {
        assert_eq!(r, u, "post-resume event {i} diverged");
    }
}

/// Negative control: the digest is not vacuous. A different seed is a
/// different run, and its checkpoints fail verification.
#[test]
fn digest_rejects_a_divergent_run() {
    let a = run(42, false, false, Some(SimTime::from_secs(100)));
    let b = run(43, false, false, Some(SimTime::from_secs(100)));
    let ck = a.journal.latest().expect("checkpoint recorded");
    assert!(a.journal.verify(ck.t, ck.digest));
    assert!(
        !b.journal.verify(ck.t, ck.digest),
        "different seeds digested equal at {:?}",
        ck.t
    );
}

/// The supervised control plane is as deterministic as the plain one:
/// with a wedged app being quarantined and restarted mid-run, two
/// identical runs still journal identical digests and end bit-identical.
#[test]
fn supervised_recovery_checkpoints_deterministically() {
    let a = run(7, true, true, None);
    let b = run(7, true, true, None);
    assert!(a.journal.checkpoints().len() >= 4);
    assert_eq!(a.journal.checkpoints(), b.journal.checkpoints());
    assert_eq!(a.final_digest, b.final_digest);
    assert_eq!(a.total_bits, b.total_bits);
    assert_eq!(a.outcome, b.outcome);
}

/// The torture sweep: the supervised k=2 *golden* scenario served
/// through `simserve`, killed at **every** checkpoint boundary and
/// resumed by replaying the identical sample stream. Each resume must
/// pass through its salvaged checkpoint digest and end with a final
/// state digest and an event-for-event simtrace byte-identical to the
/// uninterrupted run — and the sweep's own output must be byte-identical
/// whether the boundaries are verified on 1 worker thread or 4.
#[test]
fn torture_kill_resume_at_every_checkpoint_boundary() {
    use energy_adaptation::experiments::serve;
    use energy_adaptation::experiments::tracerec::GOLDEN_SEED;

    let serial = serve::torture_sweep(GOLDEN_SEED, 1, 1).expect("torture sweep at 1 thread");
    assert!(
        serial.len() >= 4,
        "expected several checkpoint boundaries, got {serial:?}"
    );
    for line in &serial {
        assert!(line.contains("resume OK"), "boundary failed: {line}");
    }
    let par = serve::torture_sweep(GOLDEN_SEED, 1, 4).expect("torture sweep at 4 threads");
    assert_eq!(serial, par, "torture sweep diverges across thread counts");
    // Every boundary proof now covers both recovery paths: O(history)
    // replay and O(state) snapshot thaw, digest-identical.
    for line in &serial {
        assert!(
            line.contains("replay+snapshot resume OK"),
            "boundary missing the snapshot-equivalence proof: {line}"
        );
    }
}

/// Hostile snapshots: a snapshot that was truncated, bit-flipped, or
/// written by a different format version must be *detected* — a typed
/// error, never a panic or a silently wrong session — and the caller
/// must still be able to recover by falling back to replay.
#[test]
fn corrupted_snapshots_are_detected_and_replay_recovers() {
    use energy_adaptation::experiments::serve;
    use energy_adaptation::experiments::tracerec::GOLDEN_SEED;
    use energy_adaptation::simcore::SnapshotError;

    let samples = serve::schedule(1).expect("golden trace present");
    let base = serve::replay(GOLDEN_SEED, &samples, None).expect("uninterrupted run");
    let frozen = serve::freeze_at_boundary(GOLDEN_SEED, &samples, 1).expect("freeze");
    assert!(
        frozen.samples_fed < samples.len(),
        "freeze landed at end of stream; no recovery left to prove"
    );

    // Truncated file: the length header promises more than is there.
    let mut session = serve::build_session(GOLDEN_SEED).expect("build");
    let cut = &frozen.snapshot[..frozen.snapshot.len() / 2];
    assert!(
        matches!(session.thaw(cut), Err(SnapshotError::Truncated)),
        "truncated snapshot not detected"
    );

    // Single bit flipped in the trailing checksum.
    let mut flipped = frozen.snapshot.clone();
    let last = flipped.len() - 1;
    flipped[last] ^= 0x01;
    let mut session = serve::build_session(GOLDEN_SEED).expect("build");
    assert!(
        matches!(session.thaw(&flipped), Err(SnapshotError::ChecksumMismatch)),
        "checksum bit-flip not detected"
    );

    // Single bit flipped in the payload: same detection, different site.
    let mut flipped = frozen.snapshot.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x80;
    let mut session = serve::build_session(GOLDEN_SEED).expect("build");
    assert!(
        session.thaw(&flipped).is_err(),
        "payload bit-flip not detected"
    );

    // Version-mismatch header: the version field follows the 8-byte
    // magic as a little-endian u32.
    let mut wrong_version = frozen.snapshot.clone();
    wrong_version[8] = 0xFF;
    let mut session = serve::build_session(GOLDEN_SEED).expect("build");
    assert!(
        matches!(
            session.thaw(&wrong_version),
            Err(SnapshotError::VersionMismatch { .. })
        ),
        "version mismatch not detected"
    );

    // Recovery contract: a failed thaw poisons nothing globally — a
    // fresh rebuild replaying the full stream still reproduces the
    // uninterrupted run bit for bit.
    let replayed = serve::replay(GOLDEN_SEED, &samples, None).expect("replay fallback");
    assert_eq!(replayed.final_digest, base.final_digest);
    assert_eq!(replayed.trace, base.trace);
}

/// Snapshot-vs-replay equivalence, pinned at 1 and 4 worker threads: a
/// snapshot frozen at the first boundary and thawed into a fresh shell
/// lands on the identical digest as replay-based resume, and the proof
/// is byte-identical at both thread counts (the thaw itself is
/// single-threaded state reconstruction; the pin guards the fan-out
/// around it).
#[test]
fn snapshot_resume_digest_matches_replay_resume_at_1_and_4_threads() {
    use energy_adaptation::experiments::serve;
    use energy_adaptation::experiments::tracerec::GOLDEN_SEED;

    let samples = serve::schedule(1).expect("golden trace present");
    let base = serve::replay(GOLDEN_SEED, &samples, None).expect("uninterrupted run");
    let frozen = serve::freeze_at_boundary(GOLDEN_SEED, &samples, 1).expect("freeze");
    let thawed = serve::snapshot_resume(GOLDEN_SEED, &samples, &frozen).expect("thaw");
    let replayed = serve::replay(GOLDEN_SEED, &samples, None).expect("replay resume");
    assert_eq!(thawed.final_digest, replayed.final_digest);
    assert_eq!(thawed.final_digest, base.final_digest);
    assert_eq!(thawed.checkpoints, replayed.checkpoints);

    // The multi-session fleet wraps the same machinery; its output must
    // not depend on the worker count.
    let at1 = serve::run_sessions(GOLDEN_SEED, &samples, 2, 1).expect("fleet at 1 thread");
    let at4 = serve::run_sessions(GOLDEN_SEED, &samples, 2, 4).expect("fleet at 4 threads");
    assert_eq!(at1, at4, "fleet outcome depends on thread count");
}
