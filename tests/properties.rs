//! Property-based tests over the simulator's core invariants.
//!
//! These run the public API against randomized inputs: link byte
//! conservation under arbitrary flow interleavings, platform power
//! monotonicity, energy-ledger balance for random workload scripts, and
//! smoothing-operator bounds.

use energy_adaptation::hw560x::{
    DeviceStates, DiskState, DisplayState, PlatformPower, PlatformSpec, RadioState,
};
use energy_adaptation::machine::workload::ScriptedWorkload;
use energy_adaptation::machine::{Activity, Machine, MachineConfig};
use energy_adaptation::netsim::SharedLink;
use energy_adaptation::odyssey::Smoother;
use energy_adaptation::simcore::{EventQueue, SimDuration, SimTime, TimeSeries, TrialStats};
use proptest::prelude::*;

fn display_strategy() -> impl Strategy<Value = DisplayState> {
    prop_oneof![
        Just(DisplayState::Off),
        Just(DisplayState::Dim),
        Just(DisplayState::Bright),
    ]
}

fn disk_strategy() -> impl Strategy<Value = DiskState> {
    prop_oneof![
        Just(DiskState::Active),
        Just(DiskState::Idle),
        Just(DiskState::Standby),
        Just(DiskState::SpinningUp),
    ]
}

fn radio_strategy() -> impl Strategy<Value = RadioState> {
    prop_oneof![
        Just(RadioState::Active),
        Just(RadioState::Idle),
        Just(RadioState::Standby),
    ]
}

proptest! {
    /// Total power equals the sum of its breakdown, is positive, and is
    /// monotone in CPU load, for every device-state combination.
    #[test]
    fn platform_power_is_consistent(
        display in display_strategy(),
        disk in disk_strategy(),
        radio in radio_strategy(),
        load in 0.0f64..=1.0,
    ) {
        let p = PlatformPower::new(PlatformSpec::thinkpad_560x());
        let s = DeviceStates { display, disk, radio, cpu_load: load };
        let b = p.breakdown(&s);
        prop_assert!((b.total_w() - p.power_w(&s)).abs() < 1e-12);
        prop_assert!(p.power_w(&s) > 3.0, "below base power");
        let hotter = DeviceStates { cpu_load: (load + 0.1).min(1.0), ..s };
        prop_assert!(p.power_w(&hotter) >= p.power_w(&s));
    }

    /// A shared link delivers every byte exactly once, no matter how
    /// flows interleave: total transfer time of a batch equals the
    /// aggregate bytes over capacity once the link drains.
    #[test]
    fn link_conserves_bytes(
        sizes in prop::collection::vec(1_000u64..500_000, 1..12),
        gaps_ms in prop::collection::vec(0u64..800, 1..12),
    ) {
        let mut link = SharedLink::new(2.0e6);
        let mut t = SimTime::ZERO;
        let mut started = 0u64;
        for (size, gap) in sizes.iter().zip(gaps_ms.iter().cycle()) {
            t += SimDuration::from_millis(*gap);
            link.advance(t);
            link.start_flow(t, *size);
            started += size;
        }
        // Drain: no flow can outlive total_bytes/capacity once alone.
        let drain = SimDuration::from_secs_f64(started as f64 * 8.0 / 2.0e6 + 1.0);
        link.advance(t + drain);
        let mut completed = 0usize;
        while link.take_completed().is_some() {
            completed += 1;
        }
        prop_assert_eq!(completed, sizes.len());
        prop_assert_eq!(link.active_count(), 0);
        prop_assert_eq!(link.total_bytes_carried(), started);
    }

    /// Machine energy accounting balances for random workload scripts:
    /// bucket totals and component totals both equal total energy, and
    /// average power stays within the platform's physical envelope.
    #[test]
    fn ledger_balances_for_random_scripts(
        script in prop::collection::vec((0u8..4, 1u64..800), 1..10),
        pm in any::<bool>(),
    ) {
        let mut activities = Vec::new();
        let mut wait_at = 0u64;
        for (kind, amount) in &script {
            let a = match kind {
                0 => Activity::Cpu {
                    duration: SimDuration::from_millis(*amount),
                    intensity: (*amount % 100) as f64 / 100.0,
                    procedure: "work",
                },
                1 => Activity::BulkFetch {
                    bytes: *amount * 200,
                    procedure: "fetch",
                },
                2 => Activity::XRender {
                    cost: SimDuration::from_millis(*amount / 2 + 1),
                },
                _ => {
                    wait_at += amount;
                    Activity::Wait {
                        until: SimTime::from_micros(wait_at * 1000),
                    }
                }
            };
            activities.push(a);
        }
        let cfg = if pm { MachineConfig::default() } else { MachineConfig::baseline() };
        let mut m = Machine::new(cfg);
        m.add_process(Box::new(ScriptedWorkload::new("fuzz", activities)));
        let report = m.run();
        let bucket_sum: f64 = report.buckets.iter().map(|(_, j)| j).sum();
        prop_assert!((bucket_sum - report.total_j).abs() < 1e-6);
        prop_assert!((report.components.total_j() - report.total_j).abs() < 1e-6);
        if report.duration_secs() > 0.0 {
            let avg = report.total_j / report.duration_secs();
            prop_assert!((3.0..25.0).contains(&avg), "implausible power {avg}");
        }
    }

    /// The exponential smoother's output always lies within the range of
    /// the samples it has seen.
    #[test]
    fn smoother_is_bounded_by_inputs(
        samples in prop::collection::vec(0.1f64..50.0, 1..200),
        remaining in 1.0f64..10_000.0,
    ) {
        let mut s = Smoother::new(0.10, SimDuration::from_millis(100));
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for x in &samples {
            lo = lo.min(*x);
            hi = hi.max(*x);
            let v = s.update(*x, remaining);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "{v} outside [{lo}, {hi}]");
        }
    }

    /// Events pop in (time, insertion) order no matter how they were
    /// pushed, and cancellation removes exactly the cancelled events.
    #[test]
    fn event_queue_total_order(
        times in prop::collection::vec(0u64..1_000, 1..64),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..64),
    ) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, t)| (q.push(SimTime::from_micros(*t), i), *t))
            .collect();
        let mut expected: Vec<(u64, usize)> = Vec::new();
        for ((id, t), cancel) in ids.iter().zip(cancel_mask.iter().cycle()) {
            if *cancel {
                prop_assert!(q.cancel(*id));
            } else {
                // Identify by payload index via the push order.
                expected.push((*t, expected.len()));
            }
        }
        let mut last: Option<SimTime> = None;
        let mut popped = 0usize;
        while let Some((at, _payload)) = q.pop() {
            if let Some(prev) = last {
                prop_assert!(at >= prev, "time went backwards");
            }
            last = Some(at);
            popped += 1;
        }
        prop_assert_eq!(popped, expected.len());
        prop_assert!(q.is_empty());
    }

    /// Step-function semantics: the resampled value at any grid point
    /// equals `value_at` of that instant.
    #[test]
    fn time_series_resample_matches_value_at(
        deltas in prop::collection::vec(1u64..10_000, 1..40),
        values in prop::collection::vec(-100.0f64..100.0, 1..40),
        step_us in 500u64..5_000,
    ) {
        let mut s = TimeSeries::new("prop");
        let mut t = SimTime::ZERO;
        for (d, v) in deltas.iter().zip(values.iter().cycle()) {
            t += SimDuration::from_micros(*d);
            s.record(t, *v);
        }
        let end = t + SimDuration::from_micros(1_000);
        for (at, v) in s.resample(SimDuration::from_micros(step_us), end) {
            prop_assert_eq!(Some(v), s.value_at(at));
        }
    }

    /// Trial statistics are scale-equivariant: scaling all observations
    /// scales mean, sd and CI by the same factor.
    #[test]
    fn trial_stats_scale(
        values in prop::collection::vec(0.1f64..1e4, 2..20),
        k in 0.1f64..100.0,
    ) {
        let base = TrialStats::from_values(&values);
        let scaled_values: Vec<f64> = values.iter().map(|v| v * k).collect();
        let scaled = TrialStats::from_values(&scaled_values);
        prop_assert!((scaled.mean - base.mean * k).abs() < 1e-6 * base.mean.abs().max(1.0) * k);
        prop_assert!((scaled.sd - base.sd * k).abs() < 1e-6 * (base.sd * k).max(1.0));
        prop_assert!((scaled.ci90 - base.ci90 * k).abs() < 1e-6 * (base.ci90 * k).max(1.0));
    }
}
