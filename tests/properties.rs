//! Property-style tests over the simulator's core invariants.
//!
//! These run the public API against randomized inputs: link byte
//! conservation under arbitrary flow interleavings, platform power
//! monotonicity, energy-ledger balance for random workload scripts, and
//! smoothing-operator bounds. Randomness comes from [`SimRng`] with fixed
//! seeds, so every case is deterministic and a failure message's case
//! index reproduces the input exactly.

use energy_adaptation::hw560x::{
    DeviceStates, DiskState, DisplayState, PlatformPower, PlatformSpec, RadioState,
};
use energy_adaptation::machine::workload::ScriptedWorkload;
use energy_adaptation::machine::{Activity, Machine, MachineConfig};
use energy_adaptation::netsim::SharedLink;
use energy_adaptation::odyssey::Smoother;
use energy_adaptation::simcore::{
    EventQueue, SimDuration, SimRng, SimTime, TimeSeries, TraceCategory, TraceEvent, TraceHandle,
    TraceSink, TrialStats,
};

/// Runs `body` over `n` independently seeded cases.
fn cases(label: &str, n: u64, mut body: impl FnMut(&mut SimRng)) {
    let root = SimRng::new(0xA11CE);
    for i in 0..n {
        let mut rng = root.fork_indexed(label, i);
        body(&mut rng);
    }
}

fn random_display(rng: &mut SimRng) -> DisplayState {
    match rng.uniform_u64(0, 2) {
        0 => DisplayState::Off,
        1 => DisplayState::Dim,
        _ => DisplayState::Bright,
    }
}

fn random_disk(rng: &mut SimRng) -> DiskState {
    match rng.uniform_u64(0, 3) {
        0 => DiskState::Active,
        1 => DiskState::Idle,
        2 => DiskState::Standby,
        _ => DiskState::SpinningUp,
    }
}

fn random_radio(rng: &mut SimRng) -> RadioState {
    match rng.uniform_u64(0, 2) {
        0 => RadioState::Active,
        1 => RadioState::Idle,
        _ => RadioState::Standby,
    }
}

/// Total power equals the sum of its breakdown, is positive, and is
/// monotone in CPU load, for every device-state combination.
#[test]
fn platform_power_is_consistent() {
    let p = PlatformPower::new(PlatformSpec::thinkpad_560x());
    cases("power", 256, |rng| {
        let s = DeviceStates {
            display: random_display(rng),
            disk: random_disk(rng),
            radio: random_radio(rng),
            cpu_load: rng.uniform(0.0, 1.0),
        };
        let b = p.breakdown(&s);
        assert!((b.total_w() - p.power_w(&s)).abs() < 1e-12);
        assert!(p.power_w(&s) > 3.0, "below base power: {s:?}");
        let hotter = DeviceStates {
            cpu_load: (s.cpu_load + 0.1).min(1.0),
            ..s
        };
        assert!(p.power_w(&hotter) >= p.power_w(&s));
    });
}

/// A shared link delivers every byte exactly once, no matter how flows
/// interleave: once the link drains, every started flow has completed.
#[test]
fn link_conserves_bytes() {
    cases("link", 64, |rng| {
        let n_flows = rng.uniform_u64(1, 11) as usize;
        let mut link = SharedLink::new(2.0e6);
        let mut t = SimTime::ZERO;
        let mut started = 0u64;
        for _ in 0..n_flows {
            let size = rng.uniform_u64(1_000, 499_999);
            let gap = rng.uniform_u64(0, 799);
            t += SimDuration::from_millis(gap);
            link.advance(t);
            link.start_flow(t, size);
            started += size;
        }
        // Drain: no flow can outlive total_bytes/capacity once alone.
        let drain = SimDuration::from_secs_f64(started as f64 * 8.0 / 2.0e6 + 1.0);
        link.advance(t + drain);
        let mut completed = 0usize;
        while link.take_completed().is_some() {
            completed += 1;
        }
        assert_eq!(completed, n_flows);
        assert_eq!(link.active_count(), 0);
        assert_eq!(link.total_bytes_carried(), started);
    });
}

/// Builds a machine running a random workload script — shared by the
/// ledger-balance and simtrace property tests (fixed rng draw order:
/// step count, pm coin, then per-step kind/amount pairs).
fn random_fuzz_machine(rng: &mut SimRng) -> Machine {
    let steps = rng.uniform_u64(1, 9) as usize;
    let pm = rng.bernoulli(0.5);
    let mut activities = Vec::new();
    let mut wait_at = 0u64;
    for _ in 0..steps {
        let kind = rng.uniform_u64(0, 3);
        let amount = rng.uniform_u64(1, 799);
        let a = match kind {
            0 => Activity::Cpu {
                duration: SimDuration::from_millis(amount),
                intensity: (amount % 100) as f64 / 100.0,
                procedure: "work",
            },
            1 => Activity::BulkFetch {
                bytes: amount * 200,
                procedure: "fetch",
            },
            2 => Activity::XRender {
                cost: SimDuration::from_millis(amount / 2 + 1),
            },
            _ => {
                wait_at += amount;
                Activity::Wait {
                    until: SimTime::from_micros(wait_at * 1000),
                }
            }
        };
        activities.push(a);
    }
    let cfg = if pm {
        MachineConfig::default()
    } else {
        MachineConfig::baseline()
    };
    let mut m = Machine::new(cfg);
    m.add_process(Box::new(ScriptedWorkload::new("fuzz", activities)));
    m
}

/// Machine energy accounting balances for random workload scripts:
/// bucket totals and component totals both equal total energy, and
/// average power stays within the platform's physical envelope.
#[test]
fn ledger_balances_for_random_scripts() {
    cases("ledger", 48, |rng| {
        let mut m = random_fuzz_machine(rng);
        let report = m.run();
        let bucket_sum: f64 = report.buckets.iter().map(|(_, j)| j).sum();
        assert!((bucket_sum - report.total_j).abs() < 1e-6);
        assert!((report.components.total_j() - report.total_j).abs() < 1e-6);
        if report.duration_s() > 0.0 {
            let avg = report.total_j / report.duration_s();
            assert!((3.0..25.0).contains(&avg), "implausible power {avg}");
        }
    });
}

/// simtrace invariants over random scripts: records are strictly ordered
/// by (sim time, seq) with seq dense from zero, every traced energy
/// delta is non-negative, and the per-bucket delta sums reproduce the
/// final report's bucket totals — the trace carries the full energy
/// attribution, not an approximation of it.
#[test]
fn trace_orders_events_and_reconciles_energy() {
    cases("trace", 48, |rng| {
        let mut m = random_fuzz_machine(rng);
        let trace = TraceHandle::new(
            TraceSink::new()
                .with_capacity(1 << 20)
                .with_categories(&TraceCategory::ALL),
        );
        m.set_trace(trace.clone());
        let report = m.run();
        assert_eq!(trace.evicted(), 0, "ring too small for this fuzz case");
        let recs = trace.records();
        // A script of pure XRender activities completes in zero simulated
        // time and legitimately traces nothing; every case that consumed
        // time must have traced something.
        if report.duration_s() == 0.0 {
            assert!(recs.is_empty(), "events traced in a zero-length run");
            return;
        }
        assert!(!recs.is_empty(), "no events traced");
        for (i, w) in recs.windows(2).enumerate() {
            assert!(w[1].at >= w[0].at, "time regressed at record {i}");
        }
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.seq, i as u64, "seq not dense from zero");
        }
        let mut sums: std::collections::BTreeMap<&str, f64> = Default::default();
        for r in &recs {
            if let TraceEvent::EnergyDelta { bucket, energy_j } = r.event {
                assert!(energy_j >= 0.0, "negative delta {energy_j} for {bucket}");
                *sums.entry(bucket).or_insert(0.0) += energy_j;
            }
        }
        assert!(!sums.is_empty(), "no energy deltas traced");
        for (bucket, sum) in &sums {
            let reported = report.bucket_j(bucket);
            let tol = 1e-9 * reported.abs().max(1.0);
            assert!(
                (sum - reported).abs() <= tol,
                "bucket {bucket}: trace sum {sum} vs report {reported}"
            );
        }
        let total: f64 = sums.values().sum();
        assert!(
            (total - report.total_j).abs() <= 1e-9 * report.total_j.max(1.0),
            "trace total {total} vs report {}",
            report.total_j
        );
    });
}

/// The exponential smoother's output always lies within the range of the
/// samples it has seen.
#[test]
fn smoother_is_bounded_by_inputs() {
    cases("smoother", 128, |rng| {
        let n = rng.uniform_u64(1, 199) as usize;
        let remaining = rng.uniform(1.0, 10_000.0);
        let mut s = Smoother::new(0.10, SimDuration::from_millis(100));
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..n {
            let x = rng.uniform(0.1, 50.0);
            lo = lo.min(x);
            hi = hi.max(x);
            let v = s.update(x, remaining);
            assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "{v} outside [{lo}, {hi}]");
        }
    });
}

/// Events pop in (time, insertion) order no matter how they were pushed,
/// and cancellation removes exactly the cancelled events.
#[test]
fn event_queue_total_order() {
    cases("queue", 128, |rng| {
        let n = rng.uniform_u64(1, 63) as usize;
        let mut q = EventQueue::new();
        let mut kept = 0usize;
        let mut to_cancel = Vec::new();
        for i in 0..n {
            let t = rng.uniform_u64(0, 999);
            let id = q.push(SimTime::from_micros(t), i);
            if rng.bernoulli(0.4) {
                to_cancel.push(id);
            } else {
                kept += 1;
            }
        }
        for id in to_cancel {
            assert!(q.cancel(id));
        }
        let mut last: Option<SimTime> = None;
        let mut popped = 0usize;
        while let Some((at, _payload)) = q.pop() {
            if let Some(prev) = last {
                assert!(at >= prev, "time went backwards");
            }
            last = Some(at);
            popped += 1;
        }
        assert_eq!(popped, kept);
        assert!(q.is_empty());
    });
}

/// Step-function semantics: the resampled value at any grid point equals
/// `value_at` of that instant.
#[test]
fn time_series_resample_matches_value_at() {
    cases("series", 96, |rng| {
        let n = rng.uniform_u64(1, 39) as usize;
        let step_us = rng.uniform_u64(500, 4_999);
        let mut s = TimeSeries::new("prop");
        let mut t = SimTime::ZERO;
        for _ in 0..n {
            t += SimDuration::from_micros(rng.uniform_u64(1, 9_999));
            s.record(t, rng.uniform(-100.0, 100.0));
        }
        let end = t + SimDuration::from_micros(1_000);
        for (at, v) in s.resample(SimDuration::from_micros(step_us), end) {
            assert_eq!(Some(v), s.value_at(at));
        }
    });
}

/// Trial statistics are scale-equivariant: scaling all observations
/// scales mean, sd and CI by the same factor.
#[test]
fn trial_stats_scale() {
    cases("stats", 128, |rng| {
        let n = rng.uniform_u64(2, 19) as usize;
        let k = rng.uniform(0.1, 100.0);
        let values: Vec<f64> = (0..n).map(|_| rng.uniform(0.1, 1e4)).collect();
        let base = TrialStats::from_values(&values);
        let scaled_values: Vec<f64> = values.iter().map(|v| v * k).collect();
        let scaled = TrialStats::from_values(&scaled_values);
        assert!((scaled.mean - base.mean * k).abs() < 1e-6 * base.mean.abs().max(1.0) * k);
        assert!((scaled.sd - base.sd * k).abs() < 1e-6 * (base.sd * k).max(1.0));
        assert!((scaled.ci90 - base.ci90 * k).abs() < 1e-6 * (base.ci90 * k).max(1.0));
    });
}

/// Call-path attribution reconciles bottom-up: for every canonical
/// scenario and seed, (1) each process's leaf-exclusive energies sum to
/// its process energy, (2) every interior frame's inclusive energy
/// equals its own exclusive energy plus its direct children's inclusive
/// energies, and (3) per-process energies sum to the multimeter total
/// the flat (per-procedure) correlation reports for the same run. Path
/// splitting loses no energy and invents none.
#[test]
fn energy_paths_reconcile_to_multimeter_total() {
    use energy_adaptation::experiments::{energymap, tracerec};
    use energy_adaptation::powerscope::{correlate, correlate_paths};

    for scenario in tracerec::SCENARIOS {
        for seed in [1u64, 7, 42] {
            let run = energymap::collect(scenario, seed, 1.0)
                .unwrap_or_else(|e| panic!("{scenario}/{seed}: {e}"));
            let flat = correlate(&run);
            let paths = correlate_paths(&run);
            let tag = format!("{scenario} seed {seed}");

            let mut process_sum = 0.0;
            for proc_paths in &paths.processes {
                // Leaf rows are exactly the sampled rows; exclusive
                // energy lives only there.
                let leaf_sum: f64 = proc_paths
                    .rows
                    .iter()
                    .filter(|r| r.samples > 0)
                    .map(|r| r.self_energy_j)
                    .sum();
                assert!(
                    (leaf_sum - proc_paths.energy_j).abs() <= 1e-9 * leaf_sum.abs().max(1.0),
                    "{tag}: {}: leaf exclusive sum {leaf_sum} != process {}",
                    proc_paths.process,
                    proc_paths.energy_j
                );
                // Interior inclusive = own exclusive + children inclusive.
                for row in &proc_paths.rows {
                    let child_prefix = format!("{}/", row.path);
                    let children: f64 = proc_paths
                        .rows
                        .iter()
                        .filter(|c| {
                            c.path.starts_with(&child_prefix)
                                && !c.path[child_prefix.len()..].contains('/')
                        })
                        .map(|c| c.inclusive_energy_j)
                        .sum();
                    let expect = row.self_energy_j + children;
                    assert!(
                        (row.inclusive_energy_j - expect).abs() <= 1e-9 * expect.abs().max(1.0),
                        "{tag}: {} path {}: inclusive {} != self+children {expect}",
                        proc_paths.process,
                        row.path,
                        row.inclusive_energy_j
                    );
                }
                process_sum += proc_paths.energy_j;
            }
            // Process energies sum to the multimeter total (the flat
            // correlation integrates the same sample stream).
            let meter_total = flat.total_energy_j();
            assert!(
                (process_sum - meter_total).abs() <= 1e-9 * meter_total.abs().max(1.0),
                "{tag}: path process sum {process_sum} != multimeter total {meter_total}"
            );
            assert!(meter_total > 0.0, "{tag}: zero-energy run");
        }
    }
}
