//! Golden-trace conformance: every canonical scenario must replay
//! byte-identically against the JSONL pinned under `tests/golden/`, and
//! recording the same scenario twice at one seed must be byte-identical.
//!
//! On failure the panic message is the tracediff first-divergence report;
//! see `tests/golden/README.md` for the regeneration workflow.

use experiments::tracerec;

fn assert_golden(scenario: &str) {
    match tracerec::check(scenario) {
        Ok(n) => assert!(n > 0, "{scenario}: golden trace is empty"),
        Err((report, _fresh)) => panic!("{report}"),
    }
}

#[test]
fn fig2_trace_matches_golden() {
    assert_golden("fig2");
}

#[test]
fn fig13_trace_matches_golden() {
    assert_golden("fig13");
}

#[test]
fn goal_trace_matches_golden() {
    assert_golden("goal");
}

#[test]
fn supervise_trace_matches_golden() {
    assert_golden("supervise");
}

/// Same seed, same scenario — byte-identical JSONL, for every scenario,
/// at a seed different from the golden one (determinism is a property of
/// the recorder, not of one lucky seed).
#[test]
fn recording_is_deterministic_at_any_seed() {
    for scenario in tracerec::SCENARIOS {
        let a = tracerec::record(scenario, 0xD1CE).unwrap();
        let b = tracerec::record(scenario, 0xD1CE).unwrap();
        assert!(!a.is_empty(), "{scenario}: empty trace");
        assert_eq!(a, b, "{scenario}: same-seed reruns diverge");
    }
}
