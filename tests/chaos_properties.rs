//! Property tests for the fault-injection layer and the hardened goal
//! controller: whatever the substrate does — outages, lying gauges,
//! dropped meter samples — the control plane must not panic, must not
//! upgrade faster than the paper's rate limit, must not beat network
//! physics, and must replay bit-identically from the same seed.

use energy_adaptation::hw560x::{DisplayState, EnergySource};
use energy_adaptation::machine::workload::ScriptedWorkload;
use energy_adaptation::machine::{
    Activity, AdaptDirection, FaultConfig, FidelityView, Machine, MachineConfig, RpcPolicy, Step,
    Workload,
};
use energy_adaptation::netsim::{LinkFaultPlan, RpcSpec, RPC_LATENCY, WAVELAN_CAPACITY_BPS};
use energy_adaptation::odyssey::{
    GoalConfig, GoalController, GoalOutcome, Hardening, PriorityTable,
};
use energy_adaptation::powerscope::MeterFaultPlan;
use energy_adaptation::simcore::fault::FaultPlan;
use energy_adaptation::simcore::{SimDuration, SimTime};

/// A three-level adaptive workload: CPU duty cycle plus a periodic
/// control RPC, so fault sweeps exercise both the CPU and network paths.
struct AdaptiveLoad {
    level: usize,
    until: SimTime,
    phase: u64,
}

impl AdaptiveLoad {
    const PERIOD: SimDuration = SimDuration::from_millis(1000);

    fn new(until: SimTime) -> Self {
        AdaptiveLoad {
            level: 2,
            until,
            phase: 0,
        }
    }

    fn duty(&self) -> f64 {
        match self.level {
            0 => 0.10,
            1 => 0.45,
            _ => 0.90,
        }
    }
}

impl Workload for AdaptiveLoad {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn display_need(&self) -> DisplayState {
        DisplayState::Off
    }

    fn poll(&mut self, now: SimTime) -> Step {
        if now >= self.until {
            return Step::Done;
        }
        let slot = now.as_micros() % Self::PERIOD.as_micros();
        if slot == 0 {
            self.phase += 1;
            if self.phase.is_multiple_of(10) {
                // One small control RPC every ten periods.
                return Step::Run(Activity::Rpc {
                    spec: RpcSpec::control(SimDuration::from_millis(20)),
                    procedure: "ping",
                });
            }
            Step::Run(Activity::Cpu {
                duration: Self::PERIOD.mul_f64(self.duty()),
                intensity: 1.0,
                procedure: "burn",
            })
        } else {
            let next = now + (Self::PERIOD - SimDuration::from_micros(slot));
            Step::Run(Activity::Wait { until: next })
        }
    }

    fn fidelity(&self) -> FidelityView {
        FidelityView::new(self.level, 3)
    }

    fn on_upcall(&mut self, dir: AdaptDirection, _now: SimTime) -> bool {
        match dir {
            AdaptDirection::Degrade if self.level > 0 => {
                self.level -= 1;
                true
            }
            AdaptDirection::Upgrade if self.level < 2 => {
                self.level += 1;
                true
            }
            _ => false,
        }
    }
}

struct FaultedRun {
    outcome: GoalOutcome,
    report: energy_adaptation::machine::RunReport,
}

/// Runs the adaptive workload for 300 s of battery under a hostile
/// substrate at the given intensity.
fn run_goal_under_faults(seed: u64, intensity: f64, hardened: bool) -> FaultedRun {
    let horizon = SimTime::from_secs(700);
    let mut cfg = GoalConfig::paper(2000.0, SimDuration::from_secs(300))
        .with_meter_faults(MeterFaultPlan::degraded(seed ^ 0x5EED, intensity));
    cfg.warmup = SimDuration::from_secs(1);
    if hardened {
        cfg = cfg.with_hardening(Hardening::standard());
    }
    let mut m = Machine::new(MachineConfig {
        source: EnergySource::battery(2000.0),
        faults: FaultConfig::hostile(seed, intensity, horizon),
        ..Default::default()
    });
    let pid = m.add_process(Box::new(AdaptiveLoad::new(SimTime::from_secs(600))));
    let (handle, hook) = GoalController::new(cfg.clone(), PriorityTable::new(vec![pid]));
    m.add_hook(cfg.sample_period, hook);
    let report = m.run_until(horizon);
    FaultedRun {
        outcome: handle.outcome(),
        report,
    }
}

/// Neither controller panics, hangs, or produces non-finite accounting at
/// any swept fault intensity.
#[test]
fn controllers_survive_full_intensity_sweep() {
    for &intensity in &[0.0, 0.25, 0.5, 0.75, 1.0] {
        for hardened in [false, true] {
            for seed in 1..4 {
                let run = run_goal_under_faults(seed, intensity, hardened);
                assert!(
                    run.report.total_j.is_finite() && run.report.total_j > 0.0,
                    "bad energy at intensity {intensity}: {}",
                    run.report.total_j
                );
                assert!(
                    run.report.duration_s() > 0.0,
                    "empty run at intensity {intensity}"
                );
                // The controller ran: it either met the goal, exhausted
                // the battery trying, or (workload done first) neither.
                let o = &run.outcome;
                assert!(
                    o.degrades + o.upgrades + o.infeasible_signals + o.stale_decisions > 0
                        || intensity == 0.0,
                    "controller never acted at intensity {intensity}: {o:?}"
                );
            }
        }
    }
}

/// Upgrades never come faster than `upgrade_min_interval`, no matter what
/// the faulty sensors tell the controller.
#[test]
fn upgrade_rate_limit_holds_under_faults() {
    for &intensity in &[0.25, 1.0] {
        for hardened in [false, true] {
            for seed in 1..4 {
                let run = run_goal_under_faults(seed, intensity, hardened);
                let series = run
                    .report
                    .fidelity
                    .iter()
                    .find(|s| s.name() == "adaptive")
                    .expect("fidelity series recorded");
                let min_gap = SimDuration::from_secs(15);
                let mut last_level: Option<f64> = None;
                let mut last_upgrade: Option<SimTime> = None;
                for &(at, level) in series.points() {
                    if let Some(prev) = last_level {
                        if level > prev {
                            if let Some(t) = last_upgrade {
                                assert!(
                                    at.saturating_since(t) >= min_gap,
                                    "upgrades {t:?} -> {at:?} violate the 15 s rate limit \
                                     (intensity {intensity}, hardened {hardened}, seed {seed})"
                                );
                            }
                            last_upgrade = Some(at);
                        }
                    }
                    last_level = Some(level);
                }
            }
        }
    }
}

/// Sequential RPCs never complete faster than physics allows — media
/// latency, wire time at full capacity, and server residence — no matter
/// how timeouts, retries, and link faults interleave. Retry accounting
/// stays balanced: every retry matches a timeout.
#[test]
fn rpc_timing_never_beats_physics_under_retries() {
    let spec = RpcSpec {
        request_bytes: 20_000,
        reply_bytes: 40_000,
        server_time: SimDuration::from_millis(150),
    };
    let n_rpcs = 12u64;
    let floor = spec.min_duration(WAVELAN_CAPACITY_BPS, RPC_LATENCY);
    let mut total_timeouts = 0u64;
    for seed in 0..8 {
        let horizon = SimTime::from_secs(3_600);
        let mut faults = FaultConfig::clean();
        faults.seed = seed;
        faults.horizon = horizon;
        // Outage-heavy link: ~3 s outages separated by ~6 s of calm.
        faults.link = LinkFaultPlan {
            outage: Some(FaultPlan::new(
                SimDuration::from_secs(3),
                SimDuration::from_secs(6),
            )),
            ..LinkFaultPlan::clean()
        };
        faults.rpc = Some(RpcPolicy {
            timeout: SimDuration::from_secs(2),
            ..RpcPolicy::standard()
        });
        let mut m = Machine::new(MachineConfig {
            faults,
            ..Default::default()
        });
        let activities = (0..n_rpcs)
            .map(|_| Activity::Rpc {
                spec,
                procedure: "fetch",
            })
            .collect();
        m.add_process(Box::new(ScriptedWorkload::new("rpcs", activities)));
        let report = m.run_until(horizon);
        let total_floor = SimDuration::from_micros(floor.as_micros() * n_rpcs);
        assert!(
            report.end >= SimTime::ZERO + total_floor,
            "seed {seed}: {n_rpcs} RPCs finished in {:?}, beating the physical floor {total_floor:?}",
            report.end,
        );
        assert_eq!(
            report.rpc_retries, report.rpc_timeouts,
            "seed {seed}: unbalanced retry accounting"
        );
        assert!(
            report.bytes_carried >= n_rpcs * (spec.request_bytes + spec.reply_bytes),
            "seed {seed}: fewer bytes carried than delivered"
        );
        total_timeouts += report.rpc_timeouts;
    }
    assert!(
        total_timeouts > 0,
        "outage-heavy sweep never exercised the retry path"
    );
}

/// The same seed replays the same hostile run bit-for-bit.
#[test]
fn faulted_runs_replay_bit_identically() {
    for hardened in [false, true] {
        let a = run_goal_under_faults(9, 0.75, hardened);
        let b = run_goal_under_faults(9, 0.75, hardened);
        assert_eq!(a.report.total_j.to_bits(), b.report.total_j.to_bits());
        assert_eq!(a.report.end, b.report.end);
        assert_eq!(a.report.rpc_timeouts, b.report.rpc_timeouts);
        assert_eq!(a.report.rpc_retries, b.report.rpc_retries);
        assert_eq!(a.report.bytes_carried, b.report.bytes_carried);
        assert_eq!(a.outcome, b.outcome);
    }
}
