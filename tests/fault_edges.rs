//! Energy accounting under hostile links: whatever the fault timeline
//! does to the radio path — outages, dips, latency spikes, retry storms —
//! every energy figure the machine reports must stay non-negative and
//! finite, and a battery can only drain.

use energy_adaptation::hw560x::EnergySource;
use energy_adaptation::machine::workload::ScriptedWorkload;
use energy_adaptation::machine::{Activity, FaultConfig, Machine, MachineConfig, RpcPolicy};
use energy_adaptation::netsim::{LinkFaultPlan, RpcSpec};
use energy_adaptation::simcore::fault::FaultPlan;
use energy_adaptation::simcore::{SimDuration, SimTime};

/// Outage-heavy, dip-heavy link: short calm gaps so a 10-minute run sees
/// many overlapping fault windows of every class.
fn stormy(seed: u64, horizon: SimTime) -> FaultConfig {
    let mut faults = FaultConfig::clean();
    faults.seed = seed;
    faults.horizon = horizon;
    faults.link = LinkFaultPlan {
        outage: Some(FaultPlan::new(
            SimDuration::from_secs(12),
            SimDuration::from_secs(5),
        )),
        dip: Some((
            FaultPlan::new(SimDuration::from_secs(9), SimDuration::from_secs(15)),
            0.3,
        )),
        latency: Some((
            FaultPlan::new(SimDuration::from_secs(20), SimDuration::from_secs(8)),
            SimDuration::from_millis(80),
        )),
    };
    faults.rpc = Some(RpcPolicy {
        timeout: SimDuration::from_secs(2),
        ..RpcPolicy::standard()
    });
    faults
}

/// Every energy figure stays non-negative through retry storms, and the
/// battery residual never exceeds its initial charge nor drops below
/// zero.
#[test]
fn energy_accounting_never_goes_negative_under_link_faults() {
    let initial_j = 5_000.0;
    for seed in 0..6 {
        let horizon = SimTime::from_secs(600);
        let mut m = Machine::new(MachineConfig {
            source: EnergySource::battery(initial_j),
            faults: stormy(seed, horizon),
            ..Default::default()
        });
        let spec = RpcSpec {
            request_bytes: 20_000,
            reply_bytes: 60_000,
            server_time: SimDuration::from_millis(100),
        };
        let activities = (0..40)
            .map(|_| Activity::Rpc {
                spec,
                procedure: "fetch",
            })
            .collect();
        m.add_process(Box::new(ScriptedWorkload::new("fetcher", activities)));
        let report = m.run_until(horizon);

        assert!(
            report.total_j.is_finite() && report.total_j >= 0.0,
            "seed {seed}: total {:?}",
            report.total_j
        );
        for (bucket, j) in &report.buckets {
            assert!(
                j.is_finite() && *j >= -1e-9,
                "seed {seed}: bucket {bucket} went negative: {j}"
            );
        }
        let c = &report.components;
        for (name, j) in [
            ("display", c.display_j),
            ("disk", c.disk_j),
            ("radio", c.radio_j),
            ("cpu", c.cpu_j),
            ("base", c.base_j),
            ("superlinear", c.superlinear_j),
        ] {
            assert!(
                j.is_finite() && j >= -1e-9,
                "seed {seed}: component {name} went negative: {j}"
            );
        }
        assert!(
            (0.0..=initial_j).contains(&report.residual_j),
            "seed {seed}: residual {} outside [0, {initial_j}]",
            report.residual_j
        );
        // Conservation: what left the battery is what the ledger booked.
        let drained = initial_j - report.residual_j;
        assert!(
            (drained - report.total_j).abs() < 1e-6 * initial_j || report.exhausted,
            "seed {seed}: drained {drained} J but ledger booked {} J",
            report.total_j
        );
    }
}
