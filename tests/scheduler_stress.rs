//! Scheduler torture: the chunked self-scheduling pool must be
//! invisible in the output under adversarial shapes.
//!
//! Every case runs serially first, then at thread counts {1, 2, 3, 4, 8}
//! with spawning forced via `assume_parallelism` (a single-core CI host
//! would otherwise — correctly — take the inline path and the claiming
//! machinery would never execute). Shapes covered: empty input, a
//! single item, item counts straddling the worker count (threads ± 1),
//! grain pinned to {1, len, len+1}, and a heavy/light skewed-cost
//! workload where one in seven jobs costs ~100× the rest. The harness
//! trial fan-out rides the same gauntlet end to end.
//!
//! Each run's PoolStats is appended to `target/scheduler_stress/` so a
//! failing CI job can upload the scheduling decisions next to the
//! assertion message.

use std::fmt::Write as _;

use experiments::harness::{run_trials, Trials};
use machine::workload::ScriptedWorkload;
use machine::{Machine, MachineConfig};
use simcore::{SimDuration, SimRng};
use simpar::{PoolConfig, PoolStats};

/// Thread counts the torture grid runs at.
const THREADS: [usize; 5] = [1, 2, 3, 4, 8];

/// Accumulates one line per dispatch; flushed to the dump file at the
/// end of each test so a red CI job can archive the decisions.
struct StatsDump {
    name: &'static str,
    lines: String,
}

impl StatsDump {
    fn new(name: &'static str) -> Self {
        StatsDump {
            name,
            lines: String::new(),
        }
    }

    fn push(&mut self, case: &str, stats: &PoolStats) {
        let _ = writeln!(
            self.lines,
            "{}: items={} threads={} workers={} inline={} grain={} chunks={} per_worker_items={:?}",
            case,
            stats.items,
            stats.requested_threads,
            stats.workers_spawned,
            stats.inline,
            stats.grain,
            stats.chunks_claimed(),
            stats.per_worker_items,
        );
    }

    fn flush(&self) {
        let dir = std::path::Path::new("target/scheduler_stress");
        if std::fs::create_dir_all(dir).is_ok() {
            let _ = std::fs::write(dir.join(format!("{}.txt", self.name)), &self.lines);
        }
    }
}

/// A deterministic job with skewed cost: every seventh job grinds a
/// splitmix-style integer hash ~100× longer than its siblings. The
/// value depends on every iteration, so the work cannot be elided.
fn skewed_job(i: usize) -> u64 {
    let rounds = if i.is_multiple_of(7) { 10_000 } else { 100 };
    let mut x = i as u64 ^ 0x9e37_79b9_7f4a_7c15;
    for _ in 0..rounds {
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9) ^ (x >> 27);
    }
    x
}

/// The adversarial item counts for a given worker count: empty, single,
/// and straddling the worker count.
fn adversarial_ns(threads: usize) -> Vec<usize> {
    let mut ns = vec![0, 1, threads.saturating_sub(1), threads, threads + 1];
    ns.sort_unstable();
    ns.dedup();
    ns
}

/// `map_indexed` under the full grid: every (threads, n, grain) cell is
/// byte-identical to the serial reference.
#[test]
fn map_indexed_identical_under_adversarial_shapes() {
    let mut dump = StatsDump::new("map_indexed");
    for threads in THREADS {
        for n in adversarial_ns(threads) {
            let serial: Vec<u64> = (0..n).map(skewed_job).collect();
            for grain in [1, n.max(1), n + 1] {
                let cfg = PoolConfig::new(threads)
                    .grain(grain)
                    .assume_parallelism(threads.max(2));
                let (par, stats) = simpar::map_indexed_stats(&cfg, n, skewed_job);
                dump.push(&format!("threads={threads} n={n} grain={grain}"), &stats);
                assert_eq!(
                    serial, par,
                    "map_indexed diverges at threads={threads} n={n} grain={grain}"
                );
            }
        }
    }
    dump.flush();
}

/// `map` over a slice (the item-borrowing wrapper) under the same grid,
/// with the skewed-cost job keyed off the item value rather than the
/// index so the borrow path is exercised too.
#[test]
fn map_identical_under_adversarial_shapes() {
    let mut dump = StatsDump::new("map");
    for threads in THREADS {
        for n in adversarial_ns(threads) {
            let items: Vec<u64> = (0..n as u64).map(|v| v * 13 + 5).collect();
            let serial: Vec<u64> = items
                .iter()
                .enumerate()
                .map(|(i, &v)| skewed_job(i).wrapping_add(v))
                .collect();
            for grain in [1, n.max(1), n + 1] {
                let cfg = PoolConfig::new(threads)
                    .grain(grain)
                    .assume_parallelism(threads.max(2));
                let (par, stats) =
                    simpar::map_stats(&cfg, &items, |i, &v| skewed_job(i).wrapping_add(v));
                dump.push(&format!("threads={threads} n={n} grain={grain}"), &stats);
                assert_eq!(
                    serial, par,
                    "map diverges at threads={threads} n={n} grain={grain}"
                );
            }
        }
    }
    dump.flush();
}

/// The harness trial fan-out — real machines, real RNG forks — is
/// byte-identical across the full thread grid, including counts that
/// straddle the trial count. Trial durations are randomized so the
/// workload is naturally skewed.
#[test]
fn run_trials_identical_across_thread_grid() {
    let build = |rng: &mut SimRng| {
        let mut m = Machine::new(MachineConfig::default());
        let jitter_s = rng.uniform(1.0, 4.0);
        m.add_process(Box::new(ScriptedWorkload::idle_for(
            "stress",
            SimDuration::from_secs_f64(jitter_s),
        )));
        m
    };
    // 5 trials: straddles threads=4 (n > w) and threads=8 (n < w).
    let trials = Trials {
        n: 5,
        seed: 1999,
        threads: 1,
    };
    let serial: Vec<String> = run_trials(&trials, "schedstress", build)
        .iter()
        .map(|r| format!("{r:?}"))
        .collect();
    for threads in THREADS {
        let par: Vec<String> = run_trials(&trials.with_threads(threads), "schedstress", build)
            .iter()
            .map(|r| format!("{r:?}"))
            .collect();
        assert_eq!(serial, par, "harness reports diverge at {threads} threads");
    }
}

/// Single-trial and empty-adjacent harness shapes: the inline fallback
/// must produce the same bytes the spawning path does.
#[test]
fn run_trials_single_trial_matches_any_thread_count() {
    let build = |rng: &mut SimRng| {
        let mut m = Machine::new(MachineConfig::default());
        let jitter_s = rng.uniform(0.5, 1.5);
        m.add_process(Box::new(ScriptedWorkload::idle_for(
            "solo",
            SimDuration::from_secs_f64(jitter_s),
        )));
        m
    };
    let trials = Trials {
        n: 1,
        seed: 7,
        threads: 1,
    };
    let serial = format!("{:?}", run_trials(&trials, "solostress", build));
    for threads in THREADS {
        let par = format!(
            "{:?}",
            run_trials(&trials.with_threads(threads), "solostress", build)
        );
        assert_eq!(serial, par, "single trial diverges at {threads} threads");
    }
}
