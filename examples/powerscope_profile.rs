//! PowerScope in action: where does the energy go?
//!
//! Attaches the statistical profiler to a machine running the speech
//! recognizer and the web browser concurrently, then prints the
//! correlated energy profile in the paper's Figure 2 layout — per-process
//! summary plus per-procedure detail for the hungriest process.
//!
//! Run with: `cargo run --release --example powerscope_profile`

use energy_adaptation::apps::datasets::{UTTERANCES, WEB_IMAGES};
use energy_adaptation::apps::{SpeechApp, SpeechStrategy, WebBrowser, WebFidelity};
use energy_adaptation::machine::{Machine, MachineConfig};
use energy_adaptation::powerscope::{correlate, PowerScope};
use energy_adaptation::simcore::SimRng;

fn main() {
    let mut rng = SimRng::new(99);
    let (scope, observer) = PowerScope::new(99);

    let mut machine = Machine::new(MachineConfig::baseline());
    machine.add_observer(observer);
    machine.add_process(Box::new(SpeechApp::fixed(
        UTTERANCES.to_vec(),
        SpeechStrategy::Local,
        false,
        &mut rng,
    )));
    machine.add_process(Box::new(WebBrowser::fixed(
        WEB_IMAGES.to_vec(),
        WebFidelity::Full,
        &mut rng,
    )));
    let report = machine.run();
    drop(machine);

    let run = scope.into_run();
    println!(
        "Collected {} samples over {:.1} s (≈{:.0} Hz), {} symbol tables\n",
        run.trace.len(),
        report.duration_s(),
        run.trace.mean_rate_hz(),
        run.symbols.len()
    );
    let profile = correlate(&run);
    println!("{}", profile.format());
    println!(
        "Sampled total {:.1} J vs exact ledger {:.1} J ({:+.2}% sampling error)",
        profile.total_energy_j(),
        report.total_j,
        (profile.total_energy_j() / report.total_j - 1.0) * 100.0
    );
}
