//! Quickstart: how much energy does fidelity buy?
//!
//! Plays one video clip three ways — baseline (no power management),
//! hardware-only power management, and lowest fidelity with power
//! management — and prints the energy bill for each, with the per-process
//! breakdown the paper shades into its bars.
//!
//! Run with: `cargo run --release --example quickstart`

use energy_adaptation::apps::datasets::{VideoClip, VIDEO_CLIPS};
use energy_adaptation::apps::{VideoPlayer, VideoVariant};
use energy_adaptation::machine::{Machine, MachineConfig, RunReport};
use energy_adaptation::simcore::SimRng;

/// A 30-second excerpt keeps the example fast.
fn short_clip() -> VideoClip {
    VideoClip {
        duration_s: 30.0,
        ..VIDEO_CLIPS[0]
    }
}

fn play(clip: VideoClip, variant: VideoVariant, pm: bool, seed: u64) -> RunReport {
    let mut rng = SimRng::new(seed);
    let cfg = if pm {
        MachineConfig::default()
    } else {
        MachineConfig::baseline()
    };
    let mut machine = Machine::new(cfg);
    machine.add_process(Box::new(VideoPlayer::fixed(clip, variant, &mut rng)));
    machine.run()
}

fn describe(label: &str, report: &RunReport) {
    println!(
        "{label:<42} {:7.1} J over {:5.1} s ({:.2} W)",
        report.total_j,
        report.duration_s(),
        report.total_j / report.duration_s()
    );
    for (bucket, joules) in &report.buckets {
        println!("    {bucket:<12} {joules:8.1} J");
    }
}

fn main() {
    let clip = short_clip();
    println!(
        "Playing {} ({} s at {:.2} Mb/s)\n",
        clip.name,
        clip.duration_s,
        clip.bitrate_bps / 1e6
    );

    let baseline = play(clip, VideoVariant::Full, false, 42);
    let hw_only = play(clip, VideoVariant::Full, true, 42);
    let lowest = play(clip, VideoVariant::Combined, true, 42);

    describe("Baseline (full fidelity, no power mgmt)", &baseline);
    describe("Hardware-only power management", &hw_only);
    describe("Lowest fidelity + power management", &lowest);

    println!();
    println!(
        "Hardware power management alone saves {:.0}%",
        (1.0 - hw_only.total_j / baseline.total_j) * 100.0
    );
    println!(
        "Adding fidelity adaptation saves {:.0}% overall",
        (1.0 - lowest.total_j / baseline.total_j) * 100.0
    );
}
