//! Zoned backlighting: what would a smarter display buy?
//!
//! Measures the map viewer at full and lowest fidelity, then projects the
//! runs onto the paper's hypothetical 4-zone and 8-zone displays where
//! zones the map window does not cover fall back to the dim level
//! (Section 4).
//!
//! Run with: `cargo run --release --example zoned_display`

use energy_adaptation::apps::datasets::MAPS;
use energy_adaptation::apps::map::{MapFilter, MapViewer};
use energy_adaptation::apps::MapFidelity;
use energy_adaptation::backlight::{project_report, ZoneGrid, MAP_FULL_WINDOW, MAP_LOWEST_WINDOW};
use energy_adaptation::machine::{Machine, MachineConfig, RunReport};
use energy_adaptation::simcore::SimRng;

fn view(fidelity: MapFidelity, seed: u64) -> RunReport {
    let mut rng = SimRng::new(seed);
    let mut machine = Machine::new(MachineConfig::default());
    machine.add_process(Box::new(MapViewer::fixed(
        MAPS.to_vec(),
        fidelity,
        &mut rng,
    )));
    machine.run()
}

fn main() {
    let full = view(MapFidelity::full(), 5);
    let lowest = view(
        MapFidelity {
            filter: MapFilter::Secondary,
            cropped: true,
        },
        5,
    );

    println!("Viewing all four maps with 5 s of think time each:\n");
    for (label, report, window) in [
        ("Full fidelity", &full, MAP_FULL_WINDOW),
        ("Lowest fidelity", &lowest, MAP_LOWEST_WINDOW),
    ] {
        println!(
            "{label}: {:.1} J total, {:.1} J of it display",
            report.total_j, report.components.display_j
        );
        for grid in [ZoneGrid::four_zone(), ZoneGrid::eight_zone()] {
            let p = project_report(report, grid, window);
            println!(
                "  {} zones: window lights {}/{}, projected {:.1} J (saves {:.1} J, {:.0}%)",
                grid.total(),
                p.zones_lit,
                p.zones_total,
                p.energy_j,
                p.saved_j,
                p.saved_j / report.total_j * 100.0
            );
        }
        println!();
    }
    println!(
        "Lowering fidelity shrinks the window, so zoning helps more at low \
         fidelity — the paper's Section 4 result."
    );
}
