//! Always-on serving mode: a long-lived session that survives a kill.
//!
//! Builds the supervised goal rig behind the `simserve` step API, feeds
//! it a live sample stream, and shows the full robustness loop: ingest
//! samples, receive directives, reconfigure the goal mid-flight,
//! checkpoint, "crash" (drop the session, keeping only the journal),
//! and resume by replaying the identical stream — verifying the
//! salvaged checkpoint digest on the way through.
//!
//! Run with: `cargo run --release --example serve_session`

use energy_adaptation::experiments::serve::build_session;
use energy_adaptation::simcore::SimDuration;
use energy_adaptation::simserve::{Directive, ReconfigCommand, Sample};

/// The live input stream: a tick every 20 s out to 1200 s, a goal
/// revision at 300 s, and one corrupt sample the session must survive.
fn stream() -> Vec<Sample> {
    let mut samples = Vec::new();
    for t in (20..=1200).step_by(20) {
        samples.push(Sample::tick(t as f64));
        if t == 300 {
            samples.push(Sample::reconfig(
                300.5,
                ReconfigCommand::Goal(SimDuration::from_secs(1200)),
            ));
            samples.push(Sample::tick(f64::NAN)); // a malformed feed entry
        }
    }
    samples
}

fn describe(d: &Directive) -> Option<String> {
    let t = d.at().as_secs_f64();
    match d {
        Directive::Fidelity {
            pid,
            direction,
            level,
            ..
        } => Some(format!(
            "{t:7.1}s  fidelity: pid {pid} {direction} -> level {level}"
        )),
        Directive::ReconfigApplied { kind, value, .. } => {
            Some(format!("{t:7.1}s  reconfig applied: {kind} = {value}"))
        }
        Directive::ReconfigRejected { kind, reason, .. } => {
            Some(format!("{t:7.1}s  reconfig rejected: {kind} ({reason})"))
        }
        Directive::DeadLettered { reason, .. } => Some(format!("{t:7.1}s  dead letter: {reason}")),
        Directive::Checkpointed { seq, digest, .. } => Some(format!(
            "{t:7.1}s  checkpoint #{seq}: digest {digest:#018x}"
        )),
        _ => None,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const SEED: u64 = 42;
    let samples = stream();

    // --- Serve: ingest the stream, print what the control plane does.
    println!("serving the supervised goal rig (seed {SEED})...");
    let mut session = build_session(SEED)?;
    let mut fed = 0;
    let mut crashed_at = None;
    'serve: for chunk in samples.chunks(8) {
        for d in session.ingest(chunk)? {
            if let Some(line) = describe(&d) {
                println!("  {line}");
            }
        }
        fed += chunk.len();
        // "Crash" once the third checkpoint is journaled: drop the
        // session. Only the journal's (time, digest) pairs survive.
        if session.checkpoints().len() >= 3 {
            crashed_at = session.checkpoints().last().copied();
            break 'serve;
        }
    }
    let salvage = crashed_at.ok_or("run ended before the third checkpoint")?;
    println!(
        "\n-- kill -9 after {fed} samples; salvaged checkpoint: t={:.0}s digest={:#018x}\n",
        salvage.t.as_secs_f64(),
        salvage.digest
    );
    drop(session);

    // --- Resume = replay: rebuild the identical rig, feed the identical
    // stream, and verify the salvaged digest as the timeline passes it.
    println!("resuming by replay...");
    let mut resumed = build_session(SEED)?;
    for chunk in samples.chunks(8) {
        resumed.ingest(chunk)?;
    }
    if !resumed.verify_checkpoint(salvage.t, salvage.digest) {
        return Err("resumed run diverged from the salvaged checkpoint".into());
    }
    println!(
        "  salvage point verified bit-identical at t={:.0}s",
        salvage.t.as_secs_f64()
    );
    let report = resumed.finish()?;
    println!(
        "  resumed to the horizon: end={:.0}s, consumed {:.0} J, residual {:.0} J",
        report.end.as_secs_f64(),
        report.total_j,
        report.residual_j
    );
    println!(
        "  {} checkpoints, {} dead letters, {} trace events",
        resumed.checkpoints().len(),
        resumed.dead_letters().map(|d| d.total()).unwrap_or(0),
        resumed.trace_jsonl().len()
    );
    Ok(())
}
