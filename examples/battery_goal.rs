//! Goal-directed adaptation: make the battery last exactly as long as the
//! flight.
//!
//! A user with 16.6 kJ of battery asks Odyssey for 24 minutes of runtime
//! while using the composite speech/web/map workload with a background
//! video. Odyssey monitors supply and demand twice a second and degrades
//! (or restores) application fidelity to land on the goal.
//!
//! Run with: `cargo run --release --example battery_goal [goal-seconds]`

use energy_adaptation::apps::composite::{composite_members, CompositeMode};
use energy_adaptation::apps::datasets::VIDEO_CLIPS;
use energy_adaptation::apps::VideoPlayer;
use energy_adaptation::hw560x::EnergySource;
use energy_adaptation::machine::{Machine, MachineConfig};
use energy_adaptation::odyssey::{GoalConfig, GoalController, PriorityTable};
use energy_adaptation::simcore::{SimDuration, SimRng, SimTime};

const INITIAL_ENERGY_J: f64 = 16_600.0;

fn main() {
    let goal_s: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1440);
    println!("Goal: {goal_s} s from {INITIAL_ENERGY_J} J\n");

    let mut rng = SimRng::new(7);
    let horizon = SimTime::from_secs(goal_s * 3);
    let mut machine = Machine::new(MachineConfig {
        source: EnergySource::battery(INITIAL_ENERGY_J),
        ..Default::default()
    });
    // The composite members arrive as [speech, web, map].
    let mut pids = Vec::new();
    for member in composite_members(
        CompositeMode::Every {
            period: SimDuration::from_secs(25),
            horizon,
        },
        true,
        &mut rng,
    ) {
        pids.push(machine.add_process(Box::new(member)));
    }
    let video = VideoPlayer::adaptive(VIDEO_CLIPS[0], &mut rng).looping_until(horizon);
    let video_pid = machine.add_background_process(Box::new(video));

    // Lowest priority first: speech, video, map, web.
    let priorities = PriorityTable::new(vec![pids[0], video_pid, pids[2], pids[1]]);
    let cfg = GoalConfig::paper(INITIAL_ENERGY_J, SimDuration::from_secs(goal_s));
    let sample_period = cfg.sample_period;
    let (handle, controller) = GoalController::new(cfg, priorities);
    machine.add_hook(sample_period, controller);

    let report = machine.run_until(horizon);
    let outcome = handle.outcome();

    println!(
        "Ran {:.0} s; goal met: {}; residual energy {:.0} J ({:.1}% of supply)",
        report.duration_s(),
        outcome.goal_met,
        report.residual_j,
        report.residual_j / INITIAL_ENERGY_J * 100.0
    );
    println!(
        "Adaptations: {} degrades, {} upgrades ({} infeasibility alerts)\n",
        outcome.degrades, outcome.upgrades, outcome.infeasible_signals
    );
    println!("Average fidelity level per application (0 = lowest):");
    for series in &report.fidelity {
        let pts = series.resample(SimDuration::from_secs(10), report.end);
        if pts.is_empty() {
            continue;
        }
        let mean = pts.iter().map(|(_, v)| v).sum::<f64>() / pts.len() as f64;
        println!(
            "  {:<10} mean {:.2}, {} fidelity changes",
            series.name(),
            mean,
            series.change_count()
        );
    }
}
