//! The original Odyssey loop: bandwidth adaptation.
//!
//! Before the energy work, Odyssey adapted to network bandwidth: an
//! application registers an expectation window on its throughput, the
//! viceroy passively estimates what each application actually achieves,
//! and a leave-window event triggers an upcall. Here the adaptive video
//! player shares the 2 Mb/s WaveLAN with a large background download;
//! when the download starts the player's throughput collapses, the
//! bandwidth monitor degrades it (smaller track), and when the link
//! clears the player is upgraded back.
//!
//! Run with: `cargo run --release --example bandwidth_adaptation`

use energy_adaptation::apps::datasets::{VideoClip, VIDEO_CLIPS};
use energy_adaptation::apps::VideoPlayer;
use energy_adaptation::machine::workload::ScriptedWorkload;
use energy_adaptation::machine::{Activity, Machine, MachineConfig};
use energy_adaptation::odyssey::{BandwidthMonitor, Expectation};
use energy_adaptation::simcore::{SimDuration, SimRng, SimTime};

fn main() {
    let mut rng = SimRng::new(11);
    let clip = VideoClip {
        duration_s: 60.0,
        ..VIDEO_CLIPS[0]
    };
    let mut machine = Machine::new(MachineConfig::default());
    let player = machine.add_process(Box::new(VideoPlayer::adaptive(clip, &mut rng)));
    // An 5 MB download arrives at t = 15 s and contends for the link.
    machine.add_background_process(Box::new(ScriptedWorkload::new(
        "download",
        vec![
            Activity::Wait {
                until: SimTime::from_secs(15),
            },
            Activity::BulkFetch {
                bytes: 5_000_000,
                procedure: "big_download",
            },
        ],
    )));
    // The player needs ≥1.1 Mb/s to sustain its current track; the upper
    // edge sits below the clear-link goodput so recovered headroom is
    // visible and triggers upgrades.
    let mut monitor = BandwidthMonitor::new(SimDuration::from_secs(1), SimDuration::from_secs(3));
    monitor.register(player, Expectation::new(1.1e6, 1.95e6));
    let period = monitor.period();
    machine.add_hook(period, Box::new(monitor));

    let report = machine.run();
    println!(
        "Played {:.0} s; total energy {:.1} J; {} fidelity changes\n",
        report.duration_s(),
        report.total_j,
        report.adaptations_of("xanim"),
    );
    let series = report
        .fidelity
        .iter()
        .find(|s| s.name() == "xanim")
        .expect("player series");
    println!("Player fidelity level over time (3 = full, 0 = lowest):");
    for (t, level) in series.resample(SimDuration::from_secs(5), report.end) {
        let bar = "#".repeat(level as usize + 1);
        println!("  t={:>4.0}s  level {level:.0}  {bar}", t.as_secs_f64());
    }
}
