#!/usr/bin/env bash
# Offline verification: tier-1 build + tests, lint wall, and fixed-seed
# determinism smoke checks. No network access required.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: workspace tests =="
cargo test -q --workspace

echo "== lint: rustfmt =="
cargo fmt --check

echo "== lint: clippy -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== lint: simlint (determinism, dimensional-analysis & purity rules) =="
cargo run --release -q -p simlint

echo "== lint: simlint fanned scan byte-equality (1 vs 8 threads) =="
lint_1="$(cargo run --release -q -p simlint -- --json --threads 1)"
lint_8="$(cargo run --release -q -p simlint -- --json --threads 8)"
if [ "$lint_1" != "$lint_8" ]; then
    echo "fanned simlint scan diverges from serial (merge-order bug)" >&2
    exit 1
fi

echo "== chaos: fixed-seed determinism smoke =="
out_a="$(cargo run --release -q -p experiments -- chaos --trials 1 --seed 7 2>/dev/null)"
out_b="$(cargo run --release -q -p experiments -- chaos --trials 1 --seed 7 2>/dev/null)"
if [ "$out_a" != "$out_b" ]; then
    echo "chaos sweep is not deterministic for a fixed seed" >&2
    exit 1
fi
echo "$out_a" | head -4

echo "== simtrace: golden-trace conformance =="
cargo run --release -q -p experiments -- tracediff

echo "== energymap: per-path energy-regression gate =="
cargo run --release -q -p experiments -- energymap --check

echo "== energymap: serial/parallel table byte-equality smoke =="
em_1="$(cargo run --release -q -p experiments -- energymap --threads 1 --out target/energymap-smoke 2>/dev/null)"
em_8="$(cargo run --release -q -p experiments -- energymap --threads 8 --out target/energymap-smoke 2>/dev/null)"
if [ "$em_1" != "$em_8" ]; then
    echo "energymap tables diverge across thread counts (simpar merge bug)" >&2
    exit 1
fi

echo "== supervise: fixed-seed determinism smoke =="
sup_a="$(cargo run --release -q -p experiments -- supervise --trials 1 --seed 7 2>/dev/null)"
sup_b="$(cargo run --release -q -p experiments -- supervise --trials 1 --seed 7 2>/dev/null)"
if [ "$sup_a" != "$sup_b" ]; then
    echo "supervise sweep is not deterministic for a fixed seed" >&2
    exit 1
fi
echo "$sup_a" | head -4

echo "== simserve: kill/resume smoke (1x replay, mid-run checkpoint) =="
cargo run --release -q -p experiments -- serve

echo "== simserve: hostile-input fuzz smoke (30 seeded streams) =="
cargo run --release -q -p experiments -- fuzz --streams 30

echo "== simpar: serial/parallel byte-equality smoke =="
par_1="$(cargo run --release -q -p experiments -- chaos fig18 --quick --threads 1 2>/dev/null)"
par_8="$(cargo run --release -q -p experiments -- chaos fig18 --quick --threads 8 2>/dev/null)"
if [ "$par_1" != "$par_8" ]; then
    echo "parallel fan-out diverges from serial (simpar merge bug)" >&2
    exit 1
fi

echo "verify: OK"
