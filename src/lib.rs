#![forbid(unsafe_code)]
//! Energy-aware adaptation for mobile applications — a Rust reproduction
//! of Flinn & Satyanarayanan (SOSP '99).
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! - [`simcore`] — deterministic discrete-event simulation core;
//! - [`simpar`] — the deterministic scoped-thread work pool behind the
//!   experiment runner's `--threads` fan-out;
//! - [`hw560x`] — the calibrated IBM ThinkPad 560X power model;
//! - [`netsim`] — the shared 2 Mb/s WaveLAN link;
//! - [`machine`] — the client-machine simulator (scheduler, devices,
//!   energy accounting with PowerScope-style attribution);
//! - [`powerscope`] — the statistical energy profiler;
//! - [`odyssey`] — the Odyssey platform: wardens, fidelity, expectations,
//!   and the goal-directed energy-adaptation controller;
//! - [`apps`] — the four adaptive applications plus composite and bursty
//!   workloads;
//! - [`backlight`] — the zoned-backlighting projection;
//! - [`simserve`] — the always-on serving layer: checkpointed,
//!   crash-resumable, live-reconfigurable sessions over one machine;
//! - [`experiments`] — one module per table/figure of the paper.
//!
//! # Quickstart
//!
//! Measure a video playback under the paper's two power regimes:
//!
//! ```
//! use energy_adaptation::apps::datasets::VIDEO_CLIPS;
//! use energy_adaptation::apps::{VideoPlayer, VideoVariant};
//! use energy_adaptation::machine::{Machine, MachineConfig};
//! use energy_adaptation::simcore::SimRng;
//!
//! let mut rng = SimRng::new(42);
//! let clip = energy_adaptation::apps::datasets::VideoClip {
//!     duration_s: 10.0,
//!     ..VIDEO_CLIPS[0]
//! };
//!
//! let mut baseline = Machine::new(MachineConfig::baseline());
//! baseline.add_process(Box::new(VideoPlayer::fixed(clip, VideoVariant::Full, &mut rng)));
//! let base = baseline.run();
//!
//! let mut managed = Machine::new(MachineConfig::default());
//! managed.add_process(Box::new(VideoPlayer::fixed(clip, VideoVariant::Combined, &mut rng)));
//! let low = managed.run();
//!
//! assert!(low.total_j < base.total_j * 0.8, "adaptation + PM saves energy");
//! ```

pub use backlight;
pub use experiments;
pub use hw560x;
pub use machine;
pub use netsim;
pub use odyssey;
pub use odyssey_apps as apps;
pub use powerscope;
pub use simcore;
pub use simpar;
pub use simserve;
