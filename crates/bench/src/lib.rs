#![forbid(unsafe_code)]
//! Benchmark support: a dependency-free timing harness for the per-figure
//! benches in `benches/`, and [`Stopwatch`] — the workspace's single
//! sanctioned wall-clock source.
//!
//! Each bench target regenerates one table or figure of the paper with a
//! reduced trial count, so `cargo bench` doubles as an end-to-end check
//! that every experiment still runs and as a performance baseline for the
//! simulator itself. The harness is deliberately minimal (no external
//! crates): it warms up, runs a fixed number of timed iterations, and
//! prints min/mean/max wall-clock times.
//!
//! Everything inside the simulation reads time from `simcore::SimTime`;
//! simlint rule D1 forbids `std::time` there — and rule P1 makes the ban
//! transitive over the call graph, so the waivers here double as purity
//! boundaries: callers of [`Stopwatch`] stay clean because the waiver's
//! reason is precisely that wall-clock reach stops at measurement.
//! Measuring how long the simulator itself takes is the one legitimate
//! wall-clock use, so it is concentrated here, behind waivers that this
//! doc comment justifies. The sweep module also parses committed
//! `bench_sweep/v1` baselines back in and compares speedups, powering
//! the `bench --check` regression gate.

/// The workspace's single sanctioned wall-clock escape hatch (simlint
/// D1): measures real elapsed time for benches and CLI progress lines.
/// Simulation code must never touch it — simulated time is `SimTime`.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    // simlint: allow(D1) — this type IS the sanctioned wall-clock source
    t0: std::time::Instant,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Stopwatch::start()
    }
}

impl Stopwatch {
    /// Starts timing now (in real time).
    pub fn start() -> Self {
        Stopwatch {
            // simlint: allow(D1) — the one place the workspace reads the wall clock
            t0: std::time::Instant::now(),
        }
    }

    /// Seconds of real time since [`Stopwatch::start`].
    pub fn elapsed_s(&self) -> f64 {
        self.t0.elapsed().as_secs_f64()
    }
}

/// Times `f` over `iters` iterations (after one warm-up call) and prints
/// a one-line summary. Use `std::hint::black_box` inside `f` to keep the
/// optimizer honest.
pub fn run_bench(name: &str, iters: usize, mut f: impl FnMut()) {
    assert!(iters > 0, "bench needs at least one iteration");
    f(); // warm-up
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let sw = Stopwatch::start();
        f();
        samples.push(sw.elapsed_s());
    }
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(0.0f64, f64::max);
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!("{name}: mean {mean:.4} s, min {min:.4} s, max {max:.4} s ({iters} iters)");
}

pub mod sweep;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_bench_executes_the_closure() {
        let mut n = 0usize;
        run_bench("noop", 3, || n += 1);
        assert_eq!(n, 4, "warm-up plus three timed iterations");
    }

    #[test]
    fn stopwatch_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_s();
        let b = sw.elapsed_s();
        assert!(a >= 0.0 && b >= a);
    }
}
