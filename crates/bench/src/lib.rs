//! Benchmark support: shared trial configurations for the per-figure
//! Criterion benches in `benches/`.
//!
//! Each bench target regenerates one table or figure of the paper with a
//! reduced trial count, so `cargo bench` doubles as an end-to-end check
//! that every experiment still runs and as a performance baseline for the
//! simulator itself.

use experiments::harness::Trials;

/// Trials used by benches: one repetition, fixed seed.
pub fn bench_trials() -> Trials {
    Trials { n: 1, seed: 42 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_trials_is_single_seeded() {
        let t = bench_trials();
        assert_eq!(t.n, 1);
        assert_eq!(t.seed, 42);
    }
}
