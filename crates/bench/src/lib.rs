//! Benchmark support: shared trial configuration and a dependency-free
//! timing harness for the per-figure benches in `benches/`.
//!
//! Each bench target regenerates one table or figure of the paper with a
//! reduced trial count, so `cargo bench` doubles as an end-to-end check
//! that every experiment still runs and as a performance baseline for the
//! simulator itself. The harness is deliberately minimal (no external
//! crates): it warms up, runs a fixed number of timed iterations, and
//! prints min/mean/max wall-clock times.

use std::time::Instant;

use experiments::harness::Trials;

/// Trials used by benches: one repetition, fixed seed.
pub fn bench_trials() -> Trials {
    Trials { n: 1, seed: 42 }
}

/// Times `f` over `iters` iterations (after one warm-up call) and prints
/// a one-line summary. Use `std::hint::black_box` inside `f` to keep the
/// optimizer honest.
pub fn run_bench(name: &str, iters: usize, mut f: impl FnMut()) {
    assert!(iters > 0, "bench needs at least one iteration");
    f(); // warm-up
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_secs_f64());
    }
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(0.0f64, f64::max);
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!("{name}: mean {mean:.4} s, min {min:.4} s, max {max:.4} s ({iters} iters)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_trials_is_single_seeded() {
        let t = bench_trials();
        assert_eq!(t.n, 1);
        assert_eq!(t.seed, 42);
    }

    #[test]
    fn run_bench_executes_the_closure() {
        let mut n = 0usize;
        run_bench("noop", 3, || n += 1);
        assert_eq!(n, 4, "warm-up plus three timed iterations");
    }
}
