//! The thread-scaling benchmark sweep behind the `bench` CLI verb.
//!
//! A sweep times each canonical scenario at several worker-thread counts
//! and reports wall-clock medians plus the speedup relative to the serial
//! (`threads = 1`) run of the same scenario. Results serialize to the
//! `bench_sweep/v2` JSON document (`BENCH_sweep.json`) that CI archives
//! as the performance baseline; [`parse_sweep_json`] still accepts the
//! older `bench_sweep/v1` layout (its scheduler-metadata fields read as
//! zero/unknown).
//!
//! Since v2 every record carries the host's available parallelism and
//! the work pool's dispatch metadata (dispatches, inline fallbacks,
//! chunks claimed, workers spawned) for the scenario, so a speedup
//! regression in `bench --check` is diagnosable from the artifact
//! alone: a scenario at 1.0x with `pool_inline_runs == pool_dispatches`
//! took the inline path (nothing to parallelize, or a 1-core host) —
//! that is a scheduling decision, not a lost race.
//!
//! Only the *measurement* lives here; the scenarios themselves are
//! defined by the caller (the experiments crate) so this crate stays
//! dependency-free. Timing uses [`Stopwatch`](crate::Stopwatch), the
//! workspace's sanctioned wall-clock source.

use crate::Stopwatch;

/// One measurement: a scenario at a worker-thread count.
#[derive(Clone, Debug, Default)]
pub struct BenchRecord {
    /// Scenario identifier (e.g. `fig2`, `goal`).
    pub scenario: String,
    /// Worker threads the scenario ran with.
    pub threads: usize,
    /// Timed repetitions behind the median (after one warm-up).
    pub reps: usize,
    /// Median wall-clock time across the repetitions, milliseconds.
    pub median_wall_ms: f64,
    /// Fastest repetition, milliseconds.
    pub min_wall_ms: f64,
    /// Serial median divided by this median (1.0 for the serial row).
    pub speedup_vs_serial: f64,
    /// Sustained work rate, units per wall second, for scenarios with a
    /// countable unit of work (the `serve` scenario reports directives
    /// issued per second); `None` elsewhere.
    pub work_per_s: Option<f64>,
    /// Hardware threads available on the measuring host (0 when the
    /// record predates `bench_sweep/v2`).
    pub host_threads: usize,
    /// Work-pool dispatches during one run of the scenario.
    pub pool_dispatches: u64,
    /// Dispatches that took the inline fallback (spawned nothing).
    pub pool_inline_runs: u64,
    /// Chunks claimed across the spawning dispatches.
    pub pool_chunks: u64,
    /// Workers spawned, summed across dispatches.
    pub pool_workers: u64,
}

impl BenchRecord {
    /// One-word scheduling summary for the human table: why this row
    /// did or did not fan out.
    pub fn sched_summary(&self) -> String {
        if self.pool_dispatches == 0 {
            // Pre-v2 record (or a scenario that never dispatched).
            "-".to_string()
        } else if self.pool_inline_runs == self.pool_dispatches {
            format!("inline x{}", self.pool_inline_runs)
        } else {
            format!("{}ch/{}w", self.pool_chunks, self.pool_workers)
        }
    }
}

/// Median of `samples` (mean of the middle pair for even counts).
pub fn median(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "median of no samples");
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// Times `f` over `reps` iterations (after one untimed warm-up) and
/// returns `(median_ms, min_ms)`.
pub fn time_reps(reps: usize, mut f: impl FnMut()) -> (f64, f64) {
    assert!(reps > 0, "bench needs at least one repetition");
    f(); // warm-up: fault in code and allocator state
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let sw = Stopwatch::start();
        f();
        samples.push(sw.elapsed_s() * 1e3);
    }
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    (median(&samples), min)
}

/// Renders records as the `bench_sweep/v2` JSON document.
///
/// Hand-rolled so the bench crate stays dependency-free; scenario names
/// are CLI identifiers (no quotes or backslashes to escape).
pub fn render_sweep_json(records: &[BenchRecord]) -> String {
    let mut out = String::from("{\n  \"schema\": \"bench_sweep/v2\",\n  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        let work = r
            .work_per_s
            .map(|w| format!(", \"directives_per_s\": {w:.1}"))
            .unwrap_or_default();
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"threads\": {}, \"reps\": {}, \
             \"median_wall_ms\": {:.3}, \"min_wall_ms\": {:.3}, \
             \"speedup_vs_serial\": {:.3}, \
             \"host_threads\": {}, \"pool_dispatches\": {}, \
             \"pool_inline_runs\": {}, \"pool_chunks\": {}, \
             \"pool_workers\": {}{work}}}{sep}\n",
            r.scenario,
            r.threads,
            r.reps,
            r.median_wall_ms,
            r.min_wall_ms,
            r.speedup_vs_serial,
            r.host_threads,
            r.pool_dispatches,
            r.pool_inline_runs,
            r.pool_chunks,
            r.pool_workers,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses a `bench_sweep/v1` *or* `/v2` document back into records —
/// the inverse of [`render_sweep_json`], hand-rolled against the same
/// line-per-record layout so the bench crate stays dependency-free.
/// v1 records carry no scheduler metadata; their v2-only fields parse
/// as zero (meaning "unknown"), which [`speedup_regressions`] never
/// compares.
pub fn parse_sweep_json(text: &str) -> Result<Vec<BenchRecord>, String> {
    if !text.contains("\"schema\": \"bench_sweep/v1\"")
        && !text.contains("\"schema\": \"bench_sweep/v2\"")
    {
        return Err("not a bench_sweep/v1 or /v2 document".to_string());
    }
    let mut records = Vec::new();
    for line in text.lines() {
        let trimmed = line.trim().trim_end_matches(',');
        if !trimmed.starts_with('{') || !trimmed.contains("\"scenario\"") {
            continue;
        }
        records.push(BenchRecord {
            scenario: str_field(trimmed, "scenario")?,
            threads: num_field(trimmed, "threads")? as usize,
            reps: num_field(trimmed, "reps")? as usize,
            median_wall_ms: num_field(trimmed, "median_wall_ms")?,
            min_wall_ms: num_field(trimmed, "min_wall_ms")?,
            speedup_vs_serial: num_field(trimmed, "speedup_vs_serial")?,
            work_per_s: num_field(trimmed, "directives_per_s").ok(),
            host_threads: num_field(trimmed, "host_threads")
                .map(|v| v as usize)
                .unwrap_or(0),
            pool_dispatches: num_field(trimmed, "pool_dispatches")
                .map(|v| v as u64)
                .unwrap_or(0),
            pool_inline_runs: num_field(trimmed, "pool_inline_runs")
                .map(|v| v as u64)
                .unwrap_or(0),
            pool_chunks: num_field(trimmed, "pool_chunks")
                .map(|v| v as u64)
                .unwrap_or(0),
            pool_workers: num_field(trimmed, "pool_workers")
                .map(|v| v as u64)
                .unwrap_or(0),
        });
    }
    if records.is_empty() {
        return Err("bench_sweep document has no records".to_string());
    }
    Ok(records)
}

fn raw_field<'a>(line: &'a str, key: &str) -> Result<&'a str, String> {
    let pat = format!("\"{key}\": ");
    let start = line
        .find(&pat)
        .ok_or_else(|| format!("missing `{key}` in record line"))?
        + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Ok(rest[..end].trim())
}

fn str_field(line: &str, key: &str) -> Result<String, String> {
    Ok(raw_field(line, key)?.trim_matches('"').to_string())
}

fn num_field(line: &str, key: &str) -> Result<f64, String> {
    let raw = raw_field(line, key)?;
    raw.parse::<f64>()
        .map_err(|e| format!("bad `{key}` value `{raw}`: {e}"))
}

/// Compares a fresh sweep against a committed baseline and returns one
/// line per regression: a `threads > 1` row whose speedup fell more
/// than `tolerance` below the baseline's, a baseline scenario that
/// silently dropped out of the sweep at a thread count the sweep did
/// measure, or a baseline scenario with *no* rows at all in the fresh
/// sweep (a whole scenario vanishing must fail even when no thread
/// counts overlap — otherwise deleting a scenario passes `--check`).
/// Baseline thread counts the fresh sweep never ran are not
/// regressions — CI sweeps a subset of the committed grid. Speedups are
/// ratios of medians taken on the same machine in the same run, so the
/// check is machine-portable — absolute wall times never participate.
/// Serial rows are skipped (their speedup is 1.0 by construction), and
/// speedups *above* baseline are never flagged.
pub fn speedup_regressions(
    current: &[BenchRecord],
    baseline: &[BenchRecord],
    tolerance: f64,
) -> Vec<String> {
    let mut out = Vec::new();
    // Whole-scenario absence first: one line per vanished scenario, in
    // baseline order, deduplicated across its thread-count rows.
    let mut missing_scenarios: Vec<&str> = Vec::new();
    for b in baseline {
        if !current.iter().any(|c| c.scenario == b.scenario)
            && !missing_scenarios.iter().any(|s| *s == b.scenario)
        {
            missing_scenarios.push(&b.scenario);
        }
    }
    for s in &missing_scenarios {
        out.push(format!("{s}: scenario absent from current sweep"));
    }
    for b in baseline {
        if b.threads <= 1
            || !current.iter().any(|c| c.threads == b.threads)
            || missing_scenarios.iter().any(|s| *s == b.scenario)
        {
            continue;
        }
        let Some(c) = current
            .iter()
            .find(|c| c.scenario == b.scenario && c.threads == b.threads)
        else {
            out.push(format!(
                "{}@{}: row missing from current sweep (baseline speedup {:.3})",
                b.scenario, b.threads, b.speedup_vs_serial
            ));
            continue;
        };
        if c.speedup_vs_serial < b.speedup_vs_serial - tolerance {
            out.push(format!(
                "{}@{}: speedup {:.3} fell more than {:.2} below baseline {:.3}",
                b.scenario, b.threads, c.speedup_vs_serial, tolerance, b.speedup_vs_serial
            ));
        }
    }
    out
}

/// Renders records as a human-readable table (stdout companion to the
/// JSON artifact).
pub fn render_sweep_table(records: &[BenchRecord]) -> String {
    let mut out = String::from(
        "Benchmark sweep (wall-clock, median over reps)\n\
         scenario     threads  median_ms      min_ms  speedup  sched            work/s\n",
    );
    for r in records {
        let work = r
            .work_per_s
            .map(|w| format!("  {w:>7.0}"))
            .unwrap_or_default();
        out.push_str(&format!(
            "{:<12} {:>7}  {:>9.1}  {:>10.1}  {:>6.2}x  {:<15}{work}\n",
            r.scenario,
            r.threads,
            r.median_wall_ms,
            r.min_wall_ms,
            r.speedup_vs_serial,
            r.sched_summary(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    fn time_reps_runs_warmup_plus_reps() {
        let mut n = 0usize;
        let (med, min) = time_reps(3, || n += 1);
        assert_eq!(n, 4);
        assert!(min >= 0.0 && med >= min);
    }

    #[test]
    fn sweep_json_is_well_formed() {
        let records = vec![
            BenchRecord {
                scenario: "fig2".into(),
                threads: 1,
                reps: 3,
                median_wall_ms: 12.5,
                min_wall_ms: 11.0,
                speedup_vs_serial: 1.0,
                work_per_s: None,
                host_threads: 8,
                pool_dispatches: 20,
                pool_inline_runs: 20,
                pool_chunks: 0,
                pool_workers: 0,
            },
            BenchRecord {
                scenario: "fig2".into(),
                threads: 4,
                reps: 3,
                median_wall_ms: 4.0,
                min_wall_ms: 3.5,
                speedup_vs_serial: 3.125,
                work_per_s: Some(1234.5),
                host_threads: 8,
                pool_dispatches: 20,
                pool_inline_runs: 2,
                pool_chunks: 90,
                pool_workers: 72,
            },
        ];
        let json = render_sweep_json(&records);
        assert!(json.contains("\"schema\": \"bench_sweep/v2\""));
        assert!(json.contains("\"scenario\": \"fig2\""));
        assert!(json.contains("\"speedup_vs_serial\": 3.125"));
        // Every record carries the scheduler metadata.
        assert_eq!(json.matches("\"host_threads\": 8").count(), 2);
        assert!(json.contains("\"pool_chunks\": 90"));
        assert!(json.contains("\"pool_workers\": 72"));
        // The work-rate field appears only on rows that measure one.
        assert!(json.contains("\"directives_per_s\": 1234.5"));
        assert_eq!(json.matches("directives_per_s").count(), 1);
        // Exactly one trailing comma between the two records.
        assert_eq!(json.matches("},\n").count(), 1);
        // Balanced braces make it parseable by any JSON reader.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn parse_round_trips_render() {
        let records = vec![
            BenchRecord {
                scenario: "fig2".into(),
                threads: 1,
                reps: 3,
                median_wall_ms: 12.5,
                min_wall_ms: 11.0,
                speedup_vs_serial: 1.0,
                work_per_s: None,
                host_threads: 4,
                pool_dispatches: 7,
                pool_inline_runs: 7,
                pool_chunks: 0,
                pool_workers: 0,
            },
            BenchRecord {
                scenario: "serve".into(),
                threads: 4,
                reps: 3,
                median_wall_ms: 4.0,
                min_wall_ms: 3.5,
                speedup_vs_serial: 3.125,
                work_per_s: Some(1234.5),
                host_threads: 4,
                pool_dispatches: 7,
                pool_inline_runs: 1,
                pool_chunks: 24,
                pool_workers: 24,
            },
        ];
        let parsed = parse_sweep_json(&render_sweep_json(&records)).expect("parse");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].scenario, "fig2");
        assert_eq!(parsed[0].threads, 1);
        assert_eq!(parsed[0].work_per_s, None);
        assert_eq!(parsed[0].host_threads, 4);
        assert_eq!(parsed[0].pool_inline_runs, 7);
        assert_eq!(parsed[1].scenario, "serve");
        assert_eq!(parsed[1].reps, 3);
        assert!((parsed[1].median_wall_ms - 4.0).abs() < 1e-9);
        assert!((parsed[1].speedup_vs_serial - 3.125).abs() < 1e-9);
        assert!((parsed[1].work_per_s.expect("rate") - 1234.5).abs() < 1e-9);
        assert_eq!(parsed[1].pool_chunks, 24);
        assert_eq!(parsed[1].pool_workers, 24);
    }

    #[test]
    fn parse_accepts_v1_documents_without_scheduler_metadata() {
        // The pre-v2 layout must keep parsing (old baselines, old CI
        // artifacts); its v2-only fields read as zero/unknown.
        let v1 = "{\n  \"schema\": \"bench_sweep/v1\",\n  \"records\": [\n    \
                  {\"scenario\": \"fig2\", \"threads\": 2, \"reps\": 3, \
                  \"median_wall_ms\": 1.765, \"min_wall_ms\": 1.694, \
                  \"speedup_vs_serial\": 1.188}\n  ]\n}\n";
        let parsed = parse_sweep_json(v1).expect("parse v1");
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].scenario, "fig2");
        assert!((parsed[0].speedup_vs_serial - 1.188).abs() < 1e-9);
        assert_eq!(parsed[0].host_threads, 0);
        assert_eq!(parsed[0].pool_dispatches, 0);
        assert_eq!(parsed[0].sched_summary(), "-");
    }

    #[test]
    fn parse_rejects_foreign_and_empty_documents() {
        assert!(parse_sweep_json("{\"schema\": \"other/v1\"}").is_err());
        assert!(parse_sweep_json("{\"schema\": \"bench_sweep/v3\"}").is_err());
        assert!(parse_sweep_json(
            "{\n  \"schema\": \"bench_sweep/v2\",\n  \"records\": [\n  ]\n}\n"
        )
        .is_err());
        // A mangled numeric field is an error, not a silent zero.
        let bad = "{\"schema\": \"bench_sweep/v2\"}\n{\"scenario\": \"x\", \"threads\": no}\n";
        assert!(parse_sweep_json(bad).is_err());
    }

    fn row(scenario: &str, threads: usize, speedup: f64) -> BenchRecord {
        BenchRecord {
            scenario: scenario.into(),
            threads,
            reps: 3,
            median_wall_ms: 10.0,
            min_wall_ms: 9.0,
            speedup_vs_serial: speedup,
            ..BenchRecord::default()
        }
    }

    #[test]
    fn regressions_flag_only_real_speedup_drops() {
        let baseline = vec![
            row("fig2", 1, 1.0),
            row("fig2", 4, 2.0),
            row("goal", 4, 1.0),
        ];
        // Within tolerance, above baseline, and serial rows: all clean.
        let ok = vec![
            row("fig2", 1, 0.2),
            row("fig2", 4, 1.8),
            row("goal", 4, 1.4),
        ];
        assert!(speedup_regressions(&ok, &baseline, 0.30).is_empty());
        // A drop past the band is flagged with both numbers.
        let slow = vec![row("fig2", 4, 1.5), row("goal", 4, 0.9)];
        let r = speedup_regressions(&slow, &baseline, 0.30);
        assert_eq!(r.len(), 1, "{r:?}");
        assert!(r[0].contains("fig2@4"), "{}", r[0]);
        assert!(r[0].contains("1.500"), "{}", r[0]);
        assert!(r[0].contains("2.000"), "{}", r[0]);
    }

    #[test]
    fn regressions_flag_missing_rows() {
        // A scenario that dropped out of the sweep entirely is flagged
        // exactly once (not once per baseline thread count)…
        let baseline = vec![row("fig2", 1, 1.0), row("fig2", 4, 2.0)];
        let current = vec![row("goal", 4, 1.0)];
        let r = speedup_regressions(&current, &baseline, 0.30);
        assert_eq!(r.len(), 1, "{r:?}");
        assert!(r[0].contains("absent"), "{}", r[0]);
        // …but a thread count the sweep never ran is not — CI sweeps a
        // subset of the committed grid.
        let narrow = vec![row("fig2", 2, 1.1)];
        assert!(speedup_regressions(&narrow, &baseline, 0.30).is_empty());
    }

    #[test]
    fn regressions_flag_absent_scenario_even_without_thread_overlap() {
        // Regression fix: a whole scenario vanishing from the fresh
        // sweep must fail --check even when the sweep measured none of
        // the baseline's thread counts for it. The old detector scoped
        // the absence check to measured thread counts, so deleting a
        // scenario while sweeping a disjoint thread set passed.
        let baseline = vec![row("serve", 1, 1.0), row("serve", 8, 1.2)];
        let current = vec![row("fig2", 2, 1.1)];
        let r = speedup_regressions(&current, &baseline, 0.30);
        assert_eq!(r.len(), 1, "{r:?}");
        assert!(r[0].starts_with("serve:"), "{}", r[0]);
        assert!(r[0].contains("absent"), "{}", r[0]);
        // A per-(scenario, threads) row dropping out while the scenario
        // survives elsewhere is still reported, as before.
        let baseline = vec![row("fig2", 2, 1.1), row("fig2", 4, 1.3)];
        let current = vec![row("fig2", 2, 1.1), row("goal", 4, 1.0)];
        let r = speedup_regressions(&current, &baseline, 0.30);
        assert_eq!(r.len(), 1, "{r:?}");
        assert!(r[0].contains("fig2@4"), "{}", r[0]);
        assert!(r[0].contains("row missing"), "{}", r[0]);
    }

    #[test]
    fn committed_baseline_artifact_parses() {
        // The repo's committed baseline must stay parseable — CI hands
        // it to `bench --check`.
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results/BENCH_sweep.json"
        );
        let text = std::fs::read_to_string(path).expect("read committed baseline");
        let records = parse_sweep_json(&text).expect("parse committed baseline");
        assert!(records.len() >= 20, "got {} records", records.len());
        assert!(records
            .iter()
            .any(|r| r.scenario == "serve" && r.work_per_s.is_some()));
        // The committed baseline is v2: every record says what host it
        // was measured on and what the scheduler did.
        assert!(records.iter().all(|r| r.host_threads >= 1));
        assert!(records.iter().any(|r| r.pool_dispatches > 0));
    }

    #[test]
    fn sweep_table_lists_every_record() {
        let records = vec![BenchRecord {
            scenario: "goal".into(),
            threads: 2,
            reps: 5,
            median_wall_ms: 100.0,
            min_wall_ms: 90.0,
            speedup_vs_serial: 1.9,
            work_per_s: None,
            host_threads: 2,
            pool_dispatches: 3,
            pool_inline_runs: 3,
            pool_chunks: 0,
            pool_workers: 0,
        }];
        let table = render_sweep_table(&records);
        assert!(table.contains("goal"));
        assert!(table.contains("1.90x"));
        // The sched column explains rows that did not fan out.
        assert!(table.contains("inline x3"), "{table}");
    }
}
