//! The thread-scaling benchmark sweep behind the `bench` CLI verb.
//!
//! A sweep times each canonical scenario at several worker-thread counts
//! and reports wall-clock medians plus the speedup relative to the serial
//! (`threads = 1`) run of the same scenario. Results serialize to the
//! `bench_sweep/v1` JSON document (`BENCH_sweep.json`) that CI archives
//! as the performance baseline.
//!
//! Only the *measurement* lives here; the scenarios themselves are
//! defined by the caller (the experiments crate) so this crate stays
//! dependency-free. Timing uses [`Stopwatch`](crate::Stopwatch), the
//! workspace's sanctioned wall-clock source.

use crate::Stopwatch;

/// One measurement: a scenario at a worker-thread count.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Scenario identifier (e.g. `fig2`, `goal`).
    pub scenario: String,
    /// Worker threads the scenario ran with.
    pub threads: usize,
    /// Timed repetitions behind the median (after one warm-up).
    pub reps: usize,
    /// Median wall-clock time across the repetitions, milliseconds.
    pub median_wall_ms: f64,
    /// Fastest repetition, milliseconds.
    pub min_wall_ms: f64,
    /// Serial median divided by this median (1.0 for the serial row).
    pub speedup_vs_serial: f64,
    /// Sustained work rate, units per wall second, for scenarios with a
    /// countable unit of work (the `serve` scenario reports directives
    /// issued per second); `None` elsewhere.
    pub work_per_s: Option<f64>,
}

/// Median of `samples` (mean of the middle pair for even counts).
pub fn median(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "median of no samples");
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// Times `f` over `reps` iterations (after one untimed warm-up) and
/// returns `(median_ms, min_ms)`.
pub fn time_reps(reps: usize, mut f: impl FnMut()) -> (f64, f64) {
    assert!(reps > 0, "bench needs at least one repetition");
    f(); // warm-up: fault in code and allocator state
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let sw = Stopwatch::start();
        f();
        samples.push(sw.elapsed_s() * 1e3);
    }
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    (median(&samples), min)
}

/// Renders records as the `bench_sweep/v1` JSON document.
///
/// Hand-rolled so the bench crate stays dependency-free; scenario names
/// are CLI identifiers (no quotes or backslashes to escape).
pub fn render_sweep_json(records: &[BenchRecord]) -> String {
    let mut out = String::from("{\n  \"schema\": \"bench_sweep/v1\",\n  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        let work = r
            .work_per_s
            .map(|w| format!(", \"directives_per_s\": {w:.1}"))
            .unwrap_or_default();
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"threads\": {}, \"reps\": {}, \
             \"median_wall_ms\": {:.3}, \"min_wall_ms\": {:.3}, \
             \"speedup_vs_serial\": {:.3}{work}}}{sep}\n",
            r.scenario, r.threads, r.reps, r.median_wall_ms, r.min_wall_ms, r.speedup_vs_serial,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders records as a human-readable table (stdout companion to the
/// JSON artifact).
pub fn render_sweep_table(records: &[BenchRecord]) -> String {
    let mut out = String::from(
        "Benchmark sweep (wall-clock, median over reps)\n\
         scenario     threads  median_ms      min_ms  speedup  work/s\n",
    );
    for r in records {
        let work = r
            .work_per_s
            .map(|w| format!("  {w:>7.0}"))
            .unwrap_or_default();
        out.push_str(&format!(
            "{:<12} {:>7}  {:>9.1}  {:>10.1}  {:>6.2}x{work}\n",
            r.scenario, r.threads, r.median_wall_ms, r.min_wall_ms, r.speedup_vs_serial,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[7.0]), 7.0);
    }

    #[test]
    fn time_reps_runs_warmup_plus_reps() {
        let mut n = 0usize;
        let (med, min) = time_reps(3, || n += 1);
        assert_eq!(n, 4);
        assert!(min >= 0.0 && med >= min);
    }

    #[test]
    fn sweep_json_is_well_formed() {
        let records = vec![
            BenchRecord {
                scenario: "fig2".into(),
                threads: 1,
                reps: 3,
                median_wall_ms: 12.5,
                min_wall_ms: 11.0,
                speedup_vs_serial: 1.0,
                work_per_s: None,
            },
            BenchRecord {
                scenario: "fig2".into(),
                threads: 4,
                reps: 3,
                median_wall_ms: 4.0,
                min_wall_ms: 3.5,
                speedup_vs_serial: 3.125,
                work_per_s: Some(1234.5),
            },
        ];
        let json = render_sweep_json(&records);
        assert!(json.contains("\"schema\": \"bench_sweep/v1\""));
        assert!(json.contains("\"scenario\": \"fig2\""));
        assert!(json.contains("\"speedup_vs_serial\": 3.125"));
        // The work-rate field appears only on rows that measure one.
        assert!(json.contains("\"directives_per_s\": 1234.5"));
        assert_eq!(json.matches("directives_per_s").count(), 1);
        // Exactly one trailing comma between the two records.
        assert_eq!(json.matches("},\n").count(), 1);
        // Balanced braces make it parseable by any JSON reader.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn sweep_table_lists_every_record() {
        let records = vec![BenchRecord {
            scenario: "goal".into(),
            threads: 2,
            reps: 5,
            median_wall_ms: 100.0,
            min_wall_ms: 90.0,
            speedup_vs_serial: 1.9,
            work_per_s: None,
        }];
        let table = render_sweep_table(&records);
        assert!(table.contains("goal"));
        assert!(table.contains("1.90x"));
    }
}
