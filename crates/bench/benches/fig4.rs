//! Regenerates the paper's Figure 4 table as a plain timing benchmark.

fn main() {
    bench::run_bench("fig4", 20, || {
        std::hint::black_box(experiments::fig4::run());
    });
}
