//! Regenerates the paper's Figure 4 (platform power table) as a
//! benchmark.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    c.bench_function("fig4/run", |b| {
        b.iter(|| std::hint::black_box(experiments::fig4::run()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
