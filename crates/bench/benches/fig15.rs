//! Regenerates the paper's Figure 15 experiment as a plain timing benchmark: one
//! reduced-trial run of the experiment per iteration.

fn main() {
    let trials = experiments::harness::Trials::single();
    bench::run_bench("fig15", 5, || {
        std::hint::black_box(experiments::fig15::run(&trials));
    });
}
