//! Regenerates the paper's Figure 20 experiment as a plain timing benchmark: one
//! reduced-trial run of the experiment per iteration.

fn main() {
    let trials = experiments::harness::Trials::single();
    bench::run_bench("fig20", 5, || {
        std::hint::black_box(experiments::fig20::run(&trials));
    });
}
