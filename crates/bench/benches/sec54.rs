//! Regenerates the paper's Section 5.4 experiment as a plain timing benchmark: one
//! reduced-trial run of the experiment per iteration.

fn main() {
    let trials = experiments::harness::Trials::single();
    bench::run_bench("sec54", 5, || {
        std::hint::black_box(experiments::sec54::run(&trials));
    });
}
