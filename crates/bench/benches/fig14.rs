//! Regenerates the paper's Figure 14 experiment as a plain timing benchmark: one
//! reduced-trial run of the experiment per iteration.

fn main() {
    let trials = experiments::harness::Trials::single();
    bench::run_bench("fig14", 5, || {
        std::hint::black_box(experiments::fig14::run(&trials));
    });
}
