//! Regenerates the paper's headline savings summary as a plain timing benchmark: one
//! reduced-trial run of the experiment per iteration.

fn main() {
    let trials = experiments::harness::Trials::single();
    bench::run_bench("headline", 5, || {
        std::hint::black_box(experiments::headline::run(&trials));
    });
}
