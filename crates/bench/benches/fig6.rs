//! Regenerates the paper's Figure 6 (video fidelity) as a benchmark: one reduced-trial run of
//! the experiment per iteration.

use bench::bench_trials;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let trials = bench_trials();
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("run", |b| {
        b.iter(|| std::hint::black_box(experiments::fig6::run(&trials)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
