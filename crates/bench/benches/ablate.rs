//! Regenerates the paper's controller ablations as a plain timing benchmark: one
//! reduced-trial run of the experiment per iteration.

fn main() {
    let trials = experiments::harness::Trials::single();
    bench::run_bench("ablate", 5, || {
        std::hint::black_box(experiments::ablate::run(&trials));
    });
}
