//! Regenerates the paper's Figure 22 experiment as a plain timing benchmark: one
//! reduced-trial run of the experiment per iteration.

fn main() {
    let trials = experiments::harness::Trials::single();
    bench::run_bench("fig22", 5, || {
        std::hint::black_box(experiments::fig22::run(&trials));
    });
}
