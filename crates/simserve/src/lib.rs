#![forbid(unsafe_code)]
//! Always-on serving mode for the energy-adaptation control plane.
//!
//! The paper's viceroy is a long-lived OS component, not a batch job.
//! This crate packages the goal controller and [`odyssey::Supervisor`]
//! behind a harness-independent step API — [`Session::ingest`] — so the
//! same engine can be driven by an experiment harness, a replayed golden
//! trace, or an interactive operator, with three robustness contracts:
//!
//! - **Killable.** A serving session records periodic checkpoints into a
//!   [`RunJournal`]. Because the simulation is deterministic, resume is
//!   replay: rebuild the identical rig, feed the identical sample stream,
//!   and verify the journaled digest at the salvage point. Crashing at
//!   *any* checkpoint boundary loses nothing.
//! - **Reconfigurable.** Goal, budget, horizon, quarantine, and re-admit
//!   commands arrive as [`Sample`]s mid-session. Every command is
//!   validated and journaled as a first-class simtrace event
//!   (`reconfig_applied` / `reconfig_rejected`) before it touches the
//!   machine, so a reconfigured run replays exactly like it ran.
//! - **Unpanickable at the edge.** Malformed or out-of-order input is
//!   rejected-and-traced into a bounded [`DeadLetterLedger`], never a
//!   panic. A flood of dead letters attributable to one process
//!   escalates into the Supervisor's existing strike ladder.
//!
//! Batch harnesses use [`Session::adopt`], which wraps a fully-built
//! machine without adding hooks: identical event timeline, identical
//! traces, but every run goes through the one service API.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::rc::Rc;

use machine::{CheckpointHook, ControlHook, Machine, MachineView, RunReport};
use odyssey::{GoalHandle, SupervisorHandle};
use simcore::{
    Checkpoint, RunJournal, SimDuration, SimTime, SnapshotError, SnapshotReader, SnapshotWriter,
    TraceEvent, TraceHandle,
};

mod server;
pub use server::{run_fleet, FleetOutcome, FleetSpec, Server, SessionHealth, SlotStats};

/// Service-layer failure. Every state-changing entry point returns
/// `Result<_, ServeError>`: the service never panics on caller input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// A [`SessionConfig`] field failed validation at construction.
    InvalidConfig(&'static str),
    /// The session already ran to its horizon (or the machine stopped);
    /// no further stepping is possible.
    Finished,
    /// The operation needs a serving session ([`Session::serve`]); this
    /// session was built with [`Session::adopt`].
    NotServing,
    /// The server is at its admission bound; no further sessions.
    AdmissionFull,
    /// No session occupies this server slot.
    UnknownSession,
    /// The session faulted on this input batch and was rolled back to
    /// its last good state; the batch was rejected, siblings untouched.
    Faulted,
    /// The session faulted and could not be restored; the slot refuses
    /// all further input.
    Quarantined,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::InvalidConfig(what) => write!(f, "invalid session config: {what}"),
            ServeError::Finished => write!(f, "session already finished"),
            ServeError::NotServing => write!(f, "session was adopted, not served"),
            ServeError::AdmissionFull => write!(f, "server admission bound reached"),
            ServeError::UnknownSession => write!(f, "no session in this slot"),
            ServeError::Faulted => write!(f, "session faulted; rolled back to last good state"),
            ServeError::Quarantined => write!(f, "session quarantined; restore failed"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Configuration for a serving session.
#[derive(Clone, Copy, Debug)]
pub struct SessionConfig {
    /// Checkpoint cadence: a digest proof point every K sim-seconds.
    pub checkpoint_every: SimDuration,
    /// Hard end of the session's timeline; samples beyond it are
    /// dead-lettered and [`Session::finish`] runs to exactly here.
    pub horizon: SimTime,
    /// Bounded capacity of the dead-letter ledger; older entries are
    /// dropped (and counted) past this.
    pub dead_letter_capacity: usize,
    /// Period of the actuator hook that applies quarantine/re-admit
    /// commands inside the event loop.
    pub actuation_period: SimDuration,
    /// Dead letters attributable to one process before the service posts
    /// an external strike to the Supervisor ladder.
    pub escalate_after: u64,
}

impl SessionConfig {
    /// Serving defaults: 30 s checkpoints, 500 ms actuation, a 64-entry
    /// dead-letter ledger, escalation after 8 dead letters per process.
    pub fn standard(horizon: SimTime) -> SessionConfig {
        SessionConfig {
            checkpoint_every: SimDuration::from_secs(30),
            horizon,
            dead_letter_capacity: 64,
            actuation_period: SimDuration::from_millis(500),
            escalate_after: 8,
        }
    }

    fn validate(&self) -> Result<(), ServeError> {
        if self.checkpoint_every.is_zero() {
            return Err(ServeError::InvalidConfig("checkpoint_every is zero"));
        }
        if self.horizon == SimTime::ZERO {
            return Err(ServeError::InvalidConfig("horizon is zero"));
        }
        if self.dead_letter_capacity == 0 {
            return Err(ServeError::InvalidConfig("dead_letter_capacity is zero"));
        }
        if self.actuation_period.is_zero() {
            return Err(ServeError::InvalidConfig("actuation_period is zero"));
        }
        if self.escalate_after == 0 {
            return Err(ServeError::InvalidConfig("escalate_after is zero"));
        }
        Ok(())
    }
}

/// A live reconfiguration command, carried by a [`Sample`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ReconfigCommand {
    /// Move the goal deadline to `ZERO + duration` (§5.4's
    /// longer-duration goals, applied dynamically).
    Goal(SimDuration),
    /// Replace the controller's energy budget, J.
    BudgetJ(f64),
    /// Move the session horizon.
    Horizon(SimTime),
    /// Quarantine the process with this machine index.
    Quarantine(usize),
    /// Re-admit (restart) the quarantined process with this index.
    Readmit(usize),
}

/// Payload of one input sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SampleKind {
    /// Advance the event loop to the sample's timestamp.
    Tick,
    /// Advance, then apply a reconfiguration command.
    Reconfig(ReconfigCommand),
}

/// One unit of session input: a timestamp (fractional seconds, validated
/// — `NaN`/negative/out-of-order input is dead-lettered, not trusted), a
/// payload, and an optional originating process index for dead-letter
/// attribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sample {
    /// Timestamp in seconds since session start. Deliberately a raw
    /// `f64`: external feeds are untrusted and validation is the
    /// session's job.
    pub at_s: f64,
    /// What to do at that instant.
    pub kind: SampleKind,
    /// Process index blamed for a malformed sample, if known.
    pub origin: Option<usize>,
}

impl Sample {
    /// A plain clock-advance sample.
    pub fn tick(at_s: f64) -> Sample {
        Sample {
            at_s,
            kind: SampleKind::Tick,
            origin: None,
        }
    }

    /// A reconfiguration sample.
    pub fn reconfig(at_s: f64, cmd: ReconfigCommand) -> Sample {
        Sample {
            at_s,
            kind: SampleKind::Reconfig(cmd),
            origin: None,
        }
    }

    /// Attributes this sample to a process index for dead-letter
    /// accounting and escalation.
    pub fn from_origin(mut self, pid_index: usize) -> Sample {
        self.origin = Some(pid_index);
        self
    }
}

/// One output of [`Session::ingest`]: everything the control plane did
/// while the clock advanced, in time order.
#[derive(Clone, Debug, PartialEq)]
pub enum Directive {
    /// A workload's fidelity level changed.
    Fidelity {
        /// Instant of the change.
        at: SimTime,
        /// Process id (machine index).
        pid: u64,
        /// `"up"` or `"down"`.
        direction: &'static str,
        /// New fidelity level (0 = highest fidelity).
        level: u64,
    },
    /// A datapath clamp factor was applied to a process.
    Clamp {
        /// Instant of the clamp.
        at: SimTime,
        /// Process id.
        pid: u64,
        /// Multiplier in (0, 1].
        factor: f64,
    },
    /// A process was quarantined (suspended).
    Quarantined {
        /// Instant of the suspension.
        at: SimTime,
        /// Process id.
        pid: u64,
    },
    /// A quarantined process was restarted.
    Restarted {
        /// Instant of the restart.
        at: SimTime,
        /// Process id.
        pid: u64,
    },
    /// The goal controller found the goal infeasible at lowest fidelity.
    GoalInfeasible {
        /// Instant of the verdict.
        at: SimTime,
    },
    /// The finite energy supply ran out.
    SupplyExhausted {
        /// Instant of exhaustion.
        at: SimTime,
        /// Energy left (≈ 0), J.
        residual_j: f64,
    },
    /// A reconfiguration command was accepted and applied.
    ReconfigApplied {
        /// Instant of application.
        at: SimTime,
        /// Command kind (`"goal"`, `"budget"`, `"horizon"`,
        /// `"quarantine"`, `"readmit"`).
        kind: &'static str,
        /// Command argument (seconds, joules, or process index).
        value: f64,
    },
    /// A reconfiguration command was rejected by validation.
    ReconfigRejected {
        /// Instant of rejection.
        at: SimTime,
        /// Command kind.
        kind: &'static str,
        /// Validation failure.
        reason: &'static str,
    },
    /// A malformed input sample was dead-lettered.
    DeadLettered {
        /// Instant of rejection (the session cursor).
        at: SimTime,
        /// Why the sample was rejected.
        reason: &'static str,
    },
    /// The journal recorded a checkpoint proof point.
    Checkpointed {
        /// Checkpoint sequence number.
        seq: u64,
        /// Instant the digest was taken.
        at: SimTime,
        /// Digest of the full live state.
        digest: u64,
    },
}

impl Directive {
    /// Instant the directive happened — the merge key for time-ordering.
    pub fn at(&self) -> SimTime {
        match *self {
            Directive::Fidelity { at, .. }
            | Directive::Clamp { at, .. }
            | Directive::Quarantined { at, .. }
            | Directive::Restarted { at, .. }
            | Directive::GoalInfeasible { at }
            | Directive::SupplyExhausted { at, .. }
            | Directive::ReconfigApplied { at, .. }
            | Directive::ReconfigRejected { at, .. }
            | Directive::DeadLettered { at, .. }
            | Directive::Checkpointed { at, .. } => at,
        }
    }
}

/// One rejected input sample, as kept by the bounded ledger.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeadLetter {
    /// The sample's claimed timestamp (may be garbage — that is often
    /// why it is here).
    pub at_s: f64,
    /// Why it was rejected.
    pub reason: &'static str,
    /// Originating process index, if the sample carried one.
    pub origin: Option<usize>,
}

/// Bounded FIFO of rejected samples. Past capacity the oldest entry is
/// dropped and counted — the ledger never grows without bound, and the
/// totals never lie.
#[derive(Clone, Debug, Default)]
pub struct DeadLetterLedger {
    entries: VecDeque<DeadLetter>,
    capacity: usize,
    total: u64,
    dropped: u64,
}

impl DeadLetterLedger {
    fn new(capacity: usize) -> DeadLetterLedger {
        DeadLetterLedger {
            entries: VecDeque::new(),
            capacity,
            total: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, letter: DeadLetter) -> u64 {
        self.total += 1;
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(letter);
        self.total
    }

    /// Retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &DeadLetter> {
        self.entries.iter()
    }

    /// Dead letters recorded over the session's lifetime.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Entries evicted to respect the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained entry count — never exceeds [`DeadLetterLedger::capacity`].
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// A quarantine/re-admit request queued for the actuator hook.
#[derive(Clone, Copy, Debug)]
enum Actuation {
    Quarantine(usize),
    Readmit(usize),
}

/// Control hook that applies queued quarantine/re-admit commands at its
/// tick, inside the event loop — so actuation lands at a deterministic
/// instant regardless of how the sample stream is batched.
struct ServiceHook {
    inbox: Rc<RefCell<VecDeque<Actuation>>>,
}

impl ControlHook for ServiceHook {
    fn on_tick(&mut self, _now: SimTime, view: &mut MachineView<'_>) {
        loop {
            let next = self.inbox.borrow_mut().pop_front();
            let Some(act) = next else { break };
            let (kind, idx) = match act {
                Actuation::Quarantine(i) => ("quarantine", i),
                Actuation::Readmit(i) => ("readmit", i),
            };
            let Some(info) = view.processes().into_iter().find(|p| p.pid.index() == idx) else {
                view.emit_trace(TraceEvent::ReconfigRejected {
                    kind,
                    reason: "unknown_pid",
                });
                continue;
            };
            let verdict = match act {
                Actuation::Quarantine(_) if info.suspended => Err("already_quarantined"),
                Actuation::Quarantine(_) => {
                    if view.suspend(info.pid) {
                        Ok(())
                    } else {
                        Err("stale")
                    }
                }
                Actuation::Readmit(_) if !info.suspended => Err("not_quarantined"),
                Actuation::Readmit(_) => {
                    if view.restart(info.pid) {
                        Ok(())
                    } else {
                        Err("stale")
                    }
                }
            };
            match verdict {
                Ok(()) => view.emit_trace(TraceEvent::ReconfigApplied {
                    kind,
                    value: idx as f64,
                }),
                Err(reason) => view.emit_trace(TraceEvent::ReconfigRejected { kind, reason }),
            }
        }
    }

    fn freeze(&self, w: &mut simcore::SnapshotWriter) -> Result<(), simcore::SnapshotError> {
        let inbox = self.inbox.borrow();
        w.put_usize(inbox.len());
        for act in inbox.iter() {
            match act {
                Actuation::Quarantine(i) => {
                    w.put_u64(0);
                    w.put_usize(*i);
                }
                Actuation::Readmit(i) => {
                    w.put_u64(1);
                    w.put_usize(*i);
                }
            }
        }
        Ok(())
    }

    fn thaw(&mut self, r: &mut simcore::SnapshotReader<'_>) -> Result<(), simcore::SnapshotError> {
        let n = r.take_usize()?;
        let mut inbox = VecDeque::new();
        for _ in 0..n {
            inbox.push_back(match r.take_u64()? {
                0 => Actuation::Quarantine(r.take_usize()?),
                1 => Actuation::Readmit(r.take_usize()?),
                _ => return Err(simcore::SnapshotError::Corrupt("actuation tag")),
            });
        }
        *self.inbox.borrow_mut() = inbox;
        Ok(())
    }
}

/// The serving half of a [`Session`]: everything that exists only when
/// the session was built with [`Session::serve`].
struct Serving {
    cfg: SessionConfig,
    journal: Rc<RefCell<RunJournal>>,
    trace: TraceHandle,
    inbox: Rc<RefCell<VecDeque<Actuation>>>,
    goal: Option<GoalHandle>,
    supervisor: Option<SupervisorHandle>,
    dead: DeadLetterLedger,
    dead_by_origin: BTreeMap<usize, u64>,
    /// First trace seq not yet turned into a directive.
    next_seq: u64,
    /// First journal index not yet turned into a directive.
    next_ckpt: usize,
}

/// A long-lived control-plane session around one deterministic machine.
///
/// Built either with [`Session::serve`] (the always-on mode: checkpoints,
/// live reconfiguration, dead-letter ledger) or [`Session::adopt`] (batch
/// mode: the harness path, byte-identical to driving the machine
/// directly). All stepping goes through `Result` — the service layer
/// refuses, it does not panic.
pub struct Session {
    machine: Machine,
    cursor: SimTime,
    stopped: bool,
    finished: bool,
    serving: Option<Serving>,
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("cursor", &self.cursor)
            .field("stopped", &self.stopped)
            .field("finished", &self.finished)
            .field("serving", &self.serving.is_some())
            .finish_non_exhaustive()
    }
}

impl Session {
    /// Wraps a fully-built machine in serving mode: attaches the
    /// checkpoint and actuator hooks, shares the trace, and returns a
    /// session ready for [`Session::ingest`].
    ///
    /// The caller builds the rig (processes, goal-controller hook,
    /// supervisor hook) exactly as for a batch run, then hands it over
    /// *before* running. `goal` enables goal/budget reconfiguration;
    /// `supervisor` enables dead-letter escalation.
    pub fn serve(
        mut machine: Machine,
        goal: Option<GoalHandle>,
        supervisor: Option<SupervisorHandle>,
        trace: TraceHandle,
        cfg: SessionConfig,
    ) -> Result<Session, ServeError> {
        cfg.validate()?;
        machine.set_trace(trace.clone());
        let journal = Rc::new(RefCell::new(RunJournal::new(cfg.checkpoint_every)));
        machine.add_hook(
            cfg.checkpoint_every,
            Box::new(CheckpointHook::new(journal.clone())),
        );
        let inbox = Rc::new(RefCell::new(VecDeque::new()));
        machine.add_hook(
            cfg.actuation_period,
            Box::new(ServiceHook {
                inbox: inbox.clone(),
            }),
        );
        let dead = DeadLetterLedger::new(cfg.dead_letter_capacity);
        Ok(Session {
            machine,
            cursor: SimTime::ZERO,
            stopped: false,
            finished: false,
            serving: Some(Serving {
                cfg,
                journal,
                trace,
                inbox,
                goal,
                supervisor,
                dead,
                dead_by_origin: BTreeMap::new(),
                next_seq: 0,
                next_ckpt: 0,
            }),
        })
    }

    /// Wraps a fully-built machine in batch mode: no hooks are added and
    /// no trace is required, so the event timeline is exactly what the
    /// machine would produce on its own. This is the harness path — one
    /// API, zero behavioural drift.
    pub fn adopt(machine: Machine) -> Result<Session, ServeError> {
        Ok(Session {
            machine,
            cursor: SimTime::ZERO,
            stopped: false,
            finished: false,
            serving: None,
        })
    }

    /// Feeds a batch of input samples and returns every directive the
    /// control plane issued while the clock advanced, in time order.
    ///
    /// Each valid sample advances the event loop to its timestamp and
    /// then applies its payload. Malformed samples (non-finite or
    /// negative timestamps, out-of-order arrivals, input after the
    /// machine stopped or beyond the horizon) are dead-lettered and
    /// traced — never a panic, and never a silent drop. Serving mode
    /// only.
    pub fn ingest(&mut self, samples: &[Sample]) -> Result<Vec<Directive>, ServeError> {
        if self.serving.is_none() {
            return Err(ServeError::NotServing);
        }
        if self.finished {
            return Err(ServeError::Finished);
        }
        for sample in samples {
            self.ingest_one(sample);
        }
        Ok(match self.serving.as_mut() {
            Some(serving) => serving.drain_directives(),
            None => Vec::new(),
        })
    }

    /// Runs the session to its configured horizon and returns the final
    /// report. Serving mode only; the session is finished afterwards.
    pub fn finish(&mut self) -> Result<RunReport, ServeError> {
        let Some(serving) = self.serving.as_ref() else {
            return Err(ServeError::NotServing);
        };
        if self.finished {
            return Err(ServeError::Finished);
        }
        let horizon = serving.cfg.horizon;
        let report = self.machine.run_until(horizon);
        self.cursor = horizon;
        self.finished = true;
        Ok(report)
    }

    /// Batch mode: runs the wrapped machine to completion (every process
    /// done or the supply exhausted).
    pub fn run_to_completion(&mut self) -> Result<RunReport, ServeError> {
        if self.finished {
            return Err(ServeError::Finished);
        }
        let report = self.machine.run();
        self.cursor = report.end;
        self.finished = true;
        Ok(report)
    }

    /// Batch mode: runs the wrapped machine up to `horizon`. Re-entrant —
    /// call again with a later horizon to continue the same timeline.
    pub fn run_until(&mut self, horizon: SimTime) -> Result<RunReport, ServeError> {
        if self.finished {
            return Err(ServeError::Finished);
        }
        let report = self.machine.run_until(horizon);
        if report.end < horizon {
            self.stopped = true;
        }
        self.cursor = horizon.max(self.cursor);
        Ok(report)
    }

    /// 64-bit digest of the machine's live state — the checkpoint/resume
    /// proof token.
    pub fn digest(&self) -> u64 {
        self.machine.state_digest()
    }

    /// Encodes the session's full mutable state — machine, hooks,
    /// journal, ledgers, trace counters — into a self-verifying binary
    /// snapshot. Restoring it with [`Session::thaw`] resumes in O(state)
    /// instead of replaying the whole sample stream.
    ///
    /// Fails with [`SnapshotError::Unsupported`] when any attached
    /// workload or hook lacks a freeze implementation; callers fall back
    /// to replay-based resume.
    pub fn freeze(&self) -> Result<Vec<u8>, SnapshotError> {
        let mut w = SnapshotWriter::new();
        w.put_time(self.cursor);
        w.put_bool(self.stopped);
        w.put_bool(self.finished);
        w.put_bool(self.serving.is_some());
        if let Some(s) = &self.serving {
            // Only the horizon is mutable config (live reconfig).
            w.put_time(s.cfg.horizon);
            s.trace.freeze_counters_into(&mut w);
            w.put_u64(s.dead.total);
            w.put_u64(s.dead.dropped);
            w.put_usize(s.dead.entries.len());
            for letter in &s.dead.entries {
                w.put_f64(letter.at_s);
                w.put_str(letter.reason);
                w.put_opt_u64(letter.origin.map(|o| o as u64));
            }
            w.put_usize(s.dead_by_origin.len());
            for (origin, count) in &s.dead_by_origin {
                w.put_usize(*origin);
                w.put_u64(*count);
            }
            w.put_u64(s.next_seq);
            w.put_usize(s.next_ckpt);
        }
        self.machine.freeze(&mut w)?;
        // Trailing self-check: thaw recomputes the digest and refuses a
        // decode that is well-formed but semantically wrong.
        w.put_u64(self.machine.state_digest());
        Ok(w.seal())
    }

    /// Restores a snapshot taken by [`Session::freeze`] onto this
    /// freshly-built session. The session must have been rebuilt from
    /// the *identical* configuration (same rig builder, same seed, same
    /// [`SessionConfig`]); construction-time state is not in the
    /// snapshot.
    ///
    /// On any error the session is left partially mutated — discard it
    /// and fall back to replay. Corruption (flipped bits, truncation,
    /// version skew) is detected by the envelope checksum, field
    /// validation, or the trailing digest self-check; none of these
    /// paths panic.
    pub fn thaw(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut r = SnapshotReader::open(bytes)?;
        let cursor = r.take_time()?;
        let stopped = r.take_bool()?;
        let finished = r.take_bool()?;
        let was_serving = r.take_bool()?;
        if was_serving != self.serving.is_some() {
            return Err(SnapshotError::Corrupt("serving mode mismatch"));
        }
        if let Some(s) = self.serving.as_mut() {
            let horizon = r.take_time()?;
            s.trace.restore_counters_from(&mut r)?;
            let total = r.take_u64()?;
            let dropped = r.take_u64()?;
            let n = r.take_usize()?;
            if n > s.cfg.dead_letter_capacity {
                return Err(SnapshotError::Corrupt("dead-letter ledger overflow"));
            }
            if dropped.checked_add(n as u64) != Some(total) {
                return Err(SnapshotError::Corrupt("dead-letter totals inconsistent"));
            }
            let mut entries = VecDeque::with_capacity(n);
            for _ in 0..n {
                let at_s = r.take_f64()?;
                let reason = r.take_static_str()?;
                let origin = match r.take_opt_u64()? {
                    Some(o) => Some(
                        usize::try_from(o)
                            .map_err(|_| SnapshotError::Corrupt("dead-letter origin"))?,
                    ),
                    None => None,
                };
                entries.push_back(DeadLetter {
                    at_s,
                    reason,
                    origin,
                });
            }
            let by_origin_len = r.take_usize()?;
            let mut dead_by_origin = BTreeMap::new();
            for _ in 0..by_origin_len {
                let origin = r.take_usize()?;
                let count = r.take_u64()?;
                if dead_by_origin.insert(origin, count).is_some() {
                    return Err(SnapshotError::Corrupt("duplicate dead-letter origin"));
                }
            }
            let next_seq = r.take_u64()?;
            let next_ckpt = r.take_usize()?;
            s.cfg.horizon = horizon;
            s.dead.total = total;
            s.dead.dropped = dropped;
            s.dead.entries = entries;
            s.dead_by_origin = dead_by_origin;
            s.next_seq = next_seq;
            s.next_ckpt = next_ckpt;
        }
        self.machine.thaw(&mut r)?;
        let want = r.take_u64()?;
        r.finish()?;
        if self.machine.state_digest() != want {
            return Err(SnapshotError::Corrupt("restored state digest mismatch"));
        }
        if let Some(s) = &self.serving {
            if s.next_ckpt > s.journal.borrow().checkpoints().len() {
                return Err(SnapshotError::Corrupt("checkpoint cursor"));
            }
        }
        self.cursor = cursor;
        self.stopped = stopped;
        self.finished = finished;
        Ok(())
    }

    /// The session clock: the latest validated sample timestamp (or run
    /// horizon) the event loop has been advanced to.
    pub fn cursor(&self) -> SimTime {
        self.cursor
    }

    /// True once the session ran to its horizon or the machine stopped.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Journal checkpoints recorded so far (serving mode; empty in batch
    /// mode).
    pub fn checkpoints(&self) -> Vec<Checkpoint> {
        match &self.serving {
            Some(s) => s.journal.borrow().checkpoints().to_vec(),
            None => Vec::new(),
        }
    }

    /// Verifies a salvaged checkpoint against this session's journal —
    /// the resume-time divergence gate.
    pub fn verify_checkpoint(&self, t: SimTime, digest: u64) -> bool {
        match &self.serving {
            Some(s) => s.journal.borrow().verify(t, digest),
            None => false,
        }
    }

    /// The dead-letter ledger (serving mode; `None` in batch mode).
    pub fn dead_letters(&self) -> Option<&DeadLetterLedger> {
        self.serving.as_ref().map(|s| &s.dead)
    }

    /// JSONL lines of the serving trace so far (empty in batch mode) —
    /// the byte stream two runs are compared over in the kill/resume
    /// proof.
    pub fn trace_jsonl(&self) -> Vec<String> {
        match &self.serving {
            Some(s) => s.trace.jsonl(),
            None => Vec::new(),
        }
    }

    /// Applies one sample: validate, advance, act. All rejection paths
    /// end in the dead-letter ledger. No-op outside serving mode (the
    /// `ingest` entry point already refused).
    fn ingest_one(&mut self, sample: &Sample) {
        let Some(serving) = self.serving.as_mut() else {
            return;
        };
        if !sample.at_s.is_finite() {
            serving.dead_letter(self.cursor, sample, "not_finite");
            return;
        }
        if sample.at_s < 0.0 {
            serving.dead_letter(self.cursor, sample, "negative_time");
            return;
        }
        let at = SimTime::from_secs_f64(sample.at_s);
        if at < self.cursor {
            serving.dead_letter(self.cursor, sample, "out_of_order");
            return;
        }
        if at > serving.cfg.horizon {
            serving.dead_letter(self.cursor, sample, "beyond_horizon");
            return;
        }
        if self.stopped {
            serving.dead_letter(self.cursor, sample, "after_stop");
            return;
        }
        let report = self.machine.run_until(at);
        self.cursor = at;
        if report.end < at {
            // The machine stopped early (goal met, supply exhausted, or
            // all processes done); later samples are dead letters.
            self.stopped = true;
            if let SampleKind::Reconfig(_) = sample.kind {
                serving.dead_letter(self.cursor, sample, "after_stop");
            }
            return;
        }
        if let SampleKind::Reconfig(cmd) = sample.kind {
            serving.apply_reconfig(at, cmd);
        }
    }
}

impl Serving {
    /// Validates and applies one reconfiguration command at instant
    /// `at`, tracing the verdict either way.
    fn apply_reconfig(&mut self, at: SimTime, cmd: ReconfigCommand) {
        let verdict: Result<(&'static str, f64), (&'static str, &'static str)> = match cmd {
            ReconfigCommand::Goal(goal) => {
                if goal.is_zero() {
                    Err(("goal", "non_positive"))
                } else if SimTime::ZERO + goal <= at {
                    Err(("goal", "already_missed"))
                } else if let Some(handle) = &self.goal {
                    handle.post_goal_revision(goal);
                    Ok(("goal", goal.as_secs_f64()))
                } else {
                    Err(("goal", "no_controller"))
                }
            }
            ReconfigCommand::BudgetJ(budget_j) => {
                if !budget_j.is_finite() {
                    Err(("budget", "not_finite"))
                } else if budget_j <= 0.0 {
                    Err(("budget", "non_positive"))
                } else if let Some(handle) = &self.goal {
                    handle.post_budget_revision_j(budget_j);
                    Ok(("budget", budget_j))
                } else {
                    Err(("budget", "no_controller"))
                }
            }
            ReconfigCommand::Horizon(horizon) => {
                if horizon <= at {
                    Err(("horizon", "below_elapsed"))
                } else {
                    self.cfg.horizon = horizon;
                    Ok(("horizon", horizon.as_secs_f64()))
                }
            }
            ReconfigCommand::Quarantine(idx) => {
                self.inbox
                    .borrow_mut()
                    .push_back(Actuation::Quarantine(idx));
                return; // verdict traced by the actuator hook at its tick
            }
            ReconfigCommand::Readmit(idx) => {
                self.inbox.borrow_mut().push_back(Actuation::Readmit(idx));
                return;
            }
        };
        let event = match verdict {
            Ok((kind, value)) => TraceEvent::ReconfigApplied { kind, value },
            Err((kind, reason)) => TraceEvent::ReconfigRejected { kind, reason },
        };
        self.trace.emit(at, event);
    }

    /// Records one dead letter at the session cursor: ledger, trace,
    /// per-origin escalation.
    fn dead_letter(&mut self, cursor: SimTime, sample: &Sample, reason: &'static str) {
        let count = self.dead.push(DeadLetter {
            at_s: sample.at_s,
            reason,
            origin: sample.origin,
        });
        self.trace
            .emit(cursor, TraceEvent::DeadLetter { reason, count });
        if let Some(origin) = sample.origin {
            let per = self.dead_by_origin.entry(origin).or_insert(0);
            *per += 1;
            if *per >= self.cfg.escalate_after {
                *per = 0;
                if let Some(sup) = &self.supervisor {
                    sup.post_external_strike(origin);
                }
            }
        }
    }

    /// Turns everything traced or journaled since the last drain into
    /// time-ordered directives.
    fn drain_directives(&mut self) -> Vec<Directive> {
        let mut from_trace: Vec<Directive> = Vec::new();
        for rec in self.trace.records() {
            if rec.seq < self.next_seq {
                continue;
            }
            self.next_seq = rec.seq + 1;
            let at = rec.at;
            let directive = match rec.event {
                TraceEvent::FidelityChange {
                    pid,
                    direction,
                    level,
                    ..
                } => Directive::Fidelity {
                    at,
                    pid,
                    direction,
                    level,
                },
                TraceEvent::DatapathClamp { pid, factor } => Directive::Clamp { at, pid, factor },
                TraceEvent::Suspend { pid, .. } => Directive::Quarantined { at, pid },
                TraceEvent::Restart { pid, .. } => Directive::Restarted { at, pid },
                TraceEvent::GoalInfeasible => Directive::GoalInfeasible { at },
                TraceEvent::SupplyExhausted { residual_j } => {
                    Directive::SupplyExhausted { at, residual_j }
                }
                TraceEvent::ReconfigApplied { kind, value } => {
                    Directive::ReconfigApplied { at, kind, value }
                }
                TraceEvent::ReconfigRejected { kind, reason } => {
                    Directive::ReconfigRejected { at, kind, reason }
                }
                TraceEvent::DeadLetter { reason, .. } => Directive::DeadLettered { at, reason },
                _ => continue,
            };
            from_trace.push(directive);
        }
        let journal = self.journal.borrow();
        let from_journal: Vec<Directive> = journal
            .checkpoints()
            .get(self.next_ckpt..)
            .unwrap_or_default()
            .iter()
            .map(|ck| Directive::Checkpointed {
                seq: ck.seq,
                at: ck.t,
                digest: ck.digest,
            })
            .collect();
        self.next_ckpt = journal.checkpoints().len();
        drop(journal);
        // Stable two-way merge by time; trace events win ties so a
        // checkpoint at t sorts after the events that produced state t.
        let mut out = Vec::with_capacity(from_trace.len() + from_journal.len());
        let mut ti = from_trace.into_iter().peekable();
        let mut ji = from_journal.into_iter().peekable();
        loop {
            let take_trace = match (ti.peek(), ji.peek()) {
                (Some(t), Some(j)) => t.at() <= j.at(),
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if take_trace {
                out.extend(ti.next());
            } else {
                out.extend(ji.next());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::workload::ScriptedWorkload;
    use machine::{Activity, FidelityView, MachineConfig, Step, Workload};
    use simcore::{TraceCategory, TraceSink};

    fn idle_machine(procs: usize, secs: u64) -> Machine {
        let mut m = Machine::new(MachineConfig::default());
        for _ in 0..procs {
            m.add_process(Box::new(ScriptedWorkload::idle_for(
                "idle",
                SimDuration::from_secs(secs),
            )));
        }
        m
    }

    /// An idle workload that accepts restarts — quarantine/re-admit needs
    /// a cooperating `on_restart` (ScriptedWorkload refuses it).
    struct RestartableIdle {
        until: SimTime,
    }

    impl Workload for RestartableIdle {
        fn name(&self) -> &'static str {
            "ridle"
        }
        fn poll(&mut self, now: SimTime) -> Step {
            if now >= self.until {
                Step::Done
            } else {
                Step::Run(Activity::Wait {
                    until: now + SimDuration::from_secs(1),
                })
            }
        }
        fn fidelity(&self) -> FidelityView {
            FidelityView {
                level: 0,
                levels: 1,
            }
        }
        fn on_restart(&mut self, _now: SimTime) -> bool {
            true
        }
    }

    fn restartable_machine(procs: usize, secs: u64) -> Machine {
        let mut m = Machine::new(MachineConfig::default());
        for _ in 0..procs {
            m.add_process(Box::new(RestartableIdle {
                until: SimTime::from_secs(secs),
            }));
        }
        m
    }

    /// Requests a run stop at a fixed instant — how the unit tests model
    /// a control plane that halts the machine (goal met, supply gone).
    struct StopAt(SimTime);

    impl ControlHook for StopAt {
        fn on_tick(&mut self, now: SimTime, view: &mut MachineView<'_>) {
            if now >= self.0 {
                view.request_stop();
            }
        }
    }

    fn service_trace() -> TraceHandle {
        TraceHandle::new(
            TraceSink::new()
                .with_categories(&TraceCategory::CONTROL_PLANE)
                .with_jsonl(),
        )
    }

    fn cfg(horizon_s: u64) -> SessionConfig {
        SessionConfig {
            checkpoint_every: SimDuration::from_secs(10),
            horizon: SimTime::from_secs(horizon_s),
            dead_letter_capacity: 4,
            actuation_period: SimDuration::from_secs(1),
            escalate_after: 3,
        }
    }

    #[test]
    fn serve_rejects_invalid_config() {
        for (broken, what) in [
            (
                SessionConfig {
                    checkpoint_every: SimDuration::ZERO,
                    ..cfg(100)
                },
                "checkpoint_every",
            ),
            (
                SessionConfig {
                    horizon: SimTime::ZERO,
                    ..cfg(100)
                },
                "horizon",
            ),
            (
                SessionConfig {
                    dead_letter_capacity: 0,
                    ..cfg(100)
                },
                "dead_letter_capacity",
            ),
            (
                SessionConfig {
                    actuation_period: SimDuration::ZERO,
                    ..cfg(100)
                },
                "actuation_period",
            ),
            (
                SessionConfig {
                    escalate_after: 0,
                    ..cfg(100)
                },
                "escalate_after",
            ),
        ] {
            let err = Session::serve(idle_machine(1, 60), None, None, service_trace(), broken)
                .map(|_| ())
                .expect_err(what);
            assert!(matches!(err, ServeError::InvalidConfig(_)), "{what}");
        }
    }

    #[test]
    fn ticks_advance_and_checkpoint() {
        let mut s = Session::serve(idle_machine(1, 120), None, None, service_trace(), cfg(100))
            .expect("serve");
        let out = s
            .ingest(&[Sample::tick(15.0), Sample::tick(35.0)])
            .expect("ingest");
        let cks: Vec<_> = out
            .iter()
            .filter_map(|d| match d {
                Directive::Checkpointed { at, .. } => Some(at.as_secs_f64()),
                _ => None,
            })
            .collect();
        assert_eq!(cks, vec![10.0, 20.0, 30.0]);
        assert_eq!(s.cursor(), SimTime::from_secs(35));
        assert_eq!(s.checkpoints().len(), 3);
        let latest = s.checkpoints()[2];
        assert!(s.verify_checkpoint(latest.t, latest.digest));
        assert!(!s.verify_checkpoint(latest.t, latest.digest ^ 1));
        let report = s.finish().expect("finish");
        assert_eq!(report.end, SimTime::from_secs(100));
        assert!(s.is_finished());
        assert_eq!(s.finish().expect_err("twice"), ServeError::Finished);
        assert_eq!(
            s.ingest(&[Sample::tick(101.0)]).expect_err("finished"),
            ServeError::Finished
        );
    }

    #[test]
    fn malformed_input_is_dead_lettered_never_a_panic() {
        let mut s = Session::serve(idle_machine(1, 120), None, None, service_trace(), cfg(100))
            .expect("serve");
        let out = s
            .ingest(&[
                Sample::tick(20.0),
                Sample::tick(10.0),     // out of order
                Sample::tick(f64::NAN), // malformed
                Sample::tick(-3.0),     // malformed
                Sample::tick(5000.0),   // beyond horizon
                Sample::tick(25.0),     // fine again
            ])
            .expect("ingest");
        let reasons: Vec<_> = out
            .iter()
            .filter_map(|d| match d {
                Directive::DeadLettered { reason, .. } => Some(*reason),
                _ => None,
            })
            .collect();
        assert_eq!(
            reasons,
            vec![
                "out_of_order",
                "not_finite",
                "negative_time",
                "beyond_horizon"
            ]
        );
        let ledger = s.dead_letters().expect("serving");
        assert_eq!(ledger.total(), 4);
        assert_eq!(ledger.dropped(), 0);
        assert_eq!(s.cursor(), SimTime::from_secs(25));
    }

    #[test]
    fn dead_letter_ledger_is_bounded() {
        let mut s = Session::serve(idle_machine(1, 120), None, None, service_trace(), cfg(100))
            .expect("serve");
        let junk: Vec<Sample> = (0..7).map(|_| Sample::tick(f64::NAN)).collect();
        s.ingest(&junk).expect("ingest");
        let ledger = s.dead_letters().expect("serving");
        assert_eq!(ledger.total(), 7);
        assert_eq!(ledger.dropped(), 3);
        assert_eq!(ledger.entries().count(), 4);
    }

    #[test]
    fn samples_after_machine_stop_are_dead_lettered() {
        // A control hook stops the run at 10 s (the goal-met shape).
        let mut m = idle_machine(1, 120);
        m.add_hook(
            SimDuration::from_secs(1),
            Box::new(StopAt(SimTime::from_secs(10))),
        );
        let mut s = Session::serve(m, None, None, service_trace(), cfg(100)).expect("serve");
        let out = s
            .ingest(&[Sample::tick(50.0), Sample::tick(60.0)])
            .expect("ingest");
        let reasons: Vec<_> = out
            .iter()
            .filter_map(|d| match d {
                Directive::DeadLettered { reason, .. } => Some(*reason),
                _ => None,
            })
            .collect();
        assert_eq!(reasons, vec!["after_stop"]);
    }

    #[test]
    fn quarantine_and_readmit_actuate_at_the_next_tick() {
        let mut s = Session::serve(
            restartable_machine(2, 120),
            None,
            None,
            service_trace(),
            cfg(100),
        )
        .expect("serve");
        let out = s
            .ingest(&[
                Sample::reconfig(5.0, ReconfigCommand::Quarantine(1)),
                Sample::tick(8.0),
            ])
            .expect("ingest");
        assert!(out.iter().any(|d| matches!(
            d,
            Directive::ReconfigApplied { kind: "quarantine", value, .. } if *value == 1.0
        )));
        assert!(out
            .iter()
            .any(|d| matches!(d, Directive::Quarantined { pid: 1, .. })));

        // Double quarantine is rejected; re-admit round-trips; re-admit
        // of a running process and an unknown index are rejected.
        let out = s
            .ingest(&[
                Sample::reconfig(10.0, ReconfigCommand::Quarantine(1)),
                Sample::reconfig(12.0, ReconfigCommand::Readmit(1)),
                Sample::reconfig(14.0, ReconfigCommand::Readmit(1)),
                Sample::reconfig(16.0, ReconfigCommand::Quarantine(9)),
                Sample::tick(20.0),
            ])
            .expect("ingest");
        let rejections: Vec<_> = out
            .iter()
            .filter_map(|d| match d {
                Directive::ReconfigRejected { kind, reason, .. } => Some((*kind, *reason)),
                _ => None,
            })
            .collect();
        assert_eq!(
            rejections,
            vec![
                ("quarantine", "already_quarantined"),
                ("readmit", "not_quarantined"),
                ("quarantine", "unknown_pid"),
            ]
        );
        assert!(out
            .iter()
            .any(|d| matches!(d, Directive::Restarted { pid: 1, .. })));
    }

    #[test]
    fn goal_and_budget_without_a_controller_are_rejected_not_panicked() {
        let mut s = Session::serve(idle_machine(1, 120), None, None, service_trace(), cfg(100))
            .expect("serve");
        let out = s
            .ingest(&[
                Sample::reconfig(5.0, ReconfigCommand::Goal(SimDuration::from_secs(200))),
                Sample::reconfig(6.0, ReconfigCommand::BudgetJ(500.0)),
                Sample::reconfig(7.0, ReconfigCommand::BudgetJ(f64::INFINITY)),
                Sample::reconfig(8.0, ReconfigCommand::BudgetJ(0.0)),
                Sample::reconfig(9.0, ReconfigCommand::Goal(SimDuration::from_secs(4))),
                Sample::reconfig(10.0, ReconfigCommand::Horizon(SimTime::from_secs(5))),
                Sample::reconfig(11.0, ReconfigCommand::Horizon(SimTime::from_secs(90))),
            ])
            .expect("ingest");
        let verdicts: Vec<_> = out
            .iter()
            .filter_map(|d| match d {
                Directive::ReconfigRejected { kind, reason, .. } => Some((*kind, *reason)),
                Directive::ReconfigApplied { kind, .. } => Some((*kind, "applied")),
                _ => None,
            })
            .collect();
        assert_eq!(
            verdicts,
            vec![
                ("goal", "no_controller"),
                ("budget", "no_controller"),
                ("budget", "not_finite"),
                ("budget", "non_positive"),
                ("goal", "already_missed"),
                ("horizon", "below_elapsed"),
                ("horizon", "applied"),
            ]
        );
        // The applied horizon revision is live: finish() runs to 90 s.
        let report = s.finish().expect("finish");
        assert_eq!(report.end, SimTime::from_secs(90));
    }

    #[test]
    fn adopted_sessions_run_batch_and_refuse_serving_calls() {
        let mut s = Session::adopt(idle_machine(1, 30)).expect("adopt");
        assert_eq!(
            s.ingest(&[Sample::tick(1.0)]).expect_err("not serving"),
            ServeError::NotServing
        );
        assert_eq!(s.finish().expect_err("not serving"), ServeError::NotServing);
        assert!(s.checkpoints().is_empty());
        assert!(s.dead_letters().is_none());
        let report = s.run_to_completion().expect("run");
        assert!(report.end >= SimTime::from_secs(30));
        assert!(s.is_finished());
        assert_eq!(
            s.run_to_completion().expect_err("twice"),
            ServeError::Finished
        );
    }

    #[test]
    fn adopted_run_matches_a_bare_machine_bit_for_bit() {
        let bare = {
            let mut m = idle_machine(2, 45);
            let report = m.run();
            (report.end, report.total_j.to_bits(), m.state_digest())
        };
        let adopted = {
            let mut s = Session::adopt(idle_machine(2, 45)).expect("adopt");
            let report = s.run_to_completion().expect("run");
            (report.end, report.total_j.to_bits(), s.digest())
        };
        assert_eq!(bare, adopted);
    }
}
