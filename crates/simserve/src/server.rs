//! Multi-session server: N independent [`Session`]s behind one bounded
//! admission surface, with per-session fault isolation.
//!
//! Each admitted session lives in a slot with its own rebuild closure,
//! its last good snapshot, and a log of every accepted sample batch. A
//! session that panics mid-ingest is caught ([`std::panic::catch_unwind`]
//! — the poisoned session object is discarded, never reused), rolled
//! back to its last snapshot in O(state), and the offending batch is
//! rejected as [`ServeError::Faulted`]. Siblings never notice. When the
//! snapshot itself is corrupt or missing the slot falls back to
//! replaying its accepted-sample log; only when *that* fails too is the
//! slot quarantined ([`ServeError::Quarantined`]) and closed to input.
//!
//! [`run_fleet`] fans whole session lifecycles across the deterministic
//! work pool: sessions share no state (each worker builds its own from
//! the spec), so the index-ordered merge makes the parallel run
//! byte-identical to the serial one at any thread count.

use std::panic::{catch_unwind, AssertUnwindSafe};

use simcore::Checkpoint;

use crate::{DeadLetterLedger, Directive, Sample, ServeError, Session};

/// Liveness of one server slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionHealth {
    /// Serving normally.
    Healthy,
    /// At least one fault was absorbed by a rollback; serving normally.
    Recovered,
    /// A fault could not be recovered; the slot refuses all input.
    Dead {
        /// Why the final restore attempt failed.
        reason: &'static str,
    },
}

/// Per-slot accounting, all monotone counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SlotStats {
    /// Sample batches accepted.
    pub batches: u64,
    /// Directives returned to the caller.
    pub directives: u64,
    /// Panics caught and contained.
    pub panics: u64,
    /// Restores that succeeded from the binary snapshot (O(state)).
    pub snapshot_restores: u64,
    /// Restores that fell back to replaying the accepted-sample log.
    pub replay_restores: u64,
    /// Snapshots taken after successful batches.
    pub snapshots: u64,
    /// Freeze attempts refused (non-freezable workload or hook); the
    /// slot keeps its previous snapshot and relies on catch-up replay.
    pub snapshot_failures: u64,
}

/// One slot: the live session plus everything needed to rebuild it.
struct Slot<'a> {
    builder: Box<dyn Fn() -> Result<Session, ServeError> + 'a>,
    session: Option<Session>,
    /// Last good snapshot and how many log samples it covers.
    snapshot: Option<(Vec<u8>, usize)>,
    /// Every accepted sample, in order — the replay fallback.
    log: Vec<Sample>,
    health: SessionHealth,
    stats: SlotStats,
}

/// A bounded pool of independent serving sessions. See the module docs
/// for the isolation contract.
pub struct Server<'a> {
    slots: Vec<Slot<'a>>,
    max_sessions: usize,
}

impl std::fmt::Debug for Server<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("sessions", &self.slots.len())
            .field("max_sessions", &self.max_sessions)
            .finish_non_exhaustive()
    }
}

impl<'a> Server<'a> {
    /// An empty server admitting at most `max_sessions` sessions.
    pub fn new(max_sessions: usize) -> Result<Server<'a>, ServeError> {
        if max_sessions == 0 {
            return Err(ServeError::InvalidConfig("max_sessions is zero"));
        }
        Ok(Server {
            slots: Vec::new(),
            max_sessions,
        })
    }

    /// Admits one session built by `builder` and returns its slot id.
    /// The closure must rebuild the *identical* session on every call —
    /// that is what makes snapshot restore and replay fallback sound.
    pub fn admit(
        &mut self,
        builder: Box<dyn Fn() -> Result<Session, ServeError> + 'a>,
    ) -> Result<usize, ServeError> {
        if self.slots.len() >= self.max_sessions {
            return Err(ServeError::AdmissionFull);
        }
        let session = builder()?;
        let id = self.slots.len();
        let mut slot = Slot {
            builder,
            session: Some(session),
            snapshot: None,
            log: Vec::new(),
            health: SessionHealth::Healthy,
            stats: SlotStats::default(),
        };
        take_snapshot(&mut slot);
        self.slots.push(slot);
        Ok(id)
    }

    /// Sessions admitted so far.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True before the first admission.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.max_sessions
    }

    /// Health of slot `id`.
    pub fn health(&self, id: usize) -> Result<SessionHealth, ServeError> {
        self.slots
            .get(id)
            .map(|s| s.health)
            .ok_or(ServeError::UnknownSession)
    }

    /// Accounting for slot `id`.
    pub fn stats(&self, id: usize) -> Result<SlotStats, ServeError> {
        self.slots
            .get(id)
            .map(|s| s.stats)
            .ok_or(ServeError::UnknownSession)
    }

    /// State digest of the session in slot `id`.
    pub fn digest(&self, id: usize) -> Result<u64, ServeError> {
        let slot = self.slots.get(id).ok_or(ServeError::UnknownSession)?;
        slot.session
            .as_ref()
            .map(Session::digest)
            .ok_or(ServeError::Quarantined)
    }

    /// Journal checkpoints of the session in slot `id`.
    pub fn checkpoints(&self, id: usize) -> Result<Vec<Checkpoint>, ServeError> {
        let slot = self.slots.get(id).ok_or(ServeError::UnknownSession)?;
        slot.session
            .as_ref()
            .map(Session::checkpoints)
            .ok_or(ServeError::Quarantined)
    }

    /// Dead letters recorded by the session in slot `id` over its
    /// lifetime.
    pub fn dead_letter_total(&self, id: usize) -> Result<u64, ServeError> {
        let slot = self.slots.get(id).ok_or(ServeError::UnknownSession)?;
        let session = slot.session.as_ref().ok_or(ServeError::Quarantined)?;
        Ok(session.dead_letters().map(|d| d.total()).unwrap_or(0))
    }

    /// The bounded dead-letter ledger of the session in slot `id`
    /// (`None` for a session not in serving mode).
    pub fn dead_letters(&self, id: usize) -> Result<Option<&DeadLetterLedger>, ServeError> {
        let slot = self.slots.get(id).ok_or(ServeError::UnknownSession)?;
        let session = slot.session.as_ref().ok_or(ServeError::Quarantined)?;
        Ok(session.dead_letters())
    }

    /// Feeds one sample batch to the session in slot `id`.
    ///
    /// A clean batch returns its directives and advances the slot's
    /// snapshot. A batch that makes the session panic is contained: the
    /// session is restored to its pre-batch state and the call returns
    /// [`ServeError::Faulted`] (or [`ServeError::Quarantined`] when
    /// restore failed). Other slots are never affected.
    pub fn ingest(&mut self, id: usize, samples: &[Sample]) -> Result<Vec<Directive>, ServeError> {
        let slot = self.slots.get_mut(id).ok_or(ServeError::UnknownSession)?;
        if let SessionHealth::Dead { .. } = slot.health {
            return Err(ServeError::Quarantined);
        }
        let mut session = slot.session.take().ok_or(ServeError::Quarantined)?;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let r = session.ingest(samples);
            (session, r)
        }));
        match outcome {
            Ok((session, Ok(directives))) => {
                slot.session = Some(session);
                slot.log.extend_from_slice(samples);
                slot.stats.batches += 1;
                slot.stats.directives += directives.len() as u64;
                take_snapshot(slot);
                Ok(directives)
            }
            Ok((session, Err(e))) => {
                // A clean refusal (NotServing / Finished): the session
                // is intact, nothing to restore.
                slot.session = Some(session);
                Err(e)
            }
            Err(_panic) => {
                slot.stats.panics += 1;
                if restore(slot) {
                    slot.health = SessionHealth::Recovered;
                    Err(ServeError::Faulted)
                } else {
                    Err(ServeError::Quarantined)
                }
            }
        }
    }

    /// Runs the session in slot `id` to its horizon, with the same
    /// containment as [`Server::ingest`].
    pub fn finish(&mut self, id: usize) -> Result<machine::RunReport, ServeError> {
        let slot = self.slots.get_mut(id).ok_or(ServeError::UnknownSession)?;
        if let SessionHealth::Dead { .. } = slot.health {
            return Err(ServeError::Quarantined);
        }
        let mut session = slot.session.take().ok_or(ServeError::Quarantined)?;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let r = session.finish();
            (session, r)
        }));
        match outcome {
            Ok((session, r)) => {
                slot.session = Some(session);
                r
            }
            Err(_panic) => {
                slot.stats.panics += 1;
                if restore(slot) {
                    slot.health = SessionHealth::Recovered;
                    Err(ServeError::Faulted)
                } else {
                    Err(ServeError::Quarantined)
                }
            }
        }
    }
}

/// Freezes the slot's session into a fresh snapshot. Refusals
/// (non-freezable rigs) keep the previous snapshot: the slot then
/// relies on catch-up replay of the log suffix past that snapshot.
fn take_snapshot(slot: &mut Slot<'_>) {
    let Some(session) = slot.session.as_ref() else {
        return;
    };
    match session.freeze() {
        Ok(bytes) => {
            slot.snapshot = Some((bytes, slot.log.len()));
            slot.stats.snapshots += 1;
        }
        Err(_) => slot.stats.snapshot_failures += 1,
    }
}

/// Restores the slot's session to its last good state: snapshot first
/// (O(state)), then catch-up replay of any log suffix the snapshot
/// predates, full replay from scratch when the snapshot path fails.
/// Returns false (and marks the slot dead) when nothing works.
fn restore(slot: &mut Slot<'_>) -> bool {
    if let Some((bytes, covered)) = &slot.snapshot {
        let covered = *covered;
        if let Ok(mut fresh) = (slot.builder)() {
            if fresh.thaw(bytes).is_ok() {
                let suffix: Vec<Sample> = slot
                    .log
                    .get(covered..)
                    .map(<[Sample]>::to_vec)
                    .unwrap_or_default();
                if feed_contained(&mut fresh, &suffix) {
                    slot.session = Some(fresh);
                    slot.stats.snapshot_restores += 1;
                    return true;
                }
            }
        }
        // The snapshot (or its catch-up) failed: drop it so the replay
        // path below — and any later restore — starts from scratch.
        slot.snapshot = None;
    }
    let Ok(mut fresh) = (slot.builder)() else {
        slot.health = SessionHealth::Dead {
            reason: "rebuild failed",
        };
        slot.session = None;
        return false;
    };
    let log = slot.log.clone();
    if feed_contained(&mut fresh, &log) {
        slot.session = Some(fresh);
        slot.stats.replay_restores += 1;
        take_snapshot(slot);
        true
    } else {
        slot.health = SessionHealth::Dead {
            reason: "replay failed",
        };
        slot.session = None;
        false
    }
}

/// Feeds `samples` with panics contained. True when every batch was
/// accepted.
fn feed_contained(session: &mut Session, samples: &[Sample]) -> bool {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        for chunk in samples.chunks(64) {
            if session.ingest(chunk).is_err() {
                return false;
            }
        }
        true
    }));
    matches!(outcome, Ok(true))
}

/// What one fleet session left behind.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetOutcome {
    /// Directives issued over the whole stream.
    pub directives: u64,
    /// Dead letters recorded.
    pub dead_letters: u64,
    /// Journal checkpoints recorded.
    pub checkpoints: usize,
    /// Final state digest.
    pub final_digest: u64,
    /// Batches rejected by fault containment.
    pub faults: u64,
    /// Slot health at the end of the stream.
    pub health: SessionHealth,
}

/// One session lifecycle for [`run_fleet`]: a rebuild closure and the
/// sample stream to drive through it.
pub struct FleetSpec<B> {
    // (manual Debug below: `B` is an opaque closure.)
    /// Rebuilds the session (identically on every call).
    pub builder: B,
    /// The full input stream, fed in batches of [`FleetSpec::batch`].
    pub samples: Vec<Sample>,
    /// Batch size (0 means 64).
    pub batch: usize,
}

impl<B> std::fmt::Debug for FleetSpec<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetSpec")
            .field("samples", &self.samples.len())
            .field("batch", &self.batch)
            .finish_non_exhaustive()
    }
}

/// Runs each spec's whole session lifecycle on the deterministic work
/// pool and merges the outcomes in index order: byte-identical results
/// at any thread count. Sessions are single-threaded and share nothing;
/// parallelism is across sessions, never within one. A session is the
/// heaviest unit the pool ever schedules, so the fleet pins grain 1 —
/// every chunk is one session, claimed as workers free up.
pub fn run_fleet<B>(threads: usize, specs: &[FleetSpec<B>]) -> Vec<FleetOutcome>
where
    B: Fn() -> Result<Session, ServeError> + Sync,
{
    let cfg = simcore::par::PoolConfig::new(threads).grain(1);
    simcore::par::map_stats(&cfg, specs, |_, spec| run_spec(spec)).0
}

fn run_spec<B>(spec: &FleetSpec<B>) -> FleetOutcome
where
    B: Fn() -> Result<Session, ServeError>,
{
    let dead = |reason: &'static str| FleetOutcome {
        directives: 0,
        dead_letters: 0,
        checkpoints: 0,
        final_digest: 0,
        faults: 0,
        health: SessionHealth::Dead { reason },
    };
    let Ok(mut server) = Server::new(1) else {
        return dead("server rejected bound 1");
    };
    let Ok(id) = server.admit(Box::new(&spec.builder)) else {
        return dead("admission failed");
    };
    let batch = if spec.batch == 0 { 64 } else { spec.batch };
    let mut directives = 0u64;
    let mut faults = 0u64;
    for chunk in spec.samples.chunks(batch) {
        match server.ingest(id, chunk) {
            Ok(out) => directives += out.len() as u64,
            Err(ServeError::Faulted) => faults += 1,
            Err(ServeError::Quarantined) => break,
            Err(_) => break,
        }
    }
    if !matches!(server.health(id), Ok(SessionHealth::Dead { .. })) {
        match server.finish(id) {
            Ok(_) => {}
            Err(ServeError::Faulted) => faults += 1,
            Err(_) => {}
        }
    }
    FleetOutcome {
        directives,
        dead_letters: server.dead_letter_total(id).unwrap_or(0),
        checkpoints: server.checkpoints(id).map(|c| c.len()).unwrap_or(0),
        final_digest: server.digest(id).unwrap_or(0),
        faults,
        health: server.health(id).unwrap_or(SessionHealth::Dead {
            reason: "slot vanished",
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SessionConfig, SessionHealth as Health};
    use machine::workload::ScriptedWorkload;
    use machine::{Activity, Machine, MachineConfig, Step, Workload};
    use simcore::{SimDuration, SimTime, TraceCategory, TraceHandle, TraceSink};

    fn service_trace() -> TraceHandle {
        TraceHandle::new(
            TraceSink::new()
                .with_categories(&TraceCategory::CONTROL_PLANE)
                .with_jsonl(),
        )
    }

    fn cfg(horizon_s: u64) -> SessionConfig {
        SessionConfig {
            checkpoint_every: SimDuration::from_secs(10),
            horizon: SimTime::from_secs(horizon_s),
            dead_letter_capacity: 8,
            actuation_period: SimDuration::from_secs(1),
            escalate_after: 4,
        }
    }

    fn idle_session(procs: usize) -> Result<Session, ServeError> {
        let mut m = Machine::new(MachineConfig::default());
        for _ in 0..procs {
            m.add_process(Box::new(ScriptedWorkload::idle_for(
                "idle",
                SimDuration::from_secs(200),
            )));
        }
        Session::serve(m, None, None, service_trace(), cfg(100))
    }

    /// Idles until a trigger instant, then panics on the next poll — the
    /// shape of a latent workload bug that a hostile input stream trips.
    struct PanicAt {
        at: SimTime,
    }

    impl Workload for PanicAt {
        fn name(&self) -> &'static str {
            "landmine"
        }
        fn poll(&mut self, now: SimTime) -> Step {
            assert!(now < self.at, "landmine tripped at {now:?}");
            Step::Run(Activity::Wait {
                until: now + SimDuration::from_secs(1),
            })
        }
        fn freeze(&self, w: &mut simcore::SnapshotWriter) -> Result<(), simcore::SnapshotError> {
            let _ = w;
            Ok(())
        }
        fn thaw(
            &mut self,
            r: &mut simcore::SnapshotReader<'_>,
        ) -> Result<(), simcore::SnapshotError> {
            let _ = r;
            Ok(())
        }
    }

    fn landmine_session(at_s: u64) -> Result<Session, ServeError> {
        let mut m = Machine::new(MachineConfig::default());
        m.add_process(Box::new(PanicAt {
            at: SimTime::from_secs(at_s),
        }));
        m.add_process(Box::new(ScriptedWorkload::idle_for(
            "idle",
            SimDuration::from_secs(200),
        )));
        Session::serve(m, None, None, service_trace(), cfg(100))
    }

    #[test]
    fn admission_is_bounded() {
        let mut server = Server::new(2).expect("server");
        assert!(Server::new(0).is_err());
        assert_eq!(server.admit(Box::new(|| idle_session(1))).expect("a"), 0);
        assert_eq!(server.admit(Box::new(|| idle_session(1))).expect("b"), 1);
        assert_eq!(
            server
                .admit(Box::new(|| idle_session(1)))
                .expect_err("full"),
            ServeError::AdmissionFull
        );
        assert_eq!(server.len(), 2);
        assert_eq!(server.capacity(), 2);
        assert_eq!(
            server.health(9).expect_err("oob"),
            ServeError::UnknownSession
        );
    }

    #[test]
    fn sessions_are_independent_and_match_a_solo_run() {
        let mut server = Server::new(4).expect("server");
        let a = server.admit(Box::new(|| idle_session(1))).expect("a");
        let b = server.admit(Box::new(|| idle_session(3))).expect("b");
        server.ingest(a, &[Sample::tick(25.0)]).expect("a ticks");
        server
            .ingest(b, &[Sample::tick(11.0), Sample::tick(44.0)])
            .expect("b ticks");
        // Each slot's digest equals a standalone session fed the same.
        let mut solo = idle_session(1).expect("solo");
        solo.ingest(&[Sample::tick(25.0)]).expect("solo ticks");
        assert_eq!(server.digest(a).expect("digest"), solo.digest());
        assert_ne!(server.digest(a).expect("a"), server.digest(b).expect("b"));
        assert_eq!(server.health(a).expect("a"), SessionHealth::Healthy);
        let stats = server.stats(a).expect("stats");
        assert_eq!(stats.batches, 1);
        assert!(stats.snapshots >= 1, "{stats:?}");
    }

    #[test]
    fn a_panicking_session_is_contained_and_rolled_back() {
        let mut server = Server::new(2).expect("server");
        let mine = server.admit(Box::new(|| landmine_session(30))).expect("m");
        let calm = server.admit(Box::new(|| idle_session(1))).expect("c");
        server
            .ingest(mine, &[Sample::tick(10.0)])
            .expect("pre-trip");
        let digest_before = server.digest(mine).expect("digest");
        server.ingest(calm, &[Sample::tick(10.0)]).expect("calm");

        // This batch drives the landmine past its trigger: the session
        // panics inside ingest, the server contains it.
        let err = server
            .ingest(mine, &[Sample::tick(60.0)])
            .expect_err("tripped");
        assert_eq!(err, ServeError::Faulted);
        assert_eq!(
            server.health(mine).expect("health"),
            SessionHealth::Recovered
        );
        // Rolled back to the pre-batch state, in O(state) via snapshot.
        assert_eq!(server.digest(mine).expect("digest"), digest_before);
        let stats = server.stats(mine).expect("stats");
        assert_eq!(stats.panics, 1);
        assert_eq!(stats.snapshot_restores, 1);
        assert_eq!(stats.replay_restores, 0);

        // The sibling never noticed.
        assert_eq!(server.health(calm).expect("calm"), SessionHealth::Healthy);
        server.ingest(calm, &[Sample::tick(20.0)]).expect("calm on");
        server.finish(calm).expect("calm finish");
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_replay() {
        let mut server = Server::new(1).expect("server");
        let id = server.admit(Box::new(|| landmine_session(30))).expect("m");
        server.ingest(id, &[Sample::tick(10.0)]).expect("pre-trip");
        let digest_before = server.digest(id).expect("digest");
        // Sabotage the stored snapshot: flip one payload byte. The
        // envelope checksum rejects it and restore replays the log.
        {
            let slot = &mut server.slots[0];
            let (bytes, _) = slot.snapshot.as_mut().expect("snapshot exists");
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x40;
        }
        let err = server
            .ingest(id, &[Sample::tick(60.0)])
            .expect_err("tripped");
        assert_eq!(err, ServeError::Faulted);
        assert_eq!(server.digest(id).expect("digest"), digest_before);
        let stats = server.stats(id).expect("stats");
        assert_eq!(stats.snapshot_restores, 0);
        assert_eq!(stats.replay_restores, 1);
        assert_eq!(server.health(id).expect("health"), SessionHealth::Recovered);
    }

    #[test]
    fn unrecoverable_slot_is_quarantined_not_propagated() {
        // A landmine at t=0 trips during admission's first real batch
        // and again during every replay: the slot dies cleanly.
        let mut server = Server::new(2).expect("server");
        let id = server.admit(Box::new(|| landmine_session(5))).expect("m");
        let calm = server.admit(Box::new(|| idle_session(1))).expect("c");
        let err = server
            .ingest(id, &[Sample::tick(50.0)])
            .expect_err("tripped");
        // The pre-batch snapshot restores state-at-admission, and the
        // catch-up suffix is empty, so first failure recovers...
        assert_eq!(err, ServeError::Faulted);
        // ...but the same hostile batch keeps failing without ever
        // corrupting the sibling, and the slot never lies about health.
        let err = server
            .ingest(id, &[Sample::tick(50.0)])
            .expect_err("tripped again");
        assert_eq!(err, ServeError::Faulted);
        server.ingest(calm, &[Sample::tick(20.0)]).expect("calm");
        assert_eq!(server.health(calm).expect("calm"), SessionHealth::Healthy);
    }

    #[test]
    fn fleet_runs_identically_at_every_thread_count() {
        let specs: Vec<FleetSpec<_>> = (0..4)
            .map(|i| FleetSpec {
                builder: move || idle_session(1 + i % 2),
                samples: (1..20).map(|k| Sample::tick(k as f64 * 4.0)).collect(),
                batch: 3,
            })
            .collect();
        let serial = run_fleet(1, &specs);
        assert_eq!(serial.len(), 4);
        for out in &serial {
            assert_eq!(out.health, SessionHealth::Healthy);
            assert_eq!(out.faults, 0);
            assert!(out.checkpoints > 0);
        }
        for threads in [2, 4] {
            assert_eq!(run_fleet(threads, &specs), serial, "threads={threads}");
        }
    }

    #[test]
    fn health_enum_reexports_match() {
        // `SessionHealth` is re-exported at the crate root.
        let h: Health = SessionHealth::Healthy;
        assert_eq!(h, Health::Healthy);
    }
}
