#![forbid(unsafe_code)]
//! simpar: a deterministic chunked self-scheduling work pool.
//!
//! The evaluation sweeps are embarrassingly parallel: every trial runs
//! with a random stream forked purely from `(seed, label, index)`, so
//! trials share no state and their results depend only on their index.
//! This crate fans such work out over `std::thread::scope` workers and
//! merges results **in index order**, making the parallel run
//! byte-identical to the serial one (`tests/parallel_equivalence.rs`
//! and `tests/scheduler_stress.rs` enforce this against the golden
//! traces and a battery of adversarial shapes).
//!
//! Consumers beyond the experiment sweeps: `simserve` fans whole session
//! lifecycles across the pool, and `simlint` fans its per-file analysis
//! (`--threads`), both with the same index-ordered-merge guarantee.
//!
//! # The determinism contract (DESIGN.md §13, §18)
//!
//! - **Pure jobs.** `f(i)` must be a pure function of its index and of
//!   immutable captured state. Jobs must not communicate, touch shared
//!   mutable state, read the wall clock, or draw from a shared RNG.
//! - **Index-ordered merge.** Workers execute whole index *chunks* and
//!   append each chunk's results to a private run buffer; the merge
//!   sorts the runs by start index and concatenates. Nothing in the
//!   merge path reads the wall clock or depends on completion order.
//! - **Serial fallback.** When the pool decides not to spawn (one
//!   worker requested, nothing to gain, or the host has a single
//!   hardware thread) the jobs run inline on the caller's thread in
//!   index order — *identical* to a plain loop, which is what makes
//!   `--threads 1` useful for bisecting.
//!
//! # Scheduling (DESIGN.md §18)
//!
//! The chunk plan is computed **up front** by [`plan_chunks`]: a guided
//! schedule of geometrically shrinking index ranges (each chunk takes
//! `remaining / (2 * workers)` items, floored at the grain), so early
//! chunks amortize claim overhead while late chunks stay small enough
//! to balance skewed job costs. Workers claim whole chunks off a single
//! `AtomicUsize` chunk cursor — one atomic op per chunk, not per item —
//! and write results into pre-allocated per-worker run buffers, so
//! there is no per-item mutex and no shared sink to contend on. Which
//! worker claims which chunk is scheduler-dependent; the chunk
//! *boundaries* and the merged output are pure functions of
//! `(n, workers, grain)`.
//!
//! The [`PoolStats`] surface (and the process-wide [`telemetry`]
//! counters behind the `bench` verb's per-record metadata) reports what
//! the scheduler actually did — chunks claimed, items per worker,
//! whether the inline fallback ran — so a scenario that fails to scale
//! can be diagnosed instead of guessed at.
//!
//! This is the one crate in the workspace allowed to touch
//! `std::thread` (simlint rule D1 confines thread use here; everything
//! else goes through this API).
//!
//! # Examples
//!
//! ```
//! let squares = simpar::map_indexed(4, 8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//!
//! let words = ["a", "bb", "ccc"];
//! let lens = simpar::map(2, &words, |_, w| w.len());
//! assert_eq!(lens, vec![1, 2, 3]);
//!
//! // The configured entry points also report what the scheduler did.
//! let cfg = simpar::PoolConfig::new(2).assume_parallelism(2);
//! let (out, stats) = simpar::map_indexed_stats(&cfg, 8, |i| i + 1);
//! assert_eq!(out, (1..=8).collect::<Vec<_>>());
//! assert_eq!(stats.items, 8);
//! ```

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Chunks-per-worker target of the guided schedule: each claim takes
/// `remaining / (CHUNK_DIVISOR * workers)` items (floored at the
/// grain), giving every worker several shrinking chunks to self-balance
/// across skewed job costs.
const CHUNK_DIVISOR: usize = 2;

/// Default grain denominator: the automatic minimum chunk size is
/// `n / (workers * GRAIN_CHUNKS_PER_WORKER)`, i.e. the tail of the
/// guided schedule leaves each worker up to ~8 small chunks.
const GRAIN_CHUNKS_PER_WORKER: usize = 8;

/// Worker threads to use by default: the machine's available parallelism
/// (1 when it cannot be determined).
pub fn available_threads() -> usize {
    // Cached: the pool consults this on every dispatch and the answer
    // cannot change under a pinned-affinity process.
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// One contiguous index range of the chunk plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Chunk {
    /// First index of the range.
    pub start: usize,
    /// Number of indices in the range (always ≥ 1 in a plan).
    pub len: usize,
}

/// Scheduling configuration for the configured entry points
/// ([`run`], [`map_indexed_stats`], [`map_stats`]).
///
/// The convenience wrappers [`map_indexed`] and [`map`] use
/// `PoolConfig::new(threads)` — automatic grain, host parallelism.
#[derive(Clone, Copy, Debug)]
pub struct PoolConfig {
    /// Requested worker threads (0 is clamped to 1).
    pub threads: usize,
    /// Minimum chunk size; `None` picks [`auto_grain`] from the item
    /// and worker counts. `Some(0)` is treated as `Some(1)`.
    pub grain: Option<usize>,
    /// Hardware-parallelism assumption; `None` reads the host's
    /// [`available_threads`]. Tests (and benchmarks of the scheduler
    /// itself) override this to force the spawning path on small hosts
    /// or the inline path on large ones.
    pub assume_parallelism: Option<usize>,
}

impl PoolConfig {
    /// A configuration with automatic grain and host parallelism.
    pub fn new(threads: usize) -> Self {
        PoolConfig {
            threads,
            grain: None,
            assume_parallelism: None,
        }
    }

    /// Overrides the minimum chunk size.
    pub fn grain(mut self, grain: usize) -> Self {
        self.grain = Some(grain);
        self
    }

    /// Overrides the hardware-parallelism assumption.
    pub fn assume_parallelism(mut self, cores: usize) -> Self {
        self.assume_parallelism = Some(cores);
        self
    }
}

/// What the scheduler actually did for one dispatch — the pool's
/// telemetry surface. Everything here is observability: no simulation
/// result may ever depend on it (worker attribution is
/// scheduler-dependent; the chunk *plan* and the merged output are
/// not).
#[derive(Clone, Debug, Default)]
pub struct PoolStats {
    /// Jobs dispatched.
    pub items: usize,
    /// Worker threads the caller asked for.
    pub requested_threads: usize,
    /// Workers actually spawned (0 on the inline path).
    pub workers_spawned: usize,
    /// Hardware parallelism the dispatch assumed.
    pub assumed_parallelism: usize,
    /// True when the jobs ran inline on the caller's thread.
    pub inline: bool,
    /// Minimum chunk size the plan was built with (items, ≥ 1; equals
    /// `items.max(1)` on the inline path, where the plan is one chunk).
    pub grain: usize,
    /// The chunk plan: disjoint, contiguous, in index order (the
    /// invariant tests pin that it partitions `0..items` exactly).
    pub plan: Vec<Chunk>,
    /// Chunks each spawned worker claimed (empty on the inline path).
    pub per_worker_chunks: Vec<usize>,
    /// Items each spawned worker executed (empty on the inline path;
    /// sums to `items` otherwise).
    pub per_worker_items: Vec<usize>,
}

impl PoolStats {
    /// Total chunks claimed (the plan length on the spawning path, 1 on
    /// the inline path for non-empty input, 0 for empty input).
    pub fn chunks_claimed(&self) -> usize {
        self.plan.len()
    }
}

/// The automatic minimum chunk size for `n` items on `workers` workers:
/// large enough that the guided tail does not degenerate into per-item
/// claims on big inputs, small enough that every worker still sees
/// several chunks (`n / (workers * 8)`, floored at 1).
pub fn auto_grain(n: usize, workers: usize) -> usize {
    (n / (workers.max(1) * GRAIN_CHUNKS_PER_WORKER)).max(1)
}

/// Builds the guided chunk plan for `n` items on `workers` workers with
/// minimum chunk size `grain`: each successive chunk takes
/// `remaining / (2 * workers)` items, floored at `grain`, capped at the
/// remainder. The plan is a pure function of its arguments; the
/// invariant tests pin that it partitions `0..n` exactly (no overlap,
/// no gap) for adversarial shapes.
pub fn plan_chunks(n: usize, workers: usize, grain: usize) -> Vec<Chunk> {
    let workers = workers.max(1);
    let grain = grain.max(1);
    let mut chunks = Vec::new();
    let mut start = 0usize;
    while start < n {
        let remaining = n - start;
        let len = (remaining / (CHUNK_DIVISOR * workers))
            .max(grain)
            .min(remaining);
        chunks.push(Chunk { start, len });
        start += len;
    }
    chunks
}

/// Decides how many workers a dispatch spawns: the requested count,
/// clamped to the job count and to the (assumed) hardware parallelism.
/// An answer ≤ 1 means the inline path — spawning a worker the hardware
/// cannot run concurrently is pure overhead, so a single-core host
/// always runs inline no matter the requested count (the output is
/// identical either way; `assume_parallelism` forces the spawning path
/// where the machinery itself is under test).
fn effective_workers(cfg: &PoolConfig, n: usize) -> usize {
    cfg.threads.max(1).min(n).min(
        cfg.assume_parallelism
            .unwrap_or_else(available_threads)
            .max(1),
    )
}

/// Runs `f(0..n)` under `cfg` and returns the results in index order
/// plus the scheduling stats. This is the configured core; everything
/// else wraps it.
///
/// `f` must satisfy the crate-level determinism contract: the output is
/// then byte-identical to `(0..n).map(f).collect()` for every
/// configuration.
///
/// # Panics
///
/// If a job panics, the panic is propagated to the caller after the
/// scope joins (no result is silently dropped).
pub fn run<R, F>(cfg: &PoolConfig, n: usize, f: F) -> (Vec<R>, PoolStats)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let assumed = cfg
        .assume_parallelism
        .unwrap_or_else(available_threads)
        .max(1);
    let workers = effective_workers(cfg, n);
    if workers <= 1 {
        let results: Vec<R> = (0..n).map(f).collect();
        let stats = PoolStats {
            items: n,
            requested_threads: cfg.threads.max(1),
            workers_spawned: 0,
            assumed_parallelism: assumed,
            inline: true,
            grain: n.max(1),
            plan: if n == 0 {
                Vec::new()
            } else {
                vec![Chunk { start: 0, len: n }]
            },
            per_worker_chunks: Vec::new(),
            per_worker_items: Vec::new(),
        };
        telemetry::record(&stats);
        return (results, stats);
    }

    let grain = cfg
        .grain
        .map(|g| g.max(1))
        .unwrap_or_else(|| auto_grain(n, workers));
    let plan = plan_chunks(n, workers, grain);
    // One shared cursor hands out *chunks*; each worker owns a private
    // run buffer, so the only cross-thread traffic is one fetch_add per
    // chunk and the final join.
    let cursor = AtomicUsize::new(0);
    type Runs<R> = Vec<(usize, Vec<R>)>;
    let worker_outputs: Vec<(Runs<R>, usize, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut runs: Runs<R> = Vec::new();
                    let mut chunks_claimed = 0usize;
                    let mut items_done = 0usize;
                    loop {
                        let c = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(chunk) = plan.get(c) else { break };
                        // Per-worker scratch: the chunk's results are
                        // appended to a run buffer this worker alone
                        // owns, drained once into the merge below.
                        let mut out = Vec::with_capacity(chunk.len);
                        for i in chunk.start..chunk.start + chunk.len {
                            out.push(f(i));
                        }
                        runs.push((chunk.start, out));
                        chunks_claimed += 1;
                        items_done += chunk.len;
                    }
                    (runs, chunks_claimed, items_done)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    let mut per_worker_chunks = Vec::with_capacity(workers);
    let mut per_worker_items = Vec::with_capacity(workers);
    let mut runs: Runs<R> = Vec::with_capacity(plan.len());
    for (worker_runs, chunks_claimed, items_done) in worker_outputs {
        per_worker_chunks.push(chunks_claimed);
        per_worker_items.push(items_done);
        runs.extend(worker_runs);
    }
    // Index-ordered merge: runs are disjoint chunks of 0..n, so sorting
    // by start index and concatenating reproduces the serial order.
    runs.sort_by_key(|(start, _)| *start);
    let mut results = Vec::with_capacity(n);
    for (start, mut out) in runs {
        debug_assert_eq!(start, results.len(), "chunk runs must be contiguous");
        results.append(&mut out);
    }
    assert_eq!(
        results.len(),
        n,
        "simpar: merged {} results for {n} jobs (chunk plan corrupted)",
        results.len()
    );
    let stats = PoolStats {
        items: n,
        requested_threads: cfg.threads.max(1),
        workers_spawned: workers,
        assumed_parallelism: assumed,
        inline: false,
        grain,
        plan,
        per_worker_chunks,
        per_worker_items,
    };
    telemetry::record(&stats);
    (results, stats)
}

/// Runs `f(0..n)` across `threads` scoped workers and returns the
/// results in index order (automatic grain, host parallelism).
///
/// With `threads <= 1`, a single job, or a single-hardware-thread host
/// no worker is spawned and the jobs run inline in index order on the
/// caller's thread.
pub fn map_indexed<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    run(&PoolConfig::new(threads), n, f).0
}

/// [`map_indexed`] with explicit configuration and scheduling stats.
pub fn map_indexed_stats<R, F>(cfg: &PoolConfig, n: usize, f: F) -> (Vec<R>, PoolStats)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    run(cfg, n, f)
}

/// Runs `f(i, &items[i])` for every item across `threads` scoped workers
/// and returns the results in item order.
///
/// Same contract as [`map_indexed`]; the index argument lets jobs label
/// their work (trial number, scenario id) without shared counters.
pub fn map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    map_indexed(threads, items.len(), |i| f(i, &items[i]))
}

/// [`map`] with explicit configuration and scheduling stats.
pub fn map_stats<T, R, F>(cfg: &PoolConfig, items: &[T], f: F) -> (Vec<R>, PoolStats)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run(cfg, items.len(), |i| f(i, &items[i]))
}

/// Process-wide cumulative dispatch counters.
///
/// A scenario like `fig16` performs dozens of nested pool dispatches
/// behind several layers of harness; threading a stats value through
/// all of them would put scheduling bookkeeping in every simulation
/// signature. Instead the pool bumps these relaxed atomics on every
/// dispatch and the `bench` verb brackets each measured scenario with
/// [`reset`](telemetry::reset)/[`snapshot`](telemetry::snapshot) to
/// annotate its `BENCH_sweep.json` record. Observability only — no
/// simulation result may depend on these values.
pub mod telemetry {
    use super::{AtomicU64, Ordering, PoolStats};

    static DISPATCHES: AtomicU64 = AtomicU64::new(0);
    static INLINE_RUNS: AtomicU64 = AtomicU64::new(0);
    static SPAWNED_RUNS: AtomicU64 = AtomicU64::new(0);
    static CHUNKS: AtomicU64 = AtomicU64::new(0);
    static WORKERS: AtomicU64 = AtomicU64::new(0);
    static ITEMS: AtomicU64 = AtomicU64::new(0);

    /// Cumulative pool activity since the last [`reset`].
    #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
    pub struct Totals {
        /// Pool dispatches (one per `map`/`map_indexed`/`run` call).
        pub dispatches: u64,
        /// Dispatches that took the inline fallback.
        pub inline_runs: u64,
        /// Dispatches that spawned workers.
        pub spawned_runs: u64,
        /// Chunks claimed across spawned dispatches.
        pub chunks: u64,
        /// Workers spawned, summed across dispatches.
        pub workers: u64,
        /// Items executed across all dispatches.
        pub items: u64,
    }

    pub(super) fn record(stats: &PoolStats) {
        DISPATCHES.fetch_add(1, Ordering::Relaxed);
        ITEMS.fetch_add(stats.items as u64, Ordering::Relaxed);
        if stats.inline {
            INLINE_RUNS.fetch_add(1, Ordering::Relaxed);
        } else {
            SPAWNED_RUNS.fetch_add(1, Ordering::Relaxed);
            CHUNKS.fetch_add(stats.plan.len() as u64, Ordering::Relaxed);
            WORKERS.fetch_add(stats.workers_spawned as u64, Ordering::Relaxed);
        }
    }

    /// Zeroes every counter (bracketing a measurement).
    pub fn reset() {
        for c in [
            &DISPATCHES,
            &INLINE_RUNS,
            &SPAWNED_RUNS,
            &CHUNKS,
            &WORKERS,
            &ITEMS,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Reads every counter.
    pub fn snapshot() -> Totals {
        Totals {
            dispatches: DISPATCHES.load(Ordering::Relaxed),
            inline_runs: INLINE_RUNS.load(Ordering::Relaxed),
            spawned_runs: SPAWNED_RUNS.load(Ordering::Relaxed),
            chunks: CHUNKS.load(Ordering::Relaxed),
            workers: WORKERS.load(Ordering::Relaxed),
            items: ITEMS.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A config that always exercises the spawning path, even on a
    /// single-core test host.
    fn forced(threads: usize) -> PoolConfig {
        PoolConfig::new(threads).assume_parallelism(threads.max(2))
    }

    #[test]
    fn results_come_back_in_index_order() {
        // Jobs of wildly uneven cost: later indices finish first under
        // any scheduler, yet the merge is by index.
        let (out, stats) = run(&forced(8), 64, |i| {
            let mut acc = 0u64;
            for k in 0..((64 - i) * 1000) as u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            (i, acc)
        });
        assert!(!stats.inline);
        for (i, pair) in out.iter().enumerate() {
            assert_eq!(pair.0, i);
        }
    }

    #[test]
    fn every_thread_count_matches_serial() {
        let serial: Vec<u64> = (0..33).map(|i| (i as u64) * 17 + 3).collect();
        for threads in [1, 2, 3, 8, 64] {
            let par = map_indexed(threads, 33, |i| (i as u64) * 17 + 3);
            assert_eq!(par, serial, "threads={threads} (heuristic)");
            let (par, _) = run(&forced(threads), 33, |i| (i as u64) * 17 + 3);
            assert_eq!(par, serial, "threads={threads} (forced spawn)");
        }
    }

    #[test]
    fn zero_jobs_and_zero_threads_are_fine() {
        let empty: Vec<u8> = map_indexed(4, 0, |_| 0u8);
        assert!(empty.is_empty());
        // threads=0 is clamped to 1 (serial).
        assert_eq!(map_indexed(0, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn map_passes_item_and_index() {
        let items = ["x", "yy", "zzz", "ww"];
        let out = map(3, &items, |i, s| format!("{i}:{s}"));
        assert_eq!(out, vec!["0:x", "1:yy", "2:zzz", "3:ww"]);
    }

    #[test]
    fn single_job_runs_inline() {
        let (out, stats) = run(&forced(8), 1, |i| i + 41);
        assert_eq!(out, vec![41]);
        assert!(stats.inline);
        assert_eq!(stats.workers_spawned, 0);
    }

    #[test]
    fn single_core_host_runs_inline_at_any_thread_count() {
        let cfg = PoolConfig::new(8).assume_parallelism(1);
        let (out, stats) = run(&cfg, 100, |i| i);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
        assert!(stats.inline, "1-core host must not spawn");
        assert_eq!(stats.workers_spawned, 0);
    }

    #[test]
    fn effective_workers_is_clamped() {
        let cores = |t: usize, cores: usize| PoolConfig::new(t).assume_parallelism(cores);
        assert_eq!(effective_workers(&cores(0, 8), 10), 1);
        assert_eq!(effective_workers(&cores(16, 8), 3), 3);
        assert_eq!(effective_workers(&cores(4, 8), 0), 0);
        assert_eq!(effective_workers(&cores(16, 2), 10), 2);
        assert_eq!(effective_workers(&cores(2, 8), 10), 2);
    }

    #[test]
    fn plan_is_guided_and_exact() {
        let plan = plan_chunks(1000, 4, 1);
        // Geometrically shrinking: first chunk is the biggest.
        assert_eq!(plan[0].start, 0);
        assert_eq!(plan[0].len, 125);
        assert!(plan.windows(2).all(|w| w[0].len >= w[1].len));
        // Exact partition.
        let mut next = 0usize;
        for c in &plan {
            assert_eq!(c.start, next);
            assert!(c.len >= 1);
            next += c.len;
        }
        assert_eq!(next, 1000);
    }

    #[test]
    fn grain_floors_the_plan() {
        for c in plan_chunks(1000, 4, 100) {
            assert!(c.len >= 100 || c.start + c.len == 1000);
        }
        // grain >= n collapses the plan to one chunk.
        assert_eq!(plan_chunks(10, 4, 10), vec![Chunk { start: 0, len: 10 }]);
        assert_eq!(plan_chunks(10, 4, 11), vec![Chunk { start: 0, len: 10 }]);
        // grain 0 behaves as 1, and an empty input has an empty plan.
        assert_eq!(plan_chunks(10, 2, 0).len(), plan_chunks(10, 2, 1).len());
        assert!(plan_chunks(0, 4, 1).is_empty());
    }

    #[test]
    fn auto_grain_scales_with_items_per_worker() {
        assert_eq!(auto_grain(0, 4), 1);
        assert_eq!(auto_grain(10, 4), 1);
        assert_eq!(auto_grain(1000, 4), 31);
        assert_eq!(auto_grain(1000, 0), 125);
    }

    #[test]
    fn stats_reflect_the_dispatch() {
        let cfg = forced(4).grain(1);
        let (_, stats) = run(&cfg, 64, |i| i);
        assert_eq!(stats.items, 64);
        assert_eq!(stats.requested_threads, 4);
        assert_eq!(stats.workers_spawned, 4);
        assert!(!stats.inline);
        assert_eq!(stats.per_worker_items.iter().sum::<usize>(), 64);
        assert_eq!(
            stats.per_worker_chunks.iter().sum::<usize>(),
            stats.plan.len()
        );
    }

    // The telemetry counters are process-global, so their exact-count
    // assertions live in tests/telemetry.rs — a binary where that test
    // runs alone and no concurrent test can bump the counters.

    #[test]
    fn available_threads_is_at_least_one() {
        assert!(available_threads() >= 1);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let _ = run(&forced(4).grain(1), 8, |i| {
            if i == 3 {
                panic!("job 3 panicked");
            }
            i
        });
    }
}
