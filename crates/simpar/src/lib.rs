#![forbid(unsafe_code)]
//! simpar: a deterministic scoped-thread work pool.
//!
//! The evaluation sweeps are embarrassingly parallel: every trial runs
//! with a random stream forked purely from `(seed, label, index)`, so
//! trials share no state and their results depend only on their index.
//! This crate fans such work out over `std::thread::scope` workers and
//! merges results **in index order**, making the parallel run
//! byte-identical to the serial one (`tests/parallel_equivalence.rs`
//! enforces this against the golden traces).
//!
//! Consumers beyond the experiment sweeps: `simserve` fans whole session
//! lifecycles across the pool, and `simlint` fans its per-file analysis
//! (`--threads`), both with the same index-ordered-merge guarantee.
//!
//! # The determinism contract (DESIGN.md §13)
//!
//! - **Pure jobs.** `f(i)` must be a pure function of its index and of
//!   immutable captured state. Jobs must not communicate, touch shared
//!   mutable state, read the wall clock, or draw from a shared RNG.
//! - **Index-ordered merge.** Results land in a slot vector indexed by
//!   job number; the merge is a plain in-order collection. Nothing in the
//!   merge path reads the wall clock or depends on completion order.
//! - **Serial fallback.** With one worker (or one job) the pool runs
//!   inline on the caller's thread — `threads: 1` is *identical* to a
//!   plain loop, which is what makes `--threads 1` useful for bisecting.
//!
//! The work queue is channel-free: a single `AtomicUsize` cursor hands
//! out the next unclaimed index, so workers self-balance across jobs of
//! uneven cost without any ordering side-effects.
//!
//! This is the one crate in the workspace allowed to touch
//! `std::thread` (simlint rule D1 confines thread use here; everything
//! else goes through this API).
//!
//! # Examples
//!
//! ```
//! let squares = simpar::map_indexed(4, 8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//!
//! let words = ["a", "bb", "ccc"];
//! let lens = simpar::map(2, &words, |_, w| w.len());
//! assert_eq!(lens, vec![1, 2, 3]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker threads to use by default: the machine's available parallelism
/// (1 when it cannot be determined).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Clamps a requested worker count to something sane for `jobs` jobs:
/// at least 1, at most one worker per job.
fn worker_count(threads: usize, jobs: usize) -> usize {
    threads.max(1).min(jobs.max(1))
}

/// Runs `f(0..n)` across `threads` scoped workers and returns the
/// results in index order.
///
/// `f` must satisfy the crate-level determinism contract: the output is
/// then byte-identical to `(0..n).map(f).collect()` for every thread
/// count. With `threads <= 1` (or `n <= 1`) no thread is spawned and the
/// jobs run inline in index order on the caller's thread.
///
/// # Panics
///
/// If a job panics, the panic is propagated to the caller after the
/// scope joins (no result is silently dropped).
pub fn map_indexed<R, F>(threads: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = worker_count(threads, n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    // Channel-free work queue: one shared cursor hands out indices;
    // per-index slots collect results for the in-order merge.
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = f(i);
                // A slot is locked exactly once, by the worker that
                // claimed its index; poisoning is impossible because the
                // critical section is a plain store.
                match slots[i].lock() {
                    Ok(mut guard) => *guard = Some(result),
                    Err(poisoned) => *poisoned.into_inner() = Some(result),
                }
            });
        }
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            let value = match slot.into_inner() {
                Ok(v) => v,
                Err(poisoned) => poisoned.into_inner(),
            };
            match value {
                Some(r) => r,
                // Unreachable: the cursor hands out every index below `n`
                // exactly once and the scope joins all workers.
                None => panic!("simpar: job {i} produced no result"),
            }
        })
        .collect()
}

/// Runs `f(i, &items[i])` for every item across `threads` scoped workers
/// and returns the results in item order.
///
/// Same contract as [`map_indexed`]; the index argument lets jobs label
/// their work (trial number, scenario id) without shared counters.
pub fn map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    map_indexed(threads, items.len(), |i| f(i, &items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        // Jobs of wildly uneven cost: later indices finish first under
        // any scheduler, yet the merge is by index.
        let out = map_indexed(8, 64, |i| {
            let mut acc = 0u64;
            for k in 0..((64 - i) * 1000) as u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            (i, acc)
        });
        for (i, pair) in out.iter().enumerate() {
            assert_eq!(pair.0, i);
        }
    }

    #[test]
    fn every_thread_count_matches_serial() {
        let serial: Vec<u64> = (0..33).map(|i| (i as u64) * 17 + 3).collect();
        for threads in [1, 2, 3, 8, 64] {
            let par = map_indexed(threads, 33, |i| (i as u64) * 17 + 3);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn zero_jobs_and_zero_threads_are_fine() {
        let empty: Vec<u8> = map_indexed(4, 0, |_| 0u8);
        assert!(empty.is_empty());
        // threads=0 is clamped to 1 (serial).
        assert_eq!(map_indexed(0, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn map_passes_item_and_index() {
        let items = ["x", "yy", "zzz", "ww"];
        let out = map(3, &items, |i, s| format!("{i}:{s}"));
        assert_eq!(out, vec!["0:x", "1:yy", "2:zzz", "3:ww"]);
    }

    #[test]
    fn single_job_runs_inline() {
        let out = map_indexed(8, 1, |i| i + 41);
        assert_eq!(out, vec![41]);
    }

    #[test]
    fn worker_count_is_clamped() {
        assert_eq!(worker_count(0, 10), 1);
        assert_eq!(worker_count(16, 3), 3);
        assert_eq!(worker_count(4, 0), 1);
        assert_eq!(worker_count(2, 10), 2);
    }

    #[test]
    fn available_threads_is_at_least_one() {
        assert!(available_threads() >= 1);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let _ = map_indexed(4, 8, |i| {
            if i == 3 {
                panic!("job 3 panicked");
            }
            i
        });
    }
}
