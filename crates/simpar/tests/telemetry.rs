//! Cumulative telemetry counters: exact-count assertions.
//!
//! The counters are process-global, so this is the *only* test in this
//! binary — a concurrent test dispatching the pool would perturb the
//! counts. (Cargo runs each integration-test file as its own process.)

use simpar::{telemetry, PoolConfig};

#[test]
fn telemetry_accumulates_and_resets() {
    telemetry::reset();
    // One forced-spawn dispatch (2 workers, per-item chunks)…
    let cfg = PoolConfig::new(2).assume_parallelism(2).grain(1);
    let (out, stats) = simpar::map_indexed_stats(&cfg, 16, |i| i);
    assert_eq!(out.len(), 16);
    assert!(!stats.inline);
    // …and one inline dispatch.
    let _ = simpar::map_indexed(1, 5, |i| i);

    let t = telemetry::snapshot();
    assert_eq!(t.dispatches, 2);
    assert_eq!(t.spawned_runs, 1);
    assert_eq!(t.inline_runs, 1);
    assert_eq!(t.items, 21);
    assert_eq!(t.chunks, stats.plan.len() as u64);
    assert_eq!(t.workers, 2);

    telemetry::reset();
    assert_eq!(telemetry::snapshot(), telemetry::Totals::default());
}
