//! PoolStats invariants: the chunk plan and the scheduling stats must
//! describe a real, exact partition of the work.
//!
//! Three properties, each over adversarial `(n, workers, grain)` grids:
//!
//! 1. `plan_chunks` partitions `0..n` exactly — contiguous, no overlap,
//!    no gap, every chunk non-empty.
//! 2. A forced-parallel run's per-worker item counts sum to `n`, and
//!    its per-worker chunk counts sum to the plan length (every chunk
//!    claimed exactly once).
//! 3. The inline fallback spawns zero workers and says so.

use simpar::{auto_grain, plan_chunks, PoolConfig};

/// Adversarial item counts: empty, single, around powers of two, around
/// typical worker counts, and a large one.
const NS: [usize; 17] = [0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33, 64, 100, 1000];

/// Worker counts: serial through oversubscribed.
const WORKERS: [usize; 6] = [1, 2, 3, 4, 8, 16];

/// Grain values probed for each `n` (plus `n`-relative ones added at
/// the call site: 1, n, n+1).
fn grains_for(n: usize) -> Vec<usize> {
    vec![1, 2, 7, n.max(1), n + 1]
}

/// Property 1: the plan partitions `0..n` exactly for every grid point.
#[test]
fn plan_partitions_index_space_exactly() {
    for n in NS {
        for workers in WORKERS {
            for grain in grains_for(n) {
                let plan = plan_chunks(n, workers, grain);
                let mut next = 0usize;
                for c in &plan {
                    assert_eq!(
                        c.start, next,
                        "gap/overlap at n={n} workers={workers} grain={grain}: \
                         chunk starts at {} but {} items are covered",
                        c.start, next
                    );
                    assert!(
                        c.len > 0,
                        "empty chunk at n={n} workers={workers} grain={grain}"
                    );
                    next += c.len;
                }
                assert_eq!(
                    next, n,
                    "plan covers {next} of {n} items (workers={workers} grain={grain})"
                );
                if n == 0 {
                    assert!(plan.is_empty(), "non-empty plan for zero items");
                }
            }
        }
    }
}

/// The auto grain never exceeds the input and never drops to zero, so
/// the plan above is always well-formed under the default configuration.
#[test]
fn auto_grain_is_positive_and_bounded() {
    for n in NS {
        for workers in WORKERS {
            let g = auto_grain(n, workers);
            assert!(g >= 1, "auto grain 0 at n={n} workers={workers}");
            assert!(
                g <= n.max(1),
                "auto grain {g} exceeds n={n} at workers={workers}"
            );
        }
    }
}

/// Property 2: on the forced-parallel path, per-worker accounting sums
/// to the whole job — items to `n`, chunks to the plan length — and the
/// results are the identity permutation (each job returns its index).
#[test]
fn per_worker_accounting_sums_to_whole_job() {
    for n in NS.into_iter().filter(|&n| n >= 2) {
        for workers in [2, 3, 4, 8] {
            for grain in grains_for(n) {
                // assume_parallelism forces real spawning even on a
                // single-core CI host, where the pool would otherwise
                // (correctly) run inline.
                let cfg = PoolConfig::new(workers)
                    .grain(grain)
                    .assume_parallelism(workers);
                let (out, stats) = simpar::map_indexed_stats(&cfg, n, |i| i);
                assert_eq!(out, (0..n).collect::<Vec<_>>());
                assert!(!stats.inline, "n={n} workers={workers} ran inline");
                assert_eq!(stats.items, n);
                assert_eq!(stats.workers_spawned, workers.min(n));
                assert_eq!(stats.per_worker_items.len(), stats.workers_spawned);
                assert_eq!(stats.per_worker_chunks.len(), stats.workers_spawned);
                assert_eq!(
                    stats.per_worker_items.iter().sum::<usize>(),
                    n,
                    "worker item counts must sum to n={n} (workers={workers} grain={grain})"
                );
                assert_eq!(
                    stats.per_worker_chunks.iter().sum::<usize>(),
                    stats.plan.len(),
                    "every chunk claimed exactly once (n={n} workers={workers} grain={grain})"
                );
                assert_eq!(stats.chunks_claimed(), stats.plan.len());
            }
        }
    }
}

/// Property 3: every inline trigger — one thread, one job, empty input,
/// or a single-core host — reports zero spawned workers.
#[test]
fn inline_fallback_reports_zero_workers() {
    let cases: [(PoolConfig, usize, &str); 4] = [
        (PoolConfig::new(1).assume_parallelism(8), 64, "one thread"),
        (PoolConfig::new(8).assume_parallelism(8), 1, "one job"),
        (PoolConfig::new(8).assume_parallelism(8), 0, "empty input"),
        (
            PoolConfig::new(8).assume_parallelism(1),
            64,
            "single-core host",
        ),
    ];
    for (cfg, n, why) in cases {
        let (out, stats) = simpar::map_indexed_stats(&cfg, n, |i| i * 3);
        assert_eq!(out, (0..n).map(|i| i * 3).collect::<Vec<_>>());
        assert!(stats.inline, "{why}: expected the inline path");
        assert_eq!(stats.workers_spawned, 0, "{why}: inline must spawn nothing");
        assert!(stats.per_worker_items.is_empty(), "{why}");
        assert!(stats.per_worker_chunks.is_empty(), "{why}");
        if n == 0 {
            assert_eq!(stats.chunks_claimed(), 0, "{why}");
        } else {
            assert_eq!(stats.chunks_claimed(), 1, "{why}");
        }
    }
}
