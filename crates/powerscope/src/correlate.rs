//! The offline correlation stage.
//!
//! "In a later off-line stage, PowerScope combines these sequences with
//! symbol table information from binaries and shared libraries on the
//! profiling computer ... The result is an energy profile." Each sample's
//! energy quantum is its current reading times the supply voltage times
//! the gap to the next sample; the quantum is attributed to the process
//! the PID monitor observed and the procedure its symbol table resolves
//! the raw PC into.

use std::collections::BTreeMap;

use crate::profile::{EnergyProfile, PathProfile, PathRow, ProcedureRow, ProcessPaths, ProcessRow};
use crate::sample::CollectedRun;
use crate::symbols::UNKNOWN_PROCEDURE;
use crate::SUPPLY_VOLTS;

/// Options for the correlation stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct CorrelateOptions {
    /// Cap on a single sample's quantum. When the multimeter drops
    /// triggers, the surviving sample before a gap would otherwise absorb
    /// the whole gap's energy and time, grossly over-attributing to
    /// whatever happened to be running at that instant. With a cap, a
    /// quantum longer than `max_quantum` is truncated: the profile then
    /// covers only metered time, and `duration_s` shrinks by the
    /// uncovered gaps instead of lying about attribution.
    pub max_quantum: Option<simcore::SimDuration>,
}

/// Correlates a collected run into an energy profile.
///
/// Samples must be in time order (as the multimeter produced them). The
/// final sample's quantum extends to the trace end. PCs with no covering
/// symbol resolve to [`UNKNOWN_PROCEDURE`].
pub fn correlate(run: &CollectedRun) -> EnergyProfile {
    correlate_with(run, CorrelateOptions::default())
}

/// [`correlate`] with explicit [`CorrelateOptions`] — used when the trace
/// came from a faulty meter and may contain sampling gaps.
pub fn correlate_with(run: &CollectedRun, opts: CorrelateOptions) -> EnergyProfile {
    let trace = &run.trace;
    let cap_secs = opts.max_quantum.map(|q| q.as_secs_f64());
    // Ordered maps: profile rows must come out in the same order on every
    // run — the sort below breaks energy ties by name, but equal-energy
    // equal-name rows would still float under a randomized hash order.
    let mut by_proc: BTreeMap<&'static str, BTreeMap<&'static str, (f64, f64)>> = BTreeMap::new();
    let mut duration = 0.0;
    for (i, s) in trace.samples.iter().enumerate() {
        let next_at = trace
            .samples
            .get(i + 1)
            .map(|n| n.at)
            .unwrap_or(trace.end.max(s.at));
        let mut dt = next_at.since(s.at).as_secs_f64();
        if let Some(cap) = cap_secs {
            dt = dt.min(cap);
        }
        let energy = s.current_a * SUPPLY_VOLTS * dt;
        duration += dt;
        let procedure = run
            .symbols
            .get(s.process)
            .map(|t| t.resolve(s.pc()))
            .unwrap_or(UNKNOWN_PROCEDURE);
        let entry = by_proc
            .entry(s.process)
            .or_default()
            .entry(procedure)
            .or_insert((0.0, 0.0));
        entry.0 += dt;
        entry.1 += energy;
    }
    let mut processes: Vec<ProcessRow> = by_proc
        .into_iter()
        .map(|(process, procs)| {
            let mut procedures: Vec<ProcedureRow> = procs
                .into_iter()
                .map(|(procedure, (cpu_secs, energy_j))| ProcedureRow {
                    procedure: procedure.to_string(),
                    cpu_secs,
                    energy_j,
                })
                .collect();
            procedures.sort_by(|a, b| {
                b.energy_j
                    .total_cmp(&a.energy_j)
                    .then_with(|| a.procedure.cmp(&b.procedure))
            });
            ProcessRow {
                process: process.to_string(),
                cpu_secs: procedures.iter().map(|p| p.cpu_secs).sum(),
                energy_j: procedures.iter().map(|p| p.energy_j).sum(),
                procedures,
            }
        })
        .collect();
    processes.sort_by(|a, b| {
        b.energy_j
            .total_cmp(&a.energy_j)
            .then_with(|| a.process.cmp(&b.process))
    });
    EnergyProfile {
        processes,
        duration_s: duration,
    }
}

/// Correlates a collected run into a per-call-path energy profile with
/// parent/child inclusive–exclusive accounting.
///
/// Each sample's quantum is attributed *exclusively* to its leaf frame
/// and *inclusively* to every ancestor on its stack, so a parent row's
/// inclusive energy is exactly the sum of its own exclusive energy and
/// its children's inclusive energies, and the leaf-exclusive energies of
/// one process sum to that process's total. Rows come out in
/// lexicographic path order (parents immediately before their subtrees).
pub fn correlate_paths(run: &CollectedRun) -> PathProfile {
    correlate_paths_with(run, CorrelateOptions::default())
}

/// [`correlate_paths`] with explicit [`CorrelateOptions`].
pub fn correlate_paths_with(run: &CollectedRun, opts: CorrelateOptions) -> PathProfile {
    #[derive(Clone, Copy, Default)]
    struct Node {
        samples: u64,
        self_time_s: f64,
        self_energy_j: f64,
        inclusive_time_s: f64,
        inclusive_energy_j: f64,
    }
    let trace = &run.trace;
    let cap_secs = opts.max_quantum.map(|q| q.as_secs_f64());
    // BTreeMaps for the same reason as the flat stage: row order must
    // not depend on a hash seed. Path keys sort parents immediately
    // before their children ("a" < "a/b" < "a/b/c" < "a/c").
    let mut by_proc: BTreeMap<&'static str, BTreeMap<String, Node>> = BTreeMap::new();
    let mut duration = 0.0;
    for (i, s) in trace.samples.iter().enumerate() {
        let next_at = trace
            .samples
            .get(i + 1)
            .map(|n| n.at)
            .unwrap_or(trace.end.max(s.at));
        let mut dt = next_at.since(s.at).as_secs_f64();
        if let Some(cap) = cap_secs {
            dt = dt.min(cap);
        }
        let energy = s.current_a * SUPPLY_VOLTS * dt;
        duration += dt;
        let table = run.symbols.get(s.process);
        let nodes = by_proc.entry(s.process).or_default();
        let mut path = String::new();
        let frames = s.stack.frames();
        for (depth, pc) in frames.iter().enumerate() {
            let name = table.map(|t| t.resolve(*pc)).unwrap_or(UNKNOWN_PROCEDURE);
            if depth > 0 {
                path.push('/');
            }
            path.push_str(name);
            let node = nodes.entry(path.clone()).or_default();
            node.inclusive_time_s += dt;
            node.inclusive_energy_j += energy;
            if depth + 1 == frames.len() {
                node.samples += 1;
                node.self_time_s += dt;
                node.self_energy_j += energy;
            }
        }
        if frames.is_empty() {
            // A degenerate empty stack still has to keep the books
            // balanced: bill the quantum to the unknown procedure.
            let node = nodes.entry(UNKNOWN_PROCEDURE.to_string()).or_default();
            node.samples += 1;
            node.self_time_s += dt;
            node.self_energy_j += energy;
            node.inclusive_time_s += dt;
            node.inclusive_energy_j += energy;
        }
    }
    let processes: Vec<ProcessPaths> = by_proc
        .into_iter()
        .map(|(process, nodes)| {
            let rows: Vec<PathRow> = nodes
                .into_iter()
                .map(|(path, n)| PathRow {
                    path,
                    samples: n.samples,
                    self_time_s: n.self_time_s,
                    self_energy_j: n.self_energy_j,
                    inclusive_time_s: n.inclusive_time_s,
                    inclusive_energy_j: n.inclusive_energy_j,
                })
                .collect();
            let energy_j = rows.iter().map(|r| r.self_energy_j).sum();
            ProcessPaths {
                process: process.to_string(),
                rows,
                energy_j,
            }
        })
        .collect();
    PathProfile {
        processes,
        duration_s: duration,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::Sample;
    use crate::symbols::SymbolTable;
    use simcore::SimTime;

    fn run_with(samples: Vec<(u64, f64, &'static str, &'static str)>, end_ms: u64) -> CollectedRun {
        let mut run = CollectedRun::default();
        for (at_ms, current, process, procedure) in samples {
            let table = run.symbols.entry(process).or_insert_with(SymbolTable::new);
            table.intern(procedure);
            let pc = table.pc_within(procedure, 7);
            run.trace.samples.push(Sample {
                at: SimTime::from_micros(at_ms * 1000),
                current_a: current,
                process,
                stack: crate::sample::CallStack::leaf_only(pc),
            });
        }
        run.trace.end = SimTime::from_micros(end_ms * 1000);
        run
    }

    /// A run whose samples carry full call paths (root first).
    fn run_with_paths(
        samples: Vec<(u64, f64, &'static str, &'static [&'static str])>,
        end_ms: u64,
    ) -> CollectedRun {
        let mut run = CollectedRun::default();
        for (at_ms, current, process, path) in samples {
            let table = run.symbols.entry(process).or_insert_with(SymbolTable::new);
            let mut stack = crate::sample::CallStack::default();
            for frame in path {
                table.intern(frame);
                stack.push(table.pc_within(frame, 7));
            }
            run.trace.samples.push(Sample {
                at: SimTime::from_micros(at_ms * 1000),
                current_a: current,
                process,
                stack,
            });
        }
        run.trace.end = SimTime::from_micros(end_ms * 1000);
        run
    }

    #[test]
    fn quanta_extend_to_next_sample() {
        let run = run_with(
            vec![
                (0, 1.0, "a", "f"),   // 12 W for 0.5 s → 6 J.
                (500, 2.0, "b", "g"), // 24 W for 0.5 s → 12 J.
            ],
            1000,
        );
        let p = correlate(&run);
        assert!((p.process_energy_j("a") - 6.0).abs() < 1e-9);
        assert!((p.process_energy_j("b") - 12.0).abs() < 1e-9);
        assert!((p.duration_s - 1.0).abs() < 1e-9);
        assert_eq!(p.processes[0].process, "b", "sorted by energy");
    }

    #[test]
    fn procedures_accumulate_within_process() {
        let run = run_with(
            vec![
                (0, 1.0, "a", "f"),
                (100, 1.0, "a", "g"),
                (200, 1.0, "a", "f"),
            ],
            300,
        );
        let p = correlate(&run);
        assert_eq!(p.processes.len(), 1);
        let row = &p.processes[0];
        assert_eq!(row.procedures.len(), 2);
        let f = row.procedures.iter().find(|r| r.procedure == "f").unwrap();
        assert!((f.cpu_secs - 0.2).abs() < 1e-9);
        assert!((row.energy_j - 12.0 * 0.3).abs() < 1e-9);
    }

    #[test]
    fn unresolvable_pcs_land_in_unknown() {
        let mut run = run_with(vec![(0, 1.0, "a", "f")], 200);
        // A sample from a process with no symbol table at all.
        run.trace.samples.push(Sample {
            at: SimTime::from_micros(100 * 1000),
            current_a: 1.0,
            process: "stripped",
            stack: crate::sample::CallStack::leaf_only(0xdead_beef),
        });
        let p = correlate(&run);
        let stripped = p
            .processes
            .iter()
            .find(|r| r.process == "stripped")
            .expect("stripped process present");
        assert_eq!(stripped.procedures[0].procedure, UNKNOWN_PROCEDURE);
    }

    #[test]
    fn empty_trace_gives_empty_profile() {
        let p = correlate(&CollectedRun::default());
        assert!(p.processes.is_empty());
        assert_eq!(p.total_energy_j(), 0.0);
    }

    #[test]
    fn profile_row_order_is_sample_order_independent() {
        // Regression test for the HashMap → BTreeMap conversion: two
        // traces with the same per-process totals must render identical
        // profiles even when the samples arrive in a different process
        // order. Every process gets equal energy, so row order rests
        // entirely on the deterministic name tie-break.
        let quanta = [(0, "c"), (100, "a"), (200, "b"), (300, "d")];
        let forward: Vec<_> = quanta
            .iter()
            .enumerate()
            .map(|(i, (_, p))| ((i as u64) * 100, 1.0, *p, "f"))
            .collect();
        let reversed: Vec<_> = quanta
            .iter()
            .rev()
            .enumerate()
            .map(|(i, (_, p))| ((i as u64) * 100, 1.0, *p, "f"))
            .collect();
        let pf = correlate(&run_with(forward, 400));
        let pr = correlate(&run_with(reversed, 400));
        let order_f: Vec<&str> = pf.processes.iter().map(|r| r.process.as_str()).collect();
        let order_r: Vec<&str> = pr.processes.iter().map(|r| r.process.as_str()).collect();
        assert_eq!(order_f, order_r);
        assert_eq!(order_f, ["a", "b", "c", "d"]);
    }

    #[test]
    fn paths_roll_up_inclusive_and_exclusive_energy() {
        // 12 W throughout; four 0.25 s quanta: two on a/b/c, one on
        // a/b/d, one on a (a root-level leaf).
        let run = run_with_paths(
            vec![
                (0, 1.0, "p", &["a", "b", "c"]),
                (250, 1.0, "p", &["a", "b", "d"]),
                (500, 1.0, "p", &["a", "b", "c"]),
                (750, 1.0, "p", &["a"]),
            ],
            1000,
        );
        let prof = correlate_paths(&run);
        assert_eq!(prof.processes.len(), 1);
        let p = &prof.processes[0];
        let row = |path: &str| {
            p.rows
                .iter()
                .find(|r| r.path == path)
                .unwrap_or_else(|| panic!("missing row {path}"))
        };
        let q = 12.0 * 0.25; // one quantum's energy, J
        assert!((row("a/b/c").self_energy_j - 2.0 * q).abs() < 1e-9);
        assert_eq!(row("a/b/c").samples, 2);
        assert!((row("a/b/d").self_energy_j - q).abs() < 1e-9);
        // Interior node: no exclusive samples, inclusive = children.
        assert_eq!(row("a/b").samples, 0);
        assert!((row("a/b").self_energy_j).abs() < 1e-12);
        assert!((row("a/b").inclusive_energy_j - 3.0 * q).abs() < 1e-9);
        // Root: one exclusive quantum plus the subtree.
        assert_eq!(row("a").samples, 1);
        assert!((row("a").self_energy_j - q).abs() < 1e-9);
        assert!((row("a").inclusive_energy_j - 4.0 * q).abs() < 1e-9);
        // Parent inclusive == own exclusive + children inclusive.
        assert!(
            (row("a").inclusive_energy_j - row("a").self_energy_j - row("a/b").inclusive_energy_j)
                .abs()
                < 1e-9
        );
        // Process total == sum of leaf exclusives == root inclusive.
        assert!((p.energy_j - 4.0 * q).abs() < 1e-9);
        assert!((prof.total_energy_j() - 4.0 * q).abs() < 1e-9);
        // Rows are in lexicographic order: parents before children.
        let order: Vec<&str> = p.rows.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(order, ["a", "a/b", "a/b/c", "a/b/d"]);
    }

    #[test]
    fn path_profile_agrees_with_flat_profile_totals() {
        let run = run_with_paths(
            vec![
                (0, 1.0, "p", &["root", "f"]),
                (100, 2.0, "q", &["g"]),
                (200, 1.0, "p", &["root", "h"]),
            ],
            300,
        );
        let flat = correlate(&run);
        let paths = correlate_paths(&run);
        assert!((flat.total_energy_j() - paths.total_energy_j()).abs() < 1e-9);
        for proc in &paths.processes {
            assert!(
                (proc.energy_j - flat.process_energy_j(&proc.process)).abs() < 1e-9,
                "{} disagrees",
                proc.process
            );
        }
        assert!((flat.duration_s - paths.duration_s).abs() < 1e-12);
    }

    #[test]
    fn path_table_renders_with_d4_headers() {
        let run = run_with_paths(vec![(0, 1.0, "p", &["a", "b"])], 100);
        let text = correlate_paths(&run).format_table();
        let header = text.lines().next().unwrap_or("");
        for field in [
            "process",
            "path",
            "samples",
            "self_time_s",
            "self_energy_j",
            "inclusive_time_s",
            "inclusive_energy_j",
        ] {
            assert!(header.contains(field), "missing {field} in {header}");
        }
        assert!(text.contains("a/b"), "{text}");
    }

    #[test]
    fn max_quantum_caps_gap_attribution() {
        // A 2 s sampling gap after the first sample: uncapped, process
        // "a" absorbs all 2 s; capped at 100 ms, it absorbs only the
        // metered window and the profile duration shrinks by the gap.
        let run = run_with(vec![(0, 1.0, "a", "f"), (2000, 1.0, "b", "g")], 2100);
        let uncapped = correlate(&run);
        assert!((uncapped.process_energy_j("a") - 12.0 * 2.0).abs() < 1e-9);
        let capped = correlate_with(
            &run,
            CorrelateOptions {
                max_quantum: Some(simcore::SimDuration::from_millis(100)),
            },
        );
        assert!((capped.process_energy_j("a") - 12.0 * 0.1).abs() < 1e-9);
        assert!((capped.duration_s - 0.2).abs() < 1e-9);
    }
}
