//! The on-line PowerScope variant (Section 5.1.1).
//!
//! To direct adaptation, "Odyssey measures power with an on-line version
//! of PowerScope ... using samples collected every 100 milliseconds. At
//! each sample, Odyssey calculates residual energy, assuming a known
//! initial value and constant power consumption between samples."
//!
//! [`OnlinePowerMeter`] is that instrument: fed cumulative energy readings
//! on a fixed cadence, it yields the average power over each window.

use simcore::{SimDuration, SimTime};

/// Converts periodic cumulative-energy readings into power samples.
#[derive(Clone, Copy, Debug)]
pub struct OnlinePowerMeter {
    last: Option<(SimTime, f64)>,
}

impl Default for OnlinePowerMeter {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlinePowerMeter {
    /// The paper's on-line sampling period.
    pub const PERIOD: SimDuration = SimDuration::from_millis(100);

    /// Creates an idle meter.
    pub fn new() -> Self {
        OnlinePowerMeter { last: None }
    }

    /// Feeds a cumulative energy reading; returns the average power since
    /// the previous reading (`None` on the first call or for zero-length
    /// windows).
    ///
    /// # Panics
    ///
    /// Panics if energy or time moves backwards.
    pub fn update(&mut self, now: SimTime, total_energy_j: f64) -> Option<f64> {
        let out = match self.last {
            None => None,
            Some((t0, e0)) => {
                assert!(now >= t0, "time moved backwards");
                assert!(
                    total_energy_j >= e0 - 1e-9,
                    "energy decreased: {e0} -> {total_energy_j}"
                );
                let dt = now.since(t0).as_secs_f64();
                if dt > 0.0 {
                    Some((total_energy_j - e0) / dt)
                } else {
                    None
                }
            }
        };
        self.last = Some((now, total_energy_j));
        out
    }

    /// Clears the history (e.g. after a discontinuity).
    pub fn reset(&mut self) {
        self.last = None;
    }

    /// Encodes the meter's window state into a snapshot payload.
    pub fn freeze_into(&self, w: &mut simcore::SnapshotWriter) {
        match self.last {
            None => w.put_u64(0),
            Some((t, e)) => {
                w.put_u64(1);
                w.put_time(t);
                w.put_f64(e);
            }
        }
    }

    /// Restores the state written by [`Self::freeze_into`].
    pub fn thaw_from(
        &mut self,
        r: &mut simcore::SnapshotReader<'_>,
    ) -> Result<(), simcore::SnapshotError> {
        self.last = match r.take_u64()? {
            0 => None,
            1 => Some((r.take_time()?, r.take_f64()?)),
            _ => return Err(simcore::SnapshotError::Corrupt("power meter tag")),
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_reading_yields_nothing() {
        let mut m = OnlinePowerMeter::new();
        assert_eq!(m.update(SimTime::ZERO, 0.0), None);
    }

    #[test]
    fn power_is_energy_delta_over_dt() {
        let mut m = OnlinePowerMeter::new();
        m.update(SimTime::ZERO, 100.0);
        let p = m.update(ms(100), 101.0).unwrap();
        assert!((p - 10.0).abs() < 1e-9);
        let p = m.update(ms(300), 105.0).unwrap();
        assert!((p - 20.0).abs() < 1e-9);
    }

    #[test]
    fn zero_dt_yields_nothing() {
        let mut m = OnlinePowerMeter::new();
        m.update(SimTime::from_secs(1), 5.0);
        assert_eq!(m.update(SimTime::from_secs(1), 5.0), None);
    }

    #[test]
    fn reset_clears_history() {
        let mut m = OnlinePowerMeter::new();
        m.update(SimTime::ZERO, 0.0);
        m.reset();
        assert_eq!(m.update(SimTime::from_secs(1), 50.0), None);
    }

    fn ms(v: u64) -> SimTime {
        SimTime::from_micros(v * 1000)
    }
}
