//! Meter faults: sample dropout, jitter, and quantization.
//!
//! The on-line meter ([`crate::OnlinePowerMeter`]) assumes a perfect
//! instrument: every 100 ms tick produces a cumulative-energy reading that
//! never regresses. A real multimeter misses triggers under bus
//! contention, jitters around the true value, and reports in finite
//! resolution. [`FaultyEnergySensor`] sits between the exact simulated
//! ledger and the meter, applying those defects deterministically while
//! *guaranteeing* the monotonicity the meter's contract demands — a noisy
//! sensor must degrade estimates, never crash the control plane.

use simcore::fault::hash_noise;

/// Generative description of meter defects.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MeterFaultPlan {
    /// Seed for the per-read noise hashes.
    pub seed: u64,
    /// Probability that a reading is dropped entirely.
    pub drop_p: f64,
    /// Absolute jitter amplitude on each reading, J. Kept absolute — a
    /// noise floor — rather than proportional to the counter: error
    /// proportional to *cumulative* energy would grow without bound and
    /// (through the monotonicity guarantee) freeze the output for many
    /// seconds after each upward spike.
    pub jitter_j: f64,
    /// Reporting quantum, J (readings floor to a multiple of it).
    pub quantum_j: f64,
}

impl MeterFaultPlan {
    /// A perfect meter.
    pub fn clean() -> Self {
        MeterFaultPlan {
            seed: 0,
            drop_p: 0.0,
            jitter_j: 0.0,
            quantum_j: 0.0,
        }
    }

    /// A degraded meter scaled by `intensity` in `[0, 1]`: at full
    /// intensity 20% of samples vanish, readings jitter by ±2 J, and the
    /// instrument reports in 0.5 J steps.
    ///
    /// # Panics
    ///
    /// Panics if `intensity` is outside `[0, 1]`.
    pub fn degraded(seed: u64, intensity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&intensity),
            "invalid intensity: {intensity}"
        );
        MeterFaultPlan {
            seed,
            drop_p: 0.20 * intensity,
            jitter_j: 2.0 * intensity,
            quantum_j: 0.5 * intensity,
        }
    }

    /// True when the plan introduces no defects.
    pub fn is_clean(&self) -> bool {
        self.drop_p == 0.0 && self.jitter_j == 0.0 && self.quantum_j == 0.0
    }
}

/// Applies a [`MeterFaultPlan`] to a stream of exact cumulative-energy
/// readings. Stateful: it counts reads (each read gets an independent
/// noise draw) and remembers the last emitted value so its output is
/// non-decreasing even when jitter would dip below a previous reading.
#[derive(Clone, Copy, Debug)]
pub struct FaultyEnergySensor {
    plan: MeterFaultPlan,
    reads: u64,
    last_emitted: f64,
}

impl FaultyEnergySensor {
    /// Creates a sensor applying `plan`.
    pub fn new(plan: MeterFaultPlan) -> Self {
        FaultyEnergySensor {
            plan,
            reads: 0,
            last_emitted: 0.0,
        }
    }

    /// Encodes the sensor's mutable counters (the fault plan is
    /// construction-time) into a snapshot payload.
    pub fn freeze_into(&self, w: &mut simcore::SnapshotWriter) {
        w.put_u64(self.reads);
        w.put_f64(self.last_emitted);
    }

    /// Restores the state written by [`Self::freeze_into`].
    pub fn thaw_from(
        &mut self,
        r: &mut simcore::SnapshotReader<'_>,
    ) -> Result<(), simcore::SnapshotError> {
        self.reads = r.take_u64()?;
        self.last_emitted = r.take_f64()?;
        Ok(())
    }

    /// Observes the true cumulative energy; returns what the instrument
    /// reports, or `None` when the sample is dropped. Deterministic in
    /// the sequence of calls.
    pub fn observe(&mut self, true_j: f64) -> Option<f64> {
        self.reads += 1;
        if self.plan.is_clean() {
            self.last_emitted = true_j;
            return Some(true_j);
        }
        let drop_draw = (hash_noise(self.plan.seed ^ 0xD809, self.reads) + 1.0) / 2.0;
        if drop_draw < self.plan.drop_p {
            return None;
        }
        let mut v = true_j;
        if self.plan.jitter_j > 0.0 {
            v += self.plan.jitter_j * hash_noise(self.plan.seed ^ 0x717E, self.reads);
        }
        if self.plan.quantum_j > 0.0 {
            v = (v / self.plan.quantum_j).floor() * self.plan.quantum_j;
        }
        v = v.max(self.last_emitted).max(0.0);
        self.last_emitted = v;
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_sensor_is_transparent() {
        let mut s = FaultyEnergySensor::new(MeterFaultPlan::clean());
        for i in 0..50 {
            assert_eq!(s.observe(i as f64 * 1.5), Some(i as f64 * 1.5));
        }
    }

    #[test]
    fn degraded_sensor_drops_and_stays_monotone() {
        let mut s = FaultyEnergySensor::new(MeterFaultPlan::degraded(11, 1.0));
        let mut dropped = 0;
        let mut last = 0.0;
        for i in 0..2000 {
            match s.observe(i as f64 * 0.9) {
                None => dropped += 1,
                Some(v) => {
                    assert!(v >= last, "reading regressed: {last} -> {v}");
                    last = v;
                }
            }
        }
        // 20% drop rate over 2000 reads: expect a wide but decisive band.
        assert!((200..700).contains(&dropped), "dropped {dropped}");
    }

    #[test]
    fn sensor_is_deterministic() {
        let run = |seed| {
            let mut s = FaultyEnergySensor::new(MeterFaultPlan::degraded(seed, 0.7));
            (0..300).map(|i| s.observe(i as f64)).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn zero_intensity_is_clean() {
        assert!(MeterFaultPlan::degraded(1, 0.0).is_clean());
    }
}
