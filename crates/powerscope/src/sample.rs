//! Raw sample streams.
//!
//! Data collection produces two correlated streams: current levels from
//! the multimeter and PC/PID observations from the system monitor. We keep
//! them zipped in one [`Sample`] per trigger, mirroring the paper's
//! trigger-synchronised design (the multimeter's trigger output drives the
//! PC/PID sampler). A sample carries *raw program counters* — one per
//! call-stack frame, leaf last; procedure names only appear after the
//! offline stage resolves the PCs through the symbol tables collected
//! alongside ([`CollectedRun`]).

use std::collections::BTreeMap;

use simcore::SimTime;

use crate::symbols::SymbolTable;

/// Deepest call stack a sample can carry. Matches the workload models'
/// declared call-tree depth; frames above a deeper stack's capacity are
/// dropped root-first so the leaf always survives.
pub const MAX_STACK_DEPTH: usize = 4;

/// The raw program counters captured at one trigger, root frame first,
/// leaf (the running procedure) last. A fixed-capacity value type so
/// samples stay `Copy` and the collector never allocates per trigger.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CallStack {
    depth: u8,
    pcs: [u32; MAX_STACK_DEPTH],
}

impl CallStack {
    /// A single-frame stack: just the leaf PC (a stripped binary, or a
    /// run collected without frame resolution).
    pub fn leaf_only(pc: u32) -> Self {
        let mut s = CallStack::default();
        s.push(pc);
        s
    }

    /// Appends one frame below the current deepest. When the stack is
    /// full the *root* frame is dropped to make room: the leaf is what
    /// flat correlation resolves, so it must always survive.
    pub fn push(&mut self, pc: u32) {
        if (self.depth as usize) == MAX_STACK_DEPTH {
            self.pcs.rotate_left(1);
            self.pcs[MAX_STACK_DEPTH - 1] = pc;
            return;
        }
        self.pcs[self.depth as usize] = pc;
        self.depth += 1;
    }

    /// The captured frames, root first.
    pub fn frames(&self) -> &[u32] {
        &self.pcs[..self.depth as usize]
    }

    /// The leaf frame's PC (0 for an empty stack).
    pub fn leaf(&self) -> u32 {
        self.frames().last().copied().unwrap_or(0)
    }

    /// Number of captured frames.
    pub fn depth(&self) -> usize {
        self.depth as usize
    }
}

/// One correlated (current, PC/PID) observation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sample {
    /// Sample instant.
    pub at: SimTime,
    /// Current drawn from the supply, A.
    pub current_a: f64,
    /// Process the PID monitor attributed the instant to.
    pub process: &'static str,
    /// Raw program counters captured at the trigger, root frame first.
    pub stack: CallStack,
}

impl Sample {
    /// The leaf program counter — what the original single-PC sampler
    /// captured, and what flat correlation resolves.
    pub fn pc(&self) -> u32 {
        self.stack.leaf()
    }
}

/// The product of one data-collection run.
#[derive(Clone, Debug, Default)]
pub struct RawTrace {
    /// Samples in time order.
    pub samples: Vec<Sample>,
    /// End of the observation window (profiling stops here even if the
    /// last sample is earlier).
    pub end: SimTime,
}

/// Everything one data-collection session produces: the raw sample
/// streams plus the per-process symbol tables needed to resolve PCs.
#[derive(Clone, Debug, Default)]
pub struct CollectedRun {
    /// The correlated sample streams.
    pub trace: RawTrace,
    /// Per-process symbol tables, keyed by process name.
    pub symbols: BTreeMap<&'static str, SymbolTable>,
}

impl RawTrace {
    /// Number of samples collected.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were collected.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean sampling rate over the trace, Hz.
    pub fn mean_rate_hz(&self) -> f64 {
        let [first, .., last] = self.samples.as_slice() else {
            return 0.0;
        };
        let span = last.at.since(first.at).as_secs_f64();
        if span <= 0.0 {
            0.0
        } else {
            (self.samples.len() - 1) as f64 / span
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_rate() {
        let mut t = RawTrace::default();
        for i in 0..11 {
            t.samples.push(Sample {
                at: SimTime::from_micros(i * 100_000),
                current_a: 1.0,
                process: "p",
                stack: CallStack::leaf_only(0),
            });
        }
        t.end = SimTime::from_secs(1);
        assert_eq!(t.len(), 11);
        assert!((t.mean_rate_hz() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_traces() {
        let t = RawTrace::default();
        assert!(t.is_empty());
        assert_eq!(t.mean_rate_hz(), 0.0);
        let mut one = RawTrace::default();
        one.samples.push(Sample {
            at: SimTime::ZERO,
            current_a: 1.0,
            process: "p",
            stack: CallStack::leaf_only(0),
        });
        assert_eq!(one.mean_rate_hz(), 0.0);
    }

    #[test]
    fn stack_keeps_frames_root_first() {
        let mut s = CallStack::default();
        assert_eq!(s.depth(), 0);
        assert_eq!(s.leaf(), 0);
        s.push(10);
        s.push(20);
        s.push(30);
        assert_eq!(s.frames(), &[10, 20, 30]);
        assert_eq!(s.leaf(), 30);
        assert_eq!(s.depth(), 3);
    }

    #[test]
    fn overfull_stack_drops_the_root_not_the_leaf() {
        let mut s = CallStack::default();
        for pc in [1, 2, 3, 4, 5, 6] {
            s.push(pc);
        }
        assert_eq!(s.frames(), &[3, 4, 5, 6]);
        assert_eq!(s.leaf(), 6);
    }

    #[test]
    fn leaf_only_is_one_deep() {
        let s = CallStack::leaf_only(0xbeef);
        assert_eq!(s.frames(), &[0xbeef]);
        assert_eq!(s.leaf(), 0xbeef);
    }
}
