//! Raw sample streams.
//!
//! Data collection produces two correlated streams: current levels from
//! the multimeter and PC/PID observations from the system monitor. We keep
//! them zipped in one [`Sample`] per trigger, mirroring the paper's
//! trigger-synchronised design (the multimeter's trigger output drives the
//! PC/PID sampler). A sample carries a *raw program counter*; procedure
//! names only appear after the offline stage resolves the PC through the
//! symbol tables collected alongside ([`CollectedRun`]).

use std::collections::BTreeMap;

use simcore::SimTime;

use crate::symbols::SymbolTable;

/// One correlated (current, PC/PID) observation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sample {
    /// Sample instant.
    pub at: SimTime,
    /// Current drawn from the supply, A.
    pub current_a: f64,
    /// Process the PID monitor attributed the instant to.
    pub process: &'static str,
    /// Raw program counter captured at the trigger.
    pub pc: u32,
}

/// The product of one data-collection run.
#[derive(Clone, Debug, Default)]
pub struct RawTrace {
    /// Samples in time order.
    pub samples: Vec<Sample>,
    /// End of the observation window (profiling stops here even if the
    /// last sample is earlier).
    pub end: SimTime,
}

/// Everything one data-collection session produces: the raw sample
/// streams plus the per-process symbol tables needed to resolve PCs.
#[derive(Clone, Debug, Default)]
pub struct CollectedRun {
    /// The correlated sample streams.
    pub trace: RawTrace,
    /// Per-process symbol tables, keyed by process name.
    pub symbols: BTreeMap<&'static str, SymbolTable>,
}

impl RawTrace {
    /// Number of samples collected.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were collected.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean sampling rate over the trace, Hz.
    pub fn mean_rate_hz(&self) -> f64 {
        let [first, .., last] = self.samples.as_slice() else {
            return 0.0;
        };
        let span = last.at.since(first.at).as_secs_f64();
        if span <= 0.0 {
            0.0
        } else {
            (self.samples.len() - 1) as f64 / span
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_rate() {
        let mut t = RawTrace::default();
        for i in 0..11 {
            t.samples.push(Sample {
                at: SimTime::from_micros(i * 100_000),
                current_a: 1.0,
                process: "p",
                pc: 0,
            });
        }
        t.end = SimTime::from_secs(1);
        assert_eq!(t.len(), 11);
        assert!((t.mean_rate_hz() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_traces() {
        let t = RawTrace::default();
        assert!(t.is_empty());
        assert_eq!(t.mean_rate_hz(), 0.0);
        let mut one = RawTrace::default();
        one.samples.push(Sample {
            at: SimTime::ZERO,
            current_a: 1.0,
            process: "p",
            pc: 0,
        });
        assert_eq!(one.mean_rate_hz(), 0.0);
    }
}
