//! Symbol tables: mapping sampled program counters to procedures.
//!
//! The real PowerScope records raw PC/PID pairs during collection and
//! only later "combines these sequences with symbol table information
//! from binaries and shared libraries on the profiling computer". This
//! module reproduces that two-stage structure: each (process, procedure)
//! pair is assigned a synthetic address range; the multimeter samples an
//! address inside the running procedure's range; the offline stage
//! resolves addresses back to names through the table.
//!
//! Resolution is deliberately lossy in the same way the real tool is: a
//! PC that falls outside every known range (e.g. a stripped binary)
//! resolves to `"(unknown)"`.

use std::collections::BTreeMap;

/// Name given to addresses no symbol covers.
pub const UNKNOWN_PROCEDURE: &str = "(unknown)";

/// Synthetic size of each procedure's text, bytes.
const PROCEDURE_SIZE: u32 = 0x1000;

/// A per-process symbol table: address ranges to procedure names.
#[derive(Clone, Debug, Default)]
pub struct SymbolTable {
    /// Procedure start addresses (each spans [`PROCEDURE_SIZE`] bytes).
    by_start: BTreeMap<u32, &'static str>,
    next_start: u32,
}

impl SymbolTable {
    /// Creates an empty table with a conventional text base.
    pub fn new() -> Self {
        SymbolTable {
            by_start: BTreeMap::new(),
            next_start: 0x0040_0000,
        }
    }

    /// Interns a procedure, returning its start address (idempotent).
    pub fn intern(&mut self, procedure: &'static str) -> u32 {
        if let Some((start, _)) = self.by_start.iter().find(|(_, p)| **p == procedure) {
            return *start;
        }
        let start = self.next_start;
        self.by_start.insert(start, procedure);
        self.next_start += PROCEDURE_SIZE;
        start
    }

    /// A representative PC inside `procedure`'s range, offset by `skew`
    /// (the instrument samples arbitrary instructions, not entry points).
    ///
    /// # Panics
    ///
    /// Panics if the procedure was never interned.
    pub fn pc_within(&self, procedure: &'static str, skew: u32) -> u32 {
        let (start, _) = self
            .by_start
            .iter()
            .find(|(_, p)| **p == procedure)
            .unwrap_or_else(|| panic!("procedure {procedure:?} not interned"));
        start + (skew % PROCEDURE_SIZE)
    }

    /// Resolves a PC to the procedure containing it.
    pub fn resolve(&self, pc: u32) -> &'static str {
        match self.by_start.range(..=pc).next_back() {
            Some((start, name)) if pc < start + PROCEDURE_SIZE => name,
            _ => UNKNOWN_PROCEDURE,
        }
    }

    /// Number of interned procedures.
    pub fn len(&self) -> usize {
        self.by_start.len()
    }

    /// True when no procedure has been interned.
    pub fn is_empty(&self) -> bool {
        self.by_start.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("decode_frame");
        let b = t.intern("decode_frame");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn resolve_round_trips_through_pcs() {
        let mut t = SymbolTable::new();
        t.intern("alpha");
        t.intern("beta");
        for skew in [0u32, 1, 0x7ff, 0xfff, 0x12345] {
            assert_eq!(t.resolve(t.pc_within("alpha", skew)), "alpha");
            assert_eq!(t.resolve(t.pc_within("beta", skew)), "beta");
        }
    }

    #[test]
    fn unknown_addresses_resolve_to_unknown() {
        let mut t = SymbolTable::new();
        t.intern("only");
        assert_eq!(t.resolve(0), UNKNOWN_PROCEDURE);
        assert_eq!(t.resolve(0xffff_ffff), UNKNOWN_PROCEDURE);
        // One past the end of the only procedure.
        let end = t.pc_within("only", 0) + PROCEDURE_SIZE;
        assert_eq!(t.resolve(end), UNKNOWN_PROCEDURE);
    }

    #[test]
    #[should_panic(expected = "not interned")]
    fn pc_of_missing_procedure_panics() {
        SymbolTable::new().pc_within("ghost", 0);
    }

    #[test]
    fn empty_table() {
        let t = SymbolTable::new();
        assert!(t.is_empty());
        assert_eq!(t.resolve(0x0040_0000), UNKNOWN_PROCEDURE);
    }
}
