//! Live per-process attribution feed for the supervisor.
//!
//! The viceroy's supervisor cross-checks each application's *declared*
//! demand against what PowerScope actually attributes to it. This module
//! turns the machine's cumulative per-bucket energy counters into smoothed
//! per-process power estimates, one [`OnlinePowerMeter`]-style stream per
//! process, with a short exponential smoother so a single CPU burst does
//! not read as sustained overdraw.

use std::collections::BTreeMap;

use simcore::SimTime;

use crate::online::OnlinePowerMeter;

/// Smoothing factor for the per-process power estimate. With a 1 s
/// observation cadence this gives a ~5 s effective memory: long enough to
/// ride out one frame's decode burst, short enough to catch a hang within
/// a handful of supervisor periods.
const ALPHA: f64 = 0.2;

/// Converts cumulative attributed-energy readings into smoothed
/// per-process power estimates, keyed by an opaque stream id (the
/// supervisor uses the process index).
#[derive(Clone, Debug, Default)]
pub struct AttributionFeed {
    streams: BTreeMap<usize, Stream>,
}

#[derive(Clone, Copy, Debug)]
struct Stream {
    meter: OnlinePowerMeter,
    ema_w: Option<f64>,
}

impl AttributionFeed {
    /// Creates an empty feed.
    pub fn new() -> Self {
        AttributionFeed::default()
    }

    /// Feeds one cumulative attributed-energy reading for stream `id` and
    /// returns the smoothed power estimate, W. Returns `None` until two
    /// distinct-time readings exist for the stream.
    pub fn observe(&mut self, id: usize, now: SimTime, cumulative_j: f64) -> Option<f64> {
        let s = self.streams.entry(id).or_insert(Stream {
            meter: OnlinePowerMeter::new(),
            ema_w: None,
        });
        let raw = s.meter.update(now, cumulative_j)?;
        let ema = match s.ema_w {
            None => raw,
            Some(prev) => prev + ALPHA * (raw - prev),
        };
        s.ema_w = Some(ema);
        Some(ema)
    }

    /// Latest smoothed power for stream `id`, W.
    pub fn power_w(&self, id: usize) -> Option<f64> {
        self.streams.get(&id).and_then(|s| s.ema_w)
    }

    /// Clears one stream's history (e.g. across a restart discontinuity).
    pub fn reset(&mut self, id: usize) {
        self.streams.remove(&id);
    }

    /// Encodes every stream into a snapshot payload.
    pub fn freeze_into(&self, w: &mut simcore::SnapshotWriter) {
        w.put_usize(self.streams.len());
        for (id, s) in &self.streams {
            w.put_usize(*id);
            s.meter.freeze_into(w);
            w.put_opt_f64(s.ema_w);
        }
    }

    /// Decodes a feed written by [`Self::freeze_into`].
    pub fn thaw_from(r: &mut simcore::SnapshotReader<'_>) -> Result<Self, simcore::SnapshotError> {
        let n = r.take_usize()?;
        let mut streams = BTreeMap::new();
        for _ in 0..n {
            let id = r.take_usize()?;
            let mut meter = OnlinePowerMeter::new();
            meter.thaw_from(r)?;
            let ema_w = r.take_opt_f64()?;
            if streams.insert(id, Stream { meter, ema_w }).is_some() {
                return Err(simcore::SnapshotError::Corrupt(
                    "duplicate attribution stream",
                ));
            }
        }
        Ok(AttributionFeed { streams })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn needs_two_readings() {
        let mut f = AttributionFeed::new();
        assert_eq!(f.observe(0, t(0), 0.0), None);
        assert!(f.observe(0, t(1), 5.0).is_some());
    }

    #[test]
    fn constant_power_converges_to_itself() {
        let mut f = AttributionFeed::new();
        for s in 0..60 {
            f.observe(3, t(s), 4.0 * s as f64);
        }
        let p = f.power_w(3).unwrap();
        assert!((p - 4.0).abs() < 1e-9, "p = {p}");
    }

    #[test]
    fn smoothing_damps_a_single_burst() {
        let mut f = AttributionFeed::new();
        let mut e = 0.0;
        for s in 0..10 {
            e += 1.0; // 1 W baseline
            f.observe(0, t(s), e);
        }
        e += 20.0; // one 20 J burst in one second
        let p = f.observe(0, t(10), e).unwrap();
        assert!(p < 6.0, "one burst should not read as sustained: {p}");
        assert!(p > 1.0);
    }

    #[test]
    fn streams_are_independent_and_resettable() {
        let mut f = AttributionFeed::new();
        f.observe(0, t(0), 0.0);
        f.observe(1, t(0), 0.0);
        f.observe(0, t(1), 10.0);
        assert!(f.power_w(0).is_some());
        assert_eq!(f.power_w(1), None);
        f.reset(0);
        assert_eq!(f.power_w(0), None);
        // After reset the stream starts over (no stale baseline).
        assert_eq!(f.observe(0, t(5), 50.0), None);
    }
}
