//! The simulated multimeter + system monitor.
//!
//! [`PowerScope`] attaches to a machine as an interval observer. Within
//! each constant-state interval it fires its sampling clock (nominally
//! [`crate::SAMPLE_HZ`], with ±5% trigger jitter like a free-running
//! instrument), reads the platform current, and draws the PC/PID
//! attribution from the interval's occupancy shares — exactly the
//! statistical attribution the real tool performs, noise included.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use machine::{IntervalObserver, IntervalRecord};
use simcore::{SimDuration, SimRng, SimTime, TraceEvent, TraceHandle};

use crate::sample::{CallStack, CollectedRun, Sample};
use crate::{SAMPLE_HZ, SUPPLY_VOLTS};

/// Resolves a `(bucket, leaf procedure)` pair to its static call path
/// (root frame first, ending in the leaf), or `None` for a leaf with no
/// declared tree. Injected by the rig — the profiler cannot depend on
/// the workload crates, so the call-tree data arrives as a function.
pub type FrameResolver = fn(&str, &str) -> Option<&'static [&'static str]>;

struct Collector {
    rng: SimRng,
    period: SimDuration,
    next_at: SimTime,
    run: CollectedRun,
    trace: Option<TraceHandle>,
    resolver: Option<FrameResolver>,
}

impl Collector {
    fn on_interval(&mut self, rec: &IntervalRecord<'_>) {
        while self.next_at < rec.t1 {
            if self.next_at >= rec.t0 {
                let current_a = rec.power_w / SUPPLY_VOLTS;
                let weights: Vec<f64> = rec.shares.iter().map(|s| s.fraction).collect();
                let pick = &rec.shares[self.rng.weighted_index(&weights)];
                // The system monitor captures one raw PC per call-stack
                // frame inside the running procedure; the offline stage
                // resolves them later. Frame resolution is pure table
                // data — the rng draws stay identical with or without a
                // resolver (one skew per trigger), so attaching one
                // never perturbs the machine's golden traces.
                let fallback = [pick.procedure];
                let frames: &[&'static str] = match self
                    .resolver
                    .and_then(|resolve| resolve(pick.bucket, pick.procedure))
                {
                    Some(path) if !path.is_empty() => path,
                    _ => &fallback,
                };
                let table = self.run.symbols.entry(pick.bucket).or_default();
                for frame in frames {
                    table.intern(frame);
                }
                let skew = self.rng.uniform_u64(0, u32::MAX as u64) as u32;
                let mut stack = CallStack::default();
                for frame in frames {
                    stack.push(table.pc_within(frame, skew));
                }
                if let Some(tr) = &self.trace {
                    tr.emit(
                        self.next_at,
                        TraceEvent::MeterSample {
                            current_a,
                            process: pick.bucket,
                        },
                    );
                }
                self.run.trace.samples.push(Sample {
                    at: self.next_at,
                    current_a,
                    process: pick.bucket,
                    stack,
                });
            }
            // ±5% trigger jitter around the nominal period.
            let jitter = self.rng.uniform(0.95, 1.05);
            self.next_at += self.period.mul_f64(jitter);
        }
        self.run.trace.end = rec.t1;
    }
}

/// A PowerScope data-collection session.
///
/// Construction yields the handle plus an observer to register with the
/// machine; after the run, [`PowerScope::into_run`] returns the raw
/// streams and symbol tables for [`crate::correlate()`].
///
/// # Examples
///
/// ```
/// use machine::{Machine, MachineConfig};
/// use machine::workload::ScriptedWorkload;
/// use powerscope::PowerScope;
/// use simcore::SimDuration;
///
/// let (scope, observer) = PowerScope::new(42);
/// let mut m = Machine::new(MachineConfig::baseline());
/// m.add_observer(observer);
/// m.add_process(Box::new(ScriptedWorkload::idle_for(
///     "idler",
///     SimDuration::from_secs(2),
/// )));
/// let _ = m.run();
/// let run = scope.into_run();
/// assert!(run.trace.len() > 1000, "~600 Hz over 2 s");
/// ```
pub struct PowerScope {
    shared: Rc<RefCell<Collector>>,
}

impl std::fmt::Debug for PowerScope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PowerScope").finish_non_exhaustive()
    }
}

struct ScopeObserver(Rc<RefCell<Collector>>);

impl IntervalObserver for ScopeObserver {
    fn on_interval(&mut self, rec: &IntervalRecord<'_>) {
        self.0.borrow_mut().on_interval(rec);
    }
}

impl PowerScope {
    /// Creates a session at the nominal sampling rate.
    pub fn new(seed: u64) -> (PowerScope, Box<dyn IntervalObserver>) {
        PowerScope::with_rate(seed, SAMPLE_HZ)
    }

    /// Creates a session with a custom sampling rate (tests use high rates
    /// to check convergence).
    ///
    /// # Panics
    ///
    /// Panics unless the rate is positive and finite.
    pub fn with_rate(seed: u64, rate_hz: f64) -> (PowerScope, Box<dyn IntervalObserver>) {
        assert!(
            rate_hz.is_finite() && rate_hz > 0.0,
            "invalid sample rate: {rate_hz}"
        );
        let shared = Rc::new(RefCell::new(Collector {
            rng: SimRng::new(seed).fork("powerscope"),
            period: SimDuration::from_secs_f64(1.0 / rate_hz),
            next_at: SimTime::ZERO,
            run: CollectedRun {
                symbols: BTreeMap::new(),
                ..Default::default()
            },
            trace: None,
            resolver: None,
        }));
        (
            PowerScope {
                shared: shared.clone(),
            },
            Box::new(ScopeObserver(shared)),
        )
    }

    /// Attaches a simtrace handle: every captured sample is also emitted
    /// as a `meter_sample` event (high-frequency — the `Meter` category).
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.shared.borrow_mut().trace = Some(trace);
    }

    /// Attaches a call-path resolver: each sample then captures one PC
    /// per declared call-tree frame instead of the leaf alone, enabling
    /// [`crate::correlate_paths`]. Resolution draws no randomness, so
    /// the sample stream's timing and attribution are identical with or
    /// without a resolver. Attach before the run starts.
    pub fn set_resolver(&mut self, resolver: FrameResolver) {
        self.shared.borrow_mut().resolver = Some(resolver);
    }

    /// Consumes the session, returning the collected streams and symbol
    /// tables.
    pub fn into_run(self) -> CollectedRun {
        match Rc::try_unwrap(self.shared) {
            Ok(cell) => cell.into_inner().run,
            Err(shared) => shared.borrow().run.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hw560x::platform::PowerBreakdown;
    use hw560x::DeviceStates;
    use machine::ShareEntry;

    fn record(t0: u64, t1: u64, power_w: f64, shares: &[ShareEntry]) -> CollectedRun {
        let (scope, mut obs) = PowerScope::new(7);
        let rec = IntervalRecord {
            t0: SimTime::from_secs(t0),
            t1: SimTime::from_secs(t1),
            power_w,
            breakdown: PowerBreakdown::default(),
            states: DeviceStates::full_on_idle(),
            shares,
        };
        obs.on_interval(&rec);
        drop(obs);
        scope.into_run()
    }

    #[test]
    fn sampling_rate_is_approximately_nominal() {
        let shares = [ShareEntry {
            bucket: "Idle",
            procedure: "idle_hlt",
            fraction: 1.0,
        }];
        let run = record(0, 10, 10.0, &shares);
        let rate = run.trace.mean_rate_hz();
        assert!(
            (SAMPLE_HZ * 0.95..=SAMPLE_HZ * 1.05).contains(&rate),
            "rate {rate}"
        );
    }

    #[test]
    fn current_reflects_power() {
        let shares = [ShareEntry {
            bucket: "Idle",
            procedure: "idle_hlt",
            fraction: 1.0,
        }];
        let run = record(0, 1, 24.0, &shares);
        for s in &run.trace.samples {
            assert!((s.current_a - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn attribution_follows_share_weights() {
        let shares = [
            ShareEntry {
                bucket: "app",
                procedure: "work",
                fraction: 0.8,
            },
            ShareEntry {
                bucket: "WaveLAN",
                procedure: "wavelan_intr",
                fraction: 0.2,
            },
        ];
        let run = record(0, 100, 10.0, &shares);
        let app = run
            .trace
            .samples
            .iter()
            .filter(|s| s.process == "app")
            .count();
        let frac = app as f64 / run.trace.len() as f64;
        assert!((frac - 0.8).abs() < 0.02, "app fraction {frac}");
        // Both processes got symbol tables.
        assert_eq!(run.symbols.len(), 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let shares = [ShareEntry {
            bucket: "Idle",
            procedure: "idle_hlt",
            fraction: 1.0,
        }];
        let a = record(0, 2, 10.0, &shares);
        let b = record(0, 2, 10.0, &shares);
        assert_eq!(a.trace.samples, b.trace.samples);
    }

    #[test]
    fn trace_mirrors_captured_samples() {
        use simcore::{TraceHandle, TraceSink};
        let (mut scope, mut obs) = PowerScope::new(7);
        let trace = TraceHandle::new(TraceSink::new());
        scope.set_trace(trace.clone());
        let shares = [ShareEntry {
            bucket: "Idle",
            procedure: "idle_hlt",
            fraction: 1.0,
        }];
        let rec = IntervalRecord {
            t0: SimTime::ZERO,
            t1: SimTime::from_secs(1),
            power_w: 24.0,
            breakdown: PowerBreakdown::default(),
            states: DeviceStates::full_on_idle(),
            shares: &shares,
        };
        obs.on_interval(&rec);
        drop(obs);
        let run = scope.into_run();
        let recs = trace.records();
        assert_eq!(recs.len() + trace.evicted() as usize, run.trace.len());
        match recs[0].event {
            TraceEvent::MeterSample { current_a, process } => {
                assert!((current_a - 2.0).abs() < 1e-12);
                assert_eq!(process, "Idle");
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn resolver_adds_frames_without_perturbing_sampling() {
        const PATH: &[&str] = &["app_main", "inner_loop", "work"];
        fn resolve(bucket: &str, leaf: &str) -> Option<&'static [&'static str]> {
            (bucket == "app" && leaf == "work").then_some(PATH)
        }
        let shares = [ShareEntry {
            bucket: "app",
            procedure: "work",
            fraction: 1.0,
        }];
        let rec = IntervalRecord {
            t0: SimTime::ZERO,
            t1: SimTime::from_secs(2),
            power_w: 12.0,
            breakdown: PowerBreakdown::default(),
            states: DeviceStates::full_on_idle(),
            shares: &shares,
        };
        let (plain_scope, mut plain_obs) = PowerScope::new(7);
        plain_obs.on_interval(&rec);
        drop(plain_obs);
        let plain = plain_scope.into_run();
        let (mut scope, mut obs) = PowerScope::new(7);
        scope.set_resolver(resolve);
        obs.on_interval(&rec);
        drop(obs);
        let run = scope.into_run();
        // Same trigger instants and attribution, deeper stacks.
        assert_eq!(plain.trace.len(), run.trace.len());
        for (a, b) in plain.trace.samples.iter().zip(&run.trace.samples) {
            assert_eq!(a.at, b.at);
            assert_eq!(a.current_a, b.current_a);
            assert_eq!(a.process, b.process);
            assert_eq!(a.stack.depth(), 1);
            assert_eq!(b.stack.depth(), 3);
        }
        // Every frame resolves through the symbol table, leaf last.
        let table = &run.symbols["app"];
        let s = &run.trace.samples[0];
        let names: Vec<&str> = s
            .stack
            .frames()
            .iter()
            .map(|pc| table.resolve(*pc))
            .collect();
        assert_eq!(names, PATH);
        assert_eq!(table.resolve(s.pc()), "work");
    }

    #[test]
    fn samples_only_within_intervals() {
        // A gap between observed intervals (machine idle-skip) must not
        // produce samples inside the gap.
        let (scope, mut obs) = PowerScope::new(3);
        let shares = [ShareEntry {
            bucket: "Idle",
            procedure: "idle_hlt",
            fraction: 1.0,
        }];
        let mk = |t0: u64, t1: u64| IntervalRecord {
            t0: SimTime::from_secs(t0),
            t1: SimTime::from_secs(t1),
            power_w: 10.0,
            breakdown: PowerBreakdown::default(),
            states: DeviceStates::full_on_idle(),
            shares: &shares,
        };
        obs.on_interval(&mk(0, 1));
        obs.on_interval(&mk(1, 2));
        drop(obs);
        let run = scope.into_run();
        assert!(run.trace.samples.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(run.trace.len() > 1000);
    }
}
