//! Energy profiles — the output of PowerScope's offline stage.
//!
//! A profile is two tables, as in the paper's Figure 2: a summary with one
//! row per process (CPU time, total energy, average power), and a detail
//! table per process with one row per procedure. [`EnergyProfile::format`]
//! renders them in the figure's layout.

use std::fmt::Write as _;

/// One procedure's row in the detail table.
#[derive(Clone, Debug, PartialEq)]
pub struct ProcedureRow {
    /// Procedure name.
    pub procedure: String,
    /// Attributed CPU time, seconds.
    pub cpu_secs: f64,
    /// Attributed energy, J.
    pub energy_j: f64,
}

impl ProcedureRow {
    /// Average power while this procedure was running, W.
    pub fn avg_power_w(&self) -> f64 {
        if self.cpu_secs > 0.0 {
            self.energy_j / self.cpu_secs
        } else {
            0.0
        }
    }
}

/// One process's row in the summary table.
#[derive(Clone, Debug, PartialEq)]
pub struct ProcessRow {
    /// Process name.
    pub process: String,
    /// Attributed CPU time, seconds.
    pub cpu_secs: f64,
    /// Attributed energy, J.
    pub energy_j: f64,
    /// Per-procedure detail, sorted by descending energy.
    pub procedures: Vec<ProcedureRow>,
}

impl ProcessRow {
    /// Average power while this process was running, W.
    pub fn avg_power_w(&self) -> f64 {
        if self.cpu_secs > 0.0 {
            self.energy_j / self.cpu_secs
        } else {
            0.0
        }
    }
}

/// A complete energy profile.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EnergyProfile {
    /// Per-process rows, sorted by descending energy.
    pub processes: Vec<ProcessRow>,
    /// Total profiled duration, seconds.
    pub duration_s: f64,
}

impl EnergyProfile {
    /// Total energy across all processes, J.
    pub fn total_energy_j(&self) -> f64 {
        self.processes.iter().map(|p| p.energy_j).sum()
    }

    /// Total attributed CPU time, seconds.
    pub fn total_cpu_secs(&self) -> f64 {
        self.processes.iter().map(|p| p.cpu_secs).sum()
    }

    /// Energy attributed to `process`, J (0 when absent).
    pub fn process_energy_j(&self, process: &str) -> f64 {
        self.processes
            .iter()
            .find(|p| p.process == process)
            .map(|p| p.energy_j)
            .unwrap_or(0.0)
    }

    /// Renders the summary table and the detail table of the top process,
    /// in the layout of the paper's Figure 2.
    pub fn format(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:>10} {:>12} {:>10}",
            "Process", "CPU(s)", "Energy(J)", "Power(W)"
        );
        let _ = writeln!(out, "{}", "-".repeat(64));
        for p in &self.processes {
            let _ = writeln!(
                out,
                "{:<28} {:>10.2} {:>12.2} {:>10.2}",
                p.process,
                p.cpu_secs,
                p.energy_j,
                p.avg_power_w()
            );
        }
        let _ = writeln!(out, "{}", "-".repeat(64));
        let _ = writeln!(
            out,
            "{:<28} {:>10.2} {:>12.2}",
            "Total",
            self.total_cpu_secs(),
            self.total_energy_j()
        );
        if let Some(top) = self.processes.first() {
            let _ = writeln!(out);
            let _ = writeln!(out, "Energy Usage Detail for process {}", top.process);
            let _ = writeln!(
                out,
                "{:<28} {:>10} {:>12} {:>10}",
                "Procedure", "CPU(s)", "Energy(J)", "Power(W)"
            );
            let _ = writeln!(out, "{}", "-".repeat(64));
            for f in &top.procedures {
                let _ = writeln!(
                    out,
                    "{:<28} {:>10.2} {:>12.2} {:>10.2}",
                    f.procedure,
                    f.cpu_secs,
                    f.energy_j,
                    f.avg_power_w()
                );
            }
        }
        out
    }
}

/// One call-path row of a path profile: a node of one process's
/// call-tree with inclusive (node plus descendants) and exclusive
/// (samples landing exactly here) accounting. Field names follow the D4
/// unit-suffix discipline so the rendered tables carry their dimensions.
#[derive(Clone, Debug, PartialEq)]
pub struct PathRow {
    /// Slash-joined call path from the process root, e.g.
    /// `video_playback/frame_pipeline/decode_frame`.
    pub path: String,
    /// Samples whose leaf landed exactly on this node (0 for a pure
    /// interior node).
    pub samples: u64,
    /// Exclusive attributed time, s: quanta of samples landing here.
    pub self_time_s: f64,
    /// Exclusive attributed energy, J.
    pub self_energy_j: f64,
    /// Inclusive attributed time, s: this node plus all descendants.
    pub inclusive_time_s: f64,
    /// Inclusive attributed energy, J.
    pub inclusive_energy_j: f64,
}

/// One process's call-path table, rows in lexicographic path order
/// (every parent sorts immediately before its subtree).
#[derive(Clone, Debug, PartialEq)]
pub struct ProcessPaths {
    /// Process name.
    pub process: String,
    /// Path rows, sorted by path.
    pub rows: Vec<PathRow>,
    /// Total attributed energy, J (the sum of root rows' inclusive
    /// energy, equal to the sum of leaf rows' exclusive energy).
    pub energy_j: f64,
}

/// A per-path energy profile — the procedure-level rollup of one
/// collected run, with parent/child inclusive–exclusive accounting.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PathProfile {
    /// Per-process tables, sorted by process name (stable independent
    /// of energy ties, unlike the flat profile's energy ordering).
    pub processes: Vec<ProcessPaths>,
    /// Total profiled duration, seconds.
    pub duration_s: f64,
}

impl PathProfile {
    /// Total energy across all processes, J.
    pub fn total_energy_j(&self) -> f64 {
        self.processes.iter().map(|p| p.energy_j).sum()
    }

    /// One process's table (`None` when absent).
    pub fn process(&self, name: &str) -> Option<&ProcessPaths> {
        self.processes.iter().find(|p| p.process == name)
    }

    /// Renders the profile as a tab-separated table with a D4
    /// unit-suffixed header — the `energymap` artifact format. Row order
    /// is (process, path), both lexicographic, so the bytes are stable
    /// across runs and thread counts.
    pub fn format_table(&self) -> String {
        let mut out = String::from(
            "process\tpath\tsamples\tself_time_s\tself_energy_j\t\
             inclusive_time_s\tinclusive_energy_j\n",
        );
        for p in &self.processes {
            for r in &p.rows {
                let _ = writeln!(
                    out,
                    "{}\t{}\t{}\t{:.6}\t{:.6}\t{:.6}\t{:.6}",
                    p.process,
                    r.path,
                    r.samples,
                    r.self_time_s,
                    r.self_energy_j,
                    r.inclusive_time_s,
                    r.inclusive_energy_j
                );
            }
        }
        out
    }
}

/// One row of a profile comparison.
#[derive(Clone, Debug, PartialEq)]
pub struct DiffRow {
    /// Process name.
    pub process: String,
    /// Energy in the first profile, J.
    pub before_j: f64,
    /// Energy in the second profile, J.
    pub after_j: f64,
}

impl DiffRow {
    /// Energy change, J (negative = saved).
    pub fn delta_j(&self) -> f64 {
        self.after_j - self.before_j
    }
}

impl EnergyProfile {
    /// Compares two profiles process by process, sorted by the magnitude
    /// of the change — the workflow the paper built PowerScope for:
    /// "By providing fine-grained feedback, PowerScope helps expose
    /// system components most responsible for energy consumption."
    pub fn diff(&self, after: &EnergyProfile) -> Vec<DiffRow> {
        let mut names: Vec<&str> = self.processes.iter().map(|p| p.process.as_str()).collect();
        for p in &after.processes {
            if !names.contains(&p.process.as_str()) {
                names.push(&p.process);
            }
        }
        let mut rows: Vec<DiffRow> = names
            .into_iter()
            .map(|n| DiffRow {
                process: n.to_string(),
                before_j: self.process_energy_j(n),
                after_j: after.process_energy_j(n),
            })
            .collect();
        rows.sort_by(|a, b| {
            b.delta_j()
                .abs()
                .total_cmp(&a.delta_j().abs())
                .then_with(|| a.process.cmp(&b.process))
        });
        rows
    }

    /// Renders a diff as a table.
    pub fn format_diff(&self, after: &EnergyProfile) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:>12} {:>12} {:>12}",
            "Process", "Before(J)", "After(J)", "Delta(J)"
        );
        let _ = writeln!(out, "{}", "-".repeat(68));
        for r in self.diff(after) {
            let _ = writeln!(
                out,
                "{:<28} {:>12.2} {:>12.2} {:>+12.2}",
                r.process,
                r.before_j,
                r.after_j,
                r.delta_j()
            );
        }
        let _ = writeln!(
            out,
            "{:<28} {:>12.2} {:>12.2} {:>+12.2}",
            "Total",
            self.total_energy_j(),
            after.total_energy_j(),
            after.total_energy_j() - self.total_energy_j()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile() -> EnergyProfile {
        EnergyProfile {
            processes: vec![
                ProcessRow {
                    process: "/usr/odyssey/bin/xanim".into(),
                    cpu_secs: 66.57,
                    energy_j: 643.17,
                    procedures: vec![
                        ProcedureRow {
                            procedure: "_Dispatcher".into(),
                            cpu_secs: 1.2,
                            energy_j: 12.6,
                        },
                        ProcedureRow {
                            procedure: "_rpc2_RecvPacket".into(),
                            cpu_secs: 0.7,
                            energy_j: 7.4,
                        },
                    ],
                },
                ProcessRow {
                    process: "Kernel".into(),
                    cpu_secs: 35.28,
                    energy_j: 331.91,
                    procedures: vec![],
                },
            ],
            duration_s: 120.0,
        }
    }

    #[test]
    fn totals() {
        let p = sample_profile();
        assert!((p.total_energy_j() - 975.08).abs() < 1e-9);
        assert!((p.total_cpu_secs() - 101.85).abs() < 1e-9);
        assert!((p.process_energy_j("Kernel") - 331.91).abs() < 1e-9);
        assert_eq!(p.process_energy_j("missing"), 0.0);
    }

    #[test]
    fn avg_power() {
        let p = sample_profile();
        let row = &p.processes[0];
        assert!((row.avg_power_w() - 643.17 / 66.57).abs() < 1e-9);
        let empty = ProcessRow {
            process: "zero".into(),
            cpu_secs: 0.0,
            energy_j: 0.0,
            procedures: vec![],
        };
        assert_eq!(empty.avg_power_w(), 0.0);
    }

    #[test]
    fn format_contains_figure2_elements() {
        let text = sample_profile().format();
        assert!(text.contains("Process"));
        assert!(text.contains("Energy(J)"));
        assert!(text.contains("xanim"));
        assert!(text.contains("Total"));
        assert!(text.contains("Energy Usage Detail for process"));
        assert!(text.contains("_Dispatcher"));
    }

    #[test]
    fn diff_ranks_by_change_magnitude() {
        let before = sample_profile();
        let mut after = sample_profile();
        after.processes[0].energy_j = 300.0; // xanim saved ~343 J.
        after.processes[1].energy_j = 350.0; // kernel grew ~18 J.
        let rows = before.diff(&after);
        assert_eq!(rows[0].process, "/usr/odyssey/bin/xanim");
        assert!((rows[0].delta_j() + 343.17).abs() < 1e-9);
        assert!(rows[1].delta_j() > 0.0);
        let text = before.format_diff(&after);
        assert!(text.contains("Delta(J)"));
        assert!(text.contains("Total"));
    }

    #[test]
    fn diff_includes_processes_unique_to_either_side() {
        let before = sample_profile();
        let after = EnergyProfile {
            processes: vec![ProcessRow {
                process: "newcomer".into(),
                cpu_secs: 1.0,
                energy_j: 5.0,
                procedures: vec![],
            }],
            duration_s: 1.0,
        };
        let rows = before.diff(&after);
        assert!(rows
            .iter()
            .any(|r| r.process == "newcomer" && r.before_j == 0.0));
        assert!(rows
            .iter()
            .any(|r| r.process == "Kernel" && r.after_j == 0.0));
    }

    #[test]
    fn empty_profile_formats() {
        let p = EnergyProfile::default();
        let text = p.format();
        assert!(text.contains("Total"));
        assert!(!text.contains("Detail"));
    }
}
