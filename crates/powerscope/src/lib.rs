#![forbid(unsafe_code)]
//! PowerScope: statistical energy profiling (Section 2.1 of the paper).
//!
//! The original PowerScope pairs a digital multimeter (sampling the current
//! drawn by the profiling computer ~600 times per second) with a kernel
//! system monitor (sampling the program counter and process id at the
//! multimeter's trigger). An offline stage correlates the two streams with
//! symbol tables to produce an *energy profile*: for each process, and each
//! procedure within it, the CPU time, total energy, and average power —
//! Figure 2 of the paper.
//!
//! Our multimeter reads the simulated platform's power between machine
//! events; the "PC/PID" half draws the attributed bucket at each sample
//! instant from the machine's occupancy shares, reproducing PowerScope's
//! statistical attribution (including its sampling noise). Tests verify
//! that the sampled profile converges to the machine's exact ledger.

pub mod attribution;
pub mod correlate;
pub mod faults;
pub mod multimeter;
pub mod online;
pub mod profile;
pub mod sample;
pub mod symbols;

pub use attribution::AttributionFeed;
pub use correlate::{
    correlate, correlate_paths, correlate_paths_with, correlate_with, CorrelateOptions,
};
pub use faults::{FaultyEnergySensor, MeterFaultPlan};
pub use multimeter::{FrameResolver, PowerScope};
pub use online::OnlinePowerMeter;
pub use profile::{EnergyProfile, PathProfile, PathRow, ProcedureRow, ProcessPaths, ProcessRow};
pub use sample::{CallStack, CollectedRun, RawTrace, Sample};
pub use symbols::SymbolTable;

/// Supply voltage of the profiled machine. The paper notes input voltage
/// is controlled to within 0.25%, so current samples alone determine
/// power; we keep the same structure with a nominal 12 V supply.
pub const SUPPLY_VOLTS: f64 = 12.0;

/// The multimeter's nominal sampling rate ("approximately 600 times per
/// second").
pub const SAMPLE_HZ: f64 = 600.0;
