//! Energy projection onto zoned displays.
//!
//! Section 4.2's method: take a measured experiment, keep everything but
//! the display energy, and scale the display energy by the fraction of
//! zones the application's window lights. Unlit zones are *dim*, not
//! dark — "only the window in focus might be brightly illuminated, while
//! the rest of the screen is dim" — so the display power factor is
//! `lit_frac + (1 - lit_frac) * dim_ratio`, where `dim_ratio` is the
//! dim/bright power ratio of the panel (≈0.455 for the 560X). This
//! reproduces every percentage the paper states: video 17-18% (4-zone,
//! hardware-only), 24% / 28-29% at lowest fidelity; map 7-8% (8-zone
//! full) and 17% / 21-22% lowest.

use hw560x::PlatformSpec;
use machine::RunReport;

use crate::zone::{WindowRect, ZoneGrid};

/// Dim/bright display power ratio of the calibrated 560X panel.
pub fn dim_ratio() -> f64 {
    let spec = PlatformSpec::thinkpad_560x();
    spec.display_dim_w / spec.display_bright_w
}

/// Projected total energy of a run on a zoned display, J.
///
/// `report` is a run on the conventional display; the projection scales
/// its display energy so lit zones stay bright and unlit zones drop to
/// the dim level.
pub fn zoned_energy_j(report: &RunReport, grid: ZoneGrid, window: WindowRect) -> f64 {
    let lit = grid.zones_snapped(window);
    let frac = grid.lit_fraction(lit);
    let factor = frac + (1.0 - frac) * dim_ratio();
    report.total_j - report.components.display_j * (1.0 - factor)
}

/// Projection result for one (grid, window) configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Projection {
    /// Zones lit.
    pub zones_lit: u32,
    /// Total zones.
    pub zones_total: u32,
    /// Projected total energy, J.
    pub energy_j: f64,
    /// Energy saved relative to the unzoned run, J.
    pub saved_j: f64,
}

/// Projects a run report onto a zoned display.
pub fn project_report(report: &RunReport, grid: ZoneGrid, window: WindowRect) -> Projection {
    let energy_j = zoned_energy_j(report, grid, window);
    Projection {
        zones_lit: grid.zones_snapped(window),
        zones_total: grid.total(),
        energy_j,
        saved_j: report.total_j - energy_j,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::ComponentTotals;
    use simcore::SimTime;

    fn report(total_j: f64, display_j: f64) -> RunReport {
        RunReport {
            end: SimTime::from_secs(100),
            total_j,
            buckets: vec![],
            components: ComponentTotals {
                display_j,
                ..Default::default()
            },
            detail: vec![],
            fidelity: vec![],
            exhausted: false,
            residual_j: f64::INFINITY,
            bytes_carried: 0,
            rpc_timeouts: 0,
            rpc_retries: 0,
        }
    }

    #[test]
    fn one_of_four_zones_dims_three_quarters_of_display() {
        let r = report(1000.0, 400.0);
        let e = zoned_energy_j(&r, ZoneGrid::four_zone(), crate::VIDEO_FULL_WINDOW);
        // factor = 1/4 + 3/4 * dim_ratio; saving = 400 * (1 - factor).
        let expected = 1000.0 - 400.0 * 0.75 * (1.0 - dim_ratio());
        assert!((e - expected).abs() < 1e-9, "{e} vs {expected}");
    }

    #[test]
    fn full_screen_window_saves_nothing() {
        let r = report(1000.0, 400.0);
        let p = project_report(&r, ZoneGrid::four_zone(), WindowRect::full_screen());
        assert_eq!(p.zones_lit, 4);
        assert!((p.saved_j).abs() < 1e-9);
    }

    #[test]
    fn more_zones_save_more_for_small_windows() {
        let r = report(1000.0, 400.0);
        let four = zoned_energy_j(&r, ZoneGrid::four_zone(), crate::VIDEO_REDUCED_WINDOW);
        let eight = zoned_energy_j(&r, ZoneGrid::eight_zone(), crate::VIDEO_REDUCED_WINDOW);
        assert!(eight < four, "8-zone {eight} not below 4-zone {four}");
    }

    #[test]
    fn projection_accounting_is_consistent() {
        let r = report(500.0, 150.0);
        let p = project_report(&r, ZoneGrid::eight_zone(), crate::MAP_LOWEST_WINDOW);
        assert_eq!(p.zones_lit, 3);
        assert_eq!(p.zones_total, 8);
        assert!((p.energy_j + p.saved_j - r.total_j).abs() < 1e-9);
        // 150 * (5/8) * (1 - dim_ratio) saved.
        let expected = 150.0 * (5.0 / 8.0) * (1.0 - dim_ratio());
        assert!((p.saved_j - expected).abs() < 1e-9);
    }

    #[test]
    fn single_zone_grid_is_identity() {
        let r = report(800.0, 300.0);
        let e = zoned_energy_j(&r, ZoneGrid::single(), crate::VIDEO_FULL_WINDOW);
        assert!((e - 800.0).abs() < 1e-9);
    }
}
