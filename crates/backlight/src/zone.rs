//! Zone grids and window occupancy.
//!
//! The paper considers 4-zone and 8-zone versions of the 560X display
//! (Figure 17). We model the 4-zone display as a 2×2 grid and the 8-zone
//! display as a 4×2 grid; with top-left snap-to placement these reproduce
//! every occupancy count the paper states (video 1/4 and 2/8 at full
//! fidelity, 1/8 reduced; map 4/4 and 6/8 full, 2/4 and 3/8 lowest).

/// A window footprint, normalized to the screen (fractions of width and
/// height in `(0, 1]`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowRect {
    /// Fraction of the screen width.
    pub width: f64,
    /// Fraction of the screen height.
    pub height: f64,
}

impl WindowRect {
    /// Creates a footprint.
    ///
    /// # Panics
    ///
    /// Panics unless both dimensions are in `(0, 1]`.
    pub fn new(width: f64, height: f64) -> Self {
        assert!(
            width > 0.0 && width <= 1.0 && height > 0.0 && height <= 1.0,
            "invalid window rect {width}x{height}"
        );
        WindowRect { width, height }
    }

    /// The full screen.
    pub fn full_screen() -> Self {
        WindowRect {
            width: 1.0,
            height: 1.0,
        }
    }
}

/// A grid of independently-controllable backlight zones.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ZoneGrid {
    /// Zone columns.
    pub cols: u32,
    /// Zone rows.
    pub rows: u32,
}

impl ZoneGrid {
    /// The paper's 4-zone display (Figure 17a): 2×2.
    pub fn four_zone() -> Self {
        ZoneGrid { cols: 2, rows: 2 }
    }

    /// The paper's 8-zone display (Figure 17b): 4×2.
    pub fn eight_zone() -> Self {
        ZoneGrid { cols: 4, rows: 2 }
    }

    /// A conventional display: one zone.
    pub fn single() -> Self {
        ZoneGrid { cols: 1, rows: 1 }
    }

    /// Total zones.
    pub fn total(&self) -> u32 {
        self.cols * self.rows
    }

    /// Zones lit by a window placed with the snap-to feature (aligned to a
    /// zone corner, straddling the fewest possible zones).
    pub fn zones_snapped(&self, w: WindowRect) -> u32 {
        let zw = 1.0 / self.cols as f64;
        let zh = 1.0 / self.rows as f64;
        let cols = (w.width / zw).ceil() as u32;
        let rows = (w.height / zh).ceil() as u32;
        cols.min(self.cols) * rows.min(self.rows)
    }

    /// Zones lit by a window at an arbitrary position `(x, y)` (top-left
    /// corner, normalized): no snap-to. Used to quantify what the snap-to
    /// feature buys.
    ///
    /// # Panics
    ///
    /// Panics if the window extends past the screen.
    pub fn zones_at(&self, w: WindowRect, x: f64, y: f64) -> u32 {
        assert!(
            x >= 0.0 && y >= 0.0 && x + w.width <= 1.0 + 1e-9 && y + w.height <= 1.0 + 1e-9,
            "window out of bounds"
        );
        let zw = 1.0 / self.cols as f64;
        let zh = 1.0 / self.rows as f64;
        let col0 = (x / zw).floor() as u32;
        let col1 = ((x + w.width) / zw).ceil() as u32;
        let row0 = (y / zh).floor() as u32;
        let row1 = ((y + w.height) / zh).ceil() as u32;
        (col1.min(self.cols) - col0) * (row1.min(self.rows) - row0)
    }

    /// Fraction of display power drawn when `lit` zones are bright and the
    /// rest are dark ("the power used by each zone was proportional to its
    /// area").
    pub fn lit_fraction(&self, lit: u32) -> f64 {
        assert!(lit <= self.total(), "lit {lit} exceeds {}", self.total());
        lit as f64 / self.total() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MAP_FULL_WINDOW, MAP_LOWEST_WINDOW, VIDEO_FULL_WINDOW, VIDEO_REDUCED_WINDOW};

    /// Every occupancy count the paper states, from pure geometry.
    #[test]
    fn paper_occupancy_counts() {
        let four = ZoneGrid::four_zone();
        let eight = ZoneGrid::eight_zone();
        // "The video at full fidelity fits within one zone for the 4-zone
        // case, and within two zones for the 8-zone case."
        assert_eq!(four.zones_snapped(VIDEO_FULL_WINDOW), 1);
        assert_eq!(eight.zones_snapped(VIDEO_FULL_WINDOW), 2);
        // "At lowest fidelity, the video fits entirely within one of the
        // 8 zones."
        assert_eq!(four.zones_snapped(VIDEO_REDUCED_WINDOW), 1);
        assert_eq!(eight.zones_snapped(VIDEO_REDUCED_WINDOW), 1);
        // "The map at full fidelity occupies all zones in the 4-zone case
        // ... it occupies only six zones in the 8-zone case."
        assert_eq!(four.zones_snapped(MAP_FULL_WINDOW), 4);
        assert_eq!(eight.zones_snapped(MAP_FULL_WINDOW), 6);
        // "At lowest fidelity, the map output only occupies two zones in
        // the 4-zone case ... only three zones [in the 8-zone case]."
        assert_eq!(four.zones_snapped(MAP_LOWEST_WINDOW), 2);
        assert_eq!(eight.zones_snapped(MAP_LOWEST_WINDOW), 3);
    }

    #[test]
    fn full_screen_lights_everything() {
        for grid in [
            ZoneGrid::single(),
            ZoneGrid::four_zone(),
            ZoneGrid::eight_zone(),
        ] {
            assert_eq!(grid.zones_snapped(WindowRect::full_screen()), grid.total());
        }
    }

    #[test]
    fn snap_to_beats_straddling() {
        let grid = ZoneGrid::four_zone();
        let w = WindowRect::new(0.4, 0.4);
        // Centered, the window straddles all four zones.
        assert_eq!(grid.zones_at(w, 0.3, 0.3), 4);
        // Snapped, it fits in one.
        assert_eq!(grid.zones_snapped(w), 1);
    }

    #[test]
    fn lit_fraction_is_area_proportional() {
        let eight = ZoneGrid::eight_zone();
        assert!((eight.lit_fraction(2) - 0.25).abs() < 1e-12);
        assert_eq!(eight.lit_fraction(8), 1.0);
        assert_eq!(eight.lit_fraction(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn lit_fraction_bounds() {
        let _ = ZoneGrid::four_zone().lit_fraction(5);
    }

    #[test]
    #[should_panic(expected = "invalid window rect")]
    fn bad_rect_rejected() {
        let _ = WindowRect::new(0.0, 0.5);
    }

    #[test]
    fn zones_at_edge_cases() {
        let grid = ZoneGrid::eight_zone();
        // A window exactly covering one zone.
        assert_eq!(grid.zones_at(WindowRect::new(0.25, 0.5), 0.25, 0.5), 1);
        // Full screen at origin.
        assert_eq!(grid.zones_at(WindowRect::full_screen(), 0.0, 0.0), 8);
    }
}
