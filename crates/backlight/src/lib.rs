#![forbid(unsafe_code)]
//! Zoned backlighting (Section 4 of the paper).
//!
//! No display with independently-dimmable backlight zones existed, so the
//! paper *projects* the energy impact from measured experiments: model the
//! screen as a grid of zones, each illuminated by one lamp whose power is
//! proportional to its area (¼ or ⅛ of the Figure-4 display power),
//! compute how many zones each application's window occupies at each
//! fidelity, and scale the measured display energy by the lit fraction.
//!
//! This crate implements that projection: zone grids, window-to-zone
//! occupancy with snap-to placement (the paper's proposed window-manager
//! "snap-to" feature that moves windows to straddle the fewest zones),
//! and the energy rescaling applied to machine run reports.

pub mod project;
pub mod zone;

pub use project::{project_report, zoned_energy_j};
pub use zone::{WindowRect, ZoneGrid};

/// Video window at full fidelity: 320×240 on the 560X's 800×600 panel.
pub const VIDEO_FULL_WINDOW: zone::WindowRect = zone::WindowRect {
    width: 0.40,
    height: 0.40,
};

/// Video window at half height and width.
pub const VIDEO_REDUCED_WINDOW: zone::WindowRect = zone::WindowRect {
    width: 0.20,
    height: 0.20,
};

/// Anvil's map window at full fidelity (large, but not full-screen:
/// the paper's full map lights 4 of 4 and 6 of 8 zones).
pub const MAP_FULL_WINDOW: zone::WindowRect = zone::WindowRect {
    width: 0.72,
    height: 0.90,
};

/// Anvil's window for a cropped, filtered map (2 of 4 and 3 of 8 zones).
pub const MAP_LOWEST_WINDOW: zone::WindowRect = zone::WindowRect {
    width: 0.55,
    height: 0.45,
};
