//! Figure 18 pinned to the paper's stated percentages.
//!
//! Section 4.2 states the zoned-backlight savings in prose: "the savings
//! for the video application would be 17-18% [4-zone, hardware-only
//! power management] ... 24% and 28-29% [lowest fidelity, 4- and
//! 8-zone] ... the map application would only save 7-8% [8-zone, full
//! fidelity] ... 17% and 21-22% [lowest fidelity, 4- and 8-zone]."
//!
//! The projection model makes each of those a closed-form function of
//! two inputs: the zone occupancy (pure geometry, pinned in the zone
//! tests) and the display's share of total energy in the underlying
//! measurement. This test drives `project_report` with the display
//! shares implied by the 560X calibration — the display claims a larger
//! share at lower fidelity because adaptation shrinks every *other*
//! component — and asserts the projected saving lands inside the
//! percentage band the paper prints. A change to `dim_ratio`, the zone
//! geometry, or the projection arithmetic moves at least one band.

use backlight::project::{dim_ratio, project_report, zoned_energy_j};
use backlight::{
    WindowRect, ZoneGrid, MAP_FULL_WINDOW, MAP_LOWEST_WINDOW, VIDEO_FULL_WINDOW,
    VIDEO_REDUCED_WINDOW,
};
use machine::{ComponentTotals, RunReport};
use simcore::SimTime;

/// A synthetic measurement with a chosen display share.
fn report_with_display_share(share: f64) -> RunReport {
    let total_j = 1000.0;
    RunReport {
        end: SimTime::from_secs(100),
        total_j,
        buckets: vec![],
        components: ComponentTotals {
            display_j: total_j * share,
            ..Default::default()
        },
        detail: vec![],
        fidelity: vec![],
        exhausted: false,
        residual_j: f64::INFINITY,
        bytes_carried: 0,
        rpc_timeouts: 0,
        rpc_retries: 0,
    }
}

/// Percentage saved by projecting `report` onto `grid` with `window`.
fn saving_pct(report: &RunReport, grid: ZoneGrid, window: WindowRect) -> f64 {
    let p = project_report(report, grid, window);
    p.saved_j / report.total_j * 100.0
}

/// The panel's dim/bright ratio drives every number below; pin it to the
/// calibrated 560X value (2.066 W dim / 4.54 W bright).
#[test]
fn dim_ratio_matches_calibration() {
    assert!(
        (dim_ratio() - 2.066 / 4.54).abs() < 1e-12,
        "dim_ratio {} drifted from the 560X calibration",
        dim_ratio()
    );
}

/// "For the hardware-only traces at full data fidelity, the savings for
/// the video application would be 17-18%" — one lit zone of four. The
/// video at full fidelity draws ~43% of total energy as display.
#[test]
fn video_hw_only_saves_17_to_18_pct() {
    let r = report_with_display_share(0.43);
    let four = saving_pct(&r, ZoneGrid::four_zone(), VIDEO_FULL_WINDOW);
    assert!((17.0..=18.0).contains(&four), "4-zone saving {four}%");
    // 2 of 8 zones is the same lit fraction as 1 of 4: the 8-zone
    // display buys the full-fidelity video nothing extra.
    let eight = saving_pct(&r, ZoneGrid::eight_zone(), VIDEO_FULL_WINDOW);
    assert!(
        (four - eight).abs() < 1e-9,
        "equal lit fractions must save equally: {four}% vs {eight}%"
    );
}

/// "If the user was willing to tolerate degraded fidelity, the savings
/// would increase to 24% and 28-29%" — the reduced-size video window in
/// one zone of four, then one of eight. At lowest fidelity the display
/// share rises to ~60% of the (smaller) total.
#[test]
fn video_lowest_fidelity_saves_24_then_28_to_29_pct() {
    let r = report_with_display_share(0.60);
    let four = saving_pct(&r, ZoneGrid::four_zone(), VIDEO_REDUCED_WINDOW);
    assert!((23.5..=25.0).contains(&four), "4-zone saving {four}%");
    let eight = saving_pct(&r, ZoneGrid::eight_zone(), VIDEO_REDUCED_WINDOW);
    assert!((28.0..=29.0).contains(&eight), "8-zone saving {eight}%");
}

/// "The map application would only save 7-8% with the 8-zone display" —
/// six zones stay lit — "and nothing with the 4-zone display", where the
/// full-fidelity map lights all four zones.
#[test]
fn map_full_fidelity_saves_7_to_8_pct_on_8_zones_only() {
    let r = report_with_display_share(0.57);
    let eight = saving_pct(&r, ZoneGrid::eight_zone(), MAP_FULL_WINDOW);
    assert!((7.0..=8.0).contains(&eight), "8-zone saving {eight}%");
    let four = saving_pct(&r, ZoneGrid::four_zone(), MAP_FULL_WINDOW);
    assert!(
        four.abs() < 1e-9,
        "all 4 zones lit: projection must be the identity, saved {four}%"
    );
}

/// "At lowest fidelity ... 17% and 21-22%" — the cropped map in two
/// zones of four, then three of eight.
#[test]
fn map_lowest_fidelity_saves_17_then_21_to_22_pct() {
    let r = report_with_display_share(0.64);
    let four = saving_pct(&r, ZoneGrid::four_zone(), MAP_LOWEST_WINDOW);
    assert!((16.5..=18.0).contains(&four), "4-zone saving {four}%");
    let eight = saving_pct(&r, ZoneGrid::eight_zone(), MAP_LOWEST_WINDOW);
    assert!((21.0..=22.0).contains(&eight), "8-zone saving {eight}%");
}

/// Edge case: a single-zone display *is* the conventional display — any
/// window lights its only zone, so the projection is the identity and
/// "zoning" degenerates to no saving at all.
#[test]
fn one_zone_display_is_the_identity_projection() {
    let r = report_with_display_share(0.5);
    for window in [
        VIDEO_FULL_WINDOW,
        VIDEO_REDUCED_WINDOW,
        MAP_LOWEST_WINDOW,
        WindowRect::full_screen(),
    ] {
        let p = project_report(&r, ZoneGrid::single(), window);
        assert_eq!(p.zones_lit, 1);
        assert!(
            p.saved_j.abs() < 1e-9 && (p.energy_j - r.total_j).abs() < 1e-9,
            "single-zone projection moved energy: {p:?}"
        );
    }
}

/// Edge case: a full-screen window lights every zone of every grid — no
/// zone is ever dimmed, so no display energy is saved.
#[test]
fn all_zones_lit_saves_nothing() {
    let r = report_with_display_share(0.5);
    for grid in [ZoneGrid::four_zone(), ZoneGrid::eight_zone()] {
        let e = zoned_energy_j(&r, grid, WindowRect::full_screen());
        assert!(
            (e - r.total_j).abs() < 1e-9,
            "{}x{} grid saved energy with all zones lit",
            grid.cols,
            grid.rows
        );
    }
}

/// Edge case: a report with no display energy is immune to zoning, and
/// saved energy can never exceed what the display consumed.
#[test]
fn savings_are_bounded_by_display_energy() {
    let dark = report_with_display_share(0.0);
    let p = project_report(&dark, ZoneGrid::eight_zone(), VIDEO_REDUCED_WINDOW);
    assert!(p.saved_j.abs() < 1e-9, "saved energy without a display");

    let bright = report_with_display_share(0.64);
    for grid in [ZoneGrid::four_zone(), ZoneGrid::eight_zone()] {
        for window in [VIDEO_FULL_WINDOW, MAP_LOWEST_WINDOW] {
            let p = project_report(&bright, grid, window);
            let ceiling = bright.components.display_j * (1.0 - dim_ratio());
            assert!(
                p.saved_j >= 0.0 && p.saved_j <= ceiling + 1e-9,
                "saving {} outside [0, {ceiling}]",
                p.saved_j
            );
        }
    }
}

/// The savings grow monotonically along the paper's narrative axes: more
/// zones never hurt, and a larger display share always magnifies the
/// zoned saving.
#[test]
fn savings_monotone_in_zones_and_display_share() {
    for share in [0.2, 0.43, 0.64] {
        let r = report_with_display_share(share);
        for window in [VIDEO_REDUCED_WINDOW, MAP_LOWEST_WINDOW] {
            let one = saving_pct(&r, ZoneGrid::single(), window);
            let four = saving_pct(&r, ZoneGrid::four_zone(), window);
            let eight = saving_pct(&r, ZoneGrid::eight_zone(), window);
            assert!(one <= four + 1e-9 && four <= eight + 1e-9);
        }
    }
    let lean = report_with_display_share(0.3);
    let rich = report_with_display_share(0.6);
    let window = MAP_LOWEST_WINDOW;
    assert!(
        saving_pct(&lean, ZoneGrid::eight_zone(), window)
            < saving_pct(&rich, ZoneGrid::eight_zone(), window)
    );
}
