//! Deterministic call-trees of named costed blocks.
//!
//! The real PowerScope resolved sampled PCs through symbol tables into
//! *procedures*, and procedures nest: `sftp_DataArrived` runs inside
//! Xanim's frame pipeline, which runs inside the playback loop. Our
//! workload models emit flat procedure labels on their
//! [`machine::Activity`] costs; this module gives each label a fixed
//! position in a per-application call-tree so the profiler can roll
//! samples up into parent/child inclusive–exclusive energy accounting
//! (DESIGN.md §17).
//!
//! The trees are static data, not captured stacks: a workload model is a
//! phase machine, so the path from the application root to each costed
//! block is known at build time and never varies between runs. That is
//! what keeps path-level profiles deterministic — resolution draws no
//! randomness and consults no runtime state.

/// One frame of a call path: a procedure-like name, root first.
pub type CallFrame = &'static str;

/// A costed block: one leaf procedure label and its full call path
/// (root frame first, the leaf label last).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostedBlock {
    /// Attribution bucket the block's samples land in (the workload name
    /// or a service bucket such as `"janus"` or `"proxy"`).
    pub bucket: &'static str,
    /// Call path, root first; the last frame is the leaf label the
    /// workload attaches to its [`machine::Activity`].
    pub path: &'static [CallFrame],
}

impl CostedBlock {
    /// The leaf procedure label (the last path frame).
    pub fn leaf(&self) -> CallFrame {
        self.path.last().copied().unwrap_or("")
    }
}

/// Deepest call path any block declares. The profiler's sample stacks
/// have a fixed capacity; keeping the bound here (with a test) means a
/// new deep block fails fast instead of silently truncating.
pub const MAX_PATH_DEPTH: usize = 4;

/// Every costed block the workload models emit, grouped by application.
///
/// Each application gets a root frame (the paper's process level), an
/// intermediate pipeline frame where the model has distinct phases, and
/// the leaf labels the workloads already attach to their activities.
/// System buckets (`Idle`, `X Server`, …) are single-frame: the paper's
/// profiles never decompose them further. The `fault_injection` frames
/// cover the misbehavior wrapper's wedged spin, which bills to the
/// wrapped application's bucket.
pub const CALL_TREE: &[CostedBlock] = &[
    // Xanim (video): fetch → decode inside the per-frame pipeline.
    CostedBlock {
        bucket: "xanim",
        path: &["video_playback", "frame_pipeline", "sftp_DataArrived"],
    },
    CostedBlock {
        bucket: "xanim",
        path: &["video_playback", "frame_pipeline", "decode_frame"],
    },
    CostedBlock {
        bucket: "xanim",
        path: &["fault_injection", "wedged"],
    },
    // Anvil (map): fetch and rasterise legs of one map view.
    CostedBlock {
        bucket: "anvil",
        path: &["map_view", "map_fetch", "fetch_map"],
    },
    CostedBlock {
        bucket: "anvil",
        path: &["map_view", "map_render", "rasterise"],
    },
    CostedBlock {
        bucket: "anvil",
        path: &["fault_injection", "wedged"],
    },
    // Netscape (web): fetch and render legs of one page view.
    CostedBlock {
        bucket: "netscape",
        path: &["browse_page", "page_fetch", "http_get"],
    },
    CostedBlock {
        bucket: "netscape",
        path: &["browse_page", "page_render", "render_image"],
    },
    CostedBlock {
        bucket: "netscape",
        path: &["fault_injection", "wedged"],
    },
    // Speech front half (billed to the speech process).
    CostedBlock {
        bucket: "speech",
        path: &["recognize_utterance", "frontend_dsp"],
    },
    CostedBlock {
        bucket: "speech",
        path: &["recognize_utterance", "remote_recognize"],
    },
    CostedBlock {
        bucket: "speech",
        path: &["recognize_utterance", "first_phase"],
    },
    CostedBlock {
        bucket: "speech",
        path: &["recognize_utterance", "hybrid_recognize"],
    },
    CostedBlock {
        bucket: "speech",
        path: &["fault_injection", "wedged"],
    },
    // The local Janus search engine the speech front-end drives.
    CostedBlock {
        bucket: "janus",
        path: &["recognize_utterance", "viterbi_search"],
    },
    // The client web proxy.
    CostedBlock {
        bucket: "proxy",
        path: &["proxy_relay", "relay_reply"],
    },
    // System buckets: single-frame, as in the paper's summary table.
    CostedBlock {
        bucket: "X Server",
        path: &["render"],
    },
    CostedBlock {
        bucket: "Idle",
        path: &["idle_hlt"],
    },
    CostedBlock {
        bucket: "WaveLAN",
        path: &["wavelan_intr"],
    },
    CostedBlock {
        bucket: "Odyssey",
        path: &["viceroy_datapath"],
    },
    CostedBlock {
        bucket: "Kernel",
        path: &["disk_intr"],
    },
];

/// Resolves a `(bucket, leaf procedure)` pair to its full call path, or
/// `None` when no block declares it (the profiler then records the leaf
/// as a single-frame path — the same lossy fallback as a stripped
/// binary's `(unknown)` symbols).
pub fn call_path(bucket: &str, leaf: &str) -> Option<&'static [CallFrame]> {
    CALL_TREE
        .iter()
        .find(|b| b.bucket == bucket && b.leaf() == leaf)
        .map(|b| b.path)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every `(bucket, procedure)` label the production workloads emit.
    /// Grep-maintained: extend this list (and the tree) when adding a
    /// costed block to a workload model.
    const EMITTED: &[(&str, &str)] = &[
        ("xanim", "sftp_DataArrived"),
        ("xanim", "decode_frame"),
        ("xanim", "wedged"),
        ("anvil", "fetch_map"),
        ("anvil", "rasterise"),
        ("anvil", "wedged"),
        ("netscape", "http_get"),
        ("netscape", "render_image"),
        ("netscape", "wedged"),
        ("speech", "frontend_dsp"),
        ("speech", "remote_recognize"),
        ("speech", "first_phase"),
        ("speech", "hybrid_recognize"),
        ("janus", "viterbi_search"),
        ("proxy", "relay_reply"),
        ("X Server", "render"),
        ("Idle", "idle_hlt"),
        ("WaveLAN", "wavelan_intr"),
        ("Odyssey", "viceroy_datapath"),
        ("Kernel", "disk_intr"),
    ];

    #[test]
    fn every_emitted_procedure_has_a_call_path() {
        for (bucket, leaf) in EMITTED {
            let path = call_path(bucket, leaf);
            assert!(path.is_some(), "no call path for ({bucket}, {leaf})");
        }
    }

    #[test]
    fn paths_end_at_their_leaf_and_fit_the_stack() {
        for b in CALL_TREE {
            assert!(!b.path.is_empty(), "empty path in bucket {}", b.bucket);
            assert!(
                b.path.len() <= MAX_PATH_DEPTH,
                "path {:?} deeper than {MAX_PATH_DEPTH}",
                b.path
            );
            assert_eq!(
                call_path(b.bucket, b.leaf()),
                Some(b.path),
                "({}, {}) does not resolve to its own path",
                b.bucket,
                b.leaf()
            );
        }
    }

    #[test]
    fn blocks_are_unique_per_bucket_and_leaf() {
        for (i, a) in CALL_TREE.iter().enumerate() {
            for b in &CALL_TREE[i + 1..] {
                assert!(
                    !(a.bucket == b.bucket && a.leaf() == b.leaf()),
                    "duplicate block ({}, {})",
                    a.bucket,
                    a.leaf()
                );
            }
        }
    }

    #[test]
    fn frame_names_are_consistent_within_a_bucket() {
        // Two paths sharing a prefix frame must agree on everything
        // before it: the tree is a tree, not a DAG of homonyms.
        for a in CALL_TREE {
            for b in CALL_TREE {
                if a.bucket != b.bucket {
                    continue;
                }
                for (da, fa) in a.path.iter().enumerate() {
                    for (db, fb) in b.path.iter().enumerate() {
                        if fa == fb {
                            assert_eq!(
                                a.path[..da],
                                b.path[..db],
                                "frame {fa} appears under different ancestors in {}",
                                a.bucket
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn unknown_pairs_resolve_to_none() {
        assert_eq!(call_path("xanim", "rasterise"), None);
        assert_eq!(call_path("ghost", "decode_frame"), None);
        assert_eq!(call_path("xanim", "unknown"), None);
    }
}
