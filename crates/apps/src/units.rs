//! Shared workload units.
//!
//! The composite application (Section 3.7) and the bursty workload
//! (Section 5.4) are assembled from the same building blocks as the
//! standalone applications: one *unit* is a flat list of steps (recognize
//! two utterances; fetch-and-view one web page; fetch-and-view one map;
//! play one minute of video). Units use relative think times so they can
//! be built before their execution instant is known.
//!
//! Quantities here follow the D4 unit-suffix discipline (`_j`, `_w`,
//! `_s`, …), which is what lets simlint's U1 pass infer a dimension for
//! every expression and reject joules-plus-watts arithmetic statically
//! (DESIGN.md §16).

use hw560x::cpu::intensity;
use machine::Activity;
use netsim::RpcSpec;
use simcore::SimDuration;

use crate::datasets::{
    MapObject, Utterance, WebImage, MAP_RENDER_S_PER_BYTE, MAP_SERVER_FIXED_S,
    MAP_SERVER_S_PER_BYTE, MAP_X_RENDER_S, SPEECH_FRONTEND_FACTOR, VIDEO_DECODE_S_PER_BYTE,
    VIDEO_FPS, VIDEO_RENDER_S_FULL, WEB_RENDER_S_PER_BYTE, WEB_SERVER_FIXED_S,
    WEB_SERVER_S_PER_BYTE, WEB_X_RENDER_S,
};
use crate::map::MapFidelity;
use crate::video::VideoVariant;
use crate::web::WebFidelity;

/// One step of a unit: a machine activity, or a relative pause.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum UnitStep {
    /// Run this activity.
    Act(Activity),
    /// Wait this long from the instant the step is reached (think time or
    /// frame pacing).
    Pause(SimDuration),
}

impl UnitStep {
    /// Encodes the step into a snapshot payload.
    pub fn freeze_into(&self, w: &mut simcore::SnapshotWriter) {
        match self {
            UnitStep::Act(a) => {
                w.put_u64(0);
                a.freeze_into(w);
            }
            UnitStep::Pause(d) => {
                w.put_u64(1);
                w.put_duration(*d);
            }
        }
    }

    /// Decodes a step written by [`Self::freeze_into`].
    pub fn thaw_from(r: &mut simcore::SnapshotReader<'_>) -> Result<Self, simcore::SnapshotError> {
        Ok(match r.take_u64()? {
            0 => UnitStep::Act(Activity::thaw_from(r)?),
            1 => UnitStep::Pause(r.take_duration()?),
            _ => return Err(simcore::SnapshotError::Corrupt("unit step tag")),
        })
    }
}

/// Local recognition of a list of utterances (the composite's speech leg).
pub fn speech_unit(utterances: &[Utterance], reduced: bool, jitter: f64) -> Vec<UnitStep> {
    let mut steps = Vec::new();
    for u in utterances {
        steps.push(UnitStep::Act(Activity::Cpu {
            duration: SimDuration::from_secs_f64(u.speech_s * SPEECH_FRONTEND_FACTOR * jitter),
            intensity: intensity::SPEECH_FRONTEND,
            procedure: "frontend_dsp",
        }));
        let mut cpu = u.speech_s * u.local_cpu_factor * jitter;
        if reduced {
            cpu *= u.reduced_ratio;
        }
        steps.push(UnitStep::Act(Activity::CpuAs {
            bucket: "janus",
            duration: SimDuration::from_secs_f64(cpu),
            intensity: intensity::SPEECH_SEARCH,
            procedure: "viterbi_search",
        }));
    }
    steps
}

/// Fetch and view one web image, then think.
pub fn web_unit(
    image: &WebImage,
    fidelity: WebFidelity,
    jitter: f64,
    think: SimDuration,
) -> Vec<UnitStep> {
    let bytes = fidelity.transcoded_bytes(image);
    // Tiny images bypass transcoding (it would not shrink them).
    let distill = if bytes >= image.bytes {
        0.0
    } else {
        image.bytes as f64 * WEB_SERVER_S_PER_BYTE
    };
    let mut steps = vec![
        UnitStep::Act(Activity::Rpc {
            spec: RpcSpec {
                request_bytes: 800,
                reply_bytes: bytes,
                server_time: SimDuration::from_secs_f64(WEB_SERVER_FIXED_S + distill),
            },
            procedure: "http_get",
        }),
        UnitStep::Act(Activity::CpuAs {
            bucket: "proxy",
            duration: SimDuration::from_secs_f64(0.01 + bytes as f64 * 0.08e-6),
            intensity: intensity::WEB_RENDER,
            procedure: "relay_reply",
        }),
        UnitStep::Act(Activity::Cpu {
            duration: SimDuration::from_secs_f64(bytes as f64 * WEB_RENDER_S_PER_BYTE * jitter),
            intensity: intensity::WEB_RENDER,
            procedure: "render_image",
        }),
        UnitStep::Act(Activity::XRender {
            cost: SimDuration::from_secs_f64(WEB_X_RENDER_S * jitter),
        }),
    ];
    if !think.is_zero() {
        steps.push(UnitStep::Pause(think));
    }
    steps
}

/// Fetch and view one map, then think.
pub fn map_unit(
    map: &MapObject,
    fidelity: MapFidelity,
    jitter: f64,
    think: SimDuration,
) -> Vec<UnitStep> {
    let bytes = (map.full_bytes as f64 * fidelity.data_ratio(map) * jitter).round() as u64;
    let mut steps = vec![
        UnitStep::Act(Activity::Rpc {
            spec: RpcSpec {
                request_bytes: 512,
                reply_bytes: bytes,
                server_time: SimDuration::from_secs_f64(
                    MAP_SERVER_FIXED_S + map.full_bytes as f64 * MAP_SERVER_S_PER_BYTE,
                ),
            },
            procedure: "fetch_map",
        }),
        UnitStep::Act(Activity::Cpu {
            duration: SimDuration::from_secs_f64(bytes as f64 * MAP_RENDER_S_PER_BYTE),
            intensity: intensity::MAP_RENDER,
            procedure: "rasterise",
        }),
        UnitStep::Act(Activity::XRender {
            cost: SimDuration::from_secs_f64(MAP_X_RENDER_S * jitter),
        }),
    ];
    if !think.is_zero() {
        steps.push(UnitStep::Pause(think));
    }
    steps
}

/// Play `seconds` of video frames at a variant (the bursty workload's
/// one-minute clip). Pacing is by nominal frame budget; under link
/// contention frames simply arrive late.
pub fn video_unit(
    bitrate_bps: f64,
    premiere_c_ratio: f64,
    variant: VideoVariant,
    jitter: f64,
    seconds: f64,
) -> Vec<UnitStep> {
    // Build a clip descriptor on the fly for ratio lookups.
    let clip = crate::datasets::VideoClip {
        name: "unit",
        duration_s: seconds,
        bitrate_bps,
        premiere_b_ratio: (premiere_c_ratio + 1.0) / 2.0,
        premiere_c_ratio,
    };
    let frames = (seconds * VIDEO_FPS).round() as u64;
    let bytes = (bitrate_bps / 8.0 / VIDEO_FPS * variant.data_ratio(&clip) * jitter).round() as u64;
    let decode = SimDuration::from_secs_f64(bytes as f64 * VIDEO_DECODE_S_PER_BYTE);
    let render = SimDuration::from_secs_f64(VIDEO_RENDER_S_FULL * variant.area() * jitter);
    let fetch_est = SimDuration::from_secs_f64(bytes as f64 * 8.0 / 2.0e6);
    let period = SimDuration::from_secs_f64(1.0 / VIDEO_FPS);
    let pace = period.saturating_sub(fetch_est + decode);
    let mut steps = Vec::with_capacity(frames as usize * 4);
    for _ in 0..frames {
        steps.push(UnitStep::Act(Activity::BulkFetch {
            bytes,
            procedure: "sftp_DataArrived",
        }));
        steps.push(UnitStep::Act(Activity::Cpu {
            duration: decode,
            intensity: intensity::VIDEO_DECODE,
            procedure: "decode_frame",
        }));
        steps.push(UnitStep::Act(Activity::XRender { cost: render }));
        if !pace.is_zero() {
            steps.push(UnitStep::Pause(pace));
        }
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{MAPS, UTTERANCES, VIDEO_CLIPS, WEB_IMAGES};

    #[test]
    fn speech_unit_has_two_steps_per_utterance() {
        let unit = speech_unit(&UTTERANCES[..2], false, 1.0);
        assert_eq!(unit.len(), 4);
        let reduced = speech_unit(&UTTERANCES[..2], true, 1.0);
        // Reduced search bursts are shorter.
        let dur = |s: &UnitStep| match s {
            UnitStep::Act(Activity::CpuAs { duration, .. }) => duration.as_secs_f64(),
            _ => 0.0,
        };
        assert!(dur(&reduced[1]) < dur(&unit[1]));
    }

    #[test]
    fn web_unit_honours_think_time() {
        let with = web_unit(
            &WEB_IMAGES[0],
            WebFidelity::Full,
            1.0,
            SimDuration::from_secs(5),
        );
        let without = web_unit(&WEB_IMAGES[0], WebFidelity::Full, 1.0, SimDuration::ZERO);
        assert_eq!(with.len(), without.len() + 1);
        assert!(matches!(with.last(), Some(UnitStep::Pause(_))));
    }

    #[test]
    fn map_unit_scales_with_fidelity() {
        let full = map_unit(&MAPS[0], MapFidelity::full(), 1.0, SimDuration::ZERO);
        let low = map_unit(
            &MAPS[0],
            MapFidelity {
                filter: crate::map::MapFilter::Secondary,
                cropped: true,
            },
            1.0,
            SimDuration::ZERO,
        );
        let bytes = |s: &UnitStep| match s {
            UnitStep::Act(Activity::Rpc { spec, .. }) => spec.reply_bytes,
            _ => 0,
        };
        assert!(bytes(&low[0]) < bytes(&full[0]) / 5);
    }

    #[test]
    fn video_unit_paces_to_duration() {
        let c = &VIDEO_CLIPS[0];
        let unit = video_unit(
            c.bitrate_bps,
            c.premiere_c_ratio,
            VideoVariant::Full,
            1.0,
            10.0,
        );
        let frames = unit
            .iter()
            .filter(|s| matches!(s, UnitStep::Act(Activity::BulkFetch { .. })))
            .count();
        assert_eq!(frames, 120);
    }
}
