//! Application misbehavior models.
//!
//! [`Misbehavior`] wraps any [`Workload`] and makes it fail the way real
//! applications fail the viceroy's trust assumptions:
//!
//! - **hang** — during the windows of a [`FaultSchedule`], the app stops
//!   issuing operations and spins: one enormous CPU burst instead of its
//!   normal phases, drawing full power while never polling (and refusing
//!   upcalls, as a wedged event loop would);
//! - **crash** — at a fixed instant the app terminates mid-operation,
//!   leaking its fidelity slot: no final downcall releases its demand
//!   declaration;
//! - **ignore** — the app keeps running normally but every fidelity
//!   upcall bounces: it reports it *could* degrade, then doesn't;
//! - **lie** — the app accepts degrade upcalls and reports the lower
//!   fidelity, but never forwards them to the real workload, so it draws
//!   the power of the fidelity it actually runs at.
//!
//! The wrapper is transparent when no misbehavior is active: it forwards
//! the inner workload's name, display need, phases, and fidelity, so
//! PowerScope attribution and the goal controller see the same process
//! they would without it.

use machine::{Activity, AdaptDirection, FidelityView, Step, Workload};
use simcore::fault::FaultSchedule;
use simcore::SimTime;

/// The ways a wrapped application can betray the viceroy.
#[derive(Clone, Debug)]
enum Kind {
    /// Spin (full power, no polls, no upcalls) during schedule windows.
    Hang { schedule: FaultSchedule },
    /// Terminate at `at` without releasing the demand declaration.
    Crash { at: SimTime },
    /// Reject every upcall while claiming adaptability.
    IgnoreUpcalls,
    /// Accept degrades in name only: report level `actual - offset`
    /// while the inner workload keeps running at `actual`.
    Lie,
}

/// A misbehaving wrapper around a real workload. See the module docs.
pub struct Misbehavior {
    inner: Box<dyn Workload>,
    kind: Kind,
    /// Lie state: claimed levels below the inner workload's actual level.
    claimed_offset: usize,
    crashed: bool,
    restartable: bool,
}

impl std::fmt::Debug for Misbehavior {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Misbehavior").finish_non_exhaustive()
    }
}

impl Misbehavior {
    /// Hangs during the windows of `schedule`.
    pub fn hang(inner: Box<dyn Workload>, schedule: FaultSchedule) -> Self {
        Misbehavior::new(inner, Kind::Hang { schedule })
    }

    /// Crashes (terminates mid-operation) at `at`.
    pub fn crash_at(inner: Box<dyn Workload>, at: SimTime) -> Self {
        Misbehavior::new(inner, Kind::Crash { at })
    }

    /// Ignores every fidelity upcall.
    pub fn ignore_upcalls(inner: Box<dyn Workload>) -> Self {
        Misbehavior::new(inner, Kind::IgnoreUpcalls)
    }

    /// Reports degraded fidelity without actually degrading.
    pub fn lie(inner: Box<dyn Workload>) -> Self {
        Misbehavior::new(inner, Kind::Lie)
    }

    fn new(inner: Box<dyn Workload>, kind: Kind) -> Self {
        Misbehavior {
            inner,
            kind,
            claimed_offset: 0,
            crashed: false,
            restartable: false,
        }
    }

    /// Opts into supervisor restarts: after a quarantine or crash,
    /// [`Workload::on_restart`] clears the wrapper's failure state and the
    /// inner workload resumes where it left off (the warden held its
    /// state).
    pub fn restartable(mut self) -> Self {
        self.restartable = true;
        self
    }

    fn hung_at(&self, now: SimTime) -> bool {
        match &self.kind {
            Kind::Hang { schedule } => schedule.active_at(now),
            _ => false,
        }
    }
}

impl Workload for Misbehavior {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn display_need(&self) -> hw560x::DisplayState {
        self.inner.display_need()
    }

    fn poll(&mut self, now: SimTime) -> Step {
        if self.crashed {
            return Step::Done;
        }
        match &self.kind {
            Kind::Crash { at } if now >= *at => {
                self.crashed = true;
                return Step::Done;
            }
            Kind::Hang { schedule } if schedule.active_at(now) => {
                // Spin until the window clears: one burst, no polls. The
                // machine chops it into scheduler quanta, so a suspension
                // still takes effect promptly.
                let end = schedule
                    .next_transition_after(now)
                    .unwrap_or(now + simcore::SimDuration::from_secs(1));
                return Step::Run(Activity::Cpu {
                    duration: end.saturating_since(now),
                    intensity: 1.0,
                    procedure: "wedged",
                });
            }
            _ => {}
        }
        self.inner.poll(now)
    }

    fn fidelity(&self) -> FidelityView {
        let v = self.inner.fidelity();
        FidelityView {
            level: v.level.saturating_sub(self.claimed_offset),
            levels: v.levels,
        }
    }

    fn on_upcall(&mut self, dir: AdaptDirection, now: SimTime) -> bool {
        if self.crashed {
            return false;
        }
        match (&self.kind, dir) {
            // A wedged event loop never services upcalls.
            (Kind::Hang { .. }, _) if self.hung_at(now) => false,
            (Kind::IgnoreUpcalls, _) => false,
            (Kind::Lie, AdaptDirection::Degrade) => {
                if self.fidelity().can_degrade() {
                    self.claimed_offset += 1;
                    true
                } else {
                    false
                }
            }
            (Kind::Lie, AdaptDirection::Upgrade) => {
                if self.claimed_offset > 0 {
                    self.claimed_offset -= 1;
                    true
                } else {
                    self.inner.on_upcall(dir, now)
                }
            }
            _ => self.inner.on_upcall(dir, now),
        }
    }

    fn freeze(&self, w: &mut simcore::SnapshotWriter) -> Result<(), simcore::SnapshotError> {
        w.put_usize(self.claimed_offset);
        w.put_bool(self.crashed);
        // Only the crash instant is mutable kind state: on_restart defuses
        // it. The schedule and the other variants are construction-time.
        if let Kind::Crash { at } = &self.kind {
            w.put_time(*at);
        }
        self.inner.freeze(w)
    }

    fn thaw(&mut self, r: &mut simcore::SnapshotReader<'_>) -> Result<(), simcore::SnapshotError> {
        self.claimed_offset = r.take_usize()?;
        self.crashed = r.take_bool()?;
        if let Kind::Crash { at } = &mut self.kind {
            *at = r.take_time()?;
        }
        self.inner.thaw(r)
    }

    fn on_restart(&mut self, now: SimTime) -> bool {
        if !self.restartable {
            return false;
        }
        self.crashed = false;
        self.claimed_offset = 0;
        // A revived app does not re-crash: the defect fired once.
        if let Kind::Crash { at } = &mut self.kind {
            *at = SimTime::from_micros(u64::MAX);
        }
        // Give the inner workload a chance to reset too; most paper apps
        // are stateless generators and keep their default.
        let _ = self.inner.on_restart(now);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::workload::ScriptedWorkload;
    use simcore::fault::FaultWindow;
    use simcore::SimDuration;

    struct Adaptive {
        level: usize,
    }

    impl Workload for Adaptive {
        fn name(&self) -> &'static str {
            "adaptive"
        }
        fn poll(&mut self, now: SimTime) -> Step {
            Step::Run(Activity::Wait {
                until: now + SimDuration::from_secs(1),
            })
        }
        fn fidelity(&self) -> FidelityView {
            FidelityView::new(self.level, 4)
        }
        fn on_upcall(&mut self, dir: AdaptDirection, _now: SimTime) -> bool {
            match dir {
                AdaptDirection::Degrade if self.level > 0 => {
                    self.level -= 1;
                    true
                }
                AdaptDirection::Upgrade if self.level < 3 => {
                    self.level += 1;
                    true
                }
                _ => false,
            }
        }
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn hang_spins_through_the_window_and_refuses_upcalls() {
        let sched = FaultSchedule::new(vec![FaultWindow {
            start: t(10),
            end: t(20),
        }]);
        let mut w = Misbehavior::hang(Box::new(Adaptive { level: 3 }), sched);
        assert!(matches!(w.poll(t(5)), Step::Run(Activity::Wait { .. })));
        match w.poll(t(12)) {
            Step::Run(Activity::Cpu { duration, .. }) => {
                assert_eq!(duration, SimDuration::from_secs(8));
            }
            other => panic!("expected a spin, got {other:?}"),
        }
        assert!(!w.on_upcall(AdaptDirection::Degrade, t(12)));
        // After the window the inner workload is back, upcalls included.
        assert!(matches!(w.poll(t(25)), Step::Run(Activity::Wait { .. })));
        assert!(w.on_upcall(AdaptDirection::Degrade, t(25)));
    }

    #[test]
    fn crash_is_permanent_until_restarted() {
        let mut w = Misbehavior::crash_at(Box::new(Adaptive { level: 2 }), t(30)).restartable();
        assert!(matches!(w.poll(t(10)), Step::Run(_)));
        assert!(matches!(w.poll(t(30)), Step::Done));
        assert!(matches!(w.poll(t(31)), Step::Done));
        assert!(!w.on_upcall(AdaptDirection::Degrade, t(31)));
        assert!(w.on_restart(t(40)));
        assert!(matches!(w.poll(t(40)), Step::Run(_)));
    }

    #[test]
    fn non_restartable_crash_refuses_restart() {
        let mut w = Misbehavior::crash_at(Box::new(Adaptive { level: 2 }), t(0));
        assert!(matches!(w.poll(t(0)), Step::Done));
        assert!(!w.on_restart(t(1)));
    }

    #[test]
    fn ignorer_claims_adaptability_but_never_adapts() {
        let mut w = Misbehavior::ignore_upcalls(Box::new(Adaptive { level: 3 }));
        assert!(w.fidelity().can_degrade());
        assert!(!w.on_upcall(AdaptDirection::Degrade, t(0)));
        assert_eq!(w.fidelity().level, 3);
    }

    #[test]
    fn liar_reports_degradation_it_never_performs() {
        let mut w = Misbehavior::lie(Box::new(Adaptive { level: 3 }));
        assert!(w.on_upcall(AdaptDirection::Degrade, t(0)));
        assert!(w.on_upcall(AdaptDirection::Degrade, t(1)));
        // Claims level 1...
        assert_eq!(w.fidelity().level, 1);
        // ...but the inner workload still runs at 3 (same power).
        let inner_view = {
            // Upgrades undo the lie before touching the real workload.
            assert!(w.on_upcall(AdaptDirection::Upgrade, t(2)));
            assert!(w.on_upcall(AdaptDirection::Upgrade, t(3)));
            w.fidelity()
        };
        assert_eq!(inner_view.level, 3);
        // At the floor the lie runs out: claims stop changing.
        for _ in 0..5 {
            w.on_upcall(AdaptDirection::Degrade, t(4));
        }
        assert_eq!(w.fidelity().level, 0);
        assert!(!w.on_upcall(AdaptDirection::Degrade, t(5)));
    }

    #[test]
    fn wrapper_is_transparent_for_name_and_done() {
        let inner = ScriptedWorkload::new("real", vec![]);
        let mut w = Misbehavior::ignore_upcalls(Box::new(inner));
        assert_eq!(w.name(), "real");
        assert!(matches!(w.poll(t(0)), Step::Done));
    }
}
