//! The Odyssey speech recognizer, Section 3.4.
//!
//! A front-end generates a speech waveform from an utterance and submits
//! it via Odyssey to a local or remote instance of the Janus recognition
//! system. Three strategies:
//!
//! - **local** — recognition on the client: compute-bound, unavoidable
//!   when disconnected;
//! - **remote** — ship the waveform to a server and wait (the client is
//!   mostly idle, radio awake, which is where its energy goes);
//! - **hybrid** — run the first phase locally as a type-specific
//!   compressor (5x smaller shipment), finish remotely.
//!
//! Fidelity is lowered "by using a reduced vocabulary and a less complex
//! acoustic model", scaling both local CPU and server residence time.
//! With hardware power management the display is off — "this assumes that
//! user interactions occur solely through speech".

use hw560x::cpu::intensity;
use hw560x::DisplayState;
use machine::{Activity, AdaptDirection, FidelityView, Step, Workload};
use netsim::RpcSpec;
use simcore::{SimDuration, SimRng, SimTime};

use crate::datasets::{
    Utterance, SPEECH_FRONTEND_FACTOR, SPEECH_HYBRID_DATA_RATIO, SPEECH_HYBRID_LOCAL_RATIO,
    SPEECH_HYBRID_SERVER_FACTOR, SPEECH_SERVER_FACTOR, SPEECH_WAVEFORM_BPS, TRIAL_JITTER,
};

/// Where recognition runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpeechStrategy {
    /// Entirely on the client.
    Local,
    /// Waveform shipped to a remote Janus server.
    Remote,
    /// First phase local, remainder remote.
    Hybrid,
}

impl SpeechStrategy {
    /// Display name used in figure rows.
    pub fn name(self) -> &'static str {
        match self {
            SpeechStrategy::Local => "Local",
            SpeechStrategy::Remote => "Remote",
            SpeechStrategy::Hybrid => "Hybrid",
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum Phase {
    FrontEnd,
    Recognize,
    NextUtterance,
}

/// The speech front-end workload.
pub struct SpeechApp {
    utterances: Vec<Utterance>,
    strategy: SpeechStrategy,
    /// Level 1 = full vocabulary, level 0 = reduced (when adaptive).
    level: usize,
    levels: usize,
    /// Vocabulary selection for non-adaptive (single-level) instances.
    fixed_reduced: bool,
    idx: usize,
    phase: Phase,
    jitter: f64,
}

impl std::fmt::Debug for SpeechApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpeechApp").finish_non_exhaustive()
    }
}

impl SpeechApp {
    /// A recognizer pinned to one configuration, for Figure 8.
    pub fn fixed(
        utterances: Vec<Utterance>,
        strategy: SpeechStrategy,
        reduced: bool,
        rng: &mut SimRng,
    ) -> Self {
        SpeechApp {
            utterances,
            strategy,
            level: 0,
            levels: 1,
            fixed_reduced: reduced,
            idx: 0,
            phase: Phase::FrontEnd,
            jitter: 1.0 + rng.uniform(-TRIAL_JITTER, TRIAL_JITTER),
        }
    }

    /// An adaptive recognizer: two levels (reduced, full), starting full.
    pub fn adaptive(
        utterances: Vec<Utterance>,
        strategy: SpeechStrategy,
        rng: &mut SimRng,
    ) -> Self {
        let mut app = Self::fixed(utterances, strategy, false, rng);
        app.levels = 2;
        app.level = 1;
        app
    }

    fn utterance(&self) -> &Utterance {
        &self.utterances[self.idx]
    }

    fn reduced(&self) -> bool {
        if self.levels == 1 {
            self.fixed_reduced
        } else {
            self.level == 0
        }
    }

    /// Full local recognition CPU time for the current utterance, at the
    /// current fidelity.
    fn local_cpu(&self) -> SimDuration {
        let u = self.utterance();
        let mut secs = u.speech_s * u.local_cpu_factor * self.jitter;
        if self.reduced() {
            secs *= u.reduced_ratio;
        }
        SimDuration::from_secs_f64(secs)
    }

    fn waveform_bytes(&self) -> u64 {
        (self.utterance().speech_s * SPEECH_WAVEFORM_BPS / 8.0).round() as u64
    }
}

impl Workload for SpeechApp {
    fn name(&self) -> &'static str {
        "speech"
    }

    fn display_need(&self) -> DisplayState {
        DisplayState::Off
    }

    fn poll(&mut self, _now: SimTime) -> Step {
        if self.idx >= self.utterances.len() {
            return Step::Done;
        }
        match self.phase {
            Phase::FrontEnd => {
                self.phase = Phase::Recognize;
                Step::Run(Activity::Cpu {
                    duration: SimDuration::from_secs_f64(
                        self.utterance().speech_s * SPEECH_FRONTEND_FACTOR * self.jitter,
                    ),
                    intensity: intensity::SPEECH_FRONTEND,
                    procedure: "frontend_dsp",
                })
            }
            Phase::Recognize => match self.strategy {
                SpeechStrategy::Local => {
                    self.phase = Phase::NextUtterance;
                    Step::Run(Activity::CpuAs {
                        bucket: "janus",
                        duration: self.local_cpu(),
                        intensity: intensity::SPEECH_SEARCH,
                        procedure: "viterbi_search",
                    })
                }
                SpeechStrategy::Remote => {
                    self.phase = Phase::NextUtterance;
                    Step::Run(Activity::Rpc {
                        spec: RpcSpec {
                            request_bytes: self.waveform_bytes(),
                            reply_bytes: 2_048,
                            server_time: self.local_cpu().mul_f64(SPEECH_SERVER_FACTOR),
                        },
                        procedure: "remote_recognize",
                    })
                }
                SpeechStrategy::Hybrid => {
                    // First phase locally; the compact intermediate
                    // representation ships in the next poll.
                    self.phase = Phase::NextUtterance;
                    Step::Run(Activity::CpuAs {
                        bucket: "janus",
                        duration: self.local_cpu().mul_f64(SPEECH_HYBRID_LOCAL_RATIO),
                        intensity: intensity::SPEECH_SEARCH,
                        procedure: "first_phase",
                    })
                }
            },
            Phase::NextUtterance => {
                if self.strategy == SpeechStrategy::Hybrid {
                    // Finish the hybrid RPC before moving on.
                    let rpc = Activity::Rpc {
                        spec: RpcSpec {
                            request_bytes: (self.waveform_bytes() as f64 * SPEECH_HYBRID_DATA_RATIO)
                                .round() as u64,
                            reply_bytes: 2_048,
                            server_time: self.local_cpu().mul_f64(SPEECH_HYBRID_SERVER_FACTOR),
                        },
                        procedure: "hybrid_recognize",
                    };
                    self.phase = Phase::FrontEnd;
                    self.idx += 1;
                    return Step::Run(rpc);
                }
                self.phase = Phase::FrontEnd;
                self.idx += 1;
                self.poll(_now)
            }
        }
    }

    fn fidelity(&self) -> FidelityView {
        FidelityView::new(self.level, self.levels)
    }

    fn on_upcall(&mut self, dir: AdaptDirection, _now: SimTime) -> bool {
        match dir {
            AdaptDirection::Degrade if self.level > 0 => {
                self.level -= 1;
                true
            }
            AdaptDirection::Upgrade if self.level + 1 < self.levels => {
                self.level += 1;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::UTTERANCES;
    use machine::{Machine, MachineConfig};

    fn recognize(strategy: SpeechStrategy, reduced: bool, pm: bool) -> machine::RunReport {
        let mut rng = SimRng::new(1);
        let cfg = if pm {
            MachineConfig::default()
        } else {
            MachineConfig::baseline()
        };
        let mut m = Machine::new(cfg);
        m.add_process(Box::new(SpeechApp::fixed(
            UTTERANCES.to_vec(),
            strategy,
            reduced,
            &mut rng,
        )));
        m.run()
    }

    /// Hardware-only PM saves ~33-34% on local full recognition: the
    /// display goes off and disk/network sleep while the CPU grinds.
    #[test]
    fn hardware_pm_band_for_local_recognition() {
        let base = recognize(SpeechStrategy::Local, false, false);
        let hw = recognize(SpeechStrategy::Local, false, true);
        let saving = 1.0 - hw.total_j / base.total_j;
        assert!(
            (0.28..=0.40).contains(&saving),
            "hw-only saving {saving} outside the paper band"
        );
    }

    /// Reduced fidelity cuts local recognition energy.
    #[test]
    fn reduced_model_saves_energy() {
        let full = recognize(SpeechStrategy::Local, false, true);
        let red = recognize(SpeechStrategy::Local, true, true);
        let saving = 1.0 - red.total_j / full.total_j;
        assert!(
            (0.20..=0.55).contains(&saving),
            "reduced saving {saving} outside band"
        );
    }

    /// Remote recognition leaves the client mostly idle.
    #[test]
    fn remote_energy_is_mostly_idle() {
        let remote = recognize(SpeechStrategy::Remote, false, true);
        let idle = remote.bucket_j("Idle");
        assert!(
            idle > remote.total_j * 0.4,
            "idle {} of {}",
            idle,
            remote.total_j
        );
        assert!(remote.bucket_j("janus") < remote.total_j * 0.1);
    }

    /// Hybrid beats remote, remote beats local (all with PM).
    #[test]
    fn strategy_ordering_matches_paper() {
        let local = recognize(SpeechStrategy::Local, false, true).total_j;
        let remote = recognize(SpeechStrategy::Remote, false, true).total_j;
        let hybrid = recognize(SpeechStrategy::Hybrid, false, true).total_j;
        assert!(remote < local, "remote {remote} >= local {local}");
        assert!(hybrid < remote, "hybrid {hybrid} >= remote {remote}");
    }

    /// Janus shows up as its own profile bucket in local mode.
    #[test]
    fn janus_bucket_dominates_local_profile() {
        let local = recognize(SpeechStrategy::Local, false, true);
        let janus = local.bucket_j("janus");
        assert!(
            janus > local.total_j * 0.5,
            "janus slice {} of {}",
            janus,
            local.total_j
        );
    }

    /// Adaptive app exposes two fidelity levels.
    #[test]
    fn adaptive_levels() {
        let mut rng = SimRng::new(5);
        let mut app = SpeechApp::adaptive(UTTERANCES.to_vec(), SpeechStrategy::Local, &mut rng);
        assert_eq!(app.fidelity(), FidelityView::new(1, 2));
        assert!(app.on_upcall(AdaptDirection::Degrade, SimTime::ZERO));
        assert!(!app.on_upcall(AdaptDirection::Degrade, SimTime::ZERO));
        assert!(app.on_upcall(AdaptDirection::Upgrade, SimTime::ZERO));
    }
}
