//! The Anvil map viewer, Section 3.5.
//!
//! Anvil fetches maps from a remote server via Odyssey and displays them.
//! The client annotates the request with the desired amount of filtering
//! and cropping; the server performs the operations before transmitting.
//! Fidelity is lowered two ways: *filtering* (omit minor roads, or minor
//! and secondary roads) and *cropping* (half height and width). After a
//! map is displayed, the user spends *think time* absorbing it — energy
//! the paper attributes to the application, since it keeps the display
//! backlit and the client powered.

use hw560x::cpu::intensity;
use hw560x::DisplayState;
use machine::{Activity, AdaptDirection, FidelityView, Step, Workload};
use netsim::RpcSpec;
use simcore::{SimDuration, SimRng, SimTime};

use crate::datasets::{
    MapObject, DEFAULT_THINK_S, MAP_RENDER_S_PER_BYTE, MAP_SERVER_FIXED_S, MAP_SERVER_S_PER_BYTE,
    MAP_X_RENDER_S, TRIAL_JITTER,
};

/// Road filtering level.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MapFilter {
    /// No filtering.
    None,
    /// Omit minor roads.
    Minor,
    /// Omit minor and secondary roads.
    Secondary,
}

/// One point in the map fidelity space.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MapFidelity {
    /// Filtering level.
    pub filter: MapFilter,
    /// Crop to half height and width.
    pub cropped: bool,
}

impl MapFidelity {
    /// Full fidelity: no filter, no crop.
    pub fn full() -> Self {
        MapFidelity {
            filter: MapFilter::None,
            cropped: false,
        }
    }

    /// Display name used in figure rows.
    pub fn name(self) -> &'static str {
        match (self.filter, self.cropped) {
            (MapFilter::None, false) => "Baseline fidelity",
            (MapFilter::Minor, false) => "Minor Road Filter",
            (MapFilter::Secondary, false) => "Secondary Road Filter",
            (MapFilter::None, true) => "Cropped",
            (MapFilter::Minor, true) => "Cropped-Minor Road Filter",
            (MapFilter::Secondary, true) => "Cropped-Secondary Road Filter",
        }
    }

    /// Received bytes relative to the full map. Filtering and cropping
    /// compose multiplicatively (they remove independent subsets).
    pub fn data_ratio(self, map: &MapObject) -> f64 {
        let filter = match self.filter {
            MapFilter::None => 1.0,
            MapFilter::Minor => map.minor_filter_ratio,
            MapFilter::Secondary => map.secondary_filter_ratio,
        };
        let crop = if self.cropped { map.crop_ratio } else { 1.0 };
        filter * crop
    }

    /// The adaptation ladder for goal-directed experiments, lowest first.
    pub fn ladder() -> Vec<MapFidelity> {
        vec![
            MapFidelity {
                filter: MapFilter::Secondary,
                cropped: true,
            },
            MapFidelity {
                filter: MapFilter::Secondary,
                cropped: false,
            },
            MapFidelity {
                filter: MapFilter::Minor,
                cropped: false,
            },
            MapFidelity::full(),
        ]
    }
}

#[derive(Clone, Copy, Debug)]
enum Phase {
    Fetch,
    Rasterise,
    Paint,
    Think,
}

/// The Anvil workload: views a sequence of maps.
pub struct MapViewer {
    maps: Vec<MapObject>,
    ladder: Vec<MapFidelity>,
    level: usize,
    think: SimDuration,
    idx: usize,
    phase: Phase,
    jitter: f64,
    received_bytes: u64,
}

impl std::fmt::Debug for MapViewer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MapViewer").finish_non_exhaustive()
    }
}

impl MapViewer {
    /// A viewer pinned to one fidelity, for Figure 10.
    pub fn fixed(maps: Vec<MapObject>, fidelity: MapFidelity, rng: &mut SimRng) -> Self {
        Self::build(maps, vec![fidelity], 0, rng)
    }

    /// An adaptive viewer starting at full fidelity.
    pub fn adaptive(maps: Vec<MapObject>, rng: &mut SimRng) -> Self {
        let ladder = MapFidelity::ladder();
        let top = ladder.len() - 1;
        Self::build(maps, ladder, top, rng)
    }

    /// Overrides the default 5-second think time (Figure 11's sensitivity
    /// analysis uses 0, 5, 10 and 20 seconds).
    pub fn with_think_time(mut self, think: SimDuration) -> Self {
        self.think = think;
        self
    }

    fn build(
        maps: Vec<MapObject>,
        ladder: Vec<MapFidelity>,
        level: usize,
        rng: &mut SimRng,
    ) -> Self {
        MapViewer {
            maps,
            ladder,
            level,
            think: SimDuration::from_secs_f64(DEFAULT_THINK_S),
            idx: 0,
            phase: Phase::Fetch,
            jitter: 1.0 + rng.uniform(-TRIAL_JITTER, TRIAL_JITTER),
            received_bytes: 0,
        }
    }

    fn fidelity_point(&self) -> MapFidelity {
        self.ladder[self.level]
    }

    fn map(&self) -> &MapObject {
        &self.maps[self.idx]
    }
}

impl Workload for MapViewer {
    fn name(&self) -> &'static str {
        "anvil"
    }

    fn display_need(&self) -> DisplayState {
        DisplayState::Bright
    }

    fn poll(&mut self, now: SimTime) -> Step {
        if self.idx >= self.maps.len() {
            return Step::Done;
        }
        match self.phase {
            Phase::Fetch => {
                let map = *self.map();
                let bytes =
                    (map.full_bytes as f64 * self.fidelity_point().data_ratio(&map) * self.jitter)
                        .round() as u64;
                self.received_bytes = bytes;
                // The server filters/crops the *full* map before sending.
                let server_time = SimDuration::from_secs_f64(
                    MAP_SERVER_FIXED_S + map.full_bytes as f64 * MAP_SERVER_S_PER_BYTE,
                );
                self.phase = Phase::Rasterise;
                Step::Run(Activity::Rpc {
                    spec: RpcSpec {
                        request_bytes: 512,
                        reply_bytes: bytes,
                        server_time,
                    },
                    procedure: "fetch_map",
                })
            }
            Phase::Rasterise => {
                self.phase = Phase::Paint;
                Step::Run(Activity::Cpu {
                    duration: SimDuration::from_secs_f64(
                        self.received_bytes as f64 * MAP_RENDER_S_PER_BYTE,
                    ),
                    intensity: intensity::MAP_RENDER,
                    procedure: "rasterise",
                })
            }
            Phase::Paint => {
                self.phase = Phase::Think;
                Step::Run(Activity::XRender {
                    cost: SimDuration::from_secs_f64(MAP_X_RENDER_S * self.jitter),
                })
            }
            Phase::Think => {
                self.phase = Phase::Fetch;
                self.idx += 1;
                if self.think.is_zero() {
                    return self.poll(now);
                }
                Step::Run(Activity::Wait {
                    until: now + self.think,
                })
            }
        }
    }

    fn fidelity(&self) -> FidelityView {
        FidelityView::new(self.level, self.ladder.len())
    }

    fn on_upcall(&mut self, dir: AdaptDirection, _now: SimTime) -> bool {
        match dir {
            AdaptDirection::Degrade if self.level > 0 => {
                self.level -= 1;
                true
            }
            AdaptDirection::Upgrade if self.level + 1 < self.ladder.len() => {
                self.level += 1;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::MAPS;
    use machine::{Machine, MachineConfig};

    fn view(fidelity: MapFidelity, pm: bool, think_s: f64) -> machine::RunReport {
        let mut rng = SimRng::new(1);
        let cfg = if pm {
            MachineConfig::default()
        } else {
            MachineConfig::baseline()
        };
        let mut m = Machine::new(cfg);
        m.add_process(Box::new(
            MapViewer::fixed(vec![MAPS[0]], fidelity, &mut rng)
                .with_think_time(SimDuration::from_secs_f64(think_s)),
        ));
        m.run()
    }

    #[test]
    fn hardware_pm_band_for_map_viewing() {
        let base = view(MapFidelity::full(), false, 5.0);
        let hw = view(MapFidelity::full(), true, 5.0);
        let saving = 1.0 - hw.total_j / base.total_j;
        // Paper: 9-19% across maps at 5 s think time.
        assert!(
            (0.07..=0.25).contains(&saving),
            "hw-only saving {saving} outside band"
        );
    }

    #[test]
    fn filters_cut_fetch_energy() {
        let hw = view(MapFidelity::full(), true, 5.0);
        let minor = view(
            MapFidelity {
                filter: MapFilter::Minor,
                cropped: false,
            },
            true,
            5.0,
        );
        let secondary = view(
            MapFidelity {
                filter: MapFilter::Secondary,
                cropped: false,
            },
            true,
            5.0,
        );
        assert!(minor.total_j < hw.total_j);
        assert!(secondary.total_j < minor.total_j);
    }

    #[test]
    fn combined_filter_and_crop_is_cheapest() {
        let rows: Vec<f64> = MapFidelity::ladder()
            .into_iter()
            .rev()
            .map(|f| view(f, true, 5.0).total_j)
            .collect();
        for w in rows.windows(2) {
            assert!(w[1] < w[0], "ladder not monotone: {rows:?}");
        }
    }

    #[test]
    fn think_time_scales_linearly_at_baseline() {
        // E_t = E_0 + t * P_B: three think times must be collinear.
        let e0 = view(MapFidelity::full(), false, 0.0).total_j;
        let e10 = view(MapFidelity::full(), false, 10.0).total_j;
        let e20 = view(MapFidelity::full(), false, 20.0).total_j;
        let slope1 = (e10 - e0) / 10.0;
        let slope2 = (e20 - e10) / 10.0;
        assert!(
            (slope1 - slope2).abs() < 0.05 * slope1,
            "nonlinear: {slope1} vs {slope2}"
        );
        // The baseline slope is the full-on idle power.
        assert!((slope1 - 10.28).abs() < 0.3, "slope {slope1}");
    }

    #[test]
    fn zero_think_time_works() {
        let report = view(MapFidelity::full(), true, 0.0);
        assert!(report.total_j > 0.0);
        assert!(report.duration_s() < 12.0);
    }

    #[test]
    fn fetch_dominates_wall_time() {
        let report = view(MapFidelity::full(), false, 0.0);
        // 1.3 MB at 2 Mb/s → > 5 s of transfer.
        assert!(report.duration_s() > 5.0);
    }
}
