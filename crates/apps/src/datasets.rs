//! Data objects and workload constants.
//!
//! The paper explores sensitivity to data content by using four objects
//! per application: four video clips, four speech utterances, four maps,
//! and four Web images. This module defines those objects with per-object
//! parameters chosen so that each figure's *relative* savings land inside
//! the ranges the paper reports (EXPERIMENTS.md records paper-vs-measured
//! for every band). Each constant cites the paper behaviour it encodes.

/// One video clip ("four QuickTime/Cinepak videos from 127 to 226 seconds
/// in length", Figure 6).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VideoClip {
    /// Display name.
    pub name: &'static str,
    /// Playback duration, seconds.
    pub duration_s: f64,
    /// Full-fidelity stream rate, bits/s. Chosen near (but below) the
    /// 2 Mb/s WaveLAN capacity: "much energy is consumed while the
    /// processor is idle because of the limited bandwidth of the wireless
    /// network — not enough video data is transmitted to saturate the
    /// processor", yet "there is little opportunity to place the network
    /// in standby mode since it is nearly saturated".
    pub bitrate_bps: f64,
    /// Premiere-B compressed size relative to full fidelity.
    pub premiere_b_ratio: f64,
    /// Premiere-C compressed size relative to full fidelity.
    pub premiere_c_ratio: f64,
}

/// The four clips of Figure 6.
pub const VIDEO_CLIPS: [VideoClip; 4] = [
    VideoClip {
        name: "Video 1",
        duration_s: 127.0,
        bitrate_bps: 1.52e6,
        premiere_b_ratio: 0.72,
        premiere_c_ratio: 0.34,
    },
    VideoClip {
        name: "Video 2",
        duration_s: 161.0,
        bitrate_bps: 1.46e6,
        premiere_b_ratio: 0.75,
        premiere_c_ratio: 0.37,
    },
    VideoClip {
        name: "Video 3",
        duration_s: 203.0,
        bitrate_bps: 1.58e6,
        premiere_b_ratio: 0.70,
        premiere_c_ratio: 0.32,
    },
    VideoClip {
        name: "Video 4",
        duration_s: 226.0,
        bitrate_bps: 1.50e6,
        premiere_b_ratio: 0.73,
        premiere_c_ratio: 0.35,
    },
];

/// Video frame rate (Cinepak-era clips).
pub const VIDEO_FPS: f64 = 12.0;

/// Cinepak decode CPU cost per compressed byte, seconds. Sized so decode
/// occupies ~10% of the CPU at full fidelity — the decode slice of the
/// Xanim bars in Figure 6.
pub const VIDEO_DECODE_S_PER_BYTE: f64 = 0.62e-6;

/// X server render cost per frame at the full window size, seconds.
/// "X server energy consumption is proportional to window area"; at full
/// fidelity the X slice is the second-largest after Idle (cf. Figure 2,
/// where X consumes ~20% of the energy during video playback).
pub const VIDEO_RENDER_S_FULL: f64 = 0.028;

/// Bytes ratio of the reduced-window track: the server scales the video to
/// quarter area before encoding ("multiple tracks of each video clip on
/// the server ... identical to the original except for size"), so the
/// stream shrinks roughly with area.
pub const VIDEO_REDUCED_WINDOW_DATA_RATIO: f64 = 0.48;

/// Window-area ratio when both dimensions are halved.
pub const VIDEO_REDUCED_WINDOW_AREA: f64 = 0.25;

/// One spoken utterance ("four spoken utterances from one to seven seconds
/// in length", Figure 8).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Utterance {
    /// Display name.
    pub name: &'static str,
    /// Spoken duration, seconds.
    pub speech_s: f64,
    /// Full-vocabulary local recognition CPU time per spoken second
    /// (Janus on the 233 MHz client runs slower than real time).
    pub local_cpu_factor: f64,
    /// Reduced-vocabulary CPU relative to full ("a reduced vocabulary and
    /// a less complex acoustic model"); varies per utterance, producing
    /// the paper's wide 25-46% band.
    pub reduced_ratio: f64,
}

/// The four utterances of Figure 8.
pub const UTTERANCES: [Utterance; 4] = [
    Utterance {
        name: "Utterance 1",
        speech_s: 1.2,
        local_cpu_factor: 2.1,
        reduced_ratio: 0.50,
    },
    Utterance {
        name: "Utterance 2",
        speech_s: 2.8,
        local_cpu_factor: 1.8,
        reduced_ratio: 0.55,
    },
    Utterance {
        name: "Utterance 3",
        speech_s: 4.6,
        local_cpu_factor: 1.9,
        reduced_ratio: 0.68,
    },
    Utterance {
        name: "Utterance 4",
        speech_s: 6.9,
        local_cpu_factor: 1.7,
        reduced_ratio: 0.60,
    },
];

/// Short command utterances used by the composite application's loop
/// ("local recognition of two speech utterances" — spoken commands, not
/// the longer dictation utterances of Figure 8). Their lower reduced
/// ratios reflect how well tiny command vocabularies shrink.
pub const COMPOSITE_UTTERANCES: [Utterance; 2] = [
    Utterance {
        name: "Command 1",
        speech_s: 0.9,
        local_cpu_factor: 2.1,
        reduced_ratio: 0.35,
    },
    Utterance {
        name: "Command 2",
        speech_s: 1.6,
        local_cpu_factor: 1.8,
        reduced_ratio: 0.45,
    },
];

/// Front-end signal-processing CPU time per spoken second (always local).
pub const SPEECH_FRONTEND_FACTOR: f64 = 0.22;

/// Microphone waveform rate: 16 kHz × 16-bit mono.
pub const SPEECH_WAVEFORM_BPS: f64 = 32_000.0 * 8.0;

/// Remote server residence time relative to local recognition CPU time.
/// Calibrated so full-fidelity remote recognition lands 33-44% below
/// hardware-only local (Figure 8): the client mostly waits, radio awake.
pub const SPEECH_SERVER_FACTOR: f64 = 1.50;

/// Hybrid mode: local first phase relative to full local recognition
/// ("the first phase of recognition is performed locally ... with little
/// computational overhead").
pub const SPEECH_HYBRID_LOCAL_RATIO: f64 = 0.20;

/// Hybrid mode: intermediate representation is "a factor of five
/// reduction in data volume".
pub const SPEECH_HYBRID_DATA_RATIO: f64 = 0.20;

/// Hybrid mode: server residence relative to local recognition CPU time
/// (the first phase is already done).
pub const SPEECH_HYBRID_SERVER_FACTOR: f64 = 0.72;

/// One map ("maps of four different cities", Figure 10). Full USGS-style
/// vector maps run to megabytes, which is why fetch time — not rendering —
/// dominates, and why filtering pays off so well over a 2 Mb/s link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MapObject {
    /// City name.
    pub name: &'static str,
    /// Full-fidelity map size, bytes.
    pub full_bytes: u64,
    /// Size ratio after the minor-road filter ("one filter omits minor
    /// roads"); rural maps lose little, dense maps a lot — producing the
    /// paper's 6-51% band.
    pub minor_filter_ratio: f64,
    /// Size ratio after the minor+secondary filter ("the more aggressive
    /// filter omits both minor and secondary roads"; 23-55% band).
    pub secondary_filter_ratio: f64,
    /// Size ratio after cropping to half height and width ("cropping
    /// preserves detail, but restricts data to a geographic subset").
    pub crop_ratio: f64,
}

/// The four maps of Figure 10.
pub const MAPS: [MapObject; 4] = [
    MapObject {
        name: "San Jose",
        full_bytes: 1_300_000,
        minor_filter_ratio: 0.50,
        secondary_filter_ratio: 0.30,
        crop_ratio: 0.45,
    },
    MapObject {
        name: "Allentown",
        full_bytes: 620_000,
        minor_filter_ratio: 0.90,
        secondary_filter_ratio: 0.44,
        crop_ratio: 0.58,
    },
    MapObject {
        name: "Boston",
        full_bytes: 1_750_000,
        minor_filter_ratio: 0.30,
        secondary_filter_ratio: 0.20,
        crop_ratio: 0.33,
    },
    MapObject {
        name: "Pittsburgh",
        full_bytes: 1_000_000,
        minor_filter_ratio: 0.60,
        secondary_filter_ratio: 0.36,
        crop_ratio: 0.50,
    },
];

/// Map-server residence: fixed overhead plus per-byte filter processing.
pub const MAP_SERVER_FIXED_S: f64 = 0.12;
/// Per-byte server filter/crop processing time, seconds.
pub const MAP_SERVER_S_PER_BYTE: f64 = 2.0e-8;
/// Anvil rasterisation CPU per received byte, seconds.
pub const MAP_RENDER_S_PER_BYTE: f64 = 0.35e-6;
/// X server cost to paint a map view, seconds.
pub const MAP_X_RENDER_S: f64 = 0.20;
/// Default user think time ("an initial value of 5 seconds").
pub const DEFAULT_THINK_S: f64 = 5.0;

/// One Web image ("four GIF images from 110 B to 175 KB in size",
/// Figure 13).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WebImage {
    /// Display name.
    pub name: &'static str,
    /// Original GIF size, bytes.
    pub bytes: u64,
}

/// The four images of Figure 13.
pub const WEB_IMAGES: [WebImage; 4] = [
    WebImage {
        name: "Image 1",
        bytes: 175_000,
    },
    WebImage {
        name: "Image 2",
        bytes: 81_000,
    },
    WebImage {
        name: "Image 3",
        bytes: 22_000,
    },
    WebImage {
        name: "Image 4",
        bytes: 110,
    },
];

/// JPEG transcode size ratios for the four distillation levels of
/// Figure 13. Tiny images cannot shrink below the floor, which is why the
/// smallest image shows ~0 benefit (the low end of the 4-14% band).
pub const WEB_JPEG_RATIOS: [(&str, f64); 4] = [
    ("JPEG-75", 0.45),
    ("JPEG-50", 0.30),
    ("JPEG-25", 0.22),
    ("JPEG-5", 0.12),
];

/// Smallest useful transcoded size, bytes.
pub const WEB_MIN_BYTES: u64 = 110;

/// Distillation-server residence: fixed + per-original-byte transcode.
pub const WEB_SERVER_FIXED_S: f64 = 0.10;
/// Per-byte transcode time on the distillation server, seconds.
pub const WEB_SERVER_S_PER_BYTE: f64 = 1.5e-7;
/// Netscape + proxy CPU per received byte, seconds.
pub const WEB_RENDER_S_PER_BYTE: f64 = 0.40e-6;
/// X server cost to paint a page, seconds.
pub const WEB_X_RENDER_S: f64 = 0.12;

/// Relative jitter applied to workload costs per trial (±2%), giving the
/// paper's small error bars without changing means.
pub const TRIAL_JITTER: f64 = 0.02;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn video_clips_match_paper_bounds() {
        assert_eq!(VIDEO_CLIPS.len(), 4);
        for c in &VIDEO_CLIPS {
            assert!((127.0..=226.0).contains(&c.duration_s));
            assert!(c.bitrate_bps < 2.0e6, "{} saturates the link", c.name);
            assert!(c.bitrate_bps > 0.7 * 2.0e6, "{} underuses the link", c.name);
            assert!(c.premiere_c_ratio < c.premiere_b_ratio);
            assert!(c.premiere_b_ratio < 1.0);
        }
    }

    #[test]
    fn utterances_match_paper_bounds() {
        assert_eq!(UTTERANCES.len(), 4);
        for u in &UTTERANCES {
            assert!((1.0..=7.0).contains(&u.speech_s));
            assert!(u.local_cpu_factor > 1.0, "Janus is slower than real time");
            assert!((0.0..1.0).contains(&u.reduced_ratio));
        }
    }

    #[test]
    fn maps_are_fetch_dominated() {
        for m in &MAPS {
            // Fetch at 2 Mb/s must exceed the 5 s default think time for
            // at least the big maps; all must take > 1 s.
            let fetch_s = m.full_bytes as f64 * 8.0 / 2.0e6;
            assert!(fetch_s > 1.0, "{} too small", m.name);
            assert!(m.secondary_filter_ratio < m.minor_filter_ratio);
            assert!(m.minor_filter_ratio < 1.0);
            assert!(m.crop_ratio < 0.65);
        }
        let biggest = MAPS.iter().map(|m| m.full_bytes).max().unwrap();
        assert!(biggest as f64 * 8.0 / 2.0e6 > DEFAULT_THINK_S);
    }

    #[test]
    fn web_images_span_paper_range() {
        let sizes: Vec<u64> = WEB_IMAGES.iter().map(|i| i.bytes).collect();
        assert_eq!(*sizes.iter().min().unwrap(), 110);
        assert_eq!(*sizes.iter().max().unwrap(), 175_000);
    }

    #[test]
    fn jpeg_ratios_decrease_with_quality() {
        for w in WEB_JPEG_RATIOS.windows(2) {
            assert!(w[0].1 > w[1].1);
        }
    }

    #[test]
    fn hybrid_is_a_factor_of_five() {
        assert!((SPEECH_HYBRID_DATA_RATIO - 0.2).abs() < 1e-9);
    }
}
