//! The composite application (Sections 3.7 and 5.2).
//!
//! "The composite application models a user searching for Web and map
//! information using speech commands. The loop consists of local
//! recognition of two speech utterances, access of a Web page, access of
//! a map, and five seconds of think time" after each access.
//!
//! The three legs are separate Odyssey applications (speech, web, map) —
//! each individually adaptive with its own priority in Section 5 — that
//! take turns via a shared baton. Two modes:
//!
//! - [`CompositeMode::Iterations`] — run the loop N times (Section 3.7
//!   uses six);
//! - [`CompositeMode::Every`] — start an iteration every fixed period
//!   until a horizon ("we ran the composite application every 25 seconds
//!   rather than for six iterations", Section 5.2).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use hw560x::DisplayState;
use machine::{Activity, AdaptDirection, FidelityView, Step, Workload};
use simcore::{SimDuration, SimRng, SimTime};

use crate::datasets::{
    MapObject, Utterance, WebImage, COMPOSITE_UTTERANCES, DEFAULT_THINK_S, TRIAL_JITTER,
};
use crate::map::MapFidelity;
use crate::units::{map_unit, speech_unit, web_unit, UnitStep};
use crate::web::WebFidelity;

/// Which leg of the loop a member executes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CompositeRole {
    /// Two utterances of local speech recognition.
    Speech,
    /// One web page access plus think time.
    Web,
    /// One map access plus think time.
    Map,
}

impl CompositeRole {
    fn index(self) -> usize {
        match self {
            CompositeRole::Speech => 0,
            CompositeRole::Web => 1,
            CompositeRole::Map => 2,
        }
    }

    /// All roles in loop order.
    pub fn all() -> [CompositeRole; 3] {
        [
            CompositeRole::Speech,
            CompositeRole::Web,
            CompositeRole::Map,
        ]
    }
}

/// Loop termination policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CompositeMode {
    /// Run the loop exactly this many times.
    Iterations(usize),
    /// Start an iteration every `period`, until `horizon`.
    Every {
        /// Iteration start spacing.
        period: SimDuration,
        /// No iteration starts at or after this instant.
        horizon: SimTime,
    },
}

/// Shared turn-taking state between the three members.
#[derive(Debug)]
pub struct Baton {
    holder: usize,
    iteration: usize,
    next_iteration_at: SimTime,
}

impl Baton {
    /// Creates the baton and hands it to the speech member.
    pub fn new() -> Rc<RefCell<Baton>> {
        Rc::new(RefCell::new(Baton {
            holder: 0,
            iteration: 0,
            next_iteration_at: SimTime::ZERO,
        }))
    }
}

/// One leg of the composite application.
pub struct CompositeMember {
    role: CompositeRole,
    baton: Rc<RefCell<Baton>>,
    mode: CompositeMode,
    pending: VecDeque<UnitStep>,
    running_unit: bool,
    level: usize,
    levels: usize,
    adaptive: bool,
    item_idx: usize,
    jitter: f64,
    think: SimDuration,
    // Datasets cycled by the member.
    utterances: Vec<Utterance>,
    images: Vec<WebImage>,
    maps: Vec<MapObject>,
}

impl std::fmt::Debug for CompositeMember {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompositeMember").finish_non_exhaustive()
    }
}

impl CompositeMember {
    /// Creates one leg. All three legs must share the same `baton` and
    /// `mode`. Members start at full fidelity; `adaptive` controls whether
    /// upcalls can move them.
    pub fn new(
        role: CompositeRole,
        baton: Rc<RefCell<Baton>>,
        mode: CompositeMode,
        adaptive: bool,
        rng: &mut SimRng,
    ) -> Self {
        let levels = match role {
            CompositeRole::Speech => 2,
            CompositeRole::Web => WebFidelity::ladder().len(),
            CompositeRole::Map => MapFidelity::ladder().len(),
        };
        CompositeMember {
            role,
            baton,
            mode,
            pending: VecDeque::new(),
            running_unit: false,
            level: levels - 1,
            levels,
            adaptive,
            item_idx: 0,
            jitter: 1.0 + rng.uniform(-TRIAL_JITTER, TRIAL_JITTER),
            think: SimDuration::from_secs_f64(DEFAULT_THINK_S),
            utterances: COMPOSITE_UTTERANCES.to_vec(),
            images: crate::datasets::WEB_IMAGES.to_vec(),
            maps: crate::datasets::MAPS.to_vec(),
        }
    }

    /// Pins the member to its lowest fidelity (Figure 15's "Lowest
    /// Fidelity" bars).
    pub fn at_lowest_fidelity(mut self) -> Self {
        self.level = 0;
        self
    }

    fn build_unit(&mut self) -> VecDeque<UnitStep> {
        let steps = match self.role {
            CompositeRole::Speech => {
                // Spoken commands are short: the loop uses the dedicated
                // command utterances, keeping six iterations inside the
                // paper's 80-160 s envelope.
                self.item_idx += 2;
                speech_unit(&self.utterances, self.level == 0, self.jitter)
            }
            CompositeRole::Web => {
                let img = self.images[self.item_idx % self.images.len()];
                self.item_idx += 1;
                let fid = WebFidelity::ladder()[self.level];
                web_unit(&img, fid, self.jitter, self.think)
            }
            CompositeRole::Map => {
                let map = self.maps[self.item_idx % self.maps.len()];
                self.item_idx += 1;
                let fid = MapFidelity::ladder()[self.level];
                map_unit(&map, fid, self.jitter, self.think)
            }
        };
        steps.into()
    }

    fn finished(&self, baton: &Baton, now: SimTime) -> bool {
        match self.mode {
            CompositeMode::Iterations(n) => baton.iteration >= n,
            CompositeMode::Every { horizon, .. } => now >= horizon,
        }
    }
}

impl Workload for CompositeMember {
    fn name(&self) -> &'static str {
        match self.role {
            CompositeRole::Speech => "speech",
            CompositeRole::Web => "netscape",
            CompositeRole::Map => "anvil",
        }
    }

    fn display_need(&self) -> DisplayState {
        match self.role {
            CompositeRole::Speech => DisplayState::Off,
            _ => DisplayState::Bright,
        }
    }

    fn poll(&mut self, now: SimTime) -> Step {
        if let Some(step) = self.pending.pop_front() {
            return match step {
                UnitStep::Act(a) => Step::Run(a),
                UnitStep::Pause(d) => Step::Run(Activity::Wait { until: now + d }),
            };
        }
        let mut baton = self.baton.borrow_mut();
        if self.running_unit {
            // Unit complete: pass the baton.
            self.running_unit = false;
            baton.holder = (baton.holder + 1) % 3;
            if baton.holder == 0 {
                baton.iteration += 1;
                if let CompositeMode::Every { period, .. } = self.mode {
                    baton.next_iteration_at += period;
                }
            }
        }
        if self.finished(&baton, now) {
            return Step::Done;
        }
        if baton.holder == self.role.index() {
            // Gate the first member of each iteration in paced mode.
            if baton.holder == 0 && now < baton.next_iteration_at {
                let until = baton.next_iteration_at;
                return Step::Run(Activity::Wait { until });
            }
            drop(baton);
            self.pending = self.build_unit();
            self.running_unit = true;
            self.poll(now)
        } else {
            // Not our turn: check back shortly.
            Step::Run(Activity::Wait {
                until: now + SimDuration::from_millis(200),
            })
        }
    }

    fn fidelity(&self) -> FidelityView {
        FidelityView::new(self.level, self.levels)
    }

    fn on_upcall(&mut self, dir: AdaptDirection, _now: SimTime) -> bool {
        if !self.adaptive {
            return false;
        }
        match dir {
            AdaptDirection::Degrade if self.level > 0 => {
                self.level -= 1;
                true
            }
            AdaptDirection::Upgrade if self.level + 1 < self.levels => {
                self.level += 1;
                true
            }
            _ => false,
        }
    }

    fn freeze(&self, w: &mut simcore::SnapshotWriter) -> Result<(), simcore::SnapshotError> {
        w.put_usize(self.pending.len());
        for step in &self.pending {
            step.freeze_into(w);
        }
        w.put_bool(self.running_unit);
        w.put_usize(self.level);
        w.put_usize(self.item_idx);
        // Each member freezes the shared baton; the values are identical
        // across the three legs, so last-write-wins on thaw is sound.
        let baton = self.baton.borrow();
        w.put_usize(baton.holder);
        w.put_usize(baton.iteration);
        w.put_time(baton.next_iteration_at);
        Ok(())
    }

    fn thaw(&mut self, r: &mut simcore::SnapshotReader<'_>) -> Result<(), simcore::SnapshotError> {
        let n = r.take_usize()?;
        let mut pending = VecDeque::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            pending.push_back(UnitStep::thaw_from(r)?);
        }
        let running_unit = r.take_bool()?;
        let level = r.take_usize()?;
        if level >= self.levels {
            return Err(simcore::SnapshotError::Corrupt("composite fidelity level"));
        }
        let item_idx = r.take_usize()?;
        let holder = r.take_usize()?;
        if holder >= 3 {
            return Err(simcore::SnapshotError::Corrupt("baton holder"));
        }
        let iteration = r.take_usize()?;
        let next_iteration_at = r.take_time()?;
        self.pending = pending;
        self.running_unit = running_unit;
        self.level = level;
        self.item_idx = item_idx;
        let mut baton = self.baton.borrow_mut();
        baton.holder = holder;
        baton.iteration = iteration;
        baton.next_iteration_at = next_iteration_at;
        Ok(())
    }
}

/// Builds the three members sharing one baton, in loop order.
pub fn composite_members(
    mode: CompositeMode,
    adaptive: bool,
    rng: &mut SimRng,
) -> Vec<CompositeMember> {
    let baton = Baton::new();
    CompositeRole::all()
        .into_iter()
        .map(|role| CompositeMember::new(role, baton.clone(), mode, adaptive, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::{Machine, MachineConfig};

    fn run_composite(iterations: usize, pm: bool, lowest: bool) -> machine::RunReport {
        let mut rng = SimRng::new(7);
        let cfg = if pm {
            MachineConfig::default()
        } else {
            MachineConfig::baseline()
        };
        let mut m = Machine::new(cfg);
        for member in composite_members(CompositeMode::Iterations(iterations), false, &mut rng) {
            let member = if lowest {
                member.at_lowest_fidelity()
            } else {
                member
            };
            m.add_process(Box::new(member));
        }
        m.run()
    }

    /// Six iterations take 80-160 s, the paper's range.
    #[test]
    fn six_iterations_duration_band() {
        let report = run_composite(6, false, false);
        assert!(
            (80.0..=170.0).contains(&report.duration_s()),
            "composite took {}",
            report.duration_s()
        );
    }

    /// All three legs contribute energy.
    #[test]
    fn all_legs_appear_in_profile() {
        let report = run_composite(2, false, false);
        for bucket in ["janus", "netscape", "anvil"] {
            assert!(report.bucket_j(bucket) > 0.0, "missing {bucket}");
        }
    }

    /// Lowest fidelity is cheaper and faster than full.
    #[test]
    fn lowest_fidelity_saves_energy() {
        let full = run_composite(3, true, false);
        let low = run_composite(3, true, true);
        assert!(
            low.total_j < full.total_j * 0.85,
            "full {} low {}",
            full.total_j,
            low.total_j
        );
    }

    /// Paced mode starts iterations on the 25 s grid.
    #[test]
    fn paced_mode_spacing() {
        let mut rng = SimRng::new(9);
        let mut m = Machine::new(MachineConfig::default());
        for member in composite_members(
            CompositeMode::Every {
                period: SimDuration::from_secs(25),
                horizon: SimTime::from_secs(100),
            },
            false,
            &mut rng,
        ) {
            m.add_process(Box::new(member));
        }
        let report = m.run();
        // Four iterations (t=0,25,50,75) then the loop winds down past 100.
        assert!(
            report.duration_s() >= 100.0 && report.duration_s() < 130.0,
            "paced run took {}",
            report.duration_s()
        );
    }

    /// Members expose their ladders for the goal controller.
    #[test]
    fn members_are_adaptive_when_asked() {
        let mut rng = SimRng::new(3);
        let mut members = composite_members(CompositeMode::Iterations(1), true, &mut rng);
        let map = members.pop().unwrap();
        let mut web = members.pop().unwrap();
        assert_eq!(map.fidelity().levels, 4);
        assert_eq!(web.fidelity().levels, 5);
        assert!(web.on_upcall(AdaptDirection::Degrade, SimTime::ZERO));
        assert_eq!(web.fidelity().level, 3);
    }
}
