//! The adaptive Web browser, Section 3.6.
//!
//! Requests from an unmodified Netscape are routed to a proxy on the
//! client that interacts with Odyssey; Odyssey forwards them to a
//! distillation server which transcodes images to lower fidelity using
//! lossy JPEG compression before they cross the weak link. Fidelity is
//! the transcoding quality (JPEG-75 … JPEG-5); savings are modest because
//! user think time — spent at background power — dominates the energy of
//! fetching small images.

use hw560x::cpu::intensity;
use hw560x::DisplayState;
use machine::{Activity, AdaptDirection, FidelityView, Step, Workload};
use netsim::RpcSpec;
use simcore::{SimDuration, SimRng, SimTime};

use crate::datasets::{
    WebImage, DEFAULT_THINK_S, TRIAL_JITTER, WEB_JPEG_RATIOS, WEB_MIN_BYTES, WEB_RENDER_S_PER_BYTE,
    WEB_SERVER_FIXED_S, WEB_SERVER_S_PER_BYTE, WEB_X_RENDER_S,
};

/// Distillation level.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WebFidelity {
    /// Original image, no transcoding.
    Full,
    /// JPEG quality 75.
    Jpeg75,
    /// JPEG quality 50.
    Jpeg50,
    /// JPEG quality 25.
    Jpeg25,
    /// JPEG quality 5.
    Jpeg5,
}

impl WebFidelity {
    /// Display name used in figure rows.
    pub fn name(self) -> &'static str {
        match self {
            WebFidelity::Full => "Baseline fidelity",
            WebFidelity::Jpeg75 => "JPEG-75",
            WebFidelity::Jpeg50 => "JPEG-50",
            WebFidelity::Jpeg25 => "JPEG-25",
            WebFidelity::Jpeg5 => "JPEG-5",
        }
    }

    /// Transcoded size for an image, never below the JPEG floor.
    pub fn transcoded_bytes(self, image: &WebImage) -> u64 {
        let ratio = match self {
            WebFidelity::Full => 1.0,
            WebFidelity::Jpeg75 => WEB_JPEG_RATIOS[0].1,
            WebFidelity::Jpeg50 => WEB_JPEG_RATIOS[1].1,
            WebFidelity::Jpeg25 => WEB_JPEG_RATIOS[2].1,
            WebFidelity::Jpeg5 => WEB_JPEG_RATIOS[3].1,
        };
        ((image.bytes as f64 * ratio).round() as u64).max(WEB_MIN_BYTES.min(image.bytes))
    }

    /// The adaptation ladder for goal-directed experiments, lowest first.
    pub fn ladder() -> Vec<WebFidelity> {
        vec![
            WebFidelity::Jpeg5,
            WebFidelity::Jpeg25,
            WebFidelity::Jpeg50,
            WebFidelity::Jpeg75,
            WebFidelity::Full,
        ]
    }
}

#[derive(Clone, Copy, Debug)]
enum Phase {
    Fetch,
    ProxyRelay,
    Render,
    Paint,
    Think,
}

/// The Netscape + proxy workload: views a sequence of images.
pub struct WebBrowser {
    images: Vec<WebImage>,
    ladder: Vec<WebFidelity>,
    level: usize,
    think: SimDuration,
    idx: usize,
    phase: Phase,
    jitter: f64,
    received_bytes: u64,
}

impl std::fmt::Debug for WebBrowser {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WebBrowser").finish_non_exhaustive()
    }
}

impl WebBrowser {
    /// A browser pinned to one fidelity, for Figure 13.
    pub fn fixed(images: Vec<WebImage>, fidelity: WebFidelity, rng: &mut SimRng) -> Self {
        Self::build(images, vec![fidelity], 0, rng)
    }

    /// An adaptive browser starting at full fidelity.
    pub fn adaptive(images: Vec<WebImage>, rng: &mut SimRng) -> Self {
        let ladder = WebFidelity::ladder();
        let top = ladder.len() - 1;
        Self::build(images, ladder, top, rng)
    }

    /// Overrides the default 5-second think time (Figure 14).
    pub fn with_think_time(mut self, think: SimDuration) -> Self {
        self.think = think;
        self
    }

    fn build(
        images: Vec<WebImage>,
        ladder: Vec<WebFidelity>,
        level: usize,
        rng: &mut SimRng,
    ) -> Self {
        WebBrowser {
            images,
            ladder,
            level,
            think: SimDuration::from_secs_f64(DEFAULT_THINK_S),
            idx: 0,
            phase: Phase::Fetch,
            jitter: 1.0 + rng.uniform(-TRIAL_JITTER, TRIAL_JITTER),
            received_bytes: 0,
        }
    }

    fn fidelity_point(&self) -> WebFidelity {
        self.ladder[self.level]
    }

    fn image(&self) -> &WebImage {
        &self.images[self.idx]
    }
}

impl Workload for WebBrowser {
    fn name(&self) -> &'static str {
        "netscape"
    }

    fn display_need(&self) -> DisplayState {
        DisplayState::Bright
    }

    fn poll(&mut self, now: SimTime) -> Step {
        if self.idx >= self.images.len() {
            return Step::Done;
        }
        match self.phase {
            Phase::Fetch => {
                let image = *self.image();
                let bytes = self.fidelity_point().transcoded_bytes(&image);
                self.received_bytes = bytes;
                // The distillation server transcodes the original — unless
                // transcoding would not shrink it (tiny images bypass).
                let distill = if bytes >= image.bytes {
                    0.0
                } else {
                    image.bytes as f64 * WEB_SERVER_S_PER_BYTE
                };
                self.phase = Phase::ProxyRelay;
                Step::Run(Activity::Rpc {
                    spec: RpcSpec {
                        request_bytes: 800,
                        reply_bytes: bytes,
                        server_time: SimDuration::from_secs_f64(WEB_SERVER_FIXED_S + distill),
                    },
                    procedure: "http_get",
                })
            }
            Phase::ProxyRelay => {
                // The client-side proxy unpacks and hands the reply to
                // Netscape; the paper's profiles show it as its own
                // process.
                self.phase = Phase::Render;
                Step::Run(Activity::CpuAs {
                    bucket: "proxy",
                    duration: SimDuration::from_secs_f64(
                        0.01 + self.received_bytes as f64 * 0.08e-6,
                    ),
                    intensity: intensity::WEB_RENDER,
                    procedure: "relay_reply",
                })
            }
            Phase::Render => {
                self.phase = Phase::Paint;
                Step::Run(Activity::Cpu {
                    duration: SimDuration::from_secs_f64(
                        self.received_bytes as f64 * WEB_RENDER_S_PER_BYTE * self.jitter,
                    ),
                    intensity: intensity::WEB_RENDER,
                    procedure: "render_image",
                })
            }
            Phase::Paint => {
                self.phase = Phase::Think;
                Step::Run(Activity::XRender {
                    cost: SimDuration::from_secs_f64(WEB_X_RENDER_S * self.jitter),
                })
            }
            Phase::Think => {
                self.phase = Phase::Fetch;
                self.idx += 1;
                if self.think.is_zero() {
                    return self.poll(now);
                }
                Step::Run(Activity::Wait {
                    until: now + self.think,
                })
            }
        }
    }

    fn fidelity(&self) -> FidelityView {
        FidelityView::new(self.level, self.ladder.len())
    }

    fn on_upcall(&mut self, dir: AdaptDirection, _now: SimTime) -> bool {
        match dir {
            AdaptDirection::Degrade if self.level > 0 => {
                self.level -= 1;
                true
            }
            AdaptDirection::Upgrade if self.level + 1 < self.ladder.len() => {
                self.level += 1;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::WEB_IMAGES;
    use machine::{Machine, MachineConfig};

    fn browse(image: WebImage, fidelity: WebFidelity, pm: bool) -> machine::RunReport {
        let mut rng = SimRng::new(1);
        let cfg = if pm {
            MachineConfig::default()
        } else {
            MachineConfig::baseline()
        };
        let mut m = Machine::new(cfg);
        m.add_process(Box::new(WebBrowser::fixed(vec![image], fidelity, &mut rng)));
        m.run()
    }

    #[test]
    fn hardware_pm_band_for_browsing() {
        let base = browse(WEB_IMAGES[0], WebFidelity::Full, false);
        let hw = browse(WEB_IMAGES[0], WebFidelity::Full, true);
        let saving = 1.0 - hw.total_j / base.total_j;
        // Paper: 22-26% across images.
        assert!(
            (0.15..=0.32).contains(&saving),
            "hw-only saving {saving} outside band"
        );
    }

    #[test]
    fn fidelity_reduction_saves_little() {
        let hw = browse(WEB_IMAGES[0], WebFidelity::Full, true);
        let j5 = browse(WEB_IMAGES[0], WebFidelity::Jpeg5, true);
        let saving = 1.0 - j5.total_j / hw.total_j;
        // Paper: "merely 4-14% lower than with hardware-only power
        // management" even at the lowest fidelity, largest image.
        assert!(
            (0.02..=0.20).contains(&saving),
            "jpeg-5 saving {saving} outside band"
        );
    }

    #[test]
    fn tiny_image_gains_nothing() {
        let hw = browse(WEB_IMAGES[3], WebFidelity::Full, true);
        let j5 = browse(WEB_IMAGES[3], WebFidelity::Jpeg5, true);
        let saving = 1.0 - j5.total_j / hw.total_j;
        assert!(saving.abs() < 0.03, "110-byte image saved {saving}");
    }

    #[test]
    fn transcoded_sizes_respect_floor() {
        assert_eq!(
            WebFidelity::Jpeg5.transcoded_bytes(&WEB_IMAGES[3]),
            WEB_IMAGES[3].bytes
        );
        let big = WebFidelity::Jpeg5.transcoded_bytes(&WEB_IMAGES[0]);
        assert_eq!(big, (175_000.0f64 * 0.12).round() as u64);
    }

    #[test]
    fn proxy_bucket_appears_in_profile() {
        let report = browse(WEB_IMAGES[0], WebFidelity::Full, true);
        assert!(report.bucket_j("proxy") > 0.0);
        assert!(report.bucket_j("netscape") > 0.0);
    }

    #[test]
    fn ladder_is_monotone_in_energy() {
        let rows: Vec<f64> = WebFidelity::ladder()
            .into_iter()
            .rev()
            .map(|f| browse(WEB_IMAGES[0], f, true).total_j)
            .collect();
        for w in rows.windows(2) {
            assert!(w[1] <= w[0] * 1.001, "web ladder not monotone: {rows:?}");
        }
    }
}
