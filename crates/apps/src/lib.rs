#![forbid(unsafe_code)]
//! Workload models of the paper's applications.
//!
//! Each application is a [`machine::Workload`]: a generator of CPU /
//! network / render / think phases whose parameters derive from the
//! paper's description of where each application spends its time:
//!
//! - [`video`] — Xanim streaming QuickTime/Cinepak clips through Odyssey;
//!   fidelity = lossy-compression track × window size;
//! - [`speech`] — the Janus front-end with local, remote, and hybrid
//!   recognition; fidelity = vocabulary/acoustic-model size;
//! - [`map`] — the Anvil map viewer; fidelity = feature filtering ×
//!   cropping, plus user think time;
//! - [`web`] — Netscape behind a client proxy and distillation server;
//!   fidelity = JPEG transcoding quality;
//! - [`composite`] — the Section 3.7 / Section 5 loop (speech → web →
//!   map) built from the same units;
//! - [`bursty`] — the Section 5.4 stochastic on/off workload.
//!
//! Every quantitative constant lives in [`datasets`] next to the paper
//! sentence it encodes, and is shared by isolation experiments, the
//! composite, and the bursty workload so results stay comparable.

pub mod bursty;
pub mod calltree;
pub mod composite;
pub mod datasets;
pub mod map;
pub mod misbehavior;
pub mod speech;
pub mod units;
pub mod video;
pub mod web;

pub use bursty::{BurstyMember, BurstyRole};
pub use calltree::{call_path, CallFrame, CostedBlock};
pub use composite::{Baton, CompositeMember, CompositeMode, CompositeRole};
pub use map::{MapFidelity, MapViewer};
pub use misbehavior::Misbehavior;
pub use speech::{SpeechApp, SpeechStrategy};
pub use video::{VideoPlayer, VideoVariant};
pub use web::{WebBrowser, WebFidelity};
