//! The bursty stochastic workload (Section 5.4).
//!
//! "We used a simple stochastic model to construct an irregular workload
//! ... each of the four applications may independently be active or idle.
//! An active application executes a fixed workload for one minute ...
//! After each minute, there is a 10% chance of switching states." The
//! video application shows a one-minute video and the map application
//! fetches five maps; we give speech six utterances and the web browser
//! five pages per active minute.

use std::collections::VecDeque;

use hw560x::DisplayState;
use machine::{Activity, AdaptDirection, FidelityView, Step, Workload};
use simcore::{SimDuration, SimRng, SimTime};

use crate::datasets::{DEFAULT_THINK_S, MAPS, TRIAL_JITTER, UTTERANCES, VIDEO_CLIPS, WEB_IMAGES};
use crate::map::MapFidelity;
use crate::units::{map_unit, speech_unit, video_unit, web_unit, UnitStep};
use crate::video::VideoVariant;
use crate::web::WebFidelity;

/// Probability of flipping between active and idle at each minute
/// boundary.
pub const SWITCH_PROBABILITY: f64 = 0.10;

/// Probability that an application starts active. The symmetric 10%
/// switching chance makes the chain's stationary activity level 50%
/// regardless of the start, so we begin at the stationary level.
pub const INITIAL_ACTIVE_PROBABILITY: f64 = 0.50;

/// Length of one activity slot.
pub const SLOT: SimDuration = SimDuration::from_secs(60);

/// Which application a bursty member models.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BurstyRole {
    /// Two utterances of local recognition per active minute.
    Speech,
    /// A one-minute video per active minute.
    Video,
    /// Five map fetches per active minute.
    Map,
    /// Five page fetches per active minute.
    Web,
}

impl BurstyRole {
    /// All four roles.
    pub fn all() -> [BurstyRole; 4] {
        [
            BurstyRole::Speech,
            BurstyRole::Video,
            BurstyRole::Map,
            BurstyRole::Web,
        ]
    }
}

/// One stochastic on/off application.
pub struct BurstyMember {
    role: BurstyRole,
    rng: SimRng,
    active: bool,
    /// True while a unit's steps are still being consumed — the display
    /// is needed only then, not during the idle tail of an active minute.
    lit: bool,
    next_decision: SimTime,
    pending: VecDeque<UnitStep>,
    level: usize,
    levels: usize,
    item_idx: usize,
    jitter: f64,
    horizon: SimTime,
}

impl std::fmt::Debug for BurstyMember {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BurstyMember").finish_non_exhaustive()
    }
}

impl BurstyMember {
    /// Creates a member; initial state is drawn from the member's stream
    /// (50/50), decisions land on minute boundaries, and the workload
    /// finishes at `horizon`.
    pub fn new(role: BurstyRole, horizon: SimTime, rng: &mut SimRng) -> Self {
        let mut stream = rng.fork(match role {
            BurstyRole::Speech => "bursty-speech",
            BurstyRole::Video => "bursty-video",
            BurstyRole::Map => "bursty-map",
            BurstyRole::Web => "bursty-web",
        });
        let active = stream.bernoulli(INITIAL_ACTIVE_PROBABILITY);
        let jitter = 1.0 + stream.uniform(-TRIAL_JITTER, TRIAL_JITTER);
        let levels = match role {
            BurstyRole::Speech => 2,
            BurstyRole::Video => VideoVariant::ladder().len(),
            BurstyRole::Map => MapFidelity::ladder().len(),
            BurstyRole::Web => WebFidelity::ladder().len(),
        };
        BurstyMember {
            role,
            rng: stream,
            active,
            lit: false,
            next_decision: SimTime::ZERO,
            pending: VecDeque::new(),
            level: levels - 1,
            levels,
            item_idx: 0,
            jitter,
            horizon,
        }
    }

    fn build_minute(&mut self) -> VecDeque<UnitStep> {
        let think = SimDuration::from_secs_f64(DEFAULT_THINK_S);
        let steps = match self.role {
            BurstyRole::Speech => {
                let a = self.item_idx % UTTERANCES.len();
                let b = (self.item_idx + 1) % UTTERANCES.len();
                self.item_idx += 2;
                speech_unit(
                    &[UTTERANCES[a], UTTERANCES[b]],
                    self.level == 0,
                    self.jitter,
                )
            }
            BurstyRole::Video => {
                let clip = &VIDEO_CLIPS[self.item_idx % VIDEO_CLIPS.len()];
                self.item_idx += 1;
                video_unit(
                    clip.bitrate_bps,
                    clip.premiere_c_ratio,
                    VideoVariant::ladder()[self.level],
                    self.jitter,
                    SLOT.as_secs_f64(),
                )
            }
            BurstyRole::Map => {
                let mut all = Vec::new();
                for _ in 0..5 {
                    let map = MAPS[self.item_idx % MAPS.len()];
                    self.item_idx += 1;
                    all.extend(map_unit(
                        &map,
                        MapFidelity::ladder()[self.level],
                        self.jitter,
                        think,
                    ));
                }
                all
            }
            BurstyRole::Web => {
                let mut all = Vec::new();
                for _ in 0..5 {
                    let img = WEB_IMAGES[self.item_idx % WEB_IMAGES.len()];
                    self.item_idx += 1;
                    all.extend(web_unit(
                        &img,
                        WebFidelity::ladder()[self.level],
                        self.jitter,
                        think,
                    ));
                }
                all
            }
        };
        steps.into()
    }
}

impl Workload for BurstyMember {
    fn name(&self) -> &'static str {
        match self.role {
            BurstyRole::Speech => "speech",
            BurstyRole::Video => "xanim",
            BurstyRole::Map => "anvil",
            BurstyRole::Web => "netscape",
        }
    }

    fn display_need(&self) -> DisplayState {
        match self.role {
            BurstyRole::Speech => DisplayState::Off,
            // The display is needed while a unit's steps (fetches, renders,
            // think pauses) are in progress; the idle tail of an active
            // minute demands nothing.
            _ => {
                if self.lit {
                    DisplayState::Bright
                } else {
                    DisplayState::Off
                }
            }
        }
    }

    fn poll(&mut self, now: SimTime) -> Step {
        if let Some(step) = self.pending.pop_front() {
            return match step {
                UnitStep::Act(a) => Step::Run(a),
                UnitStep::Pause(d) => Step::Run(Activity::Wait { until: now + d }),
            };
        }
        self.lit = false;
        if now >= self.horizon {
            return Step::Done;
        }
        if now >= self.next_decision {
            // Minute boundary: maybe flip state, then act.
            let at_start = self.next_decision == SimTime::ZERO && now == SimTime::ZERO;
            if !at_start && self.rng.bernoulli(SWITCH_PROBABILITY) {
                self.active = !self.active;
            }
            self.next_decision = now.max(self.next_decision) + SLOT;
            if self.active {
                self.pending = self.build_minute();
                self.lit = true;
                return self.poll(now);
            }
        }
        // Idle (or the active minute finished early): sleep to the next
        // decision point.
        Step::Run(Activity::Wait {
            until: self.next_decision.min(self.horizon),
        })
    }

    fn fidelity(&self) -> FidelityView {
        FidelityView::new(self.level, self.levels)
    }

    fn on_upcall(&mut self, dir: AdaptDirection, _now: SimTime) -> bool {
        match dir {
            AdaptDirection::Degrade if self.level > 0 => {
                self.level -= 1;
                true
            }
            AdaptDirection::Upgrade if self.level + 1 < self.levels => {
                self.level += 1;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machine::{Machine, MachineConfig};

    fn run_bursty(seed: u64, horizon_s: u64) -> machine::RunReport {
        let mut rng = SimRng::new(seed);
        let mut m = Machine::new(MachineConfig::default());
        for role in BurstyRole::all() {
            m.add_process(Box::new(BurstyMember::new(
                role,
                SimTime::from_secs(horizon_s),
                &mut rng,
            )));
        }
        m.run()
    }

    #[test]
    fn runs_to_horizon() {
        let report = run_bursty(1, 300);
        assert!(
            (report.duration_s() - 300.0).abs() < 70.0,
            "ended at {}",
            report.duration_s()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_bursty(1, 240);
        let b = run_bursty(2, 240);
        assert!(
            (a.total_j - b.total_j).abs() > 1.0,
            "seeds produced identical energy: {} vs {}",
            a.total_j,
            b.total_j
        );
    }

    #[test]
    fn same_seed_is_deterministic() {
        let a = run_bursty(3, 240);
        let b = run_bursty(3, 240);
        assert!((a.total_j - b.total_j).abs() < 1e-9);
    }

    #[test]
    fn members_are_adaptive() {
        let mut rng = SimRng::new(4);
        let mut v = BurstyMember::new(BurstyRole::Video, SimTime::from_secs(60), &mut rng);
        assert!(v.fidelity().is_full());
        assert!(v.on_upcall(AdaptDirection::Degrade, SimTime::ZERO));
        assert!(v.fidelity().level < v.fidelity().levels - 1);
    }
}
