//! The Odyssey video player (Xanim), Section 3.3.
//!
//! Xanim fetches videos from a server through Odyssey and displays them on
//! the client. Per frame it streams compressed data over the WaveLAN
//! (nearly saturating it at full fidelity), decodes it, hands the frame to
//! the X server, and sleeps until the next frame deadline.
//!
//! Two fidelity dimensions (Figure 6): the level of lossy compression
//! used to encode the track (Full, Premiere-B, Premiere-C) and the window
//! size (full, or half height and width — served as a quarter-area track,
//! so both network volume and X work shrink).

use hw560x::cpu::intensity;
use hw560x::DisplayState;
use machine::{Activity, AdaptDirection, FidelityView, Step, Workload};
use simcore::{SimDuration, SimRng, SimTime};

use crate::datasets::{
    VideoClip, TRIAL_JITTER, VIDEO_DECODE_S_PER_BYTE, VIDEO_FPS, VIDEO_REDUCED_WINDOW_AREA,
    VIDEO_REDUCED_WINDOW_DATA_RATIO, VIDEO_RENDER_S_FULL,
};

/// One point in the video fidelity space.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VideoVariant {
    /// Full-fidelity track, full window.
    Full,
    /// Premiere-B lossy compression, full window.
    PremiereB,
    /// Premiere-C lossy compression, full window.
    PremiereC,
    /// Full-quality encoding at half height and width.
    ReducedWindow,
    /// Premiere-C at half height and width.
    Combined,
}

impl VideoVariant {
    /// Display name used in figure rows.
    pub fn name(self) -> &'static str {
        match self {
            VideoVariant::Full => "Baseline fidelity",
            VideoVariant::PremiereB => "Premiere-B",
            VideoVariant::PremiereC => "Premiere-C",
            VideoVariant::ReducedWindow => "Reduced Window",
            VideoVariant::Combined => "Combined",
        }
    }

    /// Stream size relative to the full-fidelity track of `clip`.
    pub fn data_ratio(self, clip: &VideoClip) -> f64 {
        match self {
            VideoVariant::Full => 1.0,
            VideoVariant::PremiereB => clip.premiere_b_ratio,
            VideoVariant::PremiereC => clip.premiere_c_ratio,
            VideoVariant::ReducedWindow => VIDEO_REDUCED_WINDOW_DATA_RATIO,
            VideoVariant::Combined => VIDEO_REDUCED_WINDOW_DATA_RATIO * clip.premiere_c_ratio,
        }
    }

    /// Display-window area relative to the full window.
    pub fn area(self) -> f64 {
        match self {
            VideoVariant::Full | VideoVariant::PremiereB | VideoVariant::PremiereC => 1.0,
            VideoVariant::ReducedWindow | VideoVariant::Combined => VIDEO_REDUCED_WINDOW_AREA,
        }
    }

    /// The adaptation ladder used for goal-directed experiments, lowest
    /// fidelity first.
    pub fn ladder() -> Vec<VideoVariant> {
        vec![
            VideoVariant::Combined,
            VideoVariant::PremiereC,
            VideoVariant::PremiereB,
            VideoVariant::Full,
        ]
    }
}

#[derive(Clone, Copy, Debug)]
enum Phase {
    Fetch,
    Decode,
    Render,
    Pace,
}

/// The Xanim workload.
pub struct VideoPlayer {
    clip: VideoClip,
    ladder: Vec<VideoVariant>,
    level: usize,
    phase: Phase,
    frame: u64,
    frames_total: u64,
    next_frame_at: SimTime,
    jitter: f64,
    /// When set, the clip loops until this horizon (Section 5's
    /// background newsfeed); otherwise one playback finishes the workload.
    horizon: Option<SimTime>,
    /// Multiplier on the decode block's CPU time. Always 1.0 in
    /// production; the energy-regression harness seeds a small inflation
    /// here to prove its gate bites ([`Self::with_decode_inflation`]).
    decode_inflation: f64,
}

impl std::fmt::Debug for VideoPlayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VideoPlayer").finish_non_exhaustive()
    }
}

impl VideoPlayer {
    /// A player pinned to one variant, for the controlled measurements of
    /// Figure 6 ("we disabled Odyssey's dynamic adaptation capability").
    pub fn fixed(clip: VideoClip, variant: VideoVariant, rng: &mut SimRng) -> Self {
        Self::build(clip, vec![variant], 0, rng)
    }

    /// An adaptive player starting at full fidelity with the standard
    /// four-level ladder.
    pub fn adaptive(clip: VideoClip, rng: &mut SimRng) -> Self {
        let ladder = VideoVariant::ladder();
        let top = ladder.len() - 1;
        Self::build(clip, ladder, top, rng)
    }

    /// Loops the clip until `horizon` instead of stopping at its end.
    pub fn looping_until(mut self, horizon: SimTime) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// Test-only hook: scales the decode block's CPU time by `ratio`.
    /// The energy-regression gate uses this to inject a known per-path
    /// energy drift and assert the gate names the diverging path; it is
    /// never set on a production rig.
    ///
    /// # Panics
    ///
    /// Panics unless the ratio is finite and positive.
    #[doc(hidden)]
    pub fn with_decode_inflation(mut self, ratio: f64) -> Self {
        assert!(
            ratio.is_finite() && ratio > 0.0,
            "invalid decode inflation: {ratio}"
        );
        self.decode_inflation = ratio;
        self
    }

    fn build(clip: VideoClip, ladder: Vec<VideoVariant>, level: usize, rng: &mut SimRng) -> Self {
        let frames_total = (clip.duration_s * VIDEO_FPS).round() as u64;
        VideoPlayer {
            clip,
            ladder,
            level,
            phase: Phase::Fetch,
            frame: 0,
            frames_total,
            next_frame_at: SimTime::ZERO,
            jitter: 1.0 + rng.uniform(-TRIAL_JITTER, TRIAL_JITTER),
            horizon: None,
            decode_inflation: 1.0,
        }
    }

    fn variant(&self) -> VideoVariant {
        self.ladder[self.level]
    }

    fn bytes_per_frame(&self) -> u64 {
        let full = self.clip.bitrate_bps / 8.0 / VIDEO_FPS;
        (full * self.variant().data_ratio(&self.clip) * self.jitter).round() as u64
    }

    fn frame_period() -> SimDuration {
        SimDuration::from_secs_f64(1.0 / VIDEO_FPS)
    }
}

impl Workload for VideoPlayer {
    fn name(&self) -> &'static str {
        "xanim"
    }

    fn display_need(&self) -> DisplayState {
        DisplayState::Bright
    }

    fn poll(&mut self, now: SimTime) -> Step {
        match self.phase {
            Phase::Fetch => {
                if let Some(h) = self.horizon {
                    if now >= h {
                        return Step::Done;
                    }
                }
                self.phase = Phase::Decode;
                Step::Run(Activity::BulkFetch {
                    bytes: self.bytes_per_frame(),
                    procedure: "sftp_DataArrived",
                })
            }
            Phase::Decode => {
                self.phase = Phase::Render;
                Step::Run(Activity::Cpu {
                    duration: SimDuration::from_secs_f64(
                        self.bytes_per_frame() as f64
                            * VIDEO_DECODE_S_PER_BYTE
                            * self.decode_inflation,
                    ),
                    intensity: intensity::VIDEO_DECODE,
                    procedure: "decode_frame",
                })
            }
            Phase::Render => {
                self.phase = Phase::Pace;
                Step::Run(Activity::XRender {
                    cost: SimDuration::from_secs_f64(
                        VIDEO_RENDER_S_FULL * self.variant().area() * self.jitter,
                    ),
                })
            }
            Phase::Pace => {
                self.frame += 1;
                if self.frame >= self.frames_total && self.horizon.is_none() {
                    return Step::Done;
                }
                if self.frame >= self.frames_total {
                    self.frame = 0; // loop the clip
                }
                self.phase = Phase::Fetch;
                self.next_frame_at = (self.next_frame_at + Self::frame_period()).max(now);
                Step::Run(Activity::Wait {
                    until: self.next_frame_at,
                })
            }
        }
    }

    fn fidelity(&self) -> FidelityView {
        FidelityView::new(self.level, self.ladder.len())
    }

    fn on_upcall(&mut self, dir: AdaptDirection, _now: SimTime) -> bool {
        match dir {
            AdaptDirection::Degrade if self.level > 0 => {
                self.level -= 1;
                true
            }
            AdaptDirection::Upgrade if self.level + 1 < self.ladder.len() => {
                self.level += 1;
                true
            }
            _ => false,
        }
    }

    fn freeze(&self, w: &mut simcore::SnapshotWriter) -> Result<(), simcore::SnapshotError> {
        w.put_usize(self.level);
        w.put_u64(match self.phase {
            Phase::Fetch => 0,
            Phase::Decode => 1,
            Phase::Render => 2,
            Phase::Pace => 3,
        });
        w.put_u64(self.frame);
        w.put_time(self.next_frame_at);
        Ok(())
    }

    fn thaw(&mut self, r: &mut simcore::SnapshotReader<'_>) -> Result<(), simcore::SnapshotError> {
        let level = r.take_usize()?;
        if level >= self.ladder.len() {
            return Err(simcore::SnapshotError::Corrupt("video fidelity level"));
        }
        let phase = match r.take_u64()? {
            0 => Phase::Fetch,
            1 => Phase::Decode,
            2 => Phase::Render,
            3 => Phase::Pace,
            _ => return Err(simcore::SnapshotError::Corrupt("video phase tag")),
        };
        let frame = r.take_u64()?;
        if frame > self.frames_total {
            return Err(simcore::SnapshotError::Corrupt("video frame counter"));
        }
        let next_frame_at = r.take_time()?;
        self.level = level;
        self.phase = phase;
        self.frame = frame;
        self.next_frame_at = next_frame_at;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::VIDEO_CLIPS;
    use machine::{Machine, MachineConfig};

    fn short_clip() -> VideoClip {
        VideoClip {
            duration_s: 5.0,
            ..VIDEO_CLIPS[0]
        }
    }

    fn play(variant: VideoVariant, pm: bool) -> machine::RunReport {
        let mut rng = SimRng::new(1);
        let cfg = if pm {
            MachineConfig::default()
        } else {
            MachineConfig::baseline()
        };
        let mut m = Machine::new(cfg);
        m.add_process(Box::new(VideoPlayer::fixed(
            short_clip(),
            variant,
            &mut rng,
        )));
        m.run()
    }

    #[test]
    fn playback_takes_clip_duration() {
        let report = play(VideoVariant::Full, false);
        assert!(
            (report.duration_s() - 5.0).abs() < 0.3,
            "played for {}",
            report.duration_s()
        );
    }

    #[test]
    fn network_is_nearly_saturated_at_full_fidelity() {
        let report = play(VideoVariant::Full, false);
        let bits = report.bytes_carried as f64 * 8.0;
        let util = bits / (2.0e6 * report.duration_s());
        assert!((0.6..0.99).contains(&util), "utilization {util}");
    }

    #[test]
    fn compression_reduces_energy_and_leaves_x_unchanged() {
        let full = play(VideoVariant::Full, true);
        let c = play(VideoVariant::PremiereC, true);
        assert!(c.total_j < full.total_j);
        // "the energy used by the X server is almost completely unaffected
        // by compression".
        let x_full = full.bucket_j("X Server");
        let x_c = c.bucket_j("X Server");
        assert!(
            (x_full - x_c).abs() / x_full < 0.12,
            "X energy moved: {x_full} vs {x_c}"
        );
    }

    #[test]
    fn window_reduction_cuts_x_energy() {
        let full = play(VideoVariant::Full, true);
        let small = play(VideoVariant::ReducedWindow, true);
        let x_full = full.bucket_j("X Server");
        let x_small = small.bucket_j("X Server");
        assert!(
            x_small < x_full * 0.5,
            "X energy {x_small} not much below {x_full}"
        );
    }

    #[test]
    fn combined_is_cheapest() {
        let rows: Vec<f64> = [
            VideoVariant::Full,
            VideoVariant::PremiereB,
            VideoVariant::PremiereC,
            VideoVariant::Combined,
        ]
        .iter()
        .map(|v| play(*v, true).total_j)
        .collect();
        for w in rows.windows(2) {
            assert!(w[1] < w[0], "fidelity order violated: {rows:?}");
        }
    }

    #[test]
    fn idle_dominates_baseline_shading() {
        let report = play(VideoVariant::Full, false);
        let idle = report.bucket_j("Idle");
        for (name, j) in &report.buckets {
            if name != "Idle" {
                assert!(idle >= *j, "{name} ({j} J) exceeds Idle ({idle} J)");
            }
        }
    }

    #[test]
    fn adaptation_ladder_moves() {
        let mut rng = SimRng::new(2);
        let mut p = VideoPlayer::adaptive(short_clip(), &mut rng);
        assert!(p.fidelity().is_full());
        assert!(p.on_upcall(AdaptDirection::Degrade, SimTime::ZERO));
        assert_eq!(p.fidelity().level, 2);
        assert!(p.on_upcall(AdaptDirection::Upgrade, SimTime::ZERO));
        assert!(p.fidelity().is_full());
        assert!(!p.on_upcall(AdaptDirection::Upgrade, SimTime::ZERO));
    }

    #[test]
    fn looping_player_runs_to_horizon() {
        let mut rng = SimRng::new(3);
        let mut m = Machine::new(MachineConfig::default());
        let p = VideoPlayer::fixed(short_clip(), VideoVariant::Full, &mut rng)
            .looping_until(SimTime::from_secs(12));
        m.add_process(Box::new(p));
        let report = m.run();
        assert!(
            (report.duration_s() - 12.0).abs() < 0.2,
            "looped for {}",
            report.duration_s()
        );
    }
}
