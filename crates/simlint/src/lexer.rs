//! Line-aware tokenizer feeding the U1/P1 parser.
//!
//! Input is *stripped* source (see `strip` in the crate root): string
//! literals are already blanked to `""`, char literals to `' '`, and
//! comments removed, so the lexer only has to deal with identifiers,
//! numbers, lifetimes, and operators. Every token carries the 1-based
//! line it starts on — that line is what findings point at.

/// One lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (the parser tells them apart by spelling).
    Ident(String),
    /// Numeric literal, verbatim (`1_000`, `0.5f64`, `0x1f`).
    Num(String),
    /// A (blanked) string literal.
    Str,
    /// A (blanked) char literal.
    Char,
    /// Lifetime such as `'a` (tick included in the name? no — name only).
    Lifetime(String),
    /// Operator or punctuation, normalized to one spelling.
    Punct(&'static str),
}

/// A token plus the 1-based source line it starts on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based line number.
    pub line: usize,
}

/// Multi-character operators, longest first (maximal munch).
const PUNCTS: [&str; 34] = [
    "<<=", ">>=", "..=", "...", "->", "=>", "::", "..", "==", "!=", "<=", ">=", "&&", "||", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "+", "-", "*", "/", "%", "=", "<", ">",
    "&", "|",
];

/// Single-character punctuation not covered by [`PUNCTS`].
const SINGLES: [(char, &str); 13] = [
    ('^', "^"),
    ('!', "!"),
    ('?', "?"),
    ('@', "@"),
    ('#', "#"),
    ('.', "."),
    (',', ","),
    (';', ";"),
    (':', ":"),
    ('(', "("),
    (')', ")"),
    ('[', "["),
    (']', "]"),
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes stripped code lines (1-based numbering follows the slice).
pub fn lex(code_lines: &[String]) -> Vec<Token> {
    let mut out = Vec::new();
    for (idx, line) in code_lines.iter().enumerate() {
        let line_no = idx + 1;
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            // Blanked string literal: exactly `""` after stripping.
            if c == '"' {
                out.push(Token {
                    tok: Tok::Str,
                    line: line_no,
                });
                i += 1;
                while i < chars.len() && chars[i] != '"' {
                    i += 1;
                }
                i += 1;
                continue;
            }
            // Blanked char literal (`' '`) or lifetime (`'a`).
            if c == '\'' {
                if chars.get(i + 1) == Some(&' ') && chars.get(i + 2) == Some(&'\'') {
                    out.push(Token {
                        tok: Tok::Char,
                        line: line_no,
                    });
                    i += 3;
                    continue;
                }
                let mut j = i + 1;
                while j < chars.len() && is_ident_char(chars[j]) {
                    j += 1;
                }
                let name: String = chars[i + 1..j].iter().collect();
                out.push(Token {
                    tok: Tok::Lifetime(name),
                    line: line_no,
                });
                i = j;
                continue;
            }
            if c.is_ascii_digit() {
                let start = i;
                if c == '0' && matches!(chars.get(i + 1), Some('x') | Some('b') | Some('o')) {
                    i += 2;
                    while i < chars.len() && (chars[i].is_ascii_hexdigit() || chars[i] == '_') {
                        i += 1;
                    }
                } else {
                    while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                        i += 1;
                    }
                    // Fraction: a dot NOT starting a `..` range and NOT a
                    // method call on the literal (`1.max(2)`).
                    if chars.get(i) == Some(&'.')
                        && chars.get(i + 1) != Some(&'.')
                        && !chars.get(i + 1).copied().is_some_and(is_ident_start)
                    {
                        i += 1;
                        while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                            i += 1;
                        }
                    }
                    // Exponent.
                    if matches!(chars.get(i), Some('e') | Some('E')) {
                        let sign = matches!(chars.get(i + 1), Some('+') | Some('-')) as usize;
                        if chars
                            .get(i + 1 + sign)
                            .copied()
                            .is_some_and(|d| d.is_ascii_digit())
                        {
                            i += 1 + sign;
                            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_')
                            {
                                i += 1;
                            }
                        }
                    }
                }
                // Type suffix (`f64`, `u32`, `usize`).
                while i < chars.len() && is_ident_char(chars[i]) {
                    i += 1;
                }
                out.push(Token {
                    tok: Tok::Num(chars[start..i].iter().collect()),
                    line: line_no,
                });
                continue;
            }
            if is_ident_start(c) {
                let start = i;
                while i < chars.len() && is_ident_char(chars[i]) {
                    i += 1;
                }
                out.push(Token {
                    tok: Tok::Ident(chars[start..i].iter().collect()),
                    line: line_no,
                });
                continue;
            }
            // Braces keep their own spelling for the parser's depth logic.
            if c == '{' || c == '}' {
                out.push(Token {
                    tok: Tok::Punct(if c == '{' { "{" } else { "}" }),
                    line: line_no,
                });
                i += 1;
                continue;
            }
            let rest: String = chars[i..chars.len().min(i + 3)].iter().collect();
            if let Some(p) = PUNCTS.iter().find(|p| rest.starts_with(**p)) {
                out.push(Token {
                    tok: Tok::Punct(p),
                    line: line_no,
                });
                i += p.len();
                continue;
            }
            if let Some((_, p)) = SINGLES.iter().find(|(s, _)| *s == c) {
                out.push(Token {
                    tok: Tok::Punct(p),
                    line: line_no,
                });
                i += 1;
                continue;
            }
            // Anything else (stray unicode) is skipped.
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex_str(src: &str) -> Vec<Tok> {
        let lines: Vec<String> = src.lines().map(|l| l.to_string()).collect();
        lex(&lines).into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn idents_numbers_and_ops() {
        let toks = lex_str("let x_j = 2.5 * rate_hz;");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("let".into()),
                Tok::Ident("x_j".into()),
                Tok::Punct("="),
                Tok::Num("2.5".into()),
                Tok::Punct("*"),
                Tok::Ident("rate_hz".into()),
                Tok::Punct(";"),
            ]
        );
    }

    #[test]
    fn maximal_munch_on_operators() {
        assert_eq!(
            lex_str("a >>= b ..= c -> d => e :: f"),
            vec![
                Tok::Ident("a".into()),
                Tok::Punct(">>="),
                Tok::Ident("b".into()),
                Tok::Punct("..="),
                Tok::Ident("c".into()),
                Tok::Punct("->"),
                Tok::Ident("d".into()),
                Tok::Punct("=>"),
                Tok::Ident("e".into()),
                Tok::Punct("::"),
                Tok::Ident("f".into()),
            ]
        );
    }

    #[test]
    fn ranges_do_not_eat_float_dots() {
        assert_eq!(
            lex_str("0..n"),
            vec![
                Tok::Num("0".into()),
                Tok::Punct(".."),
                Tok::Ident("n".into()),
            ]
        );
        assert_eq!(lex_str("1.5e-3f64"), vec![Tok::Num("1.5e-3f64".into())]);
        // A method call on an integer literal keeps the dot separate.
        assert_eq!(
            lex_str("1.max(2)"),
            vec![
                Tok::Num("1".into()),
                Tok::Punct("."),
                Tok::Ident("max".into()),
                Tok::Punct("("),
                Tok::Num("2".into()),
                Tok::Punct(")"),
            ]
        );
    }

    #[test]
    fn lifetimes_and_blanked_literals() {
        assert_eq!(
            lex_str("&'a str"),
            vec![
                Tok::Punct("&"),
                Tok::Lifetime("a".into()),
                Tok::Ident("str".into()),
            ]
        );
        // Stripped string and char literals.
        assert_eq!(lex_str("\"\""), vec![Tok::Str]);
        assert_eq!(lex_str("' '"), vec![Tok::Char]);
    }

    #[test]
    fn tokens_carry_their_line() {
        let lines: Vec<String> = vec!["let a".into(), " = b;".into()];
        let toks = lex(&lines);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 1);
        assert_eq!(toks[2].line, 2); // '='
        assert_eq!(toks[3].line, 2); // 'b'
    }

    #[test]
    fn hex_and_suffixed_literals_are_single_tokens() {
        assert_eq!(lex_str("0x1f_u32"), vec![Tok::Num("0x1f_u32".into())]);
        assert_eq!(lex_str("1_000usize"), vec![Tok::Num("1_000usize".into())]);
    }
}
