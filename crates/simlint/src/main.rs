#![forbid(unsafe_code)]
//! CLI driver: `cargo run -p simlint [--json] [ROOT]`.
//!
//! Scans every `.rs` file under `ROOT` (default: the current directory,
//! which is the workspace root when invoked through `cargo run`) and
//! prints one diagnostic per violation. Exits 0 when the tree is clean,
//! 1 when there are findings, 2 on usage or I/O errors — so it slots
//! directly into `scripts/verify.sh` and CI as a hard gate.

use std::path::PathBuf;

fn usage() -> ! {
    eprintln!("usage: simlint [--json] [ROOT]");
    std::process::exit(2)
}

fn main() {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => {
                if root.is_some() {
                    usage();
                }
                root = Some(PathBuf::from(other));
            }
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    let report = match simlint::scan_workspace(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("simlint: {e}");
            std::process::exit(2);
        }
    };
    if json {
        let objects: Vec<String> = report.findings.iter().map(|f| f.to_json()).collect();
        println!("[{}]", objects.join(","));
    } else {
        for f in &report.findings {
            println!("{f}");
        }
        eprintln!(
            "simlint: {} finding(s) in {} file(s)",
            report.findings.len(),
            report.files_scanned
        );
    }
    if !report.findings.is_empty() {
        std::process::exit(1);
    }
}
