#![forbid(unsafe_code)]
//! CLI driver: `cargo run -p simlint [--json] [--threads N] [ROOT]`.
//!
//! Scans every `.rs` file under `ROOT` (default: the current directory,
//! which is the workspace root when invoked through `cargo run`) and
//! prints one diagnostic per violation. Exits 0 when the tree is clean,
//! 1 when there are findings, 2 on usage or I/O errors — so it slots
//! directly into `scripts/verify.sh` and CI as a hard gate.
//!
//! `--threads N` fans the per-file analysis across N simpar workers
//! (default: the pool's own sizing). The merge is index-ordered, so the
//! output is byte-identical at any thread count.

use std::path::PathBuf;

fn usage() -> ! {
    eprintln!("usage: simlint [--json] [--threads N] [ROOT]");
    std::process::exit(2)
}

fn main() {
    let mut json = false;
    let mut threads: Option<usize> = None;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--threads" => {
                threads = match args.next().map(|n| n.parse::<usize>()) {
                    Some(Ok(n)) if n >= 1 => Some(n),
                    _ => usage(),
                };
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => {
                if root.is_some() {
                    usage();
                }
                root = Some(PathBuf::from(other));
            }
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    let threads = threads.unwrap_or_else(simpar::available_threads);
    let report = match simlint::scan_workspace_threads(&root, threads) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("simlint: {e}");
            std::process::exit(2);
        }
    };
    if json {
        println!("{}", simlint::render_json(&report));
    } else {
        for f in &report.findings {
            println!("{f}");
        }
        eprintln!(
            "simlint: {} finding(s) in {} file(s)",
            report.findings.len(),
            report.files_scanned
        );
    }
    if !report.findings.is_empty() {
        std::process::exit(1);
    }
}
