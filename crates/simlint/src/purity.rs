//! Rule P1 — transitive purity over the workspace call graph.
//!
//! D1 bans wall-clock, thread, and env APIs line by line, but a per-line
//! scan cannot see *laundering*: a simulation function calling a helper
//! that calls `Instant::now()` is just as nondeterministic as one
//! calling it directly. P1 closes that hole. It builds a call graph from
//! the edges the U1 walk already collected (callee bare name + line per
//! function), marks every function whose own body touches a banned
//! token — **including D1-waived sites**, which is the whole point: a
//! waived `Instant` in `bench` is sanctioned *there*, not wherever its
//! callers sit — and propagates impurity along call edges to a fixpoint.
//!
//! Resolution is deliberately conservative. A call edge only conducts
//! impurity when its bare name resolves to workspace definitions that
//! are **all** impure: a name shared by an impure function and a pure
//! one (or by nothing in the workspace at all — `push`, `get`, `len`)
//! propagates nothing. That trades a little recall for zero false
//! positives from name collisions.
//!
//! Waivers are boundaries, not blindfolds: a function whose definition
//! line carries an `allow(P1)` waiver is itself unflagged *and* stops
//! propagation, so one sanctioned timing call does not cascade findings
//! all the way up to `main`. Functions that are directly banned are D1's
//! findings, never P1's. Findings render the full call path down to the
//! banned token so the report reads as a proof, not an accusation.
//!
//! Sanctioned crates: `crates/simpar/` may use thread APIs (mirroring
//! D1's own exemption) and `crates/bench/` exists to hold wall-clock
//! timing, so neither produces P1 *findings* — but impurity still flows
//! **through** bench helpers to callers in simulation crates, which is
//! exactly how `experiments` timing verbs get caught and must carry
//! reasoned waivers.

use crate::parse::FnAst;

/// One file's worth of P1 input.
#[derive(Clone, Debug)]
pub struct PurityFile {
    /// Workspace-relative path.
    pub rel: String,
    /// Per-function facts, in `FileAst::fns` order.
    pub fns: Vec<PurityFn>,
    /// Whether findings may be reported here (false for the sanctioned
    /// `bench`/`simpar` crates — they still conduct impurity).
    pub eligible: bool,
}

/// One function's P1-relevant facts.
#[derive(Clone, Debug)]
pub struct PurityFn {
    /// Bare name (call edges resolve against this).
    pub name: String,
    /// Qualified display name for path rendering.
    pub qual: String,
    /// 1-based definition line (findings anchor here).
    pub line: usize,
    /// Defined in a `#[cfg(test)]` region: invisible to P1.
    pub in_test: bool,
    /// Carries a P1 waiver: unflagged and a propagation boundary.
    pub waived: bool,
    /// First banned token in the body, waivers ignored: `(token, line)`.
    pub direct: Option<(String, usize)>,
    /// Outgoing call edges `(callee bare name, call line)`.
    pub calls: Vec<(String, usize)>,
}

/// Scans each function's body line range for D1-banned tokens,
/// *ignoring waivers* (a D1-waived clock is still a P1 impurity
/// source). Thread tokens are exempt under `crates/simpar/`, exactly as
/// in D1 itself. Returns the first site per function.
pub fn direct_sites(rel: &str, code: &[String], fns: &[FnAst]) -> Vec<Option<(String, usize)>> {
    let thread_ok = crate::is_par_path(rel);
    fns.iter()
        .map(|f| {
            if !f.has_body {
                return None;
            }
            for line_no in f.line..=f.end_line.min(code.len()) {
                let line = &code[line_no - 1];
                for tok in crate::D1_CLOCK_TOKENS {
                    if token_on_line(line, tok) {
                        return Some((tok.to_string(), line_no));
                    }
                }
                if !thread_ok {
                    for tok in crate::D1_THREAD_TOKENS {
                        if token_on_line(line, tok) {
                            return Some((tok.to_string(), line_no));
                        }
                    }
                }
            }
            None
        })
        .collect()
}

fn token_on_line(line: &str, tok: &str) -> bool {
    if tok.contains("::") {
        line.contains(tok)
    } else {
        crate::contains_word(line, tok)
    }
}

/// Why a node is impure.
#[derive(Clone, Debug)]
enum Cause {
    /// The body itself touches `(token, line)`.
    Direct(String, usize),
    /// A call reaches the impure node `callee` (the rendered path points
    /// at definition lines, which is where the fix happens).
    Via { callee: (usize, usize) },
}

/// Runs the propagation and returns findings as
/// `(file index, definition line, message)`. Input file order defines
/// tie-breaks everywhere, so callers pass files sorted by path.
pub fn analyze(files: &[PurityFile]) -> Vec<(usize, usize, String)> {
    // Bare name -> all non-test definitions, in input order.
    let mut defs: std::collections::BTreeMap<&str, Vec<(usize, usize)>> =
        std::collections::BTreeMap::new();
    for (fi, file) in files.iter().enumerate() {
        for (ni, f) in file.fns.iter().enumerate() {
            if !f.in_test {
                defs.entry(f.name.as_str()).or_default().push((fi, ni));
            }
        }
    }

    // Seed: directly banned bodies. Waived functions stay permanently
    // pure — they are sanctioned boundaries.
    let mut cause: Vec<Vec<Option<Cause>>> = files
        .iter()
        .map(|file| {
            file.fns
                .iter()
                .map(|f| {
                    if f.in_test || f.waived {
                        None
                    } else {
                        f.direct
                            .as_ref()
                            .map(|(tok, line)| Cause::Direct(tok.clone(), *line))
                    }
                })
                .collect()
        })
        .collect();

    // Fixpoint: a call conducts impurity only when every definition of
    // its bare name is impure (conservative against collisions). The
    // first conducting call in body order wins as the witness.
    loop {
        let mut changed = false;
        for (fi, file) in files.iter().enumerate() {
            for (ni, f) in file.fns.iter().enumerate() {
                if f.in_test || f.waived || cause[fi][ni].is_some() {
                    continue;
                }
                let hit = f.calls.iter().find_map(|(name, _line)| {
                    let targets = defs.get(name.as_str())?;
                    let all_impure = targets.iter().all(|&(tf, tn)| cause[tf][tn].is_some());
                    if all_impure && !targets.is_empty() {
                        Some(Cause::Via { callee: targets[0] })
                    } else {
                        None
                    }
                });
                if let Some(c) = hit {
                    cause[fi][ni] = Some(c);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Findings: transitively impure functions in eligible files.
    // Directly banned ones are D1's findings, not P1's.
    let mut out = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        if !file.eligible {
            continue;
        }
        for (ni, f) in file.fns.iter().enumerate() {
            if !matches!(cause[fi][ni], Some(Cause::Via { .. })) {
                continue;
            }
            let mut msg = format!("transitively reaches a banned API: `{}`", f.qual);
            let mut cur = (fi, ni);
            for _hop in 0..32 {
                match &cause[cur.0][cur.1] {
                    Some(Cause::Via { callee }) => {
                        let (cf, cn) = *callee;
                        let target = &files[cf].fns[cn];
                        msg.push_str(&format!(
                            " → `{}` ({}:{})",
                            target.qual, files[cf].rel, target.line
                        ));
                        cur = (cf, cn);
                    }
                    Some(Cause::Direct(tok, tline)) => {
                        msg.push_str(&format!(
                            "; banned `{tok}` at {}:{}",
                            files[cur.0].rel, tline
                        ));
                        break;
                    }
                    None => break,
                }
            }
            out.push((fi, f.line, msg));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse_file;
    use crate::unit::{check_file, SymbolTable};

    /// Builds P1 input from real sources: `(rel, src, eligible)` plus a
    /// list of function names to mark waived.
    fn build(files: &[(&str, &str, bool)], waived: &[&str]) -> Vec<PurityFile> {
        let parsed: Vec<(String, crate::parse::FileAst, Vec<String>)> = files
            .iter()
            .map(|(rel, src, _)| {
                let stripped = crate::strip(src);
                let ast = parse_file(&lex(&stripped.code));
                (rel.to_string(), ast, stripped.code.clone())
            })
            .collect();
        let table = SymbolTable::build(
            &parsed
                .iter()
                .map(|(rel, ast, _)| (rel.clone(), ast.clone()))
                .collect::<Vec<_>>(),
        );
        parsed
            .iter()
            .zip(files)
            .map(|((rel, ast, code), (_, _, eligible))| {
                let outcome = check_file(ast, &table, &vec![false; code.len()]);
                let direct = direct_sites(rel, code, &ast.fns);
                PurityFile {
                    rel: rel.clone(),
                    eligible: *eligible,
                    fns: ast
                        .fns
                        .iter()
                        .enumerate()
                        .map(|(i, f)| PurityFn {
                            name: f.name.clone(),
                            qual: f.qual.clone(),
                            line: f.line,
                            in_test: f.in_test,
                            waived: waived.contains(&f.name.as_str()),
                            direct: direct[i].clone(),
                            calls: outcome.fn_calls[i].clone(),
                        })
                        .collect(),
                }
            })
            .collect()
    }

    fn run(files: &[(&str, &str, bool)], waived: &[&str]) -> Vec<(usize, usize, String)> {
        analyze(&build(files, waived))
    }

    // -- the canonical catch ---------------------------------------------

    #[test]
    fn two_hop_transitive_wall_clock_reach_is_flagged() {
        let f = run(
            &[
                (
                    "crates/machine/src/lib.rs",
                    "fn step_machine() { helper_mid(); }\nfn helper_mid() { read_clock(); }\n",
                    true,
                ),
                (
                    "crates/util/src/lib.rs",
                    "fn read_clock() -> u64 { let t = Instant::now(); 0 }\n",
                    true,
                ),
            ],
            &[],
        );
        // `read_clock` is direct (D1's), `helper_mid` one hop,
        // `step_machine` two hops: both hops are P1 findings.
        assert_eq!(f.len(), 2, "{f:?}");
        let msg = &f.iter().find(|(_, line, _)| *line == 1).unwrap().2;
        assert!(
            msg.contains("`step_machine` → `helper_mid` (crates/machine/src/lib.rs:2)"),
            "{msg}"
        );
        assert!(
            msg.contains("→ `read_clock` (crates/util/src/lib.rs:1)"),
            "{msg}"
        );
        assert!(
            msg.contains("banned `Instant` at crates/util/src/lib.rs:1"),
            "{msg}"
        );
    }

    #[test]
    fn direct_offenders_are_left_to_d1() {
        let f = run(
            &[(
                "a.rs",
                "fn uses_clock() { let t = Instant::now(); }\n",
                true,
            )],
            &[],
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn pure_chains_are_clean() {
        let f = run(
            &[(
                "a.rs",
                "fn top() { mid(); }\nfn mid() { bottom(); }\nfn bottom() -> f64 { 1.0 }\n",
                true,
            )],
            &[],
        );
        assert!(f.is_empty(), "{f:?}");
    }

    // -- waiver semantics -------------------------------------------------

    #[test]
    fn waived_fn_is_not_flagged() {
        let f = run(
            &[(
                "a.rs",
                "fn timed_run() { read_clock(); }\nfn read_clock() { let t = Instant::now(); }\n",
                true,
            )],
            &["timed_run"],
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn waiver_is_a_propagation_boundary() {
        // main -> timed_run(waived) -> read_clock(direct): the waiver
        // stops the cascade, so main stays clean.
        let f = run(
            &[(
                "a.rs",
                "fn main() { timed_run(); }\nfn timed_run() { read_clock(); }\nfn read_clock() { let t = Instant::now(); }\n",
                true,
            )],
            &["timed_run"],
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unwaived_chains_cascade_to_every_caller() {
        let f = run(
            &[(
                "a.rs",
                "fn main() { timed_run(); }\nfn timed_run() { read_clock(); }\nfn read_clock() { let t = Instant::now(); }\n",
                true,
            )],
            &[],
        );
        // Both main and timed_run are flagged (read_clock is D1's).
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn waiving_a_direct_fn_sanctions_its_callers() {
        let f = run(
            &[(
                "a.rs",
                "fn caller() { read_clock(); }\nfn read_clock() { let t = Instant::now(); }\n",
                true,
            )],
            &["read_clock"],
        );
        assert!(f.is_empty(), "{f:?}");
    }

    // -- resolution rules -------------------------------------------------

    #[test]
    fn name_collisions_block_propagation_unless_all_impure() {
        // Two `refresh` defs: one impure, one pure. The call must not
        // conduct.
        let f = run(
            &[
                (
                    "a.rs",
                    "fn caller() { refresh(); }\nfn refresh() { let t = Instant::now(); }\n",
                    true,
                ),
                ("b.rs", "fn refresh() -> f64 { 1.0 }\n", true),
            ],
            &[],
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn name_collisions_conduct_when_all_defs_are_impure() {
        let f = run(
            &[
                (
                    "a.rs",
                    "fn caller() { refresh(); }\nfn refresh() { let t = Instant::now(); }\n",
                    true,
                ),
                (
                    "b.rs",
                    "fn refresh() { let t = SystemTime::now(); }\n",
                    true,
                ),
            ],
            &[],
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].2.contains("`caller`"), "{}", f[0].2);
    }

    #[test]
    fn unknown_names_conduct_nothing() {
        // `push`, `get`, `len` resolve to nothing in the workspace.
        let f = run(
            &[(
                "a.rs",
                "fn caller(v: &mut Vec<f64>) { v.push(1.0); v.len(); }\n",
                true,
            )],
            &[],
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn method_call_edges_conduct() {
        let f = run(
            &[(
                "a.rs",
                "impl Sw { fn elapsed_poll(&self) { let t = Instant::now(); } }\nfn caller(s: &Sw) { s.elapsed_poll(); }\n",
                true,
            )],
            &[],
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].2.contains("`Sw::elapsed_poll`"), "{}", f[0].2);
    }

    #[test]
    fn test_fns_neither_flag_nor_conduct() {
        let files = &[(
            "a.rs",
            "fn caller() { helper(); }\nfn helper() { let t = Instant::now(); }\n",
            true,
        )];
        let mut built = build(files, &[]);
        built[0].fns[1].in_test = true; // helper is now test-only
        let f = analyze(&built);
        assert!(f.is_empty(), "{f:?}");
    }

    // -- sanctioned crates ------------------------------------------------

    #[test]
    fn bench_conducts_but_never_reports() {
        let f = run(
            &[
                (
                    "crates/bench/src/lib.rs",
                    "fn time_reps() { let sw = Instant::now(); }\nfn render_table() { time_reps(); }\n",
                    false,
                ),
                (
                    "crates/experiments/src/main.rs",
                    "fn run_bench_verb() { time_reps(); }\n",
                    true,
                ),
            ],
            &[],
        );
        // render_table (inside bench) is impure but not reported;
        // run_bench_verb (experiments) is reported.
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].2.contains("`run_bench_verb`"), "{}", f[0].2);
        assert!(
            f[0].2
                .contains("banned `Instant` at crates/bench/src/lib.rs:1"),
            "{}",
            f[0].2
        );
    }

    #[test]
    fn simpar_thread_use_is_sanctioned_at_the_source() {
        // direct_sites already exempts thread tokens under simpar, so
        // callers of the pool are pure.
        let f = run(
            &[
                (
                    "crates/simpar/src/lib.rs",
                    "pub fn map_indexed() { std::thread::scope(|s| {}); }\n",
                    false,
                ),
                (
                    "crates/experiments/src/harness.rs",
                    "fn run_trials() { map_indexed(); }\n",
                    true,
                ),
            ],
            &[],
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn thread_use_outside_simpar_is_a_source() {
        let f = run(
            &[
                (
                    "crates/apps/src/lib.rs",
                    "fn sneaky_pool() { std::thread::scope(|s| {}); }\n",
                    true,
                ),
                (
                    "crates/apps/src/video.rs",
                    "fn render() { sneaky_pool(); }\n",
                    true,
                ),
            ],
            &[],
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].2.contains("`render`"), "{}", f[0].2);
        assert!(f[0].2.contains("banned `thread::scope`"), "{}", f[0].2);
    }

    // -- direct_sites details ---------------------------------------------

    #[test]
    fn direct_sites_ignore_waiver_comments() {
        // The waiver comment lives in the comment stream; the stripped
        // code still carries the token — and P1 must see it.
        let src =
            "fn start() {\n    let t = Instant::now(); // simlint: allow(D1) — timing crate\n}\n";
        let stripped = crate::strip(src);
        let ast = parse_file(&lex(&stripped.code));
        let sites = direct_sites("crates/bench/src/lib.rs", &stripped.code, &ast.fns);
        assert_eq!(sites[0], Some(("Instant".to_string(), 2)));
    }

    #[test]
    fn direct_sites_report_the_first_line() {
        let src = "fn f() {\n    let a = SystemTime::now();\n    let b = Instant::now();\n}\n";
        let stripped = crate::strip(src);
        let ast = parse_file(&lex(&stripped.code));
        let sites = direct_sites("a.rs", &stripped.code, &ast.fns);
        // Line 2 carries SystemTime — scan order is line-major.
        assert_eq!(sites[0], Some(("SystemTime".to_string(), 2)));
    }

    #[test]
    fn bodiless_signatures_have_no_sites() {
        let src = "trait T { fn poll(&self); }\n";
        let stripped = crate::strip(src);
        let ast = parse_file(&lex(&stripped.code));
        let sites = direct_sites("a.rs", &stripped.code, &ast.fns);
        assert_eq!(sites, vec![None]);
    }

    #[test]
    fn env_reads_are_sources_too() {
        let f = run(
            &[(
                "a.rs",
                "fn config() -> u64 { let v = env::var(\"X\"); 0 }\nfn caller() { config(); }\n",
                true,
            )],
            &[],
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].2.contains("banned `env::var`"), "{}", f[0].2);
    }

    // -- path rendering and determinism -----------------------------------

    #[test]
    fn three_hop_paths_render_every_link() {
        let f = run(
            &[(
                "a.rs",
                "fn a() { b(); }\nfn b() { c(); }\nfn c() { d(); }\nfn d() { let t = Instant::now(); }\n",
                true,
            )],
            &[],
        );
        let top = f.iter().find(|(_, line, _)| *line == 1).unwrap();
        assert!(
            top.2.contains(
                "`a` → `b` (a.rs:2) → `c` (a.rs:3) → `d` (a.rs:4); banned `Instant` at a.rs:4"
            ),
            "{}",
            top.2
        );
    }

    #[test]
    fn first_conducting_call_in_body_order_is_the_witness() {
        let f = run(
            &[(
                "a.rs",
                "fn top() { pure(); clocky_a(); clocky_b(); }\nfn pure() {}\nfn clocky_a() { let t = Instant::now(); }\nfn clocky_b() { let t = Instant::now(); }\n",
                true,
            )],
            &[],
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].2.contains("→ `clocky_a`"), "{}", f[0].2);
    }

    #[test]
    fn recursion_does_not_hang_or_flag() {
        let f = run(
            &[(
                "a.rs",
                "fn ping() { pong(); }\nfn pong() { ping(); }\n",
                true,
            )],
            &[],
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn recursive_cycle_reaching_a_clock_flags_the_cycle() {
        let f = run(
            &[(
                "a.rs",
                "fn ping() { pong(); }\nfn pong() { ping(); tick(); }\nfn tick() { let t = Instant::now(); }\n",
                true,
            )],
            &[],
        );
        // pong conducts via tick; ping conducts via pong.
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn diamond_dependencies_flag_each_caller_once() {
        let f = run(
            &[(
                "a.rs",
                "fn left() { shared(); }\nfn right() { shared(); }\nfn shared() { let t = Instant::now(); }\n",
                true,
            )],
            &[],
        );
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn output_is_deterministic_across_runs() {
        let files = &[
            (
                "a.rs",
                "fn a() { c(); }\nfn b() { c(); }\nfn c() { let t = Instant::now(); }\n",
                true,
            ),
            ("d.rs", "fn d() { a(); }\n", true),
        ];
        let one = run(files, &[]);
        let two = run(files, &[]);
        assert_eq!(one, two);
        assert_eq!(one.len(), 3, "{one:?}");
    }

    #[test]
    fn calls_inside_closures_and_branches_conduct() {
        let f = run(
            &[(
                "a.rs",
                "fn top(xs: &[f64], go: bool) { if go { xs.iter().map(|x| clocky(x)); } }\nfn clocky(x: &f64) { let t = Instant::now(); }\n",
                true,
            )],
            &[],
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].2.contains("`top`"), "{}", f[0].2);
    }

    #[test]
    fn qualified_path_calls_resolve_by_last_segment() {
        let f = run(
            &[
                (
                    "crates/bench/src/lib.rs",
                    "impl Stopwatch { fn start_wall() -> Stopwatch { let t = Instant::now(); Stopwatch } }\n",
                    false,
                ),
                (
                    "crates/experiments/src/main.rs",
                    "fn verb() { let sw = Stopwatch::start_wall(); }\n",
                    true,
                ),
            ],
            &[],
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(
            f[0].2
                .contains("`verb` → `Stopwatch::start_wall` (crates/bench/src/lib.rs:1)"),
            "{}",
            f[0].2
        );
    }
}
