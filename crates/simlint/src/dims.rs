//! The dimension algebra behind rule U1.
//!
//! Every quantity the energy ledger touches is a product of powers of
//! two base dimensions: **J** (energy) and **s** (time). The D4 naming
//! discipline makes a value's dimension recoverable from its name alone:
//!
//! | suffix                     | dimension | exponents (J, s) |
//! |----------------------------|-----------|------------------|
//! | `_j`, `_mj`, `_kj`, `_wh`  | energy    | (1, 0)           |
//! | `_w`, `_mw`, `_kw`         | power     | (1, −1)          |
//! | `_s`, `_ms`, `_us`, `_ns`  | time      | (0, 1)           |
//! | `_hz`, `_bps`              | rate      | (0, −1)          |
//! | `_frac`, `_ratio`, `_pct`  | ratio     | (0, 0)           |
//!
//! Scale prefixes (milli, kilo) are deliberately collapsed: U1 checks
//! *dimensions*, not magnitudes, so `power_mw * dt_s` unifies with `_mj`
//! and `_j` alike. Addition, subtraction, comparison, and assignment
//! require equal dimensions; multiplication and division add and
//! subtract the exponent vectors — which is exactly how
//! `power_w * dt_s` comes out as J and `energy_j / dt_s` as J/s.

use std::fmt;

/// A dimension: the exponent vector `J^energy · s^time`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Dim {
    /// Exponent of the energy base dimension (J).
    pub energy: i32,
    /// Exponent of the time base dimension (s).
    pub time: i32,
}

impl Dim {
    /// The dimensionless unit of the algebra (ratios, fractions, counts).
    pub const NONE: Dim = Dim { energy: 0, time: 0 };
    /// Energy: joules.
    pub const ENERGY: Dim = Dim { energy: 1, time: 0 };
    /// Power: joules per second.
    pub const POWER: Dim = Dim {
        energy: 1,
        time: -1,
    };
    /// Time: seconds.
    pub const TIME: Dim = Dim { energy: 0, time: 1 };
    /// Rate: events per second (`_hz`, `_bps`).
    pub const RATE: Dim = Dim {
        energy: 0,
        time: -1,
    };

    /// Dimension of a reciprocal.
    pub fn recip(self) -> Dim {
        Dim::NONE / self
    }

    /// True for the dimensionless unit.
    pub fn is_none(self) -> bool {
        self == Dim::NONE
    }
}

/// Dimension of a product: exponents add.
impl std::ops::Mul for Dim {
    type Output = Dim;
    fn mul(self, other: Dim) -> Dim {
        Dim {
            energy: self.energy.saturating_add(other.energy),
            time: self.time.saturating_add(other.time),
        }
    }
}

/// Dimension of a quotient: exponents subtract.
impl std::ops::Div for Dim {
    type Output = Dim;
    fn div(self, other: Dim) -> Dim {
        Dim {
            energy: self.energy.saturating_sub(other.energy),
            time: self.time.saturating_sub(other.time),
        }
    }
}

impl fmt::Display for Dim {
    /// Renders the conventional name where one exists (`J`, `J/s`, `s`,
    /// `1/s`, `dimensionless`) and the raw exponent product otherwise.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.energy, self.time) {
            (0, 0) => write!(f, "dimensionless"),
            (1, 0) => write!(f, "J"),
            (1, -1) => write!(f, "J/s"),
            (0, 1) => write!(f, "s"),
            (0, -1) => write!(f, "1/s"),
            (0, 2) => write!(f, "s^2"),
            (1, 1) => write!(f, "J·s"),
            (e, t) => write!(f, "J^{e}·s^{t}"),
        }
    }
}

/// Unit suffixes and the dimension each one names, longest first so a
/// lookup can stop at the first match (`_ms` must win over `_s`).
const SUFFIX_DIMS: [(&str, Dim); 16] = [
    ("_ratio", Dim::NONE),
    ("_frac", Dim::NONE),
    ("_bps", Dim::RATE),
    ("_pct", Dim::NONE),
    ("_mj", Dim::ENERGY),
    ("_kj", Dim::ENERGY),
    ("_wh", Dim::ENERGY),
    ("_mw", Dim::POWER),
    ("_kw", Dim::POWER),
    ("_ms", Dim::TIME),
    ("_us", Dim::TIME),
    ("_ns", Dim::TIME),
    ("_hz", Dim::RATE),
    ("_j", Dim::ENERGY),
    ("_w", Dim::POWER),
    ("_s", Dim::TIME),
];

/// Dimension carried by a name under the D4 suffix discipline, or `None`
/// when the name says nothing about units. Case-insensitive so
/// `IDLE_FLOOR_W` consts participate like `idle_floor_w` locals.
pub fn suffix_dim(name: &str) -> Option<Dim> {
    let lower = name.to_ascii_lowercase();
    SUFFIX_DIMS
        .iter()
        .find(|(suffix, _)| lower.ends_with(suffix))
        .map(|(_, dim)| *dim)
}

/// What U1's inference knows about an expression's dimension.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DimState {
    /// Dimension established by a suffixed name or composed by the
    /// algebra; `origin` names the suffixed identifier when one exists.
    Known { dim: Dim, origin: Option<String> },
    /// A bare numeric literal: dimensionless under `*`/`/`, but a
    /// wildcard under `+`/`-`/comparison — thresholds, paddings, and
    /// scale factors written as literals are everyday idiom.
    Lit,
    /// Nothing known (unsuffixed names, unknown calls, opaque exprs).
    Any,
}

impl DimState {
    /// A known dimension with a named origin.
    pub fn known(dim: Dim, origin: impl Into<String>) -> DimState {
        DimState::Known {
            dim,
            origin: Some(origin.into()),
        }
    }

    /// A known dimension produced by composition (no single origin).
    pub fn derived(dim: Dim) -> DimState {
        DimState::Known { dim, origin: None }
    }

    /// The dimension, when established.
    pub fn dim(&self) -> Option<Dim> {
        match self {
            DimState::Known { dim, .. } => Some(*dim),
            _ => None,
        }
    }

    /// Renders `J (from `energy_j`)` / `J/s` for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            DimState::Known {
                dim,
                origin: Some(name),
            } => format!("{dim} (from `{name}`)"),
            DimState::Known { dim, origin: None } => format!("{dim}"),
            DimState::Lit => "literal".to_string(),
            DimState::Any => "unknown".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suffixes_map_to_dimensions() {
        assert_eq!(suffix_dim("energy_j"), Some(Dim::ENERGY));
        assert_eq!(suffix_dim("idle_mj"), Some(Dim::ENERGY));
        assert_eq!(suffix_dim("capacity_wh"), Some(Dim::ENERGY));
        assert_eq!(suffix_dim("power_w"), Some(Dim::POWER));
        assert_eq!(suffix_dim("floor_mw"), Some(Dim::POWER));
        assert_eq!(suffix_dim("dt_s"), Some(Dim::TIME));
        assert_eq!(suffix_dim("latency_ms"), Some(Dim::TIME));
        assert_eq!(suffix_dim("clock_hz"), Some(Dim::RATE));
        assert_eq!(suffix_dim("rate_bps"), Some(Dim::RATE));
        assert_eq!(suffix_dim("share_frac"), Some(Dim::NONE));
        assert_eq!(suffix_dim("hit_ratio"), Some(Dim::NONE));
    }

    #[test]
    fn longest_suffix_wins() {
        // `_ms` is time, not a stray `_s`; `_mw` is power, not `_w` twice.
        assert_eq!(suffix_dim("gap_ms"), Some(Dim::TIME));
        assert_eq!(suffix_dim("base_mw"), Some(Dim::POWER));
        // `_bps` must not fall through to `_s`.
        assert_eq!(suffix_dim("link_bps"), Some(Dim::RATE));
    }

    #[test]
    fn unsuffixed_names_carry_nothing() {
        assert_eq!(suffix_dim("count"), None);
        assert_eq!(suffix_dim("threads"), None);
        assert_eq!(suffix_dim("words"), None);
        assert_eq!(suffix_dim("x"), None);
    }

    #[test]
    fn const_names_match_case_insensitively() {
        assert_eq!(suffix_dim("IDLE_FLOOR_W"), Some(Dim::POWER));
        assert_eq!(suffix_dim("GOAL_HORIZON_S"), Some(Dim::TIME));
    }

    #[test]
    fn algebra_composes() {
        // power * time = energy — the canonical `power_w * dt_s` story.
        assert_eq!((Dim::POWER * Dim::TIME), Dim::ENERGY);
        // energy / time = power.
        assert_eq!((Dim::ENERGY / Dim::TIME), Dim::POWER);
        // rate is reciprocal time.
        assert_eq!(Dim::TIME.recip(), Dim::RATE);
        // dimensionless is the identity.
        assert_eq!((Dim::ENERGY * Dim::NONE), Dim::ENERGY);
    }

    #[test]
    fn display_names_the_common_dimensions() {
        assert_eq!(Dim::ENERGY.to_string(), "J");
        assert_eq!(Dim::POWER.to_string(), "J/s");
        assert_eq!(Dim::TIME.to_string(), "s");
        assert_eq!(Dim::RATE.to_string(), "1/s");
        assert_eq!(Dim::NONE.to_string(), "dimensionless");
        assert_eq!((Dim::ENERGY * Dim::TIME).to_string(), "J·s");
        assert_eq!(
            Dim {
                energy: 2,
                time: -3
            }
            .to_string(),
            "J^2·s^-3"
        );
    }

    #[test]
    fn describe_carries_origin() {
        let k = DimState::known(Dim::ENERGY, "energy_j");
        assert_eq!(k.describe(), "J (from `energy_j`)");
        assert_eq!(DimState::derived(Dim::POWER).describe(), "J/s");
        assert_eq!(DimState::Any.describe(), "unknown");
    }
}
