//! Rule U1 — dimensional consistency over unit-suffixed arithmetic.
//!
//! The D4 naming discipline makes dimensions recoverable from names:
//! `energy_j` is J, `power_w` is J/s, `dt_s` is s (see `dims`). U1 walks
//! the parsed AST and checks that the arithmetic between such names is
//! dimensionally coherent:
//!
//! - `+`, `-`, `%`, and comparisons require both sides to share a
//!   dimension when both are inferable;
//! - `*` and `/` compose dimensions by adding/subtracting exponents, so
//!   `power_w * dt_s` unifies with `_j` without complaint;
//! - `let name_suffix = expr`, `=`, `+=`, `-=` unify binding and value;
//!   `*=` and `/=` demand a dimensionless scale factor;
//! - struct-literal fields check the field's suffix against the value;
//! - call arguments check against parameter-name suffixes whenever the
//!   callee's bare name resolves to exactly **one** workspace function;
//! - `return` and tail expressions check against the function's own
//!   name suffix (`fn total_j` must produce J).
//!
//! Inference is name-driven and deliberately incomplete: bare numeric
//! literals are wildcards under `+`/`-`/comparison (thresholds and
//! paddings are everyday idiom) but dimensionless under `*`/`/`;
//! unsuffixed names are unknown and never flagged. The bias is strongly
//! toward zero false positives — a missed inference costs a diagnostic,
//! a wrong one costs a waiver in innocent code.
//!
//! The same walk records every call edge (callee bare name + line) per
//! function, which is exactly the input the P1 purity pass needs — one
//! traversal serves both rules.

use crate::dims::{suffix_dim, Dim, DimState};
use crate::parse::{Expr, FileAst, FnAst, Stmt};
use std::collections::BTreeMap;

/// One function signature as seen by U1/P1.
#[derive(Clone, Debug)]
pub struct FnSig {
    /// Qualified display name (`Session::ingest`).
    pub qual: String,
    /// Workspace-relative path of the defining file.
    pub file: String,
    /// 1-based definition line.
    pub line: usize,
    /// Index into the defining file's `FileAst::fns`.
    pub idx: usize,
    /// Parameter names (receiver excluded; `None` for patterns).
    pub param_names: Vec<Option<String>>,
    /// Per-parameter dimension from the name suffix.
    pub params: Vec<Option<Dim>>,
    /// Return dimension from the function's own name suffix.
    pub ret: Option<Dim>,
}

/// Workspace-wide function index keyed by bare name.
#[derive(Clone, Debug, Default)]
pub struct SymbolTable {
    /// All non-test function definitions sharing each bare name.
    pub fns: BTreeMap<String, Vec<FnSig>>,
}

impl SymbolTable {
    /// Builds the table from parsed files (`(relative path, ast)`),
    /// skipping `#[cfg(test)]` definitions.
    pub fn build(files: &[(String, FileAst)]) -> SymbolTable {
        let mut fns: BTreeMap<String, Vec<FnSig>> = BTreeMap::new();
        for (rel, ast) in files {
            for (idx, f) in ast.fns.iter().enumerate() {
                if f.in_test {
                    continue;
                }
                fns.entry(f.name.clone()).or_default().push(FnSig {
                    qual: f.qual.clone(),
                    file: rel.clone(),
                    line: f.line,
                    idx,
                    param_names: f.params.iter().map(|p| p.name.clone()).collect(),
                    params: f
                        .params
                        .iter()
                        .map(|p| p.name.as_deref().and_then(suffix_dim))
                        .collect(),
                    ret: suffix_dim_of_fn(&f.name),
                });
            }
        }
        SymbolTable { fns }
    }

    /// The signature when the bare name has exactly one definition —
    /// the only case U1 trusts for call-site checks.
    pub fn unique(&self, name: &str) -> Option<&FnSig> {
        match self.fns.get(name).map(|v| v.as_slice()) {
            Some([one]) => Some(one),
            _ => None,
        }
    }
}

/// Return dimension implied by a function's name suffix.
fn suffix_dim_of_fn(name: &str) -> Option<Dim> {
    suffix_dim(name)
}

/// The result of checking one file: U1 findings plus the call edges
/// (per function, in `FileAst::fns` order) that P1 consumes.
#[derive(Clone, Debug, Default)]
pub struct UnitOutcome {
    /// `(line, message)` pairs for rule U1.
    pub findings: Vec<(usize, String)>,
    /// For each function (by index), its `(callee bare name, line)` edges.
    pub fn_calls: Vec<Vec<(String, usize)>>,
}

/// Methods that preserve their receiver's dimension.
const PRESERVE_METHODS: [&str; 8] = [
    "abs", "floor", "ceil", "round", "trunc", "clone", "copysign", "to_owned",
];

/// Methods that require receiver and arguments to share a dimension and
/// return it (`a_j.min(b_j)`).
const UNIFY_METHODS: [&str; 5] = ["min", "max", "clamp", "rem_euclid", "hypot"];

/// Math methods whose result dimension is not representable in the
/// algebra (`sqrt` would need s^½) — their result is unknown.
const OPAQUE_METHODS: [&str; 15] = [
    "powi", "powf", "sqrt", "exp", "exp2", "ln", "log", "log2", "log10", "sin", "cos", "tan",
    "atan", "atan2", "tanh",
];

/// Checks one parsed file. `test_lines[line-1]` marks `#[cfg(test)]`
/// regions; statements there (and `in_test` functions) are skipped.
pub fn check_file(ast: &FileAst, table: &SymbolTable, test_lines: &[bool]) -> UnitOutcome {
    let mut out = UnitOutcome::default();
    let in_test = |line: usize| {
        test_lines
            .get(line.saturating_sub(1))
            .copied()
            .unwrap_or(false)
    };
    for stmt in &ast.consts {
        let line = match stmt {
            Stmt::Let { line, .. } | Stmt::Return { line, .. } => *line,
            Stmt::Expr { .. } => 0,
        };
        if line > 0 && in_test(line) {
            continue;
        }
        let mut w = Walker {
            table,
            ret: None,
            findings: &mut out.findings,
            calls: &mut Vec::new(),
        };
        w.check_stmt(stmt, false);
    }
    for f in &ast.fns {
        let mut calls = Vec::new();
        if !f.in_test {
            let mut w = Walker {
                table,
                ret: suffix_dim_of_fn(&f.name),
                findings: &mut out.findings,
                calls: &mut calls,
            };
            w.check_fn(f);
        }
        out.fn_calls.push(calls);
    }
    out.findings.sort();
    out
}

struct Walker<'a> {
    table: &'a SymbolTable,
    /// Return dimension of the enclosing function, when its name says.
    ret: Option<Dim>,
    findings: &'a mut Vec<(usize, String)>,
    calls: &'a mut Vec<(String, usize)>,
}

impl<'a> Walker<'a> {
    fn check_fn(&mut self, f: &FnAst) {
        let n = f.body.len();
        for (i, stmt) in f.body.iter().enumerate() {
            let is_tail = i + 1 == n;
            self.check_stmt(stmt, is_tail);
        }
    }

    /// Checks one statement; `is_tail` marks the function's final
    /// statement, whose value (when semicolon-less) is the return value.
    fn check_stmt(&mut self, stmt: &Stmt, is_tail: bool) {
        match stmt {
            Stmt::Let { name, line, init } => {
                let Some(init) = init else { return };
                let value = self.infer(init);
                if let Some(bind_dim) = name.as_deref().and_then(suffix_dim) {
                    if let Some(vd) = value.dim() {
                        if vd != bind_dim {
                            self.findings.push((
                                *line,
                                format!(
                                    "dimension mismatch: `let {}` expects {} but is bound to {}",
                                    name.as_deref().unwrap_or(""),
                                    bind_dim,
                                    value.describe()
                                ),
                            ));
                        }
                    }
                }
            }
            Stmt::Return { expr, line } => {
                let Some(expr) = expr else { return };
                let value = self.infer(expr);
                self.check_return(&value, *line);
            }
            Stmt::Expr { expr, has_semi } => {
                let value = self.infer(expr);
                if is_tail && !*has_semi {
                    let line = expr_line(expr);
                    self.check_return(&value, line);
                }
            }
        }
    }

    fn check_return(&mut self, value: &DimState, line: usize) {
        let (Some(want), Some(got)) = (self.ret, value.dim()) else {
            return;
        };
        if want != got && line > 0 {
            self.findings.push((
                line,
                format!(
                    "dimension mismatch: function name promises {want} but returns {}",
                    value.describe()
                ),
            ));
        }
    }

    /// Infers an expression's dimension, recording findings and call
    /// edges along the way.
    fn infer(&mut self, expr: &Expr) -> DimState {
        match expr {
            Expr::Lit => DimState::Lit,
            Expr::StrLit | Expr::Opaque => DimState::Any,
            Expr::Path { segs, line: _ } => {
                let last = segs.last().map(String::as_str).unwrap_or("");
                if last == "self" {
                    return DimState::Any;
                }
                match suffix_dim(last) {
                    Some(d) => DimState::known(d, last),
                    None => DimState::Any,
                }
            }
            Expr::Field { base, name, .. } => {
                self.infer(base);
                match suffix_dim(name) {
                    Some(d) => DimState::known(d, name.as_str()),
                    None => DimState::Any,
                }
            }
            Expr::Cast { inner } => self.infer(inner),
            Expr::Unary { op, inner } => {
                let d = self.infer(inner);
                match *op {
                    "-" | "*" | "&" => d,
                    _ => DimState::Any,
                }
            }
            Expr::Index { base, index } => {
                self.infer(index);
                // `bucket_j[i]` is still joules: element dimension
                // follows the container's name.
                self.infer(base)
            }
            Expr::Binary { op, lhs, rhs, line } => self.infer_binary(op, lhs, rhs, *line),
            Expr::Assign { op, lhs, rhs, line } => {
                let target = self.infer(lhs);
                let value = self.infer(rhs);
                match *op {
                    "=" | "+=" | "-=" | "%=" => {
                        if let (Some(td), Some(vd)) = (target.dim(), value.dim()) {
                            if td != vd {
                                self.findings.push((
                                    *line,
                                    format!(
                                        "dimension mismatch: `{op}` assigns {} to {}",
                                        value.describe(),
                                        target.describe()
                                    ),
                                ));
                            }
                        }
                    }
                    "*=" | "/=" => {
                        if let (Some(_), Some(vd)) = (target.dim(), value.dim()) {
                            if !vd.is_none() {
                                self.findings.push((
                                    *line,
                                    format!(
                                        "dimension mismatch: `{op}` scales {} by {}; scale \
                                         factors must be dimensionless",
                                        target.describe(),
                                        value.describe()
                                    ),
                                ));
                            }
                        }
                    }
                    _ => {}
                }
                DimState::Any
            }
            Expr::MethodCall {
                base,
                name,
                args,
                line,
            } => self.infer_method(base, name, args, *line),
            Expr::Call { segs, args, line } => self.infer_call(segs, args, *line),
            Expr::CallExpr { base, args } => {
                self.infer(base);
                for a in args {
                    self.infer(a);
                }
                DimState::Any
            }
            Expr::StructLit {
                name,
                fields,
                base,
                line: _,
            } => {
                for (fname, value, f_line) in fields {
                    let v = self.infer(value);
                    if let (Some(fd), Some(vd)) = (suffix_dim(fname), v.dim()) {
                        if fd != vd {
                            self.findings.push((
                                *f_line,
                                format!(
                                    "dimension mismatch: field `{fname}` of `{name}` expects \
                                     {fd} but is initialized with {}",
                                    v.describe()
                                ),
                            ));
                        }
                    }
                }
                if let Some(b) = base {
                    self.infer(b);
                }
                DimState::Any
            }
            Expr::Array(items) | Expr::Tuple(items) => {
                for item in items {
                    self.infer(item);
                }
                DimState::Any
            }
            Expr::Closure { body } => {
                self.infer(body);
                DimState::Any
            }
            Expr::Scope(stmts) => {
                for stmt in stmts {
                    self.check_stmt(stmt, false);
                }
                DimState::Any
            }
            Expr::Range { lo, hi } => {
                if let Some(lo) = lo {
                    self.infer(lo);
                }
                if let Some(hi) = hi {
                    self.infer(hi);
                }
                DimState::Any
            }
        }
    }

    fn infer_binary(&mut self, op: &str, lhs: &Expr, rhs: &Expr, line: usize) -> DimState {
        let a = self.infer(lhs);
        let b = self.infer(rhs);
        match op {
            "+" | "-" | "%" => {
                if let (Some(da), Some(db)) = (a.dim(), b.dim()) {
                    if da != db {
                        self.findings.push((
                            line,
                            format!(
                                "dimension mismatch: `{op}` combines {} with {}",
                                a.describe(),
                                b.describe()
                            ),
                        ));
                        return DimState::Any;
                    }
                }
                // The known side carries the result (`e_j + 1.0` is J).
                match (&a, &b) {
                    (DimState::Known { .. }, _) => a,
                    (_, DimState::Known { .. }) => b,
                    (DimState::Lit, DimState::Lit) => DimState::Lit,
                    _ => DimState::Any,
                }
            }
            "==" | "!=" | "<" | ">" | "<=" | ">=" => {
                if let (Some(da), Some(db)) = (a.dim(), b.dim()) {
                    if da != db {
                        self.findings.push((
                            line,
                            format!(
                                "dimension mismatch: `{op}` compares {} with {}",
                                a.describe(),
                                b.describe()
                            ),
                        ));
                    }
                }
                DimState::Any
            }
            // Literal-only arithmetic stays a literal: `32_000.0 * 8.0`
            // carries no more dimension evidence than `256_000.0` does.
            "*" if a == DimState::Lit && b == DimState::Lit => DimState::Lit,
            "/" if a == DimState::Lit && b == DimState::Lit => DimState::Lit,
            "*" => match (dim_as_factor(&a), dim_as_factor(&b)) {
                (Some(da), Some(db)) => DimState::derived(da * db),
                _ => DimState::Any,
            },
            "/" => match (dim_as_factor(&a), dim_as_factor(&b)) {
                (Some(da), Some(db)) => DimState::derived(da / db),
                _ => DimState::Any,
            },
            _ => DimState::Any,
        }
    }

    fn infer_method(&mut self, base: &Expr, name: &str, args: &[Expr], line: usize) -> DimState {
        self.calls.push((name.to_string(), line));
        let recv = self.infer(base);
        let arg_states: Vec<DimState> = args.iter().map(|a| self.infer(a)).collect();
        if UNIFY_METHODS.contains(&name) {
            // Receiver and arguments must agree; the result keeps the
            // shared dimension.
            let mut result = recv.clone();
            for s in &arg_states {
                if let (Some(a), Some(b)) = (recv.dim(), s.dim()) {
                    if a != b {
                        self.findings.push((
                            line,
                            format!(
                                "dimension mismatch: `.{name}()` combines {} with {}",
                                recv.describe(),
                                s.describe()
                            ),
                        ));
                        return DimState::Any;
                    }
                }
                if result.dim().is_none() {
                    if let DimState::Known { .. } = s {
                        result = s.clone();
                    }
                }
            }
            return result;
        }
        if PRESERVE_METHODS.contains(&name) {
            return recv;
        }
        if name == "recip" {
            return match recv.dim() {
                Some(d) => DimState::derived(d.recip()),
                None => DimState::Any,
            };
        }
        if name == "mul_add" && arg_states.len() == 2 {
            // `a.mul_add(b, c)` is `a * b + c`.
            let prod = match (dim_as_factor(&recv), dim_as_factor(&arg_states[0])) {
                (Some(a), Some(b)) => DimState::derived(a * b),
                _ => DimState::Any,
            };
            if let (Some(p), Some(c)) = (prod.dim(), arg_states[1].dim()) {
                if p != c {
                    self.findings.push((
                        line,
                        format!(
                            "dimension mismatch: `.mul_add()` adds {} to a {} product",
                            arg_states[1].describe(),
                            prod.describe()
                        ),
                    ));
                    return DimState::Any;
                }
            }
            return prod;
        }
        if OPAQUE_METHODS.contains(&name) {
            return DimState::Any;
        }
        // A suffixed accessor names its own dimension (`.elapsed_s()`).
        if let Some(d) = suffix_dim(name) {
            self.check_args_against_sig(name, &arg_states, line);
            return DimState::known(d, format!("{name}()"));
        }
        self.check_args_against_sig(name, &arg_states, line);
        match self.table.unique(name).and_then(|sig| sig.ret) {
            Some(d) => DimState::derived(d),
            None => DimState::Any,
        }
    }

    fn infer_call(&mut self, segs: &[String], args: &[Expr], line: usize) -> DimState {
        let name = segs.last().map(String::as_str).unwrap_or("");
        self.calls.push((name.to_string(), line));
        let arg_states: Vec<DimState> = args.iter().map(|a| self.infer(a)).collect();
        if UNIFY_METHODS.contains(&name) && arg_states.len() >= 2 {
            // `f64::max(a, b)` and friends.
            if let (Some(a), Some(b)) = (arg_states[0].dim(), arg_states[1].dim()) {
                if a != b {
                    self.findings.push((
                        line,
                        format!(
                            "dimension mismatch: `{name}()` combines {} with {}",
                            arg_states[0].describe(),
                            arg_states[1].describe()
                        ),
                    ));
                    return DimState::Any;
                }
            }
            return arg_states[0].clone();
        }
        self.check_args_against_sig(name, &arg_states, line);
        if let Some(d) = suffix_dim(name) {
            return DimState::known(d, format!("{name}()"));
        }
        match self.table.unique(name).and_then(|sig| sig.ret) {
            Some(d) => DimState::derived(d),
            None => DimState::Any,
        }
    }

    /// Call-site vs signature: only when the bare name resolves to
    /// exactly one workspace function with a matching arity.
    fn check_args_against_sig(&mut self, name: &str, args: &[DimState], line: usize) {
        let Some(sig) = self.table.unique(name) else {
            return;
        };
        if sig.params.len() != args.len() {
            return;
        }
        let param_names = sig.param_names.clone();
        let params = sig.params.clone();
        for (i, (pdim, astate)) in params.iter().zip(args).enumerate() {
            let (Some(pd), Some(ad)) = (pdim, astate.dim()) else {
                continue;
            };
            if *pd != ad {
                let pname = param_names[i].as_deref().unwrap_or("_");
                self.findings.push((
                    line,
                    format!(
                        "dimension mismatch: argument {} of `{name}` is `{pname}` ({pd}) but \
                         the call passes {}",
                        i + 1,
                        astate.describe()
                    ),
                ));
            }
        }
    }
}

/// A multiplication/division factor: literals are dimensionless, known
/// dimensions are themselves, everything else blocks composition.
fn dim_as_factor(s: &DimState) -> Option<Dim> {
    match s {
        DimState::Known { dim, .. } => Some(*dim),
        DimState::Lit => Some(Dim::NONE),
        DimState::Any => None,
    }
}

/// First line carried anywhere inside an expression (0 when none).
fn expr_line(e: &Expr) -> usize {
    match e {
        Expr::Path { line, .. }
        | Expr::Field { line, .. }
        | Expr::MethodCall { line, .. }
        | Expr::Call { line, .. }
        | Expr::Binary { line, .. }
        | Expr::Assign { line, .. }
        | Expr::StructLit { line, .. } => *line,
        Expr::Unary { inner, .. } | Expr::Cast { inner } => expr_line(inner),
        Expr::Index { base, .. } | Expr::CallExpr { base, .. } => expr_line(base),
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse_file;

    /// Parses `src`, builds a one-file symbol table, and runs U1.
    fn check(src: &str) -> Vec<(usize, String)> {
        check_multi(&[("lib.rs", src)])
    }

    /// Same, across several files sharing one symbol table.
    fn check_multi(files: &[(&str, &str)]) -> Vec<(usize, String)> {
        let parsed: Vec<(String, FileAst)> = files
            .iter()
            .map(|(rel, src)| {
                let stripped = crate::strip(src);
                (rel.to_string(), parse_file(&lex(&stripped.code)))
            })
            .collect();
        let table = SymbolTable::build(&parsed);
        let mut findings = Vec::new();
        for (_, ast) in &parsed {
            let lines = vec![false; 10_000];
            findings.extend(check_file(ast, &table, &lines).findings);
        }
        findings
    }

    fn assert_clean(src: &str) {
        let f = check(src);
        assert!(f.is_empty(), "expected clean, got {f:?}");
    }

    fn assert_hit(src: &str, needle: &str) -> Vec<(usize, String)> {
        let f = check(src);
        assert!(
            f.iter().any(|(_, m)| m.contains(needle)),
            "expected a finding containing {needle:?}, got {f:?}"
        );
        f
    }

    // -- the canonical catches -------------------------------------------

    #[test]
    fn energy_plus_power_is_the_canonical_finding() {
        let f = assert_hit(
            "fn f(energy_j: f64, power_w: f64) -> f64 { energy_j + power_w }\n",
            "`+` combines J (from `energy_j`) with J/s (from `power_w`)",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].0, 1);
    }

    #[test]
    fn power_times_dt_unifies_with_energy() {
        assert_clean("fn f(power_w: f64, dt_s: f64) -> f64 { let e_j = power_w * dt_s; e_j }\n");
    }

    #[test]
    fn missing_dt_factor_is_caught_at_the_let() {
        assert_hit(
            "fn f(power_w: f64) { let total_j = power_w; }\n",
            "`let total_j` expects J but is bound to J/s (from `power_w`)",
        );
    }

    #[test]
    fn energy_over_time_is_power() {
        assert_clean("fn f(e_j: f64, dt_s: f64) { let p_w = e_j / dt_s; }\n");
        assert_hit(
            "fn f(e_j: f64, dt_s: f64) { let p_w = e_j * dt_s; }\n",
            "`let p_w` expects J/s but is bound to J·s",
        );
    }

    // -- operators --------------------------------------------------------

    #[test]
    fn subtraction_and_modulo_require_equal_dims() {
        assert_hit(
            "fn f(a_j: f64, b_s: f64) { let d = a_j - b_s; }\n",
            "`-` combines J (from `a_j`) with s (from `b_s`)",
        );
        assert_hit(
            "fn f(t_s: f64, rate_hz: f64) { let r = t_s % rate_hz; }\n",
            "`%` combines s (from `t_s`) with 1/s (from `rate_hz`)",
        );
        assert_clean("fn f(t_s: f64, period_s: f64) { let r = t_s % period_s; }\n");
    }

    #[test]
    fn comparisons_require_equal_dims() {
        assert_hit(
            "fn f(e_j: f64, p_w: f64) -> bool { e_j < p_w }\n",
            "`<` compares J (from `e_j`) with J/s (from `p_w`)",
        );
        assert_clean("fn f(e_j: f64, cap_j: f64) -> bool { e_j <= cap_j }\n");
    }

    #[test]
    fn literals_are_wildcards_in_linear_positions() {
        // Thresholds, paddings, clamps: never flagged.
        assert_clean("fn f(e_j: f64, dt_s: f64) -> bool { e_j > 0.0 && dt_s + 0.5 < 9.0 }\n");
    }

    #[test]
    fn literals_are_dimensionless_factors() {
        // `* 0.5` keeps the dimension, so the sum stays coherent.
        assert_clean("fn f(e_j: f64, r_j: f64) { let h_j = e_j * 0.5 + r_j * 0.5; }\n");
        // …which also means a literal cannot bridge J and s.
        assert_hit(
            "fn f(e_j: f64, t_s: f64) { let x_j = t_s * 2.0; }\n",
            "`let x_j` expects J but is bound to s",
        );
    }

    #[test]
    fn chained_composition_carries_through() {
        // (J/s * s) + J compares equal; ((J/s * s) - J) / s is J/s.
        assert_clean(
            "fn f(p_w: f64, dt_s: f64, e_j: f64) { let r_w = (p_w * dt_s - e_j) / dt_s; }\n",
        );
    }

    #[test]
    fn rate_is_reciprocal_time() {
        assert_clean("fn f(n: f64, dt_s: f64) { let r_hz = n / dt_s; }\n");
        assert_clean("fn f(clock_hz: f64) { let period_s = 1.0 / clock_hz; }\n");
    }

    #[test]
    fn ratios_are_dimensionless() {
        assert_clean("fn f(e_j: f64, cap_j: f64) { let soc_frac = e_j / cap_j; }\n");
        assert_hit(
            "fn f(e_j: f64, dt_s: f64) { let soc_frac = e_j / dt_s; }\n",
            "`let soc_frac` expects dimensionless but is bound to J/s",
        );
    }

    // -- assignments ------------------------------------------------------

    #[test]
    fn assignment_unifies_target_and_value() {
        assert_hit(
            "fn f(p_w: f64) { let mut e_j = 0.0; e_j = p_w; }\n",
            "`=` assigns J/s (from `p_w`) to J (from `e_j`)",
        );
        assert_clean("fn f(p_w: f64, dt_s: f64) { let mut e_j = 0.0; e_j = p_w * dt_s; }\n");
    }

    #[test]
    fn compound_add_assign_unifies() {
        assert_hit(
            "fn f(p_w: f64) { let mut e_j = 0.0; e_j += p_w; }\n",
            "`+=` assigns J/s (from `p_w`) to J (from `e_j`)",
        );
        assert_clean("fn f(p_w: f64, dt_s: f64) { let mut e_j = 0.0; e_j += p_w * dt_s; }\n");
    }

    #[test]
    fn scale_assign_requires_dimensionless_factor() {
        assert_hit(
            "fn f(dt_s: f64) { let mut e_j = 1.0; e_j *= dt_s; }\n",
            "scale factors must be dimensionless",
        );
        assert_clean(
            "fn f(decay_frac: f64) { let mut e_j = 1.0; e_j *= decay_frac; e_j *= 0.5; }\n",
        );
    }

    #[test]
    fn field_assignments_are_checked() {
        assert_hit(
            "fn f(s: &mut State, p_w: f64) { s.used_j += p_w; }\n",
            "`+=` assigns J/s (from `p_w`) to J (from `used_j`)",
        );
        assert_clean("fn f(s: &mut State, p_w: f64, dt: f64) { s.floor_w = p_w; }\n");
    }

    #[test]
    fn indexed_stores_follow_the_container_suffix() {
        assert_hit(
            "fn f(bucket_j: &mut [f64], p_w: f64, i: usize) { bucket_j[i] += p_w; }\n",
            "`+=` assigns J/s (from `p_w`) to J (from `bucket_j`)",
        );
        assert_clean(
            "fn f(bucket_j: &mut [f64], p_w: f64, dt_s: f64, i: usize) { bucket_j[i] += p_w * dt_s; }\n",
        );
    }

    // -- struct literals --------------------------------------------------

    #[test]
    fn struct_fields_check_their_suffix() {
        assert_hit(
            "fn f(p_w: f64) -> Sample { Sample { energy_j: p_w, seq: 0 } }\n",
            "field `energy_j` of `Sample` expects J but is initialized with J/s (from `p_w`)",
        );
        assert_clean(
            "fn f(p_w: f64, dt_s: f64) -> Sample { Sample { energy_j: p_w * dt_s, seq: 0 } }\n",
        );
    }

    #[test]
    fn shorthand_struct_fields_check_too() {
        assert_clean("fn f(energy_j: f64) -> Sample { Sample { energy_j } }\n");
        // Shorthand with a mismatched suffix cannot happen (same name),
        // but a functional-update base must still be walked.
        assert_clean(
            "fn f(base: Sample, e_j: f64) -> Sample { Sample { energy_j: e_j, ..base } }\n",
        );
    }

    // -- functions: returns, params, call sites ---------------------------

    #[test]
    fn tail_expression_checks_the_fn_name_suffix() {
        assert_hit(
            "fn total_j(p_w: f64) -> f64 { p_w }\n",
            "function name promises J but returns J/s (from `p_w`)",
        );
        assert_clean("fn total_j(p_w: f64, dt_s: f64) -> f64 { p_w * dt_s }\n");
    }

    #[test]
    fn return_statements_check_the_fn_name_suffix() {
        assert_hit(
            "fn idle_w(e_j: f64) -> f64 { if e_j > 0.0 { return e_j; } 0.0 }\n",
            "function name promises J/s but returns J (from `e_j`)",
        );
    }

    #[test]
    fn call_arguments_check_against_unique_signatures() {
        assert_hit(
            "fn drain(e_j: f64, dt_s: f64) {}\nfn g(p_w: f64) { drain(p_w, 0.1); }\n",
            "argument 1 of `drain` is `e_j` (J) but the call passes J/s (from `p_w`)",
        );
        // A composed argument with the right dimension is fine, and the
        // literal second argument is a wildcard.
        assert_clean(
            "fn drain(e_j: f64, dt_s: f64) {}\nfn g(p_w: f64, dt_s: f64) { drain(p_w * dt_s, 0.1); }\n",
        );
    }

    #[test]
    fn literal_only_arithmetic_stays_a_wildcard() {
        // `32_000.0 * 8.0` carries no more dimension evidence than the
        // folded constant would — binding it to a suffixed const is fine
        // (the real-workspace `SPEECH_WAVEFORM_BPS` idiom).
        assert_clean("const WAVEFORM_BPS: f64 = 32_000.0 * 8.0;\n");
        assert_clean("fn f() { let cap_j = 3600.0 * 2.5 / 10.0; let _ = cap_j; }\n");
        // One suffixed operand is evidence again.
        assert_hit(
            "fn f(p_w: f64) { let e_j = p_w * 2.0; let _ = e_j; }\n",
            "`let e_j` expects J but is bound to J/s",
        );
    }

    #[test]
    fn method_call_arguments_check_against_unique_signatures() {
        assert_hit(
            "impl M { fn charge(&mut self, add_j: f64) {} }\nfn g(m: &mut M, p_w: f64) { m.charge(p_w); }\n",
            "argument 1 of `charge` is `add_j` (J) but the call passes J/s (from `p_w`)",
        );
    }

    #[test]
    fn ambiguous_names_are_never_checked_at_call_sites() {
        // Two `reset` definitions with conflicting parameter suffixes:
        // call sites must stay silent.
        let f = check_multi(&[
            ("a.rs", "impl A { fn reset(&mut self, v_j: f64) {} }\n"),
            ("b.rs", "impl B { fn reset(&mut self, v_s: f64) {} }\n"),
            ("c.rs", "fn g(a: &mut A, p_w: f64) { a.reset(p_w); }\n"),
        ]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unique_fn_return_dims_flow_to_call_sites() {
        assert_hit(
            "fn window_s(n: usize) -> f64 { n as f64 * 0.5 }\nfn g() { let e_j = window_s(4); }\n",
            "`let e_j` expects J but is bound to s",
        );
    }

    #[test]
    fn cross_file_calls_share_the_symbol_table() {
        let f = check_multi(&[
            (
                "power.rs",
                "pub fn smoothed_w(raw_w: f64) -> f64 { raw_w * 0.9 }\n",
            ),
            (
                "ledger.rs",
                "fn g(p_w: f64) { let e_j = smoothed_w(p_w); }\n",
            ),
        ]);
        assert!(
            f.iter()
                .any(|(_, m)| m.contains("`let e_j` expects J but is bound to J/s")),
            "{f:?}"
        );
    }

    // -- method semantics -------------------------------------------------

    #[test]
    fn min_max_clamp_unify_and_preserve() {
        assert_clean("fn f(e_j: f64, cap_j: f64) { let r_j = e_j.min(cap_j).max(0.0); }\n");
        assert_hit(
            "fn f(e_j: f64, dt_s: f64) { let r = e_j.min(dt_s); }\n",
            "`.min()` combines J (from `e_j`) with s (from `dt_s`)",
        );
        assert_hit(
            "fn f(e_j: f64, lo_j: f64, hi_s: f64) { let r = e_j.clamp(lo_j, hi_s); }\n",
            "`.clamp()` combines",
        );
    }

    #[test]
    fn abs_floor_preserve_while_sqrt_is_opaque() {
        assert_clean("fn f(e_j: f64) { let a_j = e_j.abs().floor(); }\n");
        // sqrt's dimension is unrepresentable: downstream stays silent.
        assert_clean("fn f(e_j: f64) { let x_s = e_j.sqrt(); }\n");
    }

    #[test]
    fn recip_and_mul_add_compose() {
        assert_clean("fn f(dt_s: f64) { let r_hz = dt_s.recip(); }\n");
        assert_clean("fn f(p_w: f64, dt_s: f64, e_j: f64) { let t_j = p_w.mul_add(dt_s, e_j); }\n");
        assert_hit(
            "fn f(p_w: f64, dt_s: f64, x_s: f64) { let t = p_w.mul_add(dt_s, x_s); }\n",
            "`.mul_add()` adds s (from `x_s`) to a J product",
        );
    }

    #[test]
    fn suffixed_accessor_methods_carry_their_dimension() {
        assert_hit(
            "fn f(m: &Meter) { let e_j = m.elapsed_s(); }\n",
            "`let e_j` expects J but is bound to s (from `elapsed_s()`)",
        );
        assert_clean("fn f(m: &Meter) { let t_s = m.elapsed_s(); }\n");
    }

    // -- insulation: places U1 must stay silent ---------------------------

    #[test]
    fn unsuffixed_names_never_participate() {
        assert_clean(
            "fn f(count: usize, total: f64, e_j: f64) { let x = total + e_j; let y = count as f64 * e_j; }\n",
        );
    }

    #[test]
    fn test_fns_and_test_regions_are_skipped() {
        let src = "fn deliberate(e_j: f64, p_w: f64) -> f64 { e_j + p_w }\n";
        let stripped = crate::strip(src);
        let mut ast = parse_file(&lex(&stripped.code));
        ast.fns[0].in_test = true;
        let table = SymbolTable::build(&[("t.rs".to_string(), ast.clone())]);
        let out = check_file(&ast, &table, &[false; 10]);
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn const_initializers_are_checked() {
        assert_hit(
            "const FLOOR_W: f64 = 2.5;\nfn f() { let x_j = FLOOR_W; }\n",
            "`let x_j` expects J but is bound to J/s (from `FLOOR_W`)",
        );
    }

    #[test]
    fn closures_are_walked() {
        assert_hit(
            "fn f(xs: &[f64]) { let t = xs.iter().map(|p_w| { let e_j = p_w + 0.0; e_j }); }\n",
            "`let e_j` expects J but is bound to J/s (from `p_w`)",
        );
    }

    #[test]
    fn control_flow_bodies_are_walked() {
        assert_hit(
            "fn f(e_j: f64, p_w: f64, go: bool) { if go { let x_j = p_w; } }\n",
            "`let x_j` expects J but is bound to J/s",
        );
        assert_hit(
            "fn f(v: Option<f64>, p_w: f64) { match v { Some(x) => { let y_j = p_w; } None => {} } }\n",
            "`let y_j` expects J but is bound to J/s",
        );
    }

    #[test]
    fn call_edges_are_recorded_for_p1() {
        let stripped = crate::strip("fn f() { helper(); obj.step(1.0); }\nfn helper() {}\n");
        let ast = parse_file(&lex(&stripped.code));
        let table = SymbolTable::build(&[("x.rs".to_string(), ast.clone())]);
        let out = check_file(&ast, &table, &[false; 10]);
        let names: Vec<&str> = out.fn_calls[0].iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["helper", "step"]);
        assert!(out.fn_calls[1].is_empty());
    }

    #[test]
    fn casts_preserve_dimension() {
        assert_hit(
            "fn f(p_w: f64) { let e_j = p_w as f64; }\n",
            "`let e_j` expects J but is bound to J/s (from `p_w`)",
        );
        assert_clean("fn f(n_ms: u64) { let t_ms = n_ms as f64; }\n");
    }

    #[test]
    fn findings_are_sorted_by_line() {
        let f = check("fn f(p_w: f64) { let z_j = p_w; }\nfn g(e_j: f64) { let q_s = e_j; }\n");
        assert_eq!(f.len(), 2);
        assert!(f[0].0 <= f[1].0);
    }

    /// Fixture mirroring the energymap roll-up's dimensional shape: a
    /// sample's energy quantum is power x dt, exclusive and inclusive
    /// energies accumulate in J, and the gate's drift check compares J
    /// against J. Dropping the dt factor or mixing an inclusive energy
    /// with an inclusive time must be flagged.
    #[test]
    fn energymap_roll_up_signatures_are_dimensionally_sound() {
        assert_clean(
            "fn roll_up(power_w: f64, dt_s: f64, self_energy_j: f64, inclusive_energy_j: f64) {\n\
             \x20   let quantum_j = power_w * dt_s;\n\
             \x20   let new_self_j = self_energy_j + quantum_j;\n\
             \x20   let new_inclusive_j = inclusive_energy_j + quantum_j;\n\
             \x20   let drifted = new_self_j > new_inclusive_j;\n\
             }\n",
        );
        assert_hit(
            "fn roll_up(power_w: f64, self_energy_j: f64) {\n\
             \x20   let new_self_j = self_energy_j + power_w;\n\
             }\n",
            "`+` combines J (from `self_energy_j`) with J/s (from `power_w`)",
        );
        assert_hit(
            "fn drift(inclusive_energy_j: f64, inclusive_time_s: f64) {\n\
             \x20   let over = inclusive_energy_j > inclusive_time_s;\n\
             }\n",
            "compares J (from `inclusive_energy_j`) with s (from `inclusive_time_s`)",
        );
    }
}
