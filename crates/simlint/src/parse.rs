//! A tolerant Pratt parser producing the lightweight AST behind U1/P1.
//!
//! This is not a Rust front-end: it parses *already-compiling* source
//! (everything it sees has passed rustc), so it never needs to reject
//! anything — when a construct is outside its grammar (macro bodies,
//! exotic patterns) it degrades to [`Expr::Opaque`] and moves on. What
//! it does recover, precisely, is the shape U1 and P1 need:
//!
//! - every function item with its name, `impl`-qualified path, parameter
//!   names, and body statements (nested functions become their own
//!   entries);
//! - expressions as a real tree — binary operators with precedence,
//!   calls, method calls, field accesses, struct literals, index
//!   expressions, casts — each carrying the source line;
//! - `let` bindings, assignments, and `return`s, so dimension checks can
//!   pair names against initializers.
//!
//! Known, deliberate blind spots (documented in DESIGN.md §16): macro
//! invocation arguments are skipped wholesale, match-arm *guards* are
//! skipped with the pattern, and struct literals are only recognized for
//! `UpperCamel` type paths. Each is a soundness-for-noise trade: the
//! line-level rules (D1–D5) still see every token on every line.

use crate::lexer::{Tok, Token};

/// Recursion guard: expressions nested deeper than this degrade to
/// [`Expr::Opaque`] instead of risking the stack.
const MAX_DEPTH: u32 = 120;

/// One parsed source file: its functions and top-level constants.
#[derive(Clone, Debug, Default)]
pub struct FileAst {
    /// Every `fn` item, including nested and `impl`/`trait` methods.
    pub fns: Vec<FnAst>,
    /// `const`/`static` initializers, represented as `let`-like
    /// statements so U1 checks them with the same code path.
    pub consts: Vec<Stmt>,
}

/// One function item.
#[derive(Clone, Debug)]
pub struct FnAst {
    /// Bare name (`ingest`).
    pub name: String,
    /// Qualified display name (`Session::ingest` inside an impl block).
    pub qual: String,
    /// 1-based line of the `fn` name.
    pub line: usize,
    /// Last line of the body (the name's line for bodiless signatures).
    pub end_line: usize,
    /// Parameters, receiver excluded.
    pub params: Vec<Param>,
    /// True when the parameter list starts with a `self` receiver.
    pub has_receiver: bool,
    /// Body statements (empty for trait-method signatures).
    pub body: Vec<Stmt>,
    /// Whether a body was present at all.
    pub has_body: bool,
    /// Set after parsing when the definition sits in a `#[cfg(test)]`
    /// region: such functions are invisible to U1 and P1.
    pub in_test: bool,
}

/// One function parameter.
#[derive(Clone, Debug)]
pub struct Param {
    /// Binding name when the pattern is a simple identifier.
    pub name: Option<String>,
    /// 1-based line the parameter starts on.
    pub line: usize,
}

/// A statement, flattened to what the checkers need.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `let name = init;` (name is `None` for destructuring patterns).
    Let {
        /// Simple binding name, when the pattern is one identifier.
        name: Option<String>,
        /// Line of the `let`.
        line: usize,
        /// Initializer, when present.
        init: Option<Expr>,
    },
    /// An expression statement.
    Expr {
        /// The expression.
        expr: Expr,
        /// Whether a `;` followed (a bare tail expression has none).
        has_semi: bool,
    },
    /// `return expr;`
    Return {
        /// The returned expression, when present.
        expr: Option<Expr>,
        /// Line of the `return`.
        line: usize,
    },
}

/// An expression node. Lines are carried where findings anchor.
#[derive(Clone, Debug)]
pub enum Expr {
    /// Numeric literal.
    Lit,
    /// String literal (contents blanked before parsing).
    StrLit,
    /// Path such as `x`, `self`, `a::b::C`.
    Path {
        /// `::`-separated segments.
        segs: Vec<String>,
        /// Source line.
        line: usize,
    },
    /// Field access `base.name` (tuple indices appear as numeric names).
    Field {
        /// Receiver.
        base: Box<Expr>,
        /// Field name.
        name: String,
        /// Source line.
        line: usize,
    },
    /// Method call `base.name(args)`.
    MethodCall {
        /// Receiver.
        base: Box<Expr>,
        /// Method name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source line.
        line: usize,
    },
    /// Plain or path call `name(args)` / `a::b::name(args)`.
    Call {
        /// Callee path segments.
        segs: Vec<String>,
        /// Arguments.
        args: Vec<Expr>,
        /// Source line.
        line: usize,
    },
    /// Call of a non-path callee, e.g. `(closure)(x)`.
    CallExpr {
        /// Callee expression.
        base: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Prefix operator.
    Unary {
        /// One of `-`, `!`, `*`, `&`.
        op: &'static str,
        /// Operand.
        inner: Box<Expr>,
    },
    /// Infix operator (non-assigning).
    Binary {
        /// Operator spelling.
        op: &'static str,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source line.
        line: usize,
    },
    /// Assignment or compound assignment.
    Assign {
        /// One of `=`, `+=`, `-=`, `*=`, `/=`, `%=`, …
        op: &'static str,
        /// Assignee.
        lhs: Box<Expr>,
        /// Assigned value.
        rhs: Box<Expr>,
        /// Source line.
        line: usize,
    },
    /// Index expression `base[index]`.
    Index {
        /// Indexed value.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// `inner as Type` (the type is skipped; dimension passes through).
    Cast {
        /// Cast operand.
        inner: Box<Expr>,
    },
    /// Struct literal `Name { field: expr, .. }`.
    StructLit {
        /// Type name (last path segment).
        name: String,
        /// Named fields: (field, value, line).
        fields: Vec<(String, Expr, usize)>,
        /// Functional-update base (`..base`), when present.
        base: Option<Box<Expr>>,
        /// Source line.
        line: usize,
    },
    /// Array literal `[a, b]` or `[v; n]`.
    Array(Vec<Expr>),
    /// Tuple literal `(a, b)`.
    Tuple(Vec<Expr>),
    /// Closure: parameters are skipped, the body is kept.
    Closure {
        /// Closure body.
        body: Box<Expr>,
    },
    /// Block-like region (plain block, `if`, `match`, `while`, `for`,
    /// `loop`) flattened into its statements: conditions, scrutinees and
    /// bodies are all walked, but the region's own value is opaque.
    Scope(Vec<Stmt>),
    /// Range expression.
    Range {
        /// Lower bound.
        lo: Option<Box<Expr>>,
        /// Upper bound.
        hi: Option<Box<Expr>>,
    },
    /// Anything outside the grammar (macro calls, unparsed corners).
    Opaque,
}

/// Parses one file's token stream.
pub fn parse_file(tokens: &[Token]) -> FileAst {
    let mut p = Parser {
        toks: tokens,
        pos: 0,
        depth: 0,
        out: FileAst::default(),
    };
    p.parse_items("");
    p.out
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
    depth: u32,
    out: FileAst,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn peek_at(&self, n: usize) -> Option<&Tok> {
        self.toks.get(self.pos + n).map(|t| &t.tok)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|t| t.line)
            .unwrap_or(1)
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    fn at_punct(&self, p: &str) -> bool {
        matches!(self.peek(), Some(Tok::Punct(q)) if *q == p)
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.at_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn at_ident(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s == kw)
    }

    fn eat_ident(&mut self, kw: &str) -> bool {
        if self.at_ident(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn take_ident(&mut self) -> Option<String> {
        if let Some(Tok::Ident(s)) = self.peek() {
            let s = s.clone();
            self.bump();
            Some(s)
        } else {
            None
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    /// Skips a balanced `(…)`, `[…]` or `{…}` group, opener included.
    fn skip_group(&mut self) {
        let (open, close) = match self.peek() {
            Some(Tok::Punct("(")) => ("(", ")"),
            Some(Tok::Punct("[")) => ("[", "]"),
            Some(Tok::Punct("{")) => ("{", "}"),
            _ => return,
        };
        let mut depth = 0usize;
        while let Some(tok) = self.peek() {
            match tok {
                Tok::Punct(p) if *p == open => depth += 1,
                Tok::Punct(p) if *p == close => {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        return;
                    }
                }
                _ => {}
            }
            self.bump();
        }
    }

    /// Skips `#[…]` / `#![…]` attributes at the cursor.
    fn skip_attrs(&mut self) {
        while self.at_punct("#") {
            self.bump();
            self.eat_punct("!");
            if self.at_punct("[") {
                self.skip_group();
            }
        }
    }

    /// Skips a balanced generic-argument group starting at `<`.
    fn skip_angles(&mut self) {
        let mut angle = 0i32;
        let mut group = 0i32;
        while let Some(tok) = self.peek() {
            match tok {
                Tok::Punct("<") | Tok::Punct("<<") => {
                    angle += if matches!(tok, Tok::Punct("<<")) {
                        2
                    } else {
                        1
                    };
                }
                Tok::Punct(">") => angle -= 1,
                Tok::Punct(">>") => angle -= 2,
                Tok::Punct(">=") => angle -= 1,
                Tok::Punct("(") | Tok::Punct("[") | Tok::Punct("{") => group += 1,
                Tok::Punct(")") | Tok::Punct("]") | Tok::Punct("}") => {
                    if group == 0 {
                        return; // Unbalanced: bail without consuming.
                    }
                    group -= 1;
                }
                Tok::Punct(";") if group == 0 => return,
                _ => {}
            }
            self.bump();
            if angle <= 0 && group == 0 {
                return;
            }
        }
    }

    /// Skips type tokens until one of `stops` appears at depth zero.
    /// Understands nesting of `()`, `[]`, `<>` and leaves the stop token
    /// unconsumed. Also stops (without consuming) at an unbalanced
    /// closer so a caller mid-group is never derailed.
    fn skip_type_until(&mut self, stops: &[&str]) {
        let mut angle = 0i32;
        let mut group = 0i32;
        while let Some(tok) = self.peek() {
            if let Tok::Punct(p) = tok {
                if angle <= 0 && group == 0 && stops.contains(p) {
                    return;
                }
                match *p {
                    "<" => angle += 1,
                    "<<" => angle += 2,
                    ">" if angle > 0 => angle -= 1,
                    ">>" if angle > 0 => angle -= 2,
                    "(" | "[" => group += 1,
                    ")" | "]" | "}" => {
                        if group == 0 {
                            return;
                        }
                        group -= 1;
                    }
                    "{" if angle <= 0 && group == 0 => return,
                    "{" => group += 1,
                    ";" if group == 0 => return,
                    _ => {}
                }
            } else if let Tok::Ident(w) = tok {
                if angle <= 0 && group == 0 && stops.contains(&w.as_str()) {
                    return;
                }
            }
            self.bump();
        }
    }

    // -- items ------------------------------------------------------------

    /// Parses items until an unmatched `}` or end of input.
    fn parse_items(&mut self, qual: &str) {
        while !self.at_end() {
            if self.at_punct("}") {
                return;
            }
            self.skip_attrs();
            // Visibility and qualifiers.
            if self.eat_ident("pub") {
                if self.at_punct("(") {
                    self.skip_group();
                }
                continue;
            }
            if self.at_ident("const") {
                // `const fn` is a qualifier; `const NAME: T = …` an item.
                if matches!(self.peek_at(1), Some(Tok::Ident(w)) if w == "fn") {
                    self.bump();
                    continue;
                }
                self.bump();
                self.parse_const_item();
                continue;
            }
            if self.at_ident("static") {
                self.bump();
                self.eat_ident("mut");
                self.parse_const_item();
                continue;
            }
            match self.peek() {
                Some(Tok::Ident(w)) => match w.as_str() {
                    "fn" => {
                        self.bump();
                        self.parse_fn(qual);
                    }
                    "impl" => {
                        self.bump();
                        self.parse_impl();
                    }
                    "mod" => {
                        self.bump();
                        self.take_ident();
                        if self.at_punct("{") {
                            self.bump();
                            self.parse_items(qual);
                            self.eat_punct("}");
                        } else {
                            self.eat_punct(";");
                        }
                    }
                    "trait" => {
                        self.bump();
                        let name = self.take_ident().unwrap_or_default();
                        self.skip_type_until(&["{"]);
                        if self.at_punct("{") {
                            self.bump();
                            self.parse_items(&name);
                            self.eat_punct("}");
                        }
                    }
                    "struct" | "enum" | "union" => {
                        self.bump();
                        self.take_ident();
                        self.skip_type_until(&["{", ";", "("]);
                        if self.at_punct("(") {
                            self.skip_group();
                            self.skip_type_until(&[";"]);
                        }
                        if self.at_punct("{") {
                            self.skip_group();
                        } else {
                            self.eat_punct(";");
                        }
                    }
                    "use" | "extern" | "type" => {
                        self.bump();
                        while !self.at_end() && !self.at_punct(";") {
                            if self.at_punct("{") {
                                self.skip_group();
                            } else {
                                self.bump();
                            }
                        }
                        self.eat_punct(";");
                    }
                    "macro_rules" => {
                        self.bump();
                        self.eat_punct("!");
                        self.take_ident();
                        self.skip_group();
                    }
                    _ => self.bump(),
                },
                _ => self.bump(),
            }
        }
    }

    /// `const NAME: Type = expr;` with the cursor just past the keyword.
    fn parse_const_item(&mut self) {
        let line = self.line();
        let name = self.take_ident();
        self.skip_type_until(&["=", ";"]);
        let init = if self.eat_punct("=") {
            Some(self.parse_expr(0, false))
        } else {
            None
        };
        self.eat_punct(";");
        self.out.consts.push(Stmt::Let { name, line, init });
    }

    /// `impl …` with the cursor just past the keyword: extracts the
    /// implemented type's name (the segment after `for` when present)
    /// and parses the contained items under that qualifier.
    fn parse_impl(&mut self) {
        if self.at_punct("<") {
            self.skip_angles();
        }
        let mut target = String::new();
        let mut angle = 0i32;
        while let Some(tok) = self.peek() {
            match tok {
                Tok::Punct("{") | Tok::Punct(";") if angle <= 0 => break,
                Tok::Ident(w) if w == "where" && angle <= 0 => break,
                Tok::Ident(w) if w == "for" && angle <= 0 => {
                    target.clear();
                    self.bump();
                }
                Tok::Ident(w) => {
                    if angle <= 0 {
                        target = w.clone();
                    }
                    self.bump();
                }
                Tok::Punct("<") => {
                    angle += 1;
                    self.bump();
                }
                Tok::Punct(">") => {
                    angle -= 1;
                    self.bump();
                }
                Tok::Punct(">>") => {
                    angle -= 2;
                    self.bump();
                }
                _ => self.bump(),
            }
        }
        if self.at_ident("where") {
            self.skip_type_until(&["{"]);
        }
        if self.at_punct("{") {
            self.bump();
            self.parse_items(&target);
            self.eat_punct("}");
        } else {
            self.eat_punct(";");
        }
    }

    /// `fn …` with the cursor just past the keyword.
    fn parse_fn(&mut self, qual: &str) {
        let line = self.line();
        let name = match self.take_ident() {
            Some(n) => n,
            None => return,
        };
        if self.at_punct("<") {
            self.skip_angles();
        }
        let mut params = Vec::new();
        let mut has_receiver = false;
        if self.at_punct("(") {
            self.bump();
            loop {
                self.skip_attrs();
                if self.at_punct(")") || self.at_end() {
                    break;
                }
                let p_line = self.line();
                // Receiver forms: `self`, `&self`, `&mut self`,
                // `&'a mut self`, `mut self`, `self: Type`.
                let mut look = 0usize;
                let mut saw_self = false;
                while look < 4 {
                    match self.peek_at(look) {
                        Some(Tok::Punct("&")) | Some(Tok::Lifetime(_)) => look += 1,
                        Some(Tok::Ident(w)) if w == "mut" => look += 1,
                        Some(Tok::Ident(w)) if w == "self" => {
                            saw_self = true;
                            break;
                        }
                        _ => break,
                    }
                }
                if saw_self && params.is_empty() && !has_receiver {
                    has_receiver = true;
                } else {
                    // Simple `name: Type` (optionally `mut name`).
                    let mut name_tok = None;
                    let mut ahead = 0usize;
                    if matches!(self.peek(), Some(Tok::Ident(w)) if w == "mut") {
                        ahead = 1;
                    }
                    if let (Some(Tok::Ident(n)), Some(Tok::Punct(":"))) =
                        (self.peek_at(ahead), self.peek_at(ahead + 1))
                    {
                        name_tok = Some(n.clone());
                    }
                    params.push(Param {
                        name: name_tok,
                        line: p_line,
                    });
                }
                // Skip to the `,` or `)` closing this parameter.
                self.skip_type_until(&[","]);
                if !self.eat_punct(",") {
                    break;
                }
            }
            self.eat_punct(")");
        }
        if self.eat_punct("->") {
            self.skip_type_until(&["{", ";", "where"]);
        }
        if self.at_ident("where") {
            self.skip_type_until(&["{", ";"]);
        }
        let (body, has_body) = if self.at_punct("{") {
            self.bump();
            let body = self.parse_stmts();
            self.eat_punct("}");
            (body, true)
        } else {
            self.eat_punct(";");
            (Vec::new(), false)
        };
        let end_line = self
            .toks
            .get(self.pos.saturating_sub(1))
            .map(|t| t.line)
            .unwrap_or(line);
        let qual_name = if qual.is_empty() {
            name.clone()
        } else {
            format!("{qual}::{name}")
        };
        self.out.fns.push(FnAst {
            name,
            qual: qual_name,
            line,
            end_line,
            params,
            has_receiver,
            body,
            has_body,
            in_test: false,
        });
    }

    // -- statements -------------------------------------------------------

    /// Parses statements until an unmatched `}` (left unconsumed).
    fn parse_stmts(&mut self) -> Vec<Stmt> {
        let mut out = Vec::new();
        while !self.at_end() {
            if self.at_punct("}") {
                return out;
            }
            if self.eat_punct(";") {
                continue;
            }
            self.skip_attrs();
            let before = self.pos;
            match self.peek() {
                Some(Tok::Ident(w)) => match w.as_str() {
                    "let" => out.push(self.parse_let()),
                    "if" | "while" | "for" | "loop" | "match" | "unsafe" => {
                        let expr = self.parse_blockish();
                        let has_semi = self.eat_punct(";");
                        out.push(Stmt::Expr { expr, has_semi });
                    }
                    "return" => {
                        let line = self.line();
                        self.bump();
                        let expr = if self.at_punct(";") || self.at_punct("}") {
                            None
                        } else {
                            Some(self.parse_expr(0, false))
                        };
                        self.eat_punct(";");
                        out.push(Stmt::Return { expr, line });
                    }
                    "break" | "continue" => {
                        self.bump();
                        if let Some(Tok::Lifetime(_)) = self.peek() {
                            self.bump();
                        }
                        if !(self.at_punct(";") || self.at_punct("}")) {
                            let expr = self.parse_expr(0, false);
                            out.push(Stmt::Expr {
                                expr,
                                has_semi: false,
                            });
                        }
                        self.eat_punct(";");
                    }
                    "fn" => {
                        self.bump();
                        self.parse_fn("");
                    }
                    "pub" => {
                        self.bump();
                        if self.at_punct("(") {
                            self.skip_group();
                        }
                    }
                    "use" | "type" => {
                        self.bump();
                        while !self.at_end() && !self.at_punct(";") {
                            if self.at_punct("{") {
                                self.skip_group();
                            } else {
                                self.bump();
                            }
                        }
                        self.eat_punct(";");
                    }
                    "const" | "static" => {
                        if matches!(self.peek_at(1), Some(Tok::Ident(w)) if w == "fn") {
                            self.bump();
                        } else {
                            self.bump();
                            self.eat_ident("mut");
                            self.parse_const_item();
                        }
                    }
                    "struct" | "enum" | "union" | "impl" | "mod" | "trait" | "macro_rules" => {
                        // Items inside bodies: reuse the item parser for
                        // just this one item by dispatching on it.
                        self.parse_items_one();
                    }
                    _ => {
                        let expr = self.parse_expr(0, false);
                        let has_semi = self.eat_punct(";");
                        out.push(Stmt::Expr { expr, has_semi });
                    }
                },
                Some(Tok::Punct("{")) => {
                    self.bump();
                    let inner = self.parse_stmts();
                    self.eat_punct("}");
                    let has_semi = self.eat_punct(";");
                    out.push(Stmt::Expr {
                        expr: Expr::Scope(inner),
                        has_semi,
                    });
                }
                Some(_) => {
                    let expr = self.parse_expr(0, false);
                    let has_semi = self.eat_punct(";");
                    out.push(Stmt::Expr { expr, has_semi });
                }
                None => break,
            }
            if self.pos == before {
                self.bump(); // Guaranteed progress on anything unparseable.
            }
        }
        out
    }

    /// Parses exactly one item inside a function body.
    fn parse_items_one(&mut self) {
        match self.peek() {
            Some(Tok::Ident(w)) => match w.as_str() {
                "impl" => {
                    self.bump();
                    self.parse_impl();
                }
                "mod" => {
                    self.bump();
                    self.take_ident();
                    if self.at_punct("{") {
                        self.bump();
                        self.parse_items("");
                        self.eat_punct("}");
                    } else {
                        self.eat_punct(";");
                    }
                }
                "trait" => {
                    self.bump();
                    let name = self.take_ident().unwrap_or_default();
                    self.skip_type_until(&["{"]);
                    if self.at_punct("{") {
                        self.bump();
                        self.parse_items(&name);
                        self.eat_punct("}");
                    }
                }
                "struct" | "enum" | "union" => {
                    self.bump();
                    self.take_ident();
                    self.skip_type_until(&["{", ";", "("]);
                    if self.at_punct("(") {
                        self.skip_group();
                        self.skip_type_until(&[";"]);
                    }
                    if self.at_punct("{") {
                        self.skip_group();
                    } else {
                        self.eat_punct(";");
                    }
                }
                "macro_rules" => {
                    self.bump();
                    self.eat_punct("!");
                    self.take_ident();
                    self.skip_group();
                }
                _ => self.bump(),
            },
            _ => self.bump(),
        }
    }

    /// `let …` with the cursor on the keyword.
    fn parse_let(&mut self) -> Stmt {
        let line = self.line();
        self.bump(); // let
                     // Find the pattern's extent: up to `=` or `;` at depth zero.
        let start = self.pos;
        self.skip_type_until(&["="]);
        // Extract a simple binding name from the pattern slice.
        let slice = &self.toks[start..self.pos];
        let mut name = None;
        let mut i = 0usize;
        while i < slice.len() {
            match &slice[i].tok {
                Tok::Ident(w) if w == "mut" || w == "ref" => i += 1,
                Tok::Ident(w) => {
                    let simple = matches!(
                        slice.get(i + 1).map(|t| &t.tok),
                        None | Some(Tok::Punct(":"))
                    );
                    if simple {
                        name = Some(w.clone());
                    }
                    break;
                }
                _ => break,
            }
        }
        let init = if self.eat_punct("=") {
            Some(self.parse_expr(0, false))
        } else {
            None
        };
        // `let … else { … }` divergence block.
        if self.at_ident("else") {
            self.bump();
            if self.at_punct("{") {
                self.skip_group();
            }
        }
        self.eat_punct(";");
        Stmt::Let { name, line, init }
    }

    /// Parses a block-like construct (`{`, `if`, `while`, `for`, `loop`,
    /// `match`, `unsafe`) into an [`Expr::Scope`] that exposes every
    /// condition, scrutinee, and body statement to the checkers.
    fn parse_blockish(&mut self) -> Expr {
        if self.depth >= MAX_DEPTH {
            self.skip_group();
            return Expr::Opaque;
        }
        self.depth += 1;
        let result = self.parse_blockish_inner();
        self.depth -= 1;
        result
    }

    fn parse_blockish_inner(&mut self) -> Expr {
        let mut stmts = Vec::new();
        match self.peek() {
            Some(Tok::Punct("{")) => {
                self.bump();
                stmts = self.parse_stmts();
                self.eat_punct("}");
            }
            Some(Tok::Ident(w)) => match w.as_str() {
                "if" | "while" => {
                    self.bump();
                    if self.eat_ident("let") {
                        self.skip_type_until(&["="]);
                        self.eat_punct("=");
                    }
                    let cond = self.parse_expr(0, true);
                    stmts.push(Stmt::Expr {
                        expr: cond,
                        has_semi: true,
                    });
                    if self.at_punct("{") {
                        self.bump();
                        let body = self.parse_stmts();
                        self.eat_punct("}");
                        stmts.push(Stmt::Expr {
                            expr: Expr::Scope(body),
                            has_semi: true,
                        });
                    }
                    while self.at_ident("else") {
                        self.bump();
                        if self.at_ident("if") {
                            let chained = self.parse_blockish();
                            stmts.push(Stmt::Expr {
                                expr: chained,
                                has_semi: true,
                            });
                            break;
                        }
                        if self.at_punct("{") {
                            self.bump();
                            let body = self.parse_stmts();
                            self.eat_punct("}");
                            stmts.push(Stmt::Expr {
                                expr: Expr::Scope(body),
                                has_semi: true,
                            });
                        }
                    }
                }
                "for" => {
                    self.bump();
                    self.skip_type_until(&["in"]);
                    self.eat_ident("in");
                    let iter = self.parse_expr(0, true);
                    stmts.push(Stmt::Expr {
                        expr: iter,
                        has_semi: true,
                    });
                    if self.at_punct("{") {
                        self.bump();
                        let body = self.parse_stmts();
                        self.eat_punct("}");
                        stmts.push(Stmt::Expr {
                            expr: Expr::Scope(body),
                            has_semi: true,
                        });
                    }
                }
                "loop" | "unsafe" => {
                    self.bump();
                    if self.at_punct("{") {
                        self.bump();
                        let body = self.parse_stmts();
                        self.eat_punct("}");
                        stmts.push(Stmt::Expr {
                            expr: Expr::Scope(body),
                            has_semi: true,
                        });
                    }
                }
                "match" => {
                    self.bump();
                    let scrutinee = self.parse_expr(0, true);
                    stmts.push(Stmt::Expr {
                        expr: scrutinee,
                        has_semi: true,
                    });
                    if self.at_punct("{") {
                        self.bump();
                        loop {
                            self.skip_attrs();
                            if self.at_punct("}") || self.at_end() {
                                break;
                            }
                            // Pattern (and any guard) up to `=>`.
                            let before = self.pos;
                            self.skip_pattern_until_arrow();
                            if !self.eat_punct("=>") {
                                if self.pos == before {
                                    self.bump();
                                }
                                continue;
                            }
                            let arm = if self.at_punct("{") {
                                let e = self.parse_blockish();
                                self.eat_punct(",");
                                e
                            } else {
                                let e = self.parse_expr(0, false);
                                self.eat_punct(",");
                                e
                            };
                            stmts.push(Stmt::Expr {
                                expr: arm,
                                has_semi: true,
                            });
                        }
                        self.eat_punct("}");
                    }
                }
                _ => {
                    self.bump();
                }
            },
            _ => {
                self.bump();
            }
        }
        Expr::Scope(stmts)
    }

    /// Skips a match-arm pattern (and optional guard) up to its `=>`.
    fn skip_pattern_until_arrow(&mut self) {
        let mut group = 0i32;
        while let Some(tok) = self.peek() {
            match tok {
                Tok::Punct("=>") if group == 0 => return,
                Tok::Punct("(") | Tok::Punct("[") | Tok::Punct("{") => {
                    group += 1;
                    self.bump();
                }
                Tok::Punct(")") | Tok::Punct("]") | Tok::Punct("}") => {
                    if group == 0 {
                        return;
                    }
                    group -= 1;
                    self.bump();
                }
                _ => self.bump(),
            }
        }
    }

    // -- expressions ------------------------------------------------------

    /// Pratt parser: parses an expression with operators of binding
    /// power at least `min_bp`. `no_struct` suppresses struct-literal
    /// parsing (condition/scrutinee position, as in real Rust).
    fn parse_expr(&mut self, min_bp: u8, no_struct: bool) -> Expr {
        if self.depth >= MAX_DEPTH {
            self.bump();
            return Expr::Opaque;
        }
        self.depth += 1;
        let e = self.parse_expr_inner(min_bp, no_struct);
        self.depth -= 1;
        e
    }

    fn parse_expr_inner(&mut self, min_bp: u8, no_struct: bool) -> Expr {
        let mut lhs = self.parse_prefix(no_struct);
        loop {
            let (op, lbp, rbp, kind) = match self.peek() {
                Some(Tok::Ident(w)) if w == "as" => {
                    self.bump();
                    self.skip_cast_type();
                    lhs = Expr::Cast {
                        inner: Box::new(lhs),
                    };
                    continue;
                }
                Some(Tok::Punct(p)) => match binary_power(p) {
                    Some(t) => t,
                    None => break,
                },
                _ => break,
            };
            if lbp < min_bp {
                break;
            }
            let line = self.line();
            self.bump();
            match kind {
                BinKind::Range => {
                    // The upper bound is optional (`a..`).
                    let hi = if self.expr_can_start(no_struct) {
                        Some(Box::new(self.parse_expr(rbp, no_struct)))
                    } else {
                        None
                    };
                    lhs = Expr::Range {
                        lo: Some(Box::new(lhs)),
                        hi,
                    };
                }
                BinKind::Assign => {
                    let rhs = self.parse_expr(rbp, no_struct);
                    lhs = Expr::Assign {
                        op,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                        line,
                    };
                }
                BinKind::Plain => {
                    let rhs = self.parse_expr(rbp, no_struct);
                    lhs = Expr::Binary {
                        op,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                        line,
                    };
                }
            }
        }
        lhs
    }

    /// Can the current token start an expression? (Used for open ranges.)
    fn expr_can_start(&self, no_struct: bool) -> bool {
        match self.peek() {
            Some(Tok::Ident(w)) => {
                !(matches!(w.as_str(), "in" | "else" | "where") || (no_struct && w == "{"))
            }
            Some(Tok::Num(_)) | Some(Tok::Str) | Some(Tok::Char) => true,
            Some(Tok::Punct(p)) => matches!(*p, "(" | "[" | "-" | "!" | "*" | "&" | "|" | "||"),
            _ => false,
        }
    }

    fn parse_prefix(&mut self, no_struct: bool) -> Expr {
        self.skip_attrs();
        let base = match self.peek() {
            Some(Tok::Num(_)) => {
                self.bump();
                Expr::Lit
            }
            Some(Tok::Str) => {
                self.bump();
                Expr::StrLit
            }
            Some(Tok::Char) => {
                self.bump();
                Expr::Opaque
            }
            Some(Tok::Lifetime(_)) => {
                // Labeled block/loop: `'a: loop { … }`.
                self.bump();
                self.eat_punct(":");
                if self.at_punct("{") || self.at_ident("loop") || self.at_ident("while") {
                    self.parse_blockish()
                } else {
                    Expr::Opaque
                }
            }
            Some(Tok::Punct(p)) => match *p {
                "-" | "!" | "*" => {
                    let op: &'static str = match *p {
                        "-" => "-",
                        "!" => "!",
                        _ => "*",
                    };
                    self.bump();
                    let inner = self.parse_expr(UNARY_BP, no_struct);
                    Expr::Unary {
                        op,
                        inner: Box::new(inner),
                    }
                }
                "&" | "&&" => {
                    let double = *p == "&&";
                    self.bump();
                    self.eat_ident("mut");
                    let inner = self.parse_expr(UNARY_BP, no_struct);
                    let once = Expr::Unary {
                        op: "&",
                        inner: Box::new(inner),
                    };
                    if double {
                        Expr::Unary {
                            op: "&",
                            inner: Box::new(once),
                        }
                    } else {
                        once
                    }
                }
                ".." | "..=" => {
                    self.bump();
                    let hi = if self.expr_can_start(no_struct) {
                        Some(Box::new(self.parse_expr(RANGE_RBP, no_struct)))
                    } else {
                        None
                    };
                    Expr::Range { lo: None, hi }
                }
                "|" | "||" => self.parse_closure(),
                "(" => {
                    self.bump();
                    let mut items = Vec::new();
                    let mut trailing = false;
                    while !self.at_punct(")") && !self.at_end() {
                        let before = self.pos;
                        items.push(self.parse_expr(0, false));
                        trailing = self.eat_punct(",");
                        if self.pos == before {
                            self.bump();
                        }
                    }
                    self.eat_punct(")");
                    if items.len() == 1 && !trailing {
                        items.pop().unwrap_or(Expr::Opaque)
                    } else {
                        Expr::Tuple(items)
                    }
                }
                "[" => {
                    self.bump();
                    let mut items = Vec::new();
                    while !self.at_punct("]") && !self.at_end() {
                        let before = self.pos;
                        items.push(self.parse_expr(0, false));
                        if !self.eat_punct(",") && !self.eat_punct(";") && self.pos == before {
                            self.bump();
                        }
                    }
                    self.eat_punct("]");
                    Expr::Array(items)
                }
                "{" => self.parse_blockish(),
                _ => {
                    // Terminators yield Opaque without consuming; the
                    // callers' progress guards handle the rest.
                    if !matches!(*p, ")" | "]" | "}" | "," | ";" | "=>") {
                        self.bump();
                    }
                    Expr::Opaque
                }
            },
            Some(Tok::Ident(w)) => match w.as_str() {
                "if" | "while" | "for" | "loop" | "match" | "unsafe" => self.parse_blockish(),
                "move" => {
                    self.bump();
                    self.parse_closure()
                }
                "return" | "break" | "continue" => {
                    self.bump();
                    if self.expr_can_start(no_struct) && !self.at_punct(";") && !self.at_punct("}")
                    {
                        let _ = self.parse_expr(0, no_struct);
                    }
                    Expr::Opaque
                }
                "let" => {
                    // `let`-chains in conditions: `x && let Some(y) = z`.
                    self.bump();
                    self.skip_type_until(&["="]);
                    self.eat_punct("=");
                    self.parse_expr(COMPARE_RBP, no_struct)
                }
                _ => self.parse_path_expr(no_struct),
            },
            None => Expr::Opaque,
        };
        self.parse_postfix(base)
    }

    fn parse_closure(&mut self) -> Expr {
        if self.eat_punct("||") {
            // No parameters.
        } else if self.eat_punct("|") {
            let mut group = 0i32;
            while let Some(tok) = self.peek() {
                match tok {
                    Tok::Punct("|") if group == 0 => {
                        self.bump();
                        break;
                    }
                    Tok::Punct("(") | Tok::Punct("[") | Tok::Punct("{") => {
                        group += 1;
                        self.bump();
                    }
                    Tok::Punct(")") | Tok::Punct("]") | Tok::Punct("}") => {
                        if group == 0 {
                            break;
                        }
                        group -= 1;
                        self.bump();
                    }
                    _ => self.bump(),
                }
            }
        } else {
            return Expr::Opaque;
        }
        if self.eat_punct("->") {
            self.skip_type_until(&["{"]);
        }
        let body = if self.at_punct("{") {
            self.parse_blockish()
        } else {
            self.parse_expr(CLOSURE_BODY_BP, false)
        };
        Expr::Closure {
            body: Box::new(body),
        }
    }

    /// Path expression: `a`, `a::b`, turbofish, call, struct literal,
    /// or macro invocation.
    fn parse_path_expr(&mut self, no_struct: bool) -> Expr {
        let line = self.line();
        let mut segs = Vec::new();
        if let Some(first) = self.take_ident() {
            segs.push(first);
        } else {
            return Expr::Opaque;
        }
        loop {
            if self.at_punct("::") {
                match self.peek_at(1) {
                    Some(Tok::Ident(_)) => {
                        self.bump();
                        if let Some(seg) = self.take_ident() {
                            segs.push(seg);
                        }
                    }
                    Some(Tok::Punct("<")) => {
                        self.bump();
                        self.skip_angles();
                    }
                    _ => break,
                }
            } else {
                break;
            }
        }
        // Macro invocation: skip the delimited body entirely.
        if self.at_punct("!") {
            if let Some(Tok::Punct(d)) = self.peek_at(1) {
                if matches!(*d, "(" | "[" | "{") {
                    self.bump();
                    self.skip_group();
                    return Expr::Opaque;
                }
            }
        }
        if self.at_punct("(") {
            let args = self.parse_args();
            return Expr::Call { segs, args, line };
        }
        if self.at_punct("{") && !no_struct {
            let type_like = segs
                .last()
                .and_then(|s| s.chars().next())
                .is_some_and(|c| c.is_uppercase());
            if type_like {
                return self.parse_struct_lit(segs, line);
            }
        }
        Expr::Path { segs, line }
    }

    fn parse_struct_lit(&mut self, segs: Vec<String>, line: usize) -> Expr {
        self.bump(); // {
        let name = segs.last().cloned().unwrap_or_default();
        let mut fields = Vec::new();
        let mut base = None;
        while !self.at_punct("}") && !self.at_end() {
            self.skip_attrs();
            if self.at_punct("..") {
                self.bump();
                base = Some(Box::new(self.parse_expr(0, false)));
                break;
            }
            let f_line = self.line();
            let Some(fname) = self.take_ident() else {
                self.bump();
                continue;
            };
            let value = if self.eat_punct(":") {
                self.parse_expr(0, false)
            } else {
                Expr::Path {
                    segs: vec![fname.clone()],
                    line: f_line,
                }
            };
            fields.push((fname, value, f_line));
            if !self.eat_punct(",") {
                break;
            }
        }
        self.eat_punct("}");
        Expr::StructLit {
            name,
            fields,
            base,
            line,
        }
    }

    fn parse_args(&mut self) -> Vec<Expr> {
        let mut args = Vec::new();
        if !self.eat_punct("(") {
            return args;
        }
        while !self.at_punct(")") && !self.at_end() {
            let before = self.pos;
            args.push(self.parse_expr(0, false));
            self.eat_punct(",");
            if self.pos == before {
                self.bump();
            }
        }
        self.eat_punct(")");
        args
    }

    fn parse_postfix(&mut self, mut lhs: Expr) -> Expr {
        loop {
            match self.peek() {
                Some(Tok::Punct("?")) => {
                    self.bump();
                }
                Some(Tok::Punct(".")) => {
                    let line = self.line();
                    match self.peek_at(1) {
                        Some(Tok::Ident(_)) => {
                            self.bump();
                            let name = self.take_ident().unwrap_or_default();
                            // Optional turbofish between name and args.
                            if self.at_punct("::") {
                                if let Some(Tok::Punct("<")) = self.peek_at(1) {
                                    self.bump();
                                    self.skip_angles();
                                }
                            }
                            if self.at_punct("(") {
                                let args = self.parse_args();
                                lhs = Expr::MethodCall {
                                    base: Box::new(lhs),
                                    name,
                                    args,
                                    line,
                                };
                            } else {
                                lhs = Expr::Field {
                                    base: Box::new(lhs),
                                    name,
                                    line,
                                };
                            }
                        }
                        Some(Tok::Num(n)) => {
                            let name = n.clone();
                            self.bump();
                            self.bump();
                            lhs = Expr::Field {
                                base: Box::new(lhs),
                                name,
                                line,
                            };
                        }
                        _ => {
                            self.bump();
                        }
                    }
                }
                Some(Tok::Punct("(")) => {
                    let args = self.parse_args();
                    lhs = Expr::CallExpr {
                        base: Box::new(lhs),
                        args,
                    };
                }
                Some(Tok::Punct("[")) => {
                    self.bump();
                    let index = self.parse_expr(0, false);
                    self.eat_punct("]");
                    lhs = Expr::Index {
                        base: Box::new(lhs),
                        index: Box::new(index),
                    };
                }
                _ => break,
            }
        }
        lhs
    }

    /// Skips the type after `as`. Consumes `<`-generics only directly
    /// after an identifier so `x as f64 > y` keeps its comparison.
    fn skip_cast_type(&mut self) {
        let mut angle = 0i32;
        let mut prev_ident = false;
        while let Some(tok) = self.peek() {
            match tok {
                Tok::Ident(w)
                    if matches!(
                        w.as_str(),
                        "dyn" | "mut" | "const" | "fn" | "impl" | "for" | "where"
                    ) || angle > 0
                        || !prev_ident =>
                {
                    prev_ident = !matches!(
                        w.as_str(),
                        "dyn" | "mut" | "const" | "fn" | "impl" | "for" | "where"
                    );
                    self.bump();
                }
                Tok::Punct("::") => {
                    prev_ident = false;
                    self.bump();
                }
                Tok::Punct("<") if prev_ident || angle > 0 => {
                    angle += 1;
                    prev_ident = false;
                    self.bump();
                }
                Tok::Punct(">") if angle > 0 => {
                    angle -= 1;
                    self.bump();
                }
                Tok::Punct(">>") if angle > 1 => {
                    angle -= 2;
                    self.bump();
                }
                Tok::Punct("&") | Tok::Lifetime(_) if angle > 0 || !prev_ident => {
                    self.bump();
                }
                Tok::Punct("(") | Tok::Punct("[") if !prev_ident || angle > 0 => {
                    self.skip_group();
                    prev_ident = true;
                }
                Tok::Punct(",") | Tok::Punct(";") if angle > 0 => self.bump(),
                _ => return,
            }
        }
    }
}

const UNARY_BP: u8 = 25;
const RANGE_RBP: u8 = 4;
const COMPARE_RBP: u8 = 10;
const CLOSURE_BODY_BP: u8 = 1;

enum BinKind {
    Plain,
    Assign,
    Range,
}

/// Binding powers: `(spelling, left-bp, right-bp, kind)`.
fn binary_power(p: &str) -> Option<(&'static str, u8, u8, BinKind)> {
    Some(match p {
        "=" => ("=", 2, 1, BinKind::Assign),
        "+=" => ("+=", 2, 1, BinKind::Assign),
        "-=" => ("-=", 2, 1, BinKind::Assign),
        "*=" => ("*=", 2, 1, BinKind::Assign),
        "/=" => ("/=", 2, 1, BinKind::Assign),
        "%=" => ("%=", 2, 1, BinKind::Assign),
        "&=" => ("&=", 2, 1, BinKind::Assign),
        "|=" => ("|=", 2, 1, BinKind::Assign),
        "^=" => ("^=", 2, 1, BinKind::Assign),
        "<<=" => ("<<=", 2, 1, BinKind::Assign),
        ">>=" => (">>=", 2, 1, BinKind::Assign),
        ".." => ("..", 3, RANGE_RBP, BinKind::Range),
        "..=" => ("..=", 3, RANGE_RBP, BinKind::Range),
        "||" => ("||", 5, 6, BinKind::Plain),
        "&&" => ("&&", 7, 8, BinKind::Plain),
        "==" => ("==", 9, COMPARE_RBP, BinKind::Plain),
        "!=" => ("!=", 9, COMPARE_RBP, BinKind::Plain),
        "<" => ("<", 9, COMPARE_RBP, BinKind::Plain),
        ">" => (">", 9, COMPARE_RBP, BinKind::Plain),
        "<=" => ("<=", 9, COMPARE_RBP, BinKind::Plain),
        ">=" => (">=", 9, COMPARE_RBP, BinKind::Plain),
        "|" => ("|", 11, 12, BinKind::Plain),
        "^" => ("^", 13, 14, BinKind::Plain),
        "&" => ("&", 15, 16, BinKind::Plain),
        "<<" => ("<<", 17, 18, BinKind::Plain),
        ">>" => (">>", 17, 18, BinKind::Plain),
        "+" => ("+", 19, 20, BinKind::Plain),
        "-" => ("-", 19, 20, BinKind::Plain),
        "*" => ("*", 21, 22, BinKind::Plain),
        "/" => ("/", 21, 22, BinKind::Plain),
        "%" => ("%", 21, 22, BinKind::Plain),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> FileAst {
        let stripped = crate::strip(src);
        parse_file(&lex(&stripped.code))
    }

    fn only_fn(ast: &FileAst) -> &FnAst {
        assert_eq!(ast.fns.len(), 1, "{:?}", ast.fns);
        &ast.fns[0]
    }

    #[test]
    fn extracts_fn_name_params_and_body() {
        let ast = parse("fn drain(&mut self, dt_s: f64, load: usize) -> f64 { dt_s * 2.0 }\n");
        let f = only_fn(&ast);
        assert_eq!(f.name, "drain");
        assert!(f.has_receiver);
        assert_eq!(
            f.params.iter().map(|p| p.name.clone()).collect::<Vec<_>>(),
            vec![Some("dt_s".into()), Some("load".into())]
        );
        assert_eq!(f.body.len(), 1);
        assert!(matches!(
            &f.body[0],
            Stmt::Expr {
                expr: Expr::Binary { op: "*", .. },
                has_semi: false
            }
        ));
    }

    #[test]
    fn impl_methods_get_qualified_names() {
        let ast = parse("impl Session { fn ingest(&mut self) {} }\nimpl Iterator for Ring { fn next(&mut self) {} }\n");
        assert_eq!(ast.fns[0].qual, "Session::ingest");
        assert_eq!(ast.fns[1].qual, "Ring::next");
    }

    #[test]
    fn precedence_builds_the_expected_tree() {
        let ast = parse("fn f() { let x = a_j + b_w * dt_s; }\n");
        let f = only_fn(&ast);
        let Stmt::Let {
            init: Some(Expr::Binary { op: "+", rhs, .. }),
            ..
        } = &f.body[0]
        else {
            panic!("{:?}", f.body);
        };
        assert!(matches!(**rhs, Expr::Binary { op: "*", .. }));
    }

    #[test]
    fn calls_methods_fields_and_indexing() {
        let ast = parse("fn f() { g(a, 1.0); s.step(b); t.field; v[i]; a::b::h(); }\n");
        let f = only_fn(&ast);
        assert!(
            matches!(&f.body[0], Stmt::Expr { expr: Expr::Call { segs, args, .. }, .. }
            if segs == &vec!["g".to_string()] && args.len() == 2)
        );
        assert!(
            matches!(&f.body[1], Stmt::Expr { expr: Expr::MethodCall { name, .. }, .. }
            if name == "step")
        );
        assert!(
            matches!(&f.body[2], Stmt::Expr { expr: Expr::Field { name, .. }, .. }
            if name == "field")
        );
        assert!(matches!(
            &f.body[3],
            Stmt::Expr {
                expr: Expr::Index { .. },
                ..
            }
        ));
        assert!(
            matches!(&f.body[4], Stmt::Expr { expr: Expr::Call { segs, .. }, .. }
            if segs == &vec!["a".to_string(), "b".to_string(), "h".to_string()])
        );
    }

    #[test]
    fn struct_literals_only_for_upper_camel_paths() {
        let ast = parse("fn f() { let s = Sample { energy_j: e, dt_s: 0.1 }; }\n");
        let f = only_fn(&ast);
        let Stmt::Let {
            init: Some(Expr::StructLit { name, fields, .. }),
            ..
        } = &f.body[0]
        else {
            panic!("{:?}", f.body);
        };
        assert_eq!(name, "Sample");
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[0].0, "energy_j");
    }

    #[test]
    fn no_struct_literal_in_condition_position() {
        // `if x { y() }` must parse the block as a body, not `x { … }`.
        let ast = parse("fn f() { if ready { go(); } }\n");
        let f = only_fn(&ast);
        let Stmt::Expr {
            expr: Expr::Scope(stmts),
            ..
        } = &f.body[0]
        else {
            panic!("{:?}", f.body);
        };
        assert!(
            matches!(&stmts[0], Stmt::Expr { expr: Expr::Path { segs, .. }, .. }
            if segs == &vec!["ready".to_string()])
        );
    }

    #[test]
    fn control_flow_exposes_conditions_and_bodies() {
        let ast = parse(
            "fn f() { if a_j > b_j { x(); } else { y(); }\n\
             for i in 0..n { z(i); }\n\
             match v { Some(k) => use_k(k), None => 0.0, }; }\n",
        );
        let f = only_fn(&ast);
        // Three statements: if-scope, for-scope, match-scope.
        assert_eq!(f.body.len(), 3, "{:?}", f.body);
        for stmt in &f.body {
            assert!(matches!(
                stmt,
                Stmt::Expr {
                    expr: Expr::Scope(_),
                    ..
                }
            ));
        }
    }

    #[test]
    fn closures_keep_their_bodies() {
        let ast = parse("fn f() { items.map(|x| x.energy_j + 1.0); }\n");
        let f = only_fn(&ast);
        let Stmt::Expr {
            expr: Expr::MethodCall { args, .. },
            ..
        } = &f.body[0]
        else {
            panic!("{:?}", f.body);
        };
        assert!(matches!(&args[0], Expr::Closure { .. }));
    }

    #[test]
    fn macros_are_opaque() {
        let ast = parse("fn f() { println!(\"{} {}\", a_j, b_w); vec![1, 2]; }\n");
        let f = only_fn(&ast);
        assert!(matches!(
            &f.body[0],
            Stmt::Expr {
                expr: Expr::Opaque,
                ..
            }
        ));
    }

    #[test]
    fn nested_fns_become_separate_entries() {
        let ast = parse("fn outer() { fn inner(x_j: f64) -> f64 { x_j } inner(1.0); }\n");
        assert_eq!(ast.fns.len(), 2);
        // Inner is parsed first (completed before outer closes).
        assert_eq!(ast.fns[0].name, "inner");
        assert_eq!(ast.fns[1].name, "outer");
    }

    #[test]
    fn consts_parse_as_let_like_statements() {
        let ast = parse("const IDLE_FLOOR_W: f64 = 1.56;\nstatic LIMIT_S: f64 = 9.0;\n");
        assert_eq!(ast.consts.len(), 2);
        assert!(
            matches!(&ast.consts[0], Stmt::Let { name: Some(n), init: Some(Expr::Lit), .. }
            if n == "IDLE_FLOOR_W")
        );
    }

    #[test]
    fn turbofish_and_generics_do_not_derail() {
        let ast = parse(
            "fn f() { let v = Vec::<f64>::new(); let s = items.iter().sum::<f64>(); g::<u32>(x); }\n",
        );
        let f = only_fn(&ast);
        assert_eq!(f.body.len(), 3);
        assert!(
            matches!(&f.body[2], Stmt::Expr { expr: Expr::Call { segs, .. }, .. }
            if segs == &vec!["g".to_string()])
        );
    }

    #[test]
    fn cast_keeps_comparison_after_it() {
        let ast = parse("fn f() { let ok = x as f64 > y; }\n");
        let f = only_fn(&ast);
        let Stmt::Let {
            init: Some(Expr::Binary { op: ">", lhs, .. }),
            ..
        } = &f.body[0]
        else {
            panic!("{:?}", f.body);
        };
        assert!(matches!(**lhs, Expr::Cast { .. }));
    }

    #[test]
    fn let_patterns_without_simple_names_are_tolerated() {
        let ast = parse("fn f() { let (a, b) = pair(); let [x, y] = arr; let Some(v) = opt else { return; }; }\n");
        let f = only_fn(&ast);
        assert_eq!(f.body.len(), 3);
        for stmt in &f.body {
            assert!(matches!(stmt, Stmt::Let { name: None, .. }), "{stmt:?}");
        }
    }

    #[test]
    fn trait_default_methods_and_signatures() {
        let ast =
            parse("trait Meter { fn read_w(&self) -> f64; fn idle_w(&self) -> f64 { 0.0 } }\n");
        assert_eq!(ast.fns.len(), 2);
        assert_eq!(ast.fns[0].qual, "Meter::read_w");
        assert!(!ast.fns[0].has_body);
        assert!(ast.fns[1].has_body);
    }

    #[test]
    fn ranges_and_reference_patterns() {
        let ast = parse("fn f() { let r = 0..n; let s = &xs[1..]; let t = ..limit_s; }\n");
        let f = only_fn(&ast);
        assert_eq!(f.body.len(), 3);
        assert!(matches!(
            &f.body[0],
            Stmt::Let {
                init: Some(Expr::Range { .. }),
                ..
            }
        ));
    }

    #[test]
    fn deep_nesting_degrades_instead_of_overflowing() {
        let mut src = String::from("fn f() { let x = ");
        for _ in 0..400 {
            src.push('(');
        }
        src.push('1');
        for _ in 0..400 {
            src.push(')');
        }
        src.push_str("; }\n");
        let ast = parse(&src); // Must not panic or hang.
        assert_eq!(ast.fns.len(), 1);
    }

    #[test]
    fn where_clauses_and_generic_fns() {
        let ast = parse(
            "fn fan<T: Send, F>(threads: usize, f: F) -> Vec<T> where F: Fn(usize) -> T { run(f) }\n",
        );
        let f = only_fn(&ast);
        assert_eq!(f.name, "fan");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].name, Some("threads".into()));
        assert_eq!(f.body.len(), 1);
    }
}
