#![forbid(unsafe_code)]
//! simlint: the workspace's determinism & energy-accounting lint pass.
//!
//! The reproduction's headline claim is bit-identical determinism: the
//! figure sweeps, the chaos/supervise experiments, and the checkpoint
//! digests all assume that a fixed seed replays the same bytes. Ecosystem
//! tools (rustc lints, clippy) cannot express the project-specific rules
//! that make that true, so this crate scans every workspace source file
//! with a dependency-free lexer and tolerant Pratt parser — no `syn`,
//! the repo builds offline — and enforces the rules below. D1–D5 and S1
//! work at the token/line level; U1 and P1 run on a lightweight AST and
//! see the whole workspace at once:
//!
//! - **D1** — no wall-clock, thread, or environment reads in simulation
//!   code (`Instant`, `SystemTime`, `std::thread`, `env::var`). Simulated
//!   time comes from `simcore::SimTime`; the only sanctioned wall-clock
//!   escape hatch is `bench::Stopwatch`, which carries a waiver. Thread
//!   *spawning* (as opposed to sleeping) is confined to the one crate
//!   whose job it is — `crates/simpar/`, the deterministic work pool —
//!   where the thread-token half of the rule is switched off.
//! - **D2** — no `HashMap`/`HashSet`: randomized iteration order is
//!   exactly the nondeterminism the energy ledger must not inherit. Use
//!   `BTreeMap`/`BTreeSet`, or waive with a proof of order-insensitivity.
//! - **D3** — no `==`/`!=` against non-zero float literals and no
//!   narrowing `as f32` casts in non-test code. Comparisons against
//!   exactly-representable sentinels (`0.0`, `f64::INFINITY`) are
//!   allowed, mirroring clippy's `float_cmp` carve-out.
//! - **D4** — unit-suffix discipline: a public `f64` field or function
//!   whose name says it carries energy/power/time must name its unit
//!   (`_j`, `_w`, `_s`, `_mw`, …), aligned with `apps::units`.
//! - **D5** — zero `unwrap()`/`expect()` in non-test code: a panic in
//!   the middle of a sweep loses the whole run.
//! - **S1** — service-layer API discipline, scoped to `crates/simserve/`:
//!   every public state-changing entry point (a `pub fn` taking
//!   `&mut self`) must return `Result` — the always-on serving layer
//!   refuses bad input, it does not panic — D5 may not be waived
//!   there at all (a waiver is itself an S1 finding), and unchecked
//!   indexing (`a[i]`, `a[i..]`) is banned in favor of `.get()`:
//!   snapshot decode paths parse untrusted bytes and must surface
//!   malformed input as `Result`, never as an out-of-bounds panic.
//! - **U1** — dimensional consistency: the D4 suffixes make every
//!   quantity's dimension recoverable from its name (`_j` = J, `_w` =
//!   J/s, `_s` = s, `_hz` = 1/s, `_frac`/`_ratio` dimensionless), so the
//!   checker infers a dimension for every expression and rejects
//!   `energy_j + power_w` while accepting `power_w * dt_s` as J.
//!   Addition, subtraction, comparison, and assignment require equal
//!   dimensions; multiplication and division compose them. Checked at
//!   `let` bindings, assignments, struct-literal fields, call arguments
//!   against the (workspace-wide) callee signature, and returns. See
//!   [`dims`] for the algebra and [`unit`] for the walker.
//! - **P1** — transitive purity: D1 catches a *direct* `Instant::now()`;
//!   P1 builds a per-crate symbol table and call graph so a simulation
//!   function that reaches a banned API through any chain of workspace
//!   helpers is flagged too, with the full call path in the message.
//!   Waivers are boundaries: a waived function is unflagged and stops
//!   propagation to its callers. See [`purity`].
//!
//! Any site can be waived with a comment carrying a reason:
//!
//! ```text
//! // simlint: allow(D1) — benches time real execution by design
//! ```
//!
//! either trailing on the offending line or standing alone on the line
//! above it. A waiver without a reason is itself a finding (**W0**).

pub mod dims;
pub mod lexer;
pub mod parse;
pub mod purity;
pub mod unit;

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// Rule identifiers, in report order.
pub const RULE_IDS: [&str; 9] = ["D1", "D2", "D3", "D4", "D5", "P1", "S1", "U1", "W0"];

/// One diagnostic: a rule violated at a file:line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (`D1`..`D5`, `W0`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

impl Finding {
    /// The finding as one machine-readable JSON object (hand-rolled; the
    /// scanner is dependency-free by construction).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"path\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&self.path),
            self.line,
            self.rule,
            json_escape(&self.message)
        )
    }
}

/// Renders a whole report as the machine-readable JSON array consumed by
/// CI: one object per finding in report order, each with the keys
/// `path`, `line`, `rule`, `message` in exactly that order, no
/// insignificant whitespace. The schema is pinned by an integration
/// test; downstream tooling may rely on it byte for byte.
pub fn render_json(report: &Report) -> String {
    let objects: Vec<String> = report.findings.iter().map(Finding::to_json).collect();
    format!("[{}]", objects.join(","))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Where a file sits in the workspace — decides which rules apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FileCtx<'a> {
    /// Workspace-relative display path.
    pub path: &'a str,
    /// True for `tests/`, `benches/`, and `examples/` trees: D3/D4/D5 do
    /// not apply there (exact float asserts and unwraps are legitimate
    /// test idiom), while the determinism rules D1/D2 still do.
    pub is_test: bool,
    /// True only for `crates/simpar/` — the deterministic work pool, the
    /// one crate allowed to spawn threads. Wall-clock and environment
    /// reads (`Instant`, `thread::sleep`, `env::var`, …) stay banned
    /// there too; only the thread-spawning tokens are exempt.
    pub thread_ok: bool,
    /// True for `crates/simserve/` — the always-on service layer, where
    /// the S1 API-discipline rule applies on top of D1–D5.
    pub service: bool,
}

/// Result of scanning a whole workspace.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// All findings, sorted by (path, line, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

// ---------------------------------------------------------------------------
// Source stripping: split each line into code and comment text.
// ---------------------------------------------------------------------------

/// Per-line views of a source file with literals and comments separated.
struct Stripped {
    /// Line text with string/char literal contents and comments blanked.
    code: Vec<String>,
    /// Comment text of each line (line + block comments, `//` stripped).
    comment: Vec<String>,
}

fn strip(source: &str) -> Stripped {
    let chars: Vec<char> = source.chars().collect();
    let mut code = Vec::new();
    let mut comment = Vec::new();
    let mut code_line = String::new();
    let mut comment_line = String::new();
    let mut i = 0usize;
    // 0 = code, 1 = block comment (with depth), 2 = string, 3 = raw string.
    let mut block_depth = 0usize;
    let mut in_str = false;
    let mut raw_hashes: Option<usize> = None;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            code.push(std::mem::take(&mut code_line));
            comment.push(std::mem::take(&mut comment_line));
            i += 1;
            continue;
        }
        if block_depth > 0 {
            if c == '/' && chars.get(i + 1) == Some(&'*') {
                block_depth += 1;
                i += 2;
                continue;
            }
            if c == '*' && chars.get(i + 1) == Some(&'/') {
                block_depth -= 1;
                i += 2;
                continue;
            }
            comment_line.push(c);
            i += 1;
            continue;
        }
        if let Some(n) = raw_hashes {
            if c == '"' && chars[i + 1..].iter().take(n).filter(|h| **h == '#').count() == n {
                raw_hashes = None;
                i += 1 + n;
                continue;
            }
            i += 1;
            continue;
        }
        if in_str {
            if c == '\\' {
                i += 2;
                continue;
            }
            if c == '"' {
                in_str = false;
            }
            i += 1;
            continue;
        }
        // Code state.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            // Line comment: rest of the physical line is comment text.
            let mut j = i + 2;
            while j < chars.len() && chars[j] != '\n' {
                comment_line.push(chars[j]);
                j += 1;
            }
            i = j;
            continue;
        }
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            block_depth = 1;
            i += 2;
            continue;
        }
        if c == '"' {
            in_str = true;
            code_line.push_str("\"\"");
            i += 1;
            continue;
        }
        let prev_is_ident = i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
        if c == 'r' && !prev_is_ident {
            // Possible raw string: r"..." or r#"..."#.
            let mut j = i + 1;
            let mut n = 0usize;
            while chars.get(j) == Some(&'#') {
                n += 1;
                j += 1;
            }
            if chars.get(j) == Some(&'"') {
                raw_hashes = Some(n);
                code_line.push_str("\"\"");
                i = j + 1;
                continue;
            }
        }
        if c == '\'' {
            // Char literal vs lifetime.
            if chars.get(i + 1) == Some(&'\\') {
                let mut j = i + 2;
                while j < chars.len() && chars[j] != '\'' {
                    j += 1;
                }
                code_line.push_str("' '");
                i = j + 1;
                continue;
            }
            if chars.get(i + 2) == Some(&'\'') {
                code_line.push_str("' '");
                i += 3;
                continue;
            }
            // Lifetime: keep the tick, it is harmless in code text.
            code_line.push(c);
            i += 1;
            continue;
        }
        code_line.push(c);
        i += 1;
    }
    code.push(code_line);
    comment.push(comment_line);
    Stripped { code, comment }
}

// ---------------------------------------------------------------------------
// #[cfg(test)] region tracking.
// ---------------------------------------------------------------------------

/// Marks each line that sits inside a `#[cfg(test)]` item's braces.
fn test_regions(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut depth: i64 = 0;
    let mut pending_attr = false;
    // Depths at which an active test region's opening brace sits.
    let mut regions: Vec<i64> = Vec::new();
    for (idx, line) in code.iter().enumerate() {
        let mut active = !regions.is_empty();
        if line.contains("#[cfg(test)]") {
            pending_attr = true;
        }
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending_attr {
                        regions.push(depth);
                        pending_attr = false;
                        active = true;
                    }
                }
                '}' => {
                    if regions.last() == Some(&depth) {
                        regions.pop();
                    }
                    depth -= 1;
                }
                _ => {}
            }
        }
        active = active || !regions.is_empty();
        in_test[idx] = active;
    }
    in_test
}

// ---------------------------------------------------------------------------
// Waivers.
// ---------------------------------------------------------------------------

/// Per-line waived rules plus any malformed-waiver findings.
fn parse_waivers(
    ctx: FileCtx<'_>,
    stripped: &Stripped,
) -> (BTreeMap<usize, BTreeSet<&'static str>>, Vec<Finding>) {
    let mut waived: BTreeMap<usize, BTreeSet<&'static str>> = BTreeMap::new();
    let mut findings = Vec::new();
    for (idx, comment) in stripped.comment.iter().enumerate() {
        let Some(pos) = comment.find("simlint:") else {
            continue;
        };
        let line_no = idx + 1;
        let rest = comment[pos + "simlint:".len()..].trim_start();
        // Prose that merely mentions simlint is not a waiver attempt.
        if !rest.starts_with("allow") {
            continue;
        }
        let Some(args) = rest.strip_prefix("allow(") else {
            findings.push(Finding {
                path: ctx.path.to_string(),
                line: line_no,
                rule: "W0",
                message: "malformed waiver: expected `simlint: allow(<rule>) — <reason>`"
                    .to_string(),
            });
            continue;
        };
        let Some(close) = args.find(')') else {
            findings.push(Finding {
                path: ctx.path.to_string(),
                line: line_no,
                rule: "W0",
                message: "malformed waiver: missing `)`".to_string(),
            });
            continue;
        };
        let mut rules: BTreeSet<&'static str> = BTreeSet::new();
        let mut bad_rule = false;
        for raw in args[..close].split(',') {
            let name = raw.trim();
            match RULE_IDS.iter().find(|id| **id == name && **id != "W0") {
                Some(id) => {
                    rules.insert(id);
                }
                None => {
                    findings.push(Finding {
                        path: ctx.path.to_string(),
                        line: line_no,
                        rule: "W0",
                        message: format!("waiver names unknown rule `{name}`"),
                    });
                    bad_rule = true;
                }
            }
        }
        // A reason is mandatory: `— why this site is sound`.
        let after = args[close + 1..].trim_start();
        let reason = ["—", "--", "-", ":"]
            .iter()
            .find_map(|sep| after.strip_prefix(sep))
            .map(str::trim)
            .unwrap_or("");
        if reason.is_empty() {
            findings.push(Finding {
                path: ctx.path.to_string(),
                line: line_no,
                rule: "W0",
                message: "waiver has no reason: write `simlint: allow(<rule>) — <why this site \
                          is sound>`"
                    .to_string(),
            });
            continue;
        }
        if bad_rule {
            continue;
        }
        // Trailing waiver applies to its own line; a standalone comment
        // line applies to the next line that has code on it.
        let target = if stripped.code[idx].trim().is_empty() {
            stripped.code[idx + 1..]
                .iter()
                .position(|l| !l.trim().is_empty())
                .map(|off| idx + 1 + off + 1)
        } else {
            Some(line_no)
        };
        if let Some(t) = target {
            waived.entry(t).or_default().extend(rules.iter().copied());
        }
    }
    (waived, findings)
}

// ---------------------------------------------------------------------------
// Token helpers.
// ---------------------------------------------------------------------------

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Byte offsets of whole-word occurrences of `word` in `line`.
fn word_positions(line: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut start = 0usize;
    while let Some(pos) = line[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || !line[..at].chars().next_back().is_some_and(is_ident_char);
        let after_ok = !line[at + word.len()..]
            .chars()
            .next()
            .is_some_and(is_ident_char);
        if before_ok && after_ok {
            out.push(at);
        }
        start = at + word.len();
    }
    out
}

fn contains_word(line: &str, word: &str) -> bool {
    !word_positions(line, word).is_empty()
}

/// Last token of `s` over the charset used by paths and literals.
fn trailing_token(s: &str) -> &str {
    let trimmed = s.trim_end();
    let start = trimmed
        .rfind(|c: char| !(is_ident_char(c) || c == '.' || c == ':'))
        .map(|p| p + 1)
        .unwrap_or(0);
    &trimmed[start..]
}

/// First token of `s` over the same charset (leading sign allowed).
fn leading_token(s: &str) -> &str {
    let trimmed = s.trim_start();
    let body = trimmed.strip_prefix('-').unwrap_or(trimmed);
    let end = body
        .find(|c: char| !(is_ident_char(c) || c == '.' || c == ':'))
        .unwrap_or(body.len());
    &body[..end]
}

/// Is `tok` a float literal with a non-zero value? Comparisons against
/// `0.0` (and any token that is a path, like `f64::INFINITY`) are exact
/// and deterministic, so only true literals with magnitude are hazards.
fn nonzero_float_literal(tok: &str) -> bool {
    if tok.is_empty() || tok.starts_with("0x") || tok.starts_with("0b") {
        return false;
    }
    if !tok.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return false;
    }
    if !(tok.contains('.') || tok.contains('e') || tok.contains('E')) {
        return false; // Integer literal.
    }
    let cleaned = tok
        .trim_end_matches("f64")
        .trim_end_matches("f32")
        .trim_end_matches('_')
        .replace('_', "");
    match cleaned.parse::<f64>() {
        Ok(v) => v != 0.0,
        Err(_) => false,
    }
}

// ---------------------------------------------------------------------------
// The rules.
// ---------------------------------------------------------------------------

/// D1 tokens banned everywhere, including `crates/simpar/`: wall-clock
/// and environment reads, plus `thread::sleep` (a wall-clock wait).
const D1_CLOCK_TOKENS: [&str; 4] = ["Instant", "SystemTime", "thread::sleep", "env::var"];

/// D1 tokens banned outside `crates/simpar/`: thread spawning and
/// anything that reaches the `std::thread` module to do it.
const D1_THREAD_TOKENS: [&str; 4] = [
    "thread::spawn",
    "thread::scope",
    "available_parallelism",
    "std::thread",
];

const D4_KEYWORDS: [&str; 6] = ["energy", "power", "watt", "joule", "time", "duration"];
const D4_SUFFIXES: [&str; 13] = [
    "_j", "_w", "_s", "_mw", "_mj", "_kj", "_wh", "_us", "_ms", "_ns", "_hz", "_bps", "_frac",
];

fn d4_name_violates(name: &str) -> bool {
    let triggered = name
        .split('_')
        .any(|seg| D4_KEYWORDS.contains(&seg.to_ascii_lowercase().as_str()));
    triggered && !D4_SUFFIXES.iter().any(|s| name.ends_with(s))
}

/// Everything one file contributes to the workspace passes: the
/// line-rule findings plus the parsed inputs U1 and P1 need. Produced by
/// [`analyze_str`] (fanned across simpar workers in the workspace scan)
/// and consumed by [`cross_pass`].
#[derive(Clone, Debug)]
pub struct FileAnalysis {
    /// Workspace-relative path.
    pub rel: String,
    /// Line-rule findings (D1–D5, S1, W0), waivers already applied.
    pub line_findings: Vec<Finding>,
    /// Waived rules per line (U1/P1 filtering happens in the cross pass).
    waived: BTreeMap<usize, BTreeSet<&'static str>>,
    /// Parsed AST — empty for test-path files, which U1/P1 skip.
    ast: parse::FileAst,
    /// Stripped code lines (P1 scans fn bodies for banned tokens).
    code: Vec<String>,
    /// Per-line `#[cfg(test)]` membership.
    test_lines: Vec<bool>,
    is_test: bool,
    par: bool,
    bench: bool,
}

/// Scans one file's source text. Equivalent to [`analyze_str`] +
/// [`cross_pass`] over just this file — fixtures exercise every rule
/// through this one entry point.
pub fn scan_str(ctx: FileCtx<'_>, source: &str) -> Vec<Finding> {
    let analysis = analyze_str(ctx, source);
    let mut findings = cross_pass(std::slice::from_ref(&analysis), 1);
    findings.extend(analysis.line_findings);
    findings.sort_by(|a, b| (a.line, a.rule, &a.message).cmp(&(b.line, b.rule, &b.message)));
    findings
}

/// Runs the line rules on one file and parses it for the cross-file
/// passes. `ctx.is_test` plus `#[cfg(test)]` regions decide which rules
/// run on which lines.
pub fn analyze_str(ctx: FileCtx<'_>, source: &str) -> FileAnalysis {
    let stripped = strip(source);
    let in_test_region = test_regions(&stripped.code);
    let (waived, mut findings) = parse_waivers(ctx, &stripped);
    let mut push = |findings: &mut Vec<Finding>, line: usize, rule: &'static str, msg: String| {
        if waived.get(&line).is_some_and(|set| set.contains(rule)) {
            return;
        }
        findings.push(Finding {
            path: ctx.path.to_string(),
            line,
            rule,
            message: msg,
        });
    };
    for (idx, code) in stripped.code.iter().enumerate() {
        let line_no = idx + 1;
        let testish = ctx.is_test || in_test_region[idx];
        // D1: wall-clock / thread / environment reads. One finding per
        // line is enough to force the fix. Clock tokens apply everywhere;
        // thread tokens are switched off inside the simpar work pool.
        let d1_hit = D1_CLOCK_TOKENS
            .iter()
            .find(|t| contains_word(code, t))
            .or_else(|| {
                if ctx.thread_ok {
                    None
                } else {
                    D1_THREAD_TOKENS.iter().find(|t| contains_word(code, t))
                }
            });
        if let Some(tok) = d1_hit {
            push(
                &mut findings,
                line_no,
                "D1",
                format!(
                    "`{tok}` in simulation code: use simcore::SimTime, route wall-clock timing \
                     through bench::Stopwatch, or fan work out via the simpar pool (the only \
                     crate allowed to touch std::thread)"
                ),
            );
        }
        // D2: unordered collections.
        if let Some(tok) = ["HashMap", "HashSet"]
            .iter()
            .find(|t| contains_word(code, t))
        {
            let ordered = tok.replace("Hash", "BTree");
            push(
                &mut findings,
                line_no,
                "D2",
                format!(
                    "`{tok}` has randomized iteration order; use `{ordered}` or waive with a \
                     proof of order-insensitivity"
                ),
            );
        }
        if !testish {
            scan_d3(code, line_no, &mut findings, &mut push);
            // D5: panics in non-test code.
            for needle in [".unwrap()", ".expect("] {
                if code.contains(needle) {
                    push(
                        &mut findings,
                        line_no,
                        "D5",
                        format!(
                            "`{}` in non-test code: propagate the error, restructure, or waive \
                             with the invariant that makes it unreachable",
                            needle.trim_end_matches('(')
                        ),
                    );
                }
            }
        }
    }
    if !ctx.is_test {
        scan_d4(&stripped.code, &in_test_region, &mut findings, &mut push);
        if ctx.service {
            scan_s1(
                &stripped.code,
                &in_test_region,
                &waived,
                &mut findings,
                &mut push,
            );
        }
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    // Parse the AST for the cross-file passes; test-path files are out
    // of U1/P1's scope, so skip the work there.
    let mut ast = parse::FileAst::default();
    if !ctx.is_test {
        ast = parse::parse_file(&lexer::lex(&stripped.code));
        for f in &mut ast.fns {
            f.in_test = in_test_region
                .get(f.line.saturating_sub(1))
                .copied()
                .unwrap_or(false);
        }
    }
    FileAnalysis {
        rel: ctx.path.to_string(),
        line_findings: findings,
        waived,
        ast,
        code: stripped.code,
        test_lines: in_test_region,
        is_test: ctx.is_test,
        par: ctx.thread_ok,
        bench: is_bench_path(ctx.path),
    }
}

/// The workspace-wide passes over per-file analyses: U1 checks each
/// file against the shared symbol table (fanned across `threads` simpar
/// workers — many light files, so the pool's auto grain batches them
/// into guided chunks and the index-ordered merge stays deterministic),
/// then P1 runs its call-graph fixpoint (serial — the propagation is
/// global). Returns the unwaived U1/P1 findings, unsorted.
pub fn cross_pass(analyses: &[FileAnalysis], threads: usize) -> Vec<Finding> {
    let tabled: Vec<(String, parse::FileAst)> = analyses
        .iter()
        .filter(|a| !a.is_test)
        .map(|a| (a.rel.clone(), a.ast.clone()))
        .collect();
    let table = unit::SymbolTable::build(&tabled);
    let outcomes = simpar::map(threads, analyses, |_, a| {
        if a.is_test {
            (unit::UnitOutcome::default(), Vec::new())
        } else {
            (
                unit::check_file(&a.ast, &table, &a.test_lines),
                purity::direct_sites(&a.rel, &a.code, &a.ast.fns),
            )
        }
    });
    let mut findings = Vec::new();
    for (a, (out, _)) in analyses.iter().zip(&outcomes) {
        for (line, msg) in &out.findings {
            if a.waived.get(line).is_some_and(|set| set.contains("U1")) {
                continue;
            }
            findings.push(Finding {
                path: a.rel.clone(),
                line: *line,
                rule: "U1",
                message: msg.clone(),
            });
        }
    }
    // P1 sees every non-test file: sanctioned crates (simpar, bench)
    // still conduct impurity through to their callers even though
    // findings are never reported inside them.
    let mut pfiles = Vec::new();
    let mut owners = Vec::new();
    for (ai, (a, (out, direct))) in analyses.iter().zip(&outcomes).enumerate() {
        if a.is_test {
            continue;
        }
        pfiles.push(purity::PurityFile {
            rel: a.rel.clone(),
            eligible: !a.par && !a.bench,
            fns: a
                .ast
                .fns
                .iter()
                .enumerate()
                .map(|(i, f)| purity::PurityFn {
                    name: f.name.clone(),
                    qual: f.qual.clone(),
                    line: f.line,
                    in_test: f.in_test,
                    waived: a.waived.get(&f.line).is_some_and(|set| set.contains("P1")),
                    direct: direct.get(i).cloned().flatten(),
                    calls: out.fn_calls.get(i).cloned().unwrap_or_default(),
                })
                .collect(),
        });
        owners.push(ai);
    }
    for (file_idx, line, message) in purity::analyze(&pfiles) {
        let a = &analyses[owners[file_idx]];
        findings.push(Finding {
            path: a.rel.clone(),
            line,
            rule: "P1",
            message,
        });
    }
    findings
}

/// S1: service-layer API discipline for `crates/simserve/`. Public
/// state-changing entry points (`&mut self` receivers) must return
/// `Result`, and the no-panic rule D5 may not be waived in this layer —
/// a D5 waiver comment is itself a finding.
fn scan_s1(
    code: &[String],
    in_test_region: &[bool],
    waived: &BTreeMap<usize, BTreeSet<&'static str>>,
    findings: &mut Vec<Finding>,
    push: &mut impl FnMut(&mut Vec<Finding>, usize, &'static str, String),
) {
    for (idx, line) in code.iter().enumerate() {
        if in_test_region[idx] {
            continue;
        }
        let line_no = idx + 1;
        // Unchecked indexing: decode paths parse untrusted snapshot
        // bytes and serving paths handle untrusted input, so `a[i]` /
        // `a[i..]` — which panic out-of-bounds — are banned in favor of
        // `.get()`. An index proven in range can be waived.
        if has_unchecked_indexing(line) {
            push(
                findings,
                line_no,
                "S1",
                "unchecked indexing in the service layer: use `.get()` and surface the \
                 failure as a `Result` (decode paths must be panic-free)"
                    .to_string(),
            );
        }
        let trimmed = line.trim_start();
        let Some(fn_pos) = find_pub_fn(trimmed) else {
            continue;
        };
        let name: String = trimmed[fn_pos..]
            .chars()
            .take_while(|c| is_ident_char(*c))
            .collect();
        if name.is_empty() {
            continue;
        }
        let mut sig = String::new();
        for cont in &code[idx..code.len().min(idx + 12)] {
            sig.push_str(cont);
            sig.push(' ');
            if cont.contains('{') || cont.trim_end().ends_with(';') {
                break;
            }
        }
        if !sig.contains("&mut self") {
            continue;
        }
        let ret = sig.split("->").nth(1).map(str::trim_start).unwrap_or("");
        if !ret.starts_with("Result") {
            push(
                findings,
                line_no,
                "S1",
                format!(
                    "service-layer entry point `{name}` takes `&mut self` but does not return \
                     `Result`: the serving API refuses bad input, it never panics"
                ),
            );
        }
    }
    for (&line, rules) in waived {
        if rules.contains("D5") {
            push(
                findings,
                line,
                "S1",
                "D5 may not be waived in the service layer: return a `Result` instead of \
                 panicking"
                    .to_string(),
            );
        }
    }
}

/// True when a (string-stripped) line contains an index expression —
/// `ident[`, `call()[`, or `a[0][` — as opposed to slice types (`&[`),
/// attributes (`#[`), array literals, macros (`vec![`), or slice
/// patterns and keyword-position brackets (`let [a, b] =`,
/// `for [a, b] in`, `return [0; 4]`, `match [x, y] {`). A bracket after
/// a keyword opens a pattern or an array literal, never an indexing
/// base — a keyword cannot name a value.
fn has_unchecked_indexing(line: &str) -> bool {
    let chars: Vec<char> = line.chars().collect();
    for i in 0..chars.len() {
        if chars[i] != '[' {
            continue;
        }
        let mut j = i;
        while j > 0 && chars[j - 1].is_whitespace() {
            j -= 1;
        }
        if j == 0 {
            continue;
        }
        if chars[j - 1] == ')' || chars[j - 1] == ']' {
            return true;
        }
        if !is_ident_char(chars[j - 1]) {
            continue;
        }
        // Walk back over the whole identifier to tell an indexed value
        // from a keyword (`let [a, b] =`) or a lifetime (`&'a [u8]`).
        let mut k = j;
        while k > 0 && is_ident_char(chars[k - 1]) {
            k -= 1;
        }
        if k > 0 && chars[k - 1] == '\'' {
            continue;
        }
        if k > 0 && chars[k - 1] == '.' {
            // A field or postfix access (`self.vals[i]`, `fut.await[i]`)
            // is a value even when its last segment spells a keyword.
            return true;
        }
        let word: String = chars
            .get(k..j)
            .map(|w| w.iter().collect())
            .unwrap_or_default();
        if matches!(
            word.as_str(),
            "let"
                | "ref"
                | "mut"
                | "static"
                | "dyn"
                | "in"
                | "as"
                | "box"
                | "const"
                | "for"
                | "if"
                | "while"
                | "match"
                | "return"
                | "else"
                | "break"
                | "continue"
                | "loop"
                | "move"
                | "yield"
        ) {
            continue;
        }
        return true;
    }
    false
}

/// D3: float-literal equality and narrowing casts.
fn scan_d3(
    code: &str,
    line_no: usize,
    findings: &mut Vec<Finding>,
    push: &mut impl FnMut(&mut Vec<Finding>, usize, &'static str, String),
) {
    for op in ["==", "!="] {
        let mut start = 0usize;
        while let Some(pos) = code[start..].find(op) {
            let at = start + pos;
            start = at + op.len();
            let before = &code[..at];
            let after = &code[at + op.len()..];
            // Skip `=>`, `<=`, `>=`, `+=`-family neighbours.
            if before.ends_with(['=', '!', '<', '>']) || after.starts_with('=') {
                continue;
            }
            let left = trailing_token(before);
            let right = leading_token(after);
            if nonzero_float_literal(left) || nonzero_float_literal(right) {
                push(
                    findings,
                    line_no,
                    "D3",
                    format!(
                        "float equality against a non-zero literal (`{}`): compare with an \
                         explicit tolerance or total_cmp",
                        if nonzero_float_literal(left) {
                            left
                        } else {
                            right
                        }
                    ),
                );
            }
        }
    }
    for pos in word_positions(code, "f32") {
        let before = code[..pos].trim_end();
        if before.ends_with("as") && !before[..before.len() - 2].ends_with(is_ident_char) {
            push(
                findings,
                line_no,
                "D3",
                "narrowing `as f32` cast loses precision in an energy path: keep f64 end to end"
                    .to_string(),
            );
        }
    }
}

/// D4: unit-suffix discipline for public f64 fields and functions.
fn scan_d4(
    code: &[String],
    in_test_region: &[bool],
    findings: &mut Vec<Finding>,
    push: &mut impl FnMut(&mut Vec<Finding>, usize, &'static str, String),
) {
    for (idx, line) in code.iter().enumerate() {
        if in_test_region[idx] {
            continue;
        }
        let line_no = idx + 1;
        let trimmed = line.trim_start();
        // Public f64 field: `pub name: f64,`
        if let Some(rest) = trimmed.strip_prefix("pub ") {
            let name: String = rest.chars().take_while(|c| is_ident_char(*c)).collect();
            let after = rest[name.len()..].trim_start();
            if !name.is_empty()
                && name
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_lowercase() || c == '_')
                && after.starts_with(':')
            {
                let ty = after[1..].trim().trim_end_matches(',').trim();
                if ty == "f64" && d4_name_violates(&name) {
                    push(
                        findings,
                        line_no,
                        "D4",
                        format!(
                            "public f64 field `{name}` carries a unit but its name does not: end \
                             it in _j/_w/_s/_mw (see apps::units)"
                        ),
                    );
                }
            }
        }
        // Public f64 function: `pub fn name(...) -> f64` (signature may
        // span lines; collect until the body opens).
        if let Some(fn_pos) = find_pub_fn(trimmed) {
            let name: String = trimmed[fn_pos..]
                .chars()
                .take_while(|c| is_ident_char(*c))
                .collect();
            if name.is_empty() {
                continue;
            }
            let mut sig = String::new();
            for cont in &code[idx..code.len().min(idx + 12)] {
                sig.push_str(cont);
                sig.push(' ');
                if cont.contains('{') || cont.trim_end().ends_with(';') {
                    break;
                }
            }
            let ret = sig.split("->").nth(1).map(str::trim_start).unwrap_or("");
            if ret.starts_with("f64") && d4_name_violates(&name) {
                push(
                    findings,
                    line_no,
                    "D4",
                    format!(
                        "public fn `{name}` returns a unit-carrying f64 but its name does not \
                         say the unit: end it in _j/_w/_s/_mw (see apps::units)"
                    ),
                );
            }
        }
    }
}

/// Offset of the fn name in `pub fn name` / `pub const fn name`, if the
/// line declares a plainly-public function.
fn find_pub_fn(trimmed: &str) -> Option<usize> {
    let rest = trimmed.strip_prefix("pub ")?;
    let rest2 = rest.strip_prefix("const ").unwrap_or(rest);
    let body = rest2.strip_prefix("fn ")?;
    Some(trimmed.len() - body.len())
}

// ---------------------------------------------------------------------------
// Workspace walking.
// ---------------------------------------------------------------------------

/// Directories never scanned.
const SKIP_DIRS: [&str; 4] = ["target", ".git", "results", ".github"];

fn collect_rs(dir: &Path, out: &mut BTreeSet<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read entry in {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.insert(path);
        }
    }
    Ok(())
}

fn is_test_path(rel: &str) -> bool {
    rel.split('/')
        .any(|seg| seg == "tests" || seg == "benches" || seg == "examples")
}

/// True for files inside the simpar work pool — the one crate whose job
/// is spawning threads, so D1's thread tokens do not apply there.
fn is_par_path(rel: &str) -> bool {
    rel.starts_with("crates/simpar/")
}

/// True for files inside the always-on service layer, where the S1
/// API-discipline rule applies.
fn is_service_path(rel: &str) -> bool {
    rel.starts_with("crates/simserve/")
}

/// True for the sanctioned wall-clock timing crate: P1 never reports
/// findings there (holding the stopwatch is its whole job), though
/// impurity still conducts through it to simulation-crate callers.
fn is_bench_path(rel: &str) -> bool {
    rel.starts_with("crates/bench/")
}

/// Scans every `.rs` file under `root` (a workspace checkout) serially.
/// See [`scan_workspace_threads`] for the fanned version; both produce
/// byte-identical reports.
pub fn scan_workspace(root: &Path) -> Result<Report, String> {
    scan_workspace_threads(root, 1)
}

/// Scans every `.rs` file under `root`, fanning the per-file work
/// across `threads` simpar workers. File discovery and reads stay
/// serial (ordered by path); per-file analysis and the U1 pass run in
/// the pool with an index-ordered merge, so the report is byte-identical
/// at any thread count.
pub fn scan_workspace_threads(root: &Path, threads: usize) -> Result<Report, String> {
    if !root.join("Cargo.toml").is_file() {
        return Err(format!(
            "{} does not look like a workspace root (no Cargo.toml)",
            root.display()
        ));
    }
    let mut files = BTreeSet::new();
    collect_rs(root, &mut files)?;
    let mut inputs: Vec<(String, String)> = Vec::with_capacity(files.len());
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        inputs.push((rel, source));
    }
    // Per-file parse+lint is cheap and roughly uniform across hundreds
    // of files — exactly the shape the pool's auto grain targets, so no
    // explicit grain override here.
    let analyses: Vec<FileAnalysis> = simpar::map(threads, &inputs, |_, (rel, source)| {
        let ctx = FileCtx {
            path: rel,
            is_test: is_test_path(rel),
            thread_ok: is_par_path(rel),
            service: is_service_path(rel),
        };
        analyze_str(ctx, source)
    });
    let mut findings = cross_pass(&analyses, threads);
    for analysis in &analyses {
        findings.extend(analysis.line_findings.iter().cloned());
    }
    findings.sort_by(|a, b| {
        (&a.path, a.line, a.rule, &a.message).cmp(&(&b.path, b.line, b.rule, &b.message))
    });
    Ok(Report {
        findings,
        files_scanned: analyses.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIM: FileCtx<'static> = FileCtx {
        path: "crates/x/src/lib.rs",
        is_test: false,
        thread_ok: false,
        service: false,
    };
    const TEST: FileCtx<'static> = FileCtx {
        path: "crates/x/tests/t.rs",
        is_test: true,
        thread_ok: false,
        service: false,
    };
    const PAR: FileCtx<'static> = FileCtx {
        path: "crates/simpar/src/lib.rs",
        is_test: false,
        thread_ok: true,
        service: false,
    };
    const SERVICE: FileCtx<'static> = FileCtx {
        path: "crates/simserve/src/lib.rs",
        is_test: false,
        thread_ok: false,
        service: true,
    };

    fn rules(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    // ---- D1: wall-clock / thread / environment reads ----

    #[test]
    fn d1_flags_wall_clock_reads() {
        let f = scan_str(SIM, "fn t() { let t0 = std::time::Instant::now(); }\n");
        assert_eq!(rules(&f), ["D1"]);
        assert_eq!(f[0].line, 1);
        assert!(f[0].message.contains("Stopwatch"));
    }

    #[test]
    fn d1_flags_threads_and_env_reads() {
        let src = "fn a() { std::thread::sleep(d); }\nfn b() { let v = env::var(\"X\"); }\n";
        let f = scan_str(SIM, src);
        assert_eq!(rules(&f), ["D1", "D1"]);
        assert_eq!((f[0].line, f[1].line), (1, 2));
    }

    #[test]
    fn d1_applies_even_in_test_code() {
        // Determinism rules have no test exemption: a test that reads the
        // wall clock is a flaky test.
        let f = scan_str(TEST, "fn t() { let t0 = std::time::Instant::now(); }\n");
        assert_eq!(rules(&f), ["D1"]);
    }

    /// The tentpole seam: the simpar work pool may scope/spawn threads
    /// and size itself off `available_parallelism`, but the wall clock
    /// and the environment stay off-limits even there.
    #[test]
    fn d1_thread_tokens_exempt_inside_simpar_only() {
        let spawns = "fn p() { std::thread::scope(|s| { s.spawn(|| {}); }); }\n\
                      fn q() -> usize { std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) }\n";
        assert!(scan_str(PAR, spawns).is_empty());
        // The same source outside simpar is a violation per line.
        assert_eq!(rules(&scan_str(SIM, spawns)), ["D1", "D1"]);
        // Clock reads and sleeps are banned even in the pool crate.
        let clocky = "fn r() { std::thread::sleep(d); }\nfn s() { let t = Instant::now(); }\n";
        assert_eq!(rules(&scan_str(PAR, clocky)), ["D1", "D1"]);
    }

    #[test]
    fn is_par_path_covers_only_simpar() {
        assert!(is_par_path("crates/simpar/src/lib.rs"));
        assert!(!is_par_path("crates/simcore/src/lib.rs"));
        assert!(!is_par_path("src/simpar.rs"));
    }

    #[test]
    fn d1_ignores_literals_comments_and_substrings() {
        let src = r#"// Instant is banned here, says the comment.
fn t() {
    let s = "Instant::now()";
    let instantaneous_w = 3.0;
}
"#;
        assert!(scan_str(SIM, src).is_empty());
    }

    // ---- D2: unordered collections ----

    #[test]
    fn d2_flags_hash_collections_once_per_line() {
        let f = scan_str(SIM, "let m: HashMap<u32, u32> = HashMap::new();\n");
        assert_eq!(rules(&f), ["D2"]);
        assert!(f[0].message.contains("BTreeMap"));
    }

    #[test]
    fn d2_accepts_ordered_collections() {
        let src = "use std::collections::{BTreeMap, BTreeSet};\n";
        assert!(scan_str(SIM, src).is_empty());
    }

    // ---- D3: float equality and narrowing casts ----

    #[test]
    fn d3_flags_float_literal_equality() {
        let f = scan_str(SIM, "fn f(x: f64) -> bool { x == 1.5 }\n");
        assert_eq!(rules(&f), ["D3"]);
        assert!(f[0].message.contains("1.5"));
    }

    #[test]
    fn d3_allows_exact_sentinels() {
        // 0.0 and f64::INFINITY are exactly representable; comparing
        // against them is deterministic (clippy float_cmp carve-out).
        let src = "fn f(x: f64) -> bool { x == 0.0 || x != f64::INFINITY }\n";
        assert!(scan_str(SIM, src).is_empty());
    }

    #[test]
    fn d3_flags_narrowing_casts() {
        let f = scan_str(SIM, "fn f(x: f64) -> f32 { x as f32 }\n");
        assert_eq!(rules(&f), ["D3"]);
        assert!(f[0].message.contains("as f32"));
    }

    #[test]
    fn d3_exempt_in_test_code() {
        let src = "fn f(x: f64) -> bool { x == 1.5 }\n";
        assert!(scan_str(TEST, src).is_empty());
    }

    // ---- D4: unit-suffix discipline ----

    #[test]
    fn d4_flags_unitless_public_energy_field() {
        let f = scan_str(SIM, "pub struct S {\n    pub total_energy: f64,\n}\n");
        assert_eq!(rules(&f), ["D4"]);
        assert_eq!(f[0].line, 2);
        assert!(f[0].message.contains("total_energy"));
    }

    #[test]
    fn d4_flags_unitless_public_fn_with_multiline_signature() {
        let src = "pub fn drain_power(\n    &self,\n    zone: usize,\n) -> f64 {\n    0.0\n}\n";
        let f = scan_str(SIM, src);
        assert_eq!(rules(&f), ["D4"]);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn d4_accepts_suffixed_names_and_non_f64() {
        let src = "pub struct S {\n    pub energy_j: f64,\n    pub power_w: f64,\n}\n\
                   pub fn duration_s(&self) -> f64 { self.d }\n\
                   pub fn energy_label(&self) -> String { String::new() }\n";
        assert!(scan_str(SIM, src).is_empty());
    }

    /// Fixture mirroring the simtrace payload schema: the unit-suffixed
    /// field names the trace events use (`energy_j`, `supply_j`,
    /// `raw_power_w`, …) pass D4, and stripping the suffix from any of
    /// them is flagged. Guards the trace schema's unit discipline.
    #[test]
    fn d4_trace_payload_schema_fixture() {
        let clean = "pub struct GoalBudget {\n\
                     \x20   pub supply_j: f64,\n\
                     \x20   pub demand_j: f64,\n\
                     }\n\
                     pub struct EnergyDelta {\n\
                     \x20   pub energy_j: f64,\n\
                     }\n\
                     pub struct GoalClamp {\n\
                     \x20   pub raw_power_w: f64,\n\
                     \x20   pub power_w: f64,\n\
                     }\n\
                     pub fn residual_energy_j(&self) -> f64 { 0.0 }\n";
        assert!(scan_str(SIM, clean).is_empty());

        let dirty = "pub struct GoalBudget {\n\
                     \x20   pub supply_energy: f64,\n\
                     }\n\
                     pub fn raw_power(&self) -> f64 { 0.0 }\n";
        let f = scan_str(SIM, dirty);
        assert_eq!(rules(&f), ["D4", "D4"]);
        assert!(f[0].message.contains("supply_energy"));
        assert!(f[1].message.contains("raw_power"));
    }

    /// Fixture mirroring the energymap path-row schema: the per-call-path
    /// energy table's field names (`self_energy_j`, `inclusive_energy_j`,
    /// `self_time_s`, `inclusive_time_s`, plus the unitless `samples`
    /// count, which is a u64 and out of D4's scope) pass, and dropping
    /// the unit suffix from either energy field is flagged. Guards the
    /// energy-regression gate's table schema.
    #[test]
    fn d4_energymap_path_row_schema_fixture() {
        let clean = "pub struct PathRow {\n\
                     \x20   pub path: String,\n\
                     \x20   pub samples: u64,\n\
                     \x20   pub self_time_s: f64,\n\
                     \x20   pub self_energy_j: f64,\n\
                     \x20   pub inclusive_time_s: f64,\n\
                     \x20   pub inclusive_energy_j: f64,\n\
                     }\n\
                     pub struct ProcessPaths {\n\
                     \x20   pub energy_j: f64,\n\
                     }\n\
                     pub fn total_energy_j(&self) -> f64 { 0.0 }\n";
        assert!(scan_str(SIM, clean).is_empty());

        let dirty = "pub struct PathRow {\n\
                     \x20   pub self_energy: f64,\n\
                     \x20   pub inclusive_energy: f64,\n\
                     \x20   pub inclusive_time: f64,\n\
                     }\n";
        let f = scan_str(SIM, dirty);
        assert_eq!(rules(&f), ["D4", "D4", "D4"]);
        assert!(f[0].message.contains("self_energy"));
        assert!(f[1].message.contains("inclusive_energy"));
        assert!(f[2].message.contains("inclusive_time"));
    }

    // ---- D5: panics in non-test code ----

    #[test]
    fn d5_flags_unwrap_and_expect() {
        let src = "fn f() { x.unwrap(); }\nfn g() { y.expect(\"msg\"); }\n";
        let f = scan_str(SIM, src);
        assert_eq!(rules(&f), ["D5", "D5"]);
    }

    #[test]
    fn d5_accepts_unwrap_or_variants() {
        let src = "fn f() { x.unwrap_or(0); y.unwrap_or_else(|| 1); }\n";
        assert!(scan_str(SIM, src).is_empty());
    }

    #[test]
    fn d5_exempt_inside_cfg_test_module() {
        let src = "fn f() -> u32 { 1 }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { assert_eq!(super::f(), opt.unwrap()); }\n\
                   }\n";
        assert!(scan_str(SIM, src).is_empty());
    }

    // ---- S1: service-layer API discipline ----

    /// Fixture mirroring the `simserve::Session` step API: every public
    /// `&mut self` entry point returns `Result`, read-only accessors and
    /// constructors are free-form. Dropping the `Result` from a stepping
    /// method is flagged — in the service layer only.
    #[test]
    fn s1_flags_mut_entry_points_without_result() {
        let dirty = "pub fn ingest(&mut self, s: &[u8]) {\n    self.n += 1;\n}\n";
        let f = scan_str(SERVICE, dirty);
        assert_eq!(rules(&f), ["S1"]);
        assert!(f[0].message.contains("ingest"));
        // The same source outside crates/simserve/ is not S1's business.
        assert!(scan_str(SIM, dirty).is_empty());
    }

    #[test]
    fn s1_accepts_result_entry_points_accessors_and_constructors() {
        let clean = "pub fn ingest(&mut self, n: u32) -> Result<u32, Error> {\n\
                     \x20   Ok(n)\n\
                     }\n\
                     pub fn finish(\n\
                     \x20   &mut self,\n\
                     ) -> Result<(), Error> {\n\
                     \x20   Ok(())\n\
                     }\n\
                     pub fn cursor(&self) -> u64 { self.cursor }\n\
                     pub fn tick(at_s: f64) -> Sample { Sample { at_s } }\n";
        assert!(scan_str(SERVICE, clean).is_empty());
    }

    #[test]
    fn s1_flags_multiline_signature_without_result() {
        let dirty = "pub fn reset(\n    &mut self,\n    hard: bool,\n) {\n}\n";
        let f = scan_str(SERVICE, dirty);
        assert_eq!(rules(&f), ["S1"]);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn s1_rejects_d5_waivers_in_the_service_layer() {
        let src = "fn f() { x.unwrap(); } // simlint: allow(D5) — x is set two lines up\n";
        // Elsewhere the waiver is honored; in the service layer it is
        // itself the finding.
        assert!(scan_str(SIM, src).is_empty());
        let f = scan_str(SERVICE, src);
        assert_eq!(rules(&f), ["S1"]);
        assert!(f[0].message.contains("may not be waived"));
    }

    #[test]
    fn s1_does_not_run_in_service_test_code() {
        let src = "#[cfg(test)]\nmod tests {\n    pub fn step(&mut self) {}\n}\n";
        assert!(scan_str(SERVICE, src).is_empty());
    }

    /// Fixture mirroring a snapshot decode path: untrusted bytes must be
    /// read through `.get()`, never `buf[i]` — a hostile length field
    /// would turn the decoder into a panic.
    #[test]
    fn s1_flags_unchecked_indexing_in_decode_paths() {
        for dirty in [
            "fn thaw(&mut self, buf: &[u8]) { let b = buf[self.pos]; }\n",
            "fn decode(b: &[u8]) { let tail = b[4..]; }\n",
            "fn merge(&self) { let c = self.checkpoints()[self.next..].to_vec(); }\n",
        ] {
            let f = scan_str(SERVICE, dirty);
            assert_eq!(rules(&f), ["S1"], "{dirty}");
            assert!(f[0].message.contains(".get()"), "{dirty}");
            // Outside the service layer indexing is D-rule territory
            // (reachability arguments live in review, not the linter).
            assert!(scan_str(SIM, dirty).is_empty(), "{dirty}");
        }
    }

    #[test]
    fn s1_accepts_checked_decode_and_non_index_brackets() {
        let clean = "fn thaw(&mut self, buf: &[u8]) -> Result<u8, E> {\n\
                     \x20   buf.get(self.pos).copied().ok_or(E::Truncated)\n\
                     }\n\
                     #[derive(Clone)]\n\
                     pub struct S { v: Vec<[u8; 4]>, s: &'static [u8] }\n\
                     fn mk() -> Vec<u8> { vec![0u8; 4] }\n\
                     fn pat(p: &[u8]) { if let [a, ..] = p { let _ = a; } }\n";
        assert!(scan_str(SERVICE, clean).is_empty());
    }

    #[test]
    fn s1_indexing_is_waivable_with_a_reason() {
        let src = "fn f(&self) { let x = self.v[0]; } // simlint: allow(S1) — v is never empty\n";
        assert!(scan_str(SERVICE, src).is_empty());
    }

    #[test]
    fn s1_indexing_exempt_in_service_test_code() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let x = v[0]; }\n}\n";
        assert!(scan_str(SERVICE, src).is_empty());
    }

    // ---- Waivers ----

    #[test]
    fn trailing_waiver_with_reason_is_honored() {
        let src = "fn f() { x.unwrap(); } // simlint: allow(D5) — x set two lines up\n";
        assert!(scan_str(SIM, src).is_empty());
    }

    #[test]
    fn standalone_waiver_applies_to_next_code_line() {
        let src = "// simlint: allow(D1) — this bench times real execution by design\n\
                   fn f() { let t0 = std::time::Instant::now(); }\n";
        assert!(scan_str(SIM, src).is_empty());
    }

    #[test]
    fn waiver_without_reason_is_rejected_and_finding_stands() {
        let src = "fn f() { x.unwrap(); } // simlint: allow(D5)\n";
        let f = scan_str(SIM, src);
        // Both the malformed waiver and the original violation surface.
        assert_eq!(rules(&f), ["D5", "W0"]);
        assert!(f[1].message.contains("no reason"));
    }

    #[test]
    fn waiver_naming_unknown_rule_is_rejected() {
        let src = "fn f() { x.unwrap(); } // simlint: allow(D9) — because\n";
        let f = scan_str(SIM, src);
        assert_eq!(rules(&f), ["D5", "W0"]);
        assert!(f[1].message.contains("unknown rule"));
    }

    #[test]
    fn waiver_covers_multiple_rules() {
        let src = "// simlint: allow(D1, D5) — bench harness escape hatch\n\
                   fn f() { let t = std::time::Instant::now().elapsed().as_secs_f64(); \
                   x.unwrap(); }\n";
        assert!(scan_str(SIM, src).is_empty());
    }

    #[test]
    fn waiver_does_not_leak_to_other_lines() {
        let src = "fn f() { x.unwrap(); } // simlint: allow(D5) — fine here\n\
                   fn g() { y.unwrap(); }\n";
        let f = scan_str(SIM, src);
        assert_eq!(rules(&f), ["D5"]);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn prose_mentioning_simlint_is_not_a_waiver() {
        let src = "// simlint: the scanner that enforces these rules.\nfn f() -> u32 { 1 }\n";
        assert!(scan_str(SIM, src).is_empty());
    }

    // ---- Source stripping corner cases ----

    #[test]
    fn raw_strings_and_block_comments_are_invisible() {
        let src = "fn f() -> &'static str {\n\
                       /* HashMap in a block comment,\n\
                       spanning lines */\n\
                       r#\"Instant::now() and x.unwrap()\"#\n\
                   }\n";
        assert!(scan_str(SIM, src).is_empty());
    }

    #[test]
    fn char_literals_do_not_open_strings() {
        // If '\"' were mis-lexed as a string opener, the unwrap after it
        // would be hidden inside a phantom literal.
        let src = "fn f(c: char) { if c == '\"' { x.unwrap(); } }\n";
        let f = scan_str(SIM, src);
        assert_eq!(rules(&f), ["D5"]);
    }

    // ---- U1 through the public entry point ----

    #[test]
    fn u1_flags_energy_plus_power_through_scan_str() {
        let src = "fn f(energy_j: f64, power_w: f64) -> f64 { energy_j + power_w }\n";
        let f = scan_str(SIM, src);
        assert_eq!(rules(&f), ["U1"]);
        assert!(f[0].message.contains("J (from `energy_j`)"), "{}", f[0]);
        assert!(f[0].message.contains("J/s (from `power_w`)"), "{}", f[0]);
    }

    #[test]
    fn u1_accepts_dimensionally_sound_energy_math() {
        let src = "fn f(power_w: f64, dt_s: f64) -> f64 {\n\
                   \x20   let step_j = power_w * dt_s;\n\
                   \x20   step_j / dt_s\n\
                   }\n";
        assert!(scan_str(SIM, src).is_empty());
    }

    #[test]
    fn u1_is_waivable_and_skips_test_paths() {
        let waived = "fn f(e_j: f64, p_w: f64) -> f64 { e_j + p_w } \
                      // simlint: allow(U1) — fixture mixes units on purpose\n";
        assert!(scan_str(SIM, waived).is_empty());
        let src = "fn f(e_j: f64, p_w: f64) -> f64 { e_j + p_w }\n";
        assert!(scan_str(TEST, src).is_empty());
    }

    // ---- P1 through the public entry point ----

    #[test]
    fn p1_flags_two_hop_wall_clock_reach_with_path() {
        let src = "fn leaf() -> f64 { Instant::now().elapsed().as_secs_f64() } \
                   // simlint: allow(D1) — fixture\n\
                   fn mid() -> f64 { leaf() }\n\
                   fn top() -> f64 { mid() }\n";
        let f = scan_str(SIM, src);
        // `leaf` is direct (and D1-waived); `mid` and `top` reach the
        // clock transitively and are P1's findings.
        assert_eq!(rules(&f), ["P1", "P1"]);
        assert!(f[1].message.contains("`top`"), "{}", f[1]);
        assert!(f[1].message.contains("`mid`"), "{}", f[1]);
        assert!(f[1].message.contains("Instant"), "{}", f[1]);
    }

    #[test]
    fn p1_waiver_is_a_propagation_boundary() {
        let src = "fn leaf() -> f64 { Instant::now().elapsed().as_secs_f64() } \
                   // simlint: allow(D1) — fixture\n\
                   // simlint: allow(P1) — sanctioned timing boundary\n\
                   fn mid() -> f64 { leaf() }\n\
                   fn top() -> f64 { mid() }\n";
        assert!(scan_str(SIM, src).is_empty());
    }

    // ---- S1 bracket classification (slice patterns vs indexing) ----

    #[test]
    fn s1_keyword_position_brackets_are_not_indexing() {
        let clean = "fn pairs(ps: &[[f64; 2]]) {\n\
                     \x20   for [a_j, b_j] in ps.iter().copied() {\n\
                     \x20       let _sum_j = a_j + b_j;\n\
                     \x20   }\n\
                     }\n\
                     fn mk() -> [u8; 4] { return [0; 4]; }\n\
                     fn classify(xs: &[u8]) -> usize { match [xs.len(), 1] { _ => 0 } }\n\
                     fn arm(x: bool) -> [u8; 1] { if x { [1] } else { [0] } }\n\
                     fn pat(xs: [u8; 2]) { let [a, b] = xs; let _ = (a, b); }\n";
        assert!(scan_str(SERVICE, clean).is_empty());
    }

    #[test]
    fn s1_indexing_after_fields_and_calls_still_flags() {
        for dirty in [
            "fn f(&self) -> u8 { self.vals[0] }\n",
            "fn g(xs: &[u8]) -> u8 { xs.to_vec()[1] }\n",
        ] {
            assert_eq!(rules(&scan_str(SERVICE, dirty)), ["S1"], "{dirty}");
        }
    }

    // ---- Output formats ----

    #[test]
    fn render_json_is_a_stable_array() {
        let report = Report {
            findings: vec![
                Finding {
                    path: "a.rs".to_string(),
                    line: 1,
                    rule: "D1",
                    message: "m1".to_string(),
                },
                Finding {
                    path: "b.rs".to_string(),
                    line: 2,
                    rule: "U1",
                    message: "m2".to_string(),
                },
            ],
            files_scanned: 2,
        };
        assert_eq!(
            render_json(&report),
            "[{\"path\":\"a.rs\",\"line\":1,\"rule\":\"D1\",\"message\":\"m1\"},\
             {\"path\":\"b.rs\",\"line\":2,\"rule\":\"U1\",\"message\":\"m2\"}]"
        );
        assert_eq!(render_json(&Report::default()), "[]");
    }

    #[test]
    fn display_and_json_forms() {
        let f = Finding {
            path: "crates/x/src/lib.rs".to_string(),
            line: 7,
            rule: "D2",
            message: "say \"no\"".to_string(),
        };
        assert_eq!(f.to_string(), "crates/x/src/lib.rs:7: D2: say \"no\"");
        assert_eq!(
            f.to_json(),
            "{\"path\":\"crates/x/src/lib.rs\",\"line\":7,\"rule\":\"D2\",\
             \"message\":\"say \\\"no\\\"\"}"
        );
    }
}
