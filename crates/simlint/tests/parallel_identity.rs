//! Satellite: the fanned workspace scan must be byte-identical at any
//! thread count. Discovery and reads are serial, the per-file analysis
//! and the U1 pass fan across simpar workers, and the merge is
//! index-ordered — so `--threads 8` may only be faster, never different.

use std::path::PathBuf;

/// A fixture tree wide enough that the per-file fan-out actually
/// schedules work on every worker: many files, mixed finding kinds,
/// plus a cross-file P1 chain so the workspace passes run for real.
fn write_tree() -> PathBuf {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("simlint_parallel_identity");
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(root.join("crates/sim/src")).expect("mkdir");
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("Cargo.toml");
    for i in 0..24 {
        let src = format!(
            "use std::collections::HashMap;\n\
             pub fn step_{i}(e_j: f64, p_w: f64, dt_s: f64) -> f64 {{\n\
             \x20   let gain_j = p_w * dt_s;\n\
             \x20   e_j + p_w + gain_j\n\
             }}\n\
             fn relay_{i}() {{ {callee}(); }}\n",
            i = i,
            callee = if i == 0 {
                "clocked".to_string()
            } else {
                format!("relay_{}", i - 1)
            },
        );
        std::fs::write(root.join(format!("crates/sim/src/m{i:02}.rs")), src).expect("write");
    }
    std::fs::write(
        root.join("crates/sim/src/lib.rs"),
        "fn clocked() { let t = Instant::now(); }\n",
    )
    .expect("write lib");
    root
}

#[test]
fn fixture_scan_is_byte_identical_across_thread_counts() {
    let root = write_tree();
    let serial = simlint::scan_workspace_threads(&root, 1).expect("serial scan");
    // D2 + U1 per module, P1 down the whole relay chain: the scan has
    // real cross-file work to merge deterministically.
    assert!(
        serial.findings.len() >= 24 * 3,
        "fixture should be loud, got {}",
        serial.findings.len()
    );
    let baseline = simlint::render_json(&serial);
    for threads in [2, 8] {
        let fanned = simlint::scan_workspace_threads(&root, threads).expect("fanned scan");
        assert_eq!(
            fanned.files_scanned, serial.files_scanned,
            "threads={threads}"
        );
        assert_eq!(simlint::render_json(&fanned), baseline, "threads={threads}");
    }
}

#[test]
fn live_workspace_scan_is_byte_identical_across_thread_counts() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let serial = simlint::scan_workspace_threads(&root, 1).expect("serial scan");
    let baseline = simlint::render_json(&serial);
    for threads in [2, 8] {
        let fanned = simlint::scan_workspace_threads(&root, threads).expect("fanned scan");
        assert_eq!(
            fanned.files_scanned, serial.files_scanned,
            "threads={threads}"
        );
        assert_eq!(simlint::render_json(&fanned), baseline, "threads={threads}");
    }
}
