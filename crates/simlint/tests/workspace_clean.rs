//! The live workspace must be simlint-clean.
//!
//! This is the same check `scripts/verify.sh` and CI run via the binary,
//! kept as a test so `cargo test` alone catches a regression: any new
//! wall-clock read, hash map, float equality, unit-less name, or unwrap
//! lands here as a failure with the full diagnostic list — and since the
//! scan includes the workspace passes, so does any dimensional mismatch
//! (U1) or unwaived transitive wall-clock reach (P1).

use std::path::Path;

#[test]
fn live_workspace_is_simlint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = simlint::scan_workspace(&root).expect("workspace scan failed");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — wrong root?",
        report.files_scanned
    );
    let rendered: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    assert!(
        report.findings.is_empty(),
        "simlint found {} violation(s):\n{}",
        report.findings.len(),
        rendered.join("\n")
    );
}
