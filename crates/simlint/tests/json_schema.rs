//! Pins `--json` output byte for byte: key order (`path`, `line`,
//! `rule`, `message`), escaping, and array form. CI parses this output
//! and uploads it as an artifact, so the schema is a contract — if this
//! test needs updating, downstream tooling needs updating too.
//!
//! The fixture tree seeds exactly one finding per rule (D1–D5, P1, S1,
//! U1, W0), which also proves every rule survives the trip through the
//! workspace scanner, not just through per-file unit fixtures.

use std::path::PathBuf;

/// One finding per rule: D1 (line 1), D2 (2), D3 (3), D4 (4), D5 (5),
/// P1 (6, two-hop reach into line 1), U1 (7), W0 (8, unknown rule with
/// a quote to exercise escaping).
const SIM_SRC: &str = "\
fn d1() { let t = Instant::now(); }\n\
use std::collections::HashMap;\n\
fn d3(x: f64) -> bool { x == 1.5 }\n\
pub fn energy_total() -> f64 { 0.0 }\n\
fn d5(x: Option<u32>) { x.unwrap(); }\n\
fn reach() { d1(); }\n\
fn u1(e_j: f64, p_w: f64) -> f64 { e_j + p_w }\n\
fn w0() {} // simlint: allow(D\"9) — escaping check\n";

/// S1 (line 3): a `&mut self` entry point without `Result`.
const SERVE_SRC: &str = "\
pub struct Gate { n: u32 }\n\
impl Gate {\n\
    pub fn ingest(&mut self, n: u32) { self.n += n; }\n\
}\n";

fn write_tree() -> PathBuf {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("simlint_json_schema");
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(root.join("crates/sim/src")).expect("mkdir sim");
    std::fs::create_dir_all(root.join("crates/simserve/src")).expect("mkdir simserve");
    std::fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write Cargo.toml");
    std::fs::write(root.join("crates/sim/src/lib.rs"), SIM_SRC).expect("write sim");
    std::fs::write(root.join("crates/simserve/src/lib.rs"), SERVE_SRC).expect("write simserve");
    root
}

#[test]
fn json_output_schema_is_pinned() {
    let root = write_tree();
    let report = simlint::scan_workspace(&root).expect("scan fixture tree");
    let expected = concat!(
        "[",
        "{\"path\":\"crates/sim/src/lib.rs\",\"line\":1,\"rule\":\"D1\",\"message\":\"",
        "`Instant` in simulation code: use simcore::SimTime, route wall-clock timing ",
        "through bench::Stopwatch, or fan work out via the simpar pool (the only crate ",
        "allowed to touch std::thread)\"},",
        "{\"path\":\"crates/sim/src/lib.rs\",\"line\":2,\"rule\":\"D2\",\"message\":\"",
        "`HashMap` has randomized iteration order; use `BTreeMap` or waive with a proof ",
        "of order-insensitivity\"},",
        "{\"path\":\"crates/sim/src/lib.rs\",\"line\":3,\"rule\":\"D3\",\"message\":\"",
        "float equality against a non-zero literal (`1.5`): compare with an explicit ",
        "tolerance or total_cmp\"},",
        "{\"path\":\"crates/sim/src/lib.rs\",\"line\":4,\"rule\":\"D4\",\"message\":\"",
        "public fn `energy_total` returns a unit-carrying f64 but its name does not say ",
        "the unit: end it in _j/_w/_s/_mw (see apps::units)\"},",
        "{\"path\":\"crates/sim/src/lib.rs\",\"line\":5,\"rule\":\"D5\",\"message\":\"",
        "`.unwrap()` in non-test code: propagate the error, restructure, or waive with the ",
        "invariant that makes it unreachable\"},",
        "{\"path\":\"crates/sim/src/lib.rs\",\"line\":6,\"rule\":\"P1\",\"message\":\"",
        "transitively reaches a banned API: `reach` → `d1` (crates/sim/src/lib.rs:1); ",
        "banned `Instant` at crates/sim/src/lib.rs:1\"},",
        "{\"path\":\"crates/sim/src/lib.rs\",\"line\":7,\"rule\":\"U1\",\"message\":\"",
        "dimension mismatch: `+` combines J (from `e_j`) with J/s (from `p_w`)\"},",
        "{\"path\":\"crates/sim/src/lib.rs\",\"line\":8,\"rule\":\"W0\",\"message\":\"",
        "waiver names unknown rule `D\\\"9`\"},",
        "{\"path\":\"crates/simserve/src/lib.rs\",\"line\":3,\"rule\":\"S1\",\"message\":\"",
        "service-layer entry point `ingest` takes `&mut self` but does not return ",
        "`Result`: the serving API refuses bad input, it never panics\"}",
        "]"
    );
    assert_eq!(simlint::render_json(&report), expected);
    // One finding per rule, every rule represented.
    let mut rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
    rules.sort_unstable();
    assert_eq!(rules, simlint::RULE_IDS);
}
