//! Stress and failure-injection tests for the machine.
//!
//! These push the executor through the awkward paths: supplies dying
//! mid-transfer, heavy multiprogramming, controllers that thrash, and the
//! bandwidth estimator under contention.

use hw560x::{DisplayState, EnergySource, PmPolicy};
use machine::workload::ScriptedWorkload;
use machine::{
    Activity, AdaptDirection, ControlHook, FidelityView, Machine, MachineConfig, MachineView, Step,
    Workload,
};
use simcore::{SimDuration, SimTime};

fn cpu(ms: u64, intensity: f64) -> Activity {
    Activity::Cpu {
        duration: SimDuration::from_millis(ms),
        intensity,
        procedure: "work",
    }
}

/// The battery dies while a bulk transfer is in flight: the run stops at
/// the exhaustion instant with balanced accounting, mid-transfer.
#[test]
fn battery_dies_mid_transfer() {
    let mut m = Machine::new(MachineConfig {
        pm: PmPolicy::disabled(),
        // With an active transfer the platform draws ~12.5 W, so 40 J
        // dies about 3.2 s into the 4-second fetch.
        source: EnergySource::battery(40.0),
        ..Default::default()
    });
    m.add_process(Box::new(ScriptedWorkload::new(
        "dl",
        vec![Activity::BulkFetch {
            bytes: 1_000_000, // 4 s at 2 Mb/s.
            procedure: "fetch",
        }],
    )));
    let report = m.run();
    assert!(report.exhausted);
    assert!(report.duration_s() < 4.0, "ran past the transfer");
    assert!(report.duration_s() > 2.0, "died implausibly early");
    let sum: f64 = report.buckets.iter().map(|(_, j)| j).sum();
    assert!((sum - report.total_j).abs() < 1e-6);
    assert!((report.total_j - 40.0).abs() < 1e-3);
}

/// Eight CPU-hungry processes share the machine; accounting balances and
/// round-robin keeps their energies within a few percent of each other.
#[test]
fn heavy_multiprogramming_is_fair() {
    const NAMES: [&str; 8] = ["p0", "p1", "p2", "p3", "p4", "p5", "p6", "p7"];
    let mut m = Machine::new(MachineConfig::baseline());
    for name in NAMES {
        m.add_process(Box::new(ScriptedWorkload::new(name, vec![cpu(2_000, 1.0)])));
    }
    let report = m.run();
    assert!((report.duration_s() - 16.0).abs() < 0.2);
    let energies: Vec<f64> = NAMES.iter().map(|n| report.bucket_j(n)).collect();
    let mean = energies.iter().sum::<f64>() / energies.len() as f64;
    for (name, e) in NAMES.iter().zip(&energies) {
        assert!(
            (e - mean).abs() / mean < 0.05,
            "{name} got {e} J vs mean {mean} J"
        );
    }
}

/// A thrashing controller (degrade/upgrade every tick) cannot corrupt the
/// run: accounting balances and every change is recorded.
#[test]
fn thrashing_controller_is_safe() {
    struct Thrash(bool);
    impl ControlHook for Thrash {
        fn on_tick(&mut self, _now: SimTime, view: &mut MachineView<'_>) {
            let dir = if self.0 {
                AdaptDirection::Degrade
            } else {
                AdaptDirection::Upgrade
            };
            self.0 = !self.0;
            let procs = view.processes();
            for p in procs {
                view.upcall(p.pid, dir);
            }
        }
    }
    struct TwoLevel {
        level: usize,
        until: SimTime,
    }
    impl Workload for TwoLevel {
        fn name(&self) -> &'static str {
            "flappy"
        }
        fn poll(&mut self, now: SimTime) -> Step {
            if now >= self.until {
                Step::Done
            } else {
                Step::Run(Activity::Wait { until: self.until })
            }
        }
        fn fidelity(&self) -> FidelityView {
            FidelityView::new(self.level, 2)
        }
        fn on_upcall(&mut self, dir: AdaptDirection, _now: SimTime) -> bool {
            match dir {
                AdaptDirection::Degrade if self.level == 1 => {
                    self.level = 0;
                    true
                }
                AdaptDirection::Upgrade if self.level == 0 => {
                    self.level = 1;
                    true
                }
                _ => false,
            }
        }
    }
    let mut m = Machine::new(MachineConfig::baseline());
    m.add_process(Box::new(TwoLevel {
        level: 1,
        until: SimTime::from_secs(10),
    }));
    m.add_hook(SimDuration::from_millis(100), Box::new(Thrash(true)));
    let report = m.run();
    // ~100 ticks, each flipping the level once.
    let changes = report.adaptations_of("flappy");
    assert!(
        (90..=101).contains(&changes),
        "unexpected change count {changes}"
    );
    let sum: f64 = report.buckets.iter().map(|(_, j)| j).sum();
    assert!((sum - report.total_j).abs() < 1e-6);
}

/// The passive bandwidth estimator reports the full link rate when alone
/// and the fair share under contention.
#[test]
fn transfer_rate_estimation() {
    struct RateProbe {
        rates: std::rc::Rc<std::cell::RefCell<Vec<f64>>>,
    }
    impl ControlHook for RateProbe {
        fn on_tick(&mut self, _now: SimTime, view: &mut MachineView<'_>) {
            let procs = view.processes();
            if let Some(rate) = view.transfer_rate_of(procs[0].pid) {
                self.rates.borrow_mut().push(rate);
            }
        }
    }
    // Alone: a 250 kB fetch at 2 Mb/s.
    let rates = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    let mut m = Machine::new(MachineConfig::default());
    m.add_process(Box::new(ScriptedWorkload::new(
        "solo",
        vec![
            Activity::BulkFetch {
                bytes: 250_000,
                procedure: "fetch",
            },
            Activity::Wait {
                until: SimTime::from_secs(3),
            },
        ],
    )));
    m.add_hook(
        SimDuration::from_millis(500),
        Box::new(RateProbe {
            rates: rates.clone(),
        }),
    );
    let _ = m.run();
    let last = *rates.borrow().last().expect("rate observed");
    assert!(
        (1.9e6..=2.01e6).contains(&last),
        "solo goodput {last} not ≈ 2 Mb/s"
    );

    // Contended: two equal fetches started together each see ~1 Mb/s.
    let rates = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    let mut m = Machine::new(MachineConfig::default());
    m.add_process(Box::new(ScriptedWorkload::new(
        "a",
        vec![
            Activity::BulkFetch {
                bytes: 250_000,
                procedure: "fetch",
            },
            Activity::Wait {
                until: SimTime::from_secs(4),
            },
        ],
    )));
    m.add_process(Box::new(ScriptedWorkload::new(
        "b",
        vec![Activity::BulkFetch {
            bytes: 250_000,
            procedure: "fetch",
        }],
    )));
    m.add_hook(
        SimDuration::from_millis(500),
        Box::new(RateProbe {
            rates: rates.clone(),
        }),
    );
    let _ = m.run();
    let last = *rates.borrow().last().expect("rate observed");
    assert!(
        (0.9e6..=1.1e6).contains(&last),
        "contended goodput {last} not ≈ 1 Mb/s"
    );
}

/// CpuAs attributes energy to the named bucket, not the workload.
#[test]
fn cpu_as_attribution() {
    let mut m = Machine::new(MachineConfig::baseline());
    m.add_process(Box::new(ScriptedWorkload::new(
        "frontend",
        vec![
            Activity::CpuAs {
                bucket: "library",
                duration: SimDuration::from_secs(1),
                intensity: 1.0,
                procedure: "lib_work",
            },
            cpu(1_000, 1.0),
        ],
    )));
    let report = m.run();
    let lib = report.bucket_j("library");
    let own = report.bucket_j("frontend");
    assert!(lib > 0.0 && own > 0.0);
    assert!((lib - own).abs() / own < 0.01, "lib {lib} vs own {own}");
    assert!(report
        .detail
        .iter()
        .any(|d| d.process == "library" && d.procedure == "lib_work"));
}

/// An empty machine run ends immediately; a horizon run of nothing costs
/// exactly the quiescent platform power.
#[test]
fn empty_machines() {
    let mut m = Machine::new(MachineConfig::baseline());
    let report = m.run();
    assert_eq!(report.total_j, 0.0);
    assert_eq!(report.end, SimTime::ZERO);

    let mut m = Machine::new(MachineConfig::default());
    let report = m.run_until(SimTime::from_secs(50));
    assert!((report.total_j - 50.0 * 3.47).abs() < 0.5);
}

/// Display demand composition across heterogeneous workloads: the screen
/// follows the brightest alive demand and releases when that workload
/// finishes.
#[test]
fn display_demand_composition() {
    let mut m = Machine::new(MachineConfig::default());
    // Speech-like (display off) runs 40 s; visual app runs 10 s.
    m.add_process(Box::new(
        ScriptedWorkload::new(
            "audio",
            vec![Activity::Wait {
                until: SimTime::from_secs(40),
            }],
        )
        .with_display(DisplayState::Off),
    ));
    m.add_process(Box::new(ScriptedWorkload::new(
        "visual",
        vec![Activity::Wait {
            until: SimTime::from_secs(10),
        }],
    )));
    let report = m.run();
    // Display bright exactly while the visual app lives: 10 s * 4.54 W.
    assert!(
        (report.components.display_j - 45.4).abs() < 0.5,
        "display energy {}",
        report.components.display_j
    );
}
