//! The workload (application) interface.
//!
//! A [`Workload`] is the machine-facing face of an application: a named
//! generator of [`Activity`] phases with a display requirement and an
//! adaptation interface. The four paper applications in the `odyssey-apps`
//! crate implement this trait; so do the tiny synthetic workloads used in
//! tests.

use hw560x::DisplayState;
use simcore::{SimDuration, SimTime};

use crate::activity::{Activity, AdaptDirection, FidelityView, Step};

/// An application, as seen by the machine.
pub trait Workload {
    /// Process name for profiling and reports (e.g. `"xanim"`).
    fn name(&self) -> &'static str;

    /// Backlight level this application needs while alive. The effective
    /// display state is the maximum over alive workloads (under hardware
    /// power management; the baseline keeps the display bright).
    fn display_need(&self) -> DisplayState {
        DisplayState::Bright
    }

    /// Produces the next phase. Called when the previous phase completes.
    fn poll(&mut self, now: SimTime) -> Step;

    /// Current position on the fidelity scale.
    fn fidelity(&self) -> FidelityView {
        FidelityView::fixed()
    }

    /// Odyssey upcall: move one step in `dir`. Returns `true` if the
    /// fidelity changed (takes effect from the next phase the workload
    /// generates).
    fn on_upcall(&mut self, _dir: AdaptDirection, _now: SimTime) -> bool {
        false
    }

    /// Supervisor restart: the viceroy is reviving this workload after a
    /// crash or quarantine, recovering whatever state its warden held.
    /// Returns `true` if the workload can continue; the default (`false`)
    /// marks the workload as non-restartable.
    fn on_restart(&mut self, _now: SimTime) -> bool {
        false
    }

    /// Encodes the workload's mutable state into a snapshot payload.
    /// Workloads that don't implement the pair are simply not
    /// snapshot-restorable: [`Machine::freeze`](crate::Machine::freeze)
    /// surfaces the error and the caller falls back to replay-based
    /// resume.
    fn freeze(&self, w: &mut simcore::SnapshotWriter) -> Result<(), simcore::SnapshotError> {
        let _ = w;
        Err(simcore::SnapshotError::Unsupported(
            "workload does not implement freeze",
        ))
    }

    /// Restores the state written by [`Workload::freeze`] onto this
    /// freshly-rebuilt workload.
    fn thaw(&mut self, r: &mut simcore::SnapshotReader<'_>) -> Result<(), simcore::SnapshotError> {
        let _ = r;
        Err(simcore::SnapshotError::Unsupported(
            "workload does not implement thaw",
        ))
    }
}

/// A workload that runs a fixed list of activities then finishes.
///
/// Used throughout the test suites; exercises every activity type without
/// application logic.
///
/// # Examples
///
/// ```
/// use machine::workload::ScriptedWorkload;
/// use machine::{Activity, Step, Workload};
/// use simcore::{SimDuration, SimTime};
///
/// let mut w = ScriptedWorkload::new(
///     "test",
///     vec![Activity::Cpu {
///         duration: SimDuration::from_secs(1),
///         intensity: 1.0,
///         procedure: "work",
///     }],
/// );
/// assert!(matches!(w.poll(SimTime::ZERO), Step::Run(_)));
/// assert!(matches!(w.poll(SimTime::ZERO), Step::Done));
/// ```
pub struct ScriptedWorkload {
    name: &'static str,
    display: DisplayState,
    script: std::vec::IntoIter<Activity>,
}

impl std::fmt::Debug for ScriptedWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScriptedWorkload")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

impl ScriptedWorkload {
    /// Creates a workload that emits `script` in order, requiring a bright
    /// display.
    pub fn new(name: &'static str, script: Vec<Activity>) -> Self {
        ScriptedWorkload {
            name,
            display: DisplayState::Bright,
            script: script.into_iter(),
        }
    }

    /// Sets the display requirement.
    pub fn with_display(mut self, display: DisplayState) -> Self {
        self.display = display;
        self
    }

    /// A workload that idles (waits) for `d` and finishes. Handy for
    /// measuring background power.
    pub fn idle_for(name: &'static str, d: SimDuration) -> Self {
        ScriptedWorkload::new(
            name,
            vec![Activity::Wait {
                until: SimTime::ZERO + d,
            }],
        )
    }
}

impl Workload for ScriptedWorkload {
    fn name(&self) -> &'static str {
        self.name
    }

    fn display_need(&self) -> DisplayState {
        self.display
    }

    fn poll(&mut self, _now: SimTime) -> Step {
        match self.script.next() {
            Some(a) => Step::Run(a),
            None => Step::Done,
        }
    }

    fn freeze(&self, w: &mut simcore::SnapshotWriter) -> Result<(), simcore::SnapshotError> {
        let remaining = self.script.as_slice();
        w.put_usize(remaining.len());
        for a in remaining {
            a.freeze_into(w);
        }
        Ok(())
    }

    fn thaw(&mut self, r: &mut simcore::SnapshotReader<'_>) -> Result<(), simcore::SnapshotError> {
        let n = r.take_usize()?;
        let mut script = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            script.push(Activity::thaw_from(r)?);
        }
        self.script = script.into_iter();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_workload_replays_in_order() {
        let a = Activity::Cpu {
            duration: SimDuration::from_secs(1),
            intensity: 0.5,
            procedure: "a",
        };
        let b = Activity::Wait {
            until: SimTime::from_secs(9),
        };
        let mut w = ScriptedWorkload::new("s", vec![a, b]);
        assert_eq!(w.poll(SimTime::ZERO), Step::Run(a));
        assert_eq!(w.poll(SimTime::ZERO), Step::Run(b));
        assert_eq!(w.poll(SimTime::ZERO), Step::Done);
        assert_eq!(w.poll(SimTime::ZERO), Step::Done);
    }

    #[test]
    fn default_adaptation_interface_is_inert() {
        let mut w = ScriptedWorkload::new("s", vec![]);
        assert_eq!(w.fidelity(), FidelityView::fixed());
        assert!(!w.on_upcall(AdaptDirection::Degrade, SimTime::ZERO));
        assert_eq!(w.display_need(), DisplayState::Bright);
    }

    #[test]
    fn display_override() {
        let w = ScriptedWorkload::new("s", vec![]).with_display(DisplayState::Off);
        assert_eq!(w.display_need(), DisplayState::Off);
    }
}
