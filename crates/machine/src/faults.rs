//! Fault configuration for the machine executor.
//!
//! [`FaultConfig`] bundles the fault knobs that live in the substrate
//! layers below the control plane: the link-fault plan compiled into the
//! [`netsim::SharedLink`], the RPC timeout/retry policy of the executor's
//! network path, and the battery-gauge error model that distorts what
//! controllers read through [`crate::MachineView::residual_j`]. The
//! default is entirely clean, so every existing experiment is untouched.
//!
//! Retries cost real simulated energy: the radio window stays open across
//! backoff waits, an aborted leg's partial bytes are retransmitted from
//! scratch, and every extra second on the air drains the battery at the
//! platform's true power draw.

use hw560x::BatteryGauge;
use netsim::LinkFaultPlan;
use simcore::{SimDuration, SimTime};

/// Timeout/retry policy for the RPC and bulk-fetch network path.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RpcPolicy {
    /// An attempt that has not completed after this long is aborted.
    pub timeout: SimDuration,
    /// Backoff before the first retry.
    pub backoff_base: SimDuration,
    /// Multiplier applied to the backoff on each further retry.
    pub backoff_factor: f64,
    /// Upper bound on the backoff, however many retries accumulate.
    pub backoff_cap: SimDuration,
}

impl RpcPolicy {
    /// A conventional policy: 4 s timeout, exponential backoff from
    /// 100 ms doubling to a 5 s cap. The timeout sits well above the
    /// worst clean-link RPC in the workloads (a 2 s bulk fetch), so it
    /// only ever fires because the link actually failed.
    pub fn standard() -> Self {
        RpcPolicy {
            timeout: SimDuration::from_secs(4),
            backoff_base: SimDuration::from_millis(100),
            backoff_factor: 2.0,
            backoff_cap: SimDuration::from_secs(5),
        }
    }

    /// Backoff before retry number `retry` (1-based).
    pub fn backoff_after(&self, retry: u32) -> SimDuration {
        let exp = self.backoff_factor.powi(retry.saturating_sub(1) as i32);
        let raw = self.backoff_base.as_secs_f64() * exp;
        SimDuration::from_secs_f64(raw.min(self.backoff_cap.as_secs_f64()))
    }
}

/// All substrate fault knobs of one machine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultConfig {
    /// Seed for every fault timeline and sensor-noise hash in the run.
    pub seed: u64,
    /// Horizon over which fault timelines are compiled. Transitions are
    /// only generated inside `[0, horizon)`; a run outliving the horizon
    /// sees a clean link afterwards.
    pub horizon: SimTime,
    /// Link faults (outages, dips, latency spikes).
    pub link: LinkFaultPlan,
    /// RPC timeout/retry policy; `None` means wait forever (the seed
    /// behavior — safe only because a clean link always completes).
    pub rpc: Option<RpcPolicy>,
    /// Battery-gauge error model applied to controller residual reads.
    pub gauge: BatteryGauge,
}

impl FaultConfig {
    /// No faults anywhere: the paper's bench conditions.
    pub fn clean() -> Self {
        FaultConfig {
            seed: 0,
            horizon: SimTime::ZERO,
            link: LinkFaultPlan::clean(),
            rpc: None,
            gauge: BatteryGauge::ideal(),
        }
    }

    /// The full hostile-substrate mix at `intensity` in `[0, 1]`:
    /// WaveLAN link faults, the standard retry policy, and an optimistic
    /// drifting gauge, all drawn from `seed`. Timelines cover `horizon`.
    pub fn hostile(seed: u64, intensity: f64, horizon: SimTime) -> Self {
        FaultConfig {
            seed,
            horizon,
            link: LinkFaultPlan::wavelan(intensity),
            rpc: Some(RpcPolicy::standard()),
            gauge: BatteryGauge::hostile(seed, intensity),
        }
    }

    /// True when nothing is configured to misbehave.
    pub fn is_clean(&self) -> bool {
        self.link.is_clean() && self.gauge.is_ideal()
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self::clean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_to_the_cap() {
        let p = RpcPolicy::standard();
        assert_eq!(p.backoff_after(1), SimDuration::from_millis(100));
        assert_eq!(p.backoff_after(2), SimDuration::from_millis(200));
        assert_eq!(p.backoff_after(3), SimDuration::from_millis(400));
        assert_eq!(p.backoff_after(10), SimDuration::from_secs(5));
        assert_eq!(p.backoff_after(30), SimDuration::from_secs(5));
    }

    #[test]
    fn clean_config_is_clean() {
        assert!(FaultConfig::clean().is_clean());
        assert!(FaultConfig::default().is_clean());
    }

    #[test]
    fn hostile_config_is_not() {
        let f = FaultConfig::hostile(1, 0.5, SimTime::from_secs(1200));
        assert!(!f.is_clean());
        assert!(f.rpc.is_some());
    }
}
