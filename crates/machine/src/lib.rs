#![forbid(unsafe_code)]
//! Event-driven simulator of the paper's mobile client.
//!
//! This crate binds the substrates together into a runnable machine: a
//! single-CPU round-robin scheduler with an X server work queue, the
//! `hw560x` device power models driven by the configured power-management
//! policy, a shared `netsim` WaveLAN link, and an energy ledger that
//! integrates platform power exactly between events and attributes it the
//! way PowerScope does — to the process running at each instant, with
//! network-interrupt and Odyssey data-path overlays.
//!
//! Applications are [`Workload`]s: pull-mode generators of [`Activity`]
//! phases (CPU bursts, RPCs, bulk fetches, disk reads, render requests,
//! waits). The Odyssey viceroy attaches as a [`ControlHook`] that runs on
//! a period, inspects supply and demand, and issues fidelity upcalls.
//!
//! Two deliberate simplifications, both documented in DESIGN.md:
//! - network-interrupt and Odyssey data-path CPU time are modelled as
//!   attribution overlays (they shape the energy profile) rather than as
//!   preempting executions (they do not slow application CPU bursts);
//! - CPU bursts run at full speed regardless of concurrent interrupt load.

pub mod activity;
pub mod checkpoint;
pub mod energy;
pub mod faults;
pub mod machine;
pub mod observer;
pub mod workload;

pub use activity::{Activity, AdaptDirection, FidelityView, Step};
pub use checkpoint::CheckpointHook;
pub use energy::{ComponentTotals, ProcDetail, RunReport};
pub use faults::{FaultConfig, RpcPolicy};
pub use machine::{ControlHook, Machine, MachineConfig, MachineView, Pid, ProcessInfo};
pub use observer::{IntervalObserver, IntervalRecord, ShareEntry};
pub use workload::Workload;

/// Attribution bucket for time the CPU spends halted.
pub const BUCKET_IDLE: &str = "Idle";
/// Attribution bucket for X server rendering.
pub const BUCKET_X: &str = "X Server";
/// Attribution bucket for Odyssey viceroy/warden data-path work.
pub const BUCKET_ODYSSEY: &str = "Odyssey";
/// Attribution bucket for WaveLAN interrupt handling.
pub const BUCKET_WAVELAN: &str = "WaveLAN";
/// Attribution bucket for other kernel work (disk interrupts, syscalls).
pub const BUCKET_KERNEL: &str = "Kernel";
