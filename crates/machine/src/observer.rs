//! Interval observation.
//!
//! Between any two machine events, device states and CPU occupancy are
//! constant; the machine publishes each such interval to registered
//! observers. PowerScope builds its sampled profiles from these records;
//! tests use them to check conservation properties.

use hw560x::platform::PowerBreakdown;
use hw560x::{DeviceStates, DiskState, DisplayState, RadioState};
use simcore::SimTime;

/// One attribution share within an interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShareEntry {
    /// Bucket label (process name or one of the `BUCKET_*` constants).
    pub bucket: &'static str,
    /// Procedure label within the bucket.
    pub procedure: &'static str,
    /// Fraction of the interval, in `[0, 1]`; entries sum to 1.
    pub fraction: f64,
}

/// A constant-state execution interval.
#[derive(Clone, Copy, Debug)]
pub struct IntervalRecord<'a> {
    /// Interval start.
    pub t0: SimTime,
    /// Interval end (exclusive).
    pub t1: SimTime,
    /// Platform power over the interval, W.
    pub power_w: f64,
    /// Per-component decomposition of `power_w`.
    pub breakdown: PowerBreakdown,
    /// Device states in force.
    pub states: DeviceStates,
    /// Execution attribution shares (sum to 1).
    pub shares: &'a [ShareEntry],
}

impl IntervalRecord<'_> {
    /// Interval length in seconds.
    pub fn dt_secs(&self) -> f64 {
        self.t1.since(self.t0).as_secs_f64()
    }

    /// Energy consumed over the interval, J.
    pub fn energy_j(&self) -> f64 {
        self.power_w * self.dt_secs()
    }
}

/// Receives every execution interval of a run.
pub trait IntervalObserver {
    /// Called for each interval, in time order, with `t0 < t1`.
    fn on_interval(&mut self, rec: &IntervalRecord<'_>);
}

/// An observer that accumulates total observed energy; the machine's own
/// ledger must agree with it exactly (used by conservation tests).
#[derive(Debug, Default)]
pub struct EnergyProbe {
    total_j: f64,
    intervals: usize,
    last_end: Option<SimTime>,
}

impl EnergyProbe {
    /// Creates an empty probe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total energy observed, J.
    pub fn total_j(&self) -> f64 {
        self.total_j
    }

    /// Number of intervals observed.
    pub fn intervals(&self) -> usize {
        self.intervals
    }
}

impl IntervalObserver for EnergyProbe {
    fn on_interval(&mut self, rec: &IntervalRecord<'_>) {
        assert!(rec.t1 > rec.t0, "empty interval published");
        if let Some(prev) = self.last_end {
            assert!(rec.t0 >= prev, "overlapping intervals");
        }
        let share_sum: f64 = rec.shares.iter().map(|s| s.fraction).sum();
        assert!(
            (share_sum - 1.0).abs() < 1e-9,
            "shares sum to {share_sum}, not 1"
        );
        self.last_end = Some(rec.t1);
        self.total_j += rec.energy_j();
        self.intervals += 1;
    }
}

/// Convenience constructor for the idle device state used in tests.
pub fn idle_states() -> DeviceStates {
    DeviceStates {
        display: DisplayState::Bright,
        disk: DiskState::Idle,
        radio: RadioState::Idle,
        cpu_load: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hw560x::{PlatformPower, PlatformSpec};

    #[test]
    fn record_energy_is_power_times_dt() {
        let spec = PlatformSpec::default();
        let p = PlatformPower::new(spec);
        let states = idle_states();
        let shares = [ShareEntry {
            bucket: crate::BUCKET_IDLE,
            procedure: "idle_hlt",
            fraction: 1.0,
        }];
        let rec = IntervalRecord {
            t0: SimTime::from_secs(1),
            t1: SimTime::from_secs(3),
            power_w: p.power_w(&states),
            breakdown: p.breakdown(&states),
            states,
            shares: &shares,
        };
        assert!((rec.energy_j() - 2.0 * 10.28).abs() < 0.03);
        assert!((rec.dt_secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn probe_accumulates_and_validates() {
        let mut probe = EnergyProbe::new();
        let states = idle_states();
        let shares = [ShareEntry {
            bucket: crate::BUCKET_IDLE,
            procedure: "idle_hlt",
            fraction: 1.0,
        }];
        for i in 0..4u64 {
            let rec = IntervalRecord {
                t0: SimTime::from_secs(i),
                t1: SimTime::from_secs(i + 1),
                power_w: 10.0,
                breakdown: PowerBreakdown::default(),
                states,
                shares: &shares,
            };
            probe.on_interval(&rec);
        }
        assert_eq!(probe.intervals(), 4);
        assert!((probe.total_j() - 40.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "shares sum")]
    fn probe_rejects_bad_shares() {
        let mut probe = EnergyProbe::new();
        let rec = IntervalRecord {
            t0: SimTime::ZERO,
            t1: SimTime::from_secs(1),
            power_w: 1.0,
            breakdown: PowerBreakdown::default(),
            states: idle_states(),
            shares: &[],
        };
        probe.on_interval(&rec);
    }
}
