//! Periodic checkpointing of a running machine.
//!
//! [`CheckpointHook`] is a [`ControlHook`] that digests the machine's live
//! state on its period and records (time, digest) proof points into a
//! shared [`RunJournal`]. Because the simulation is deterministic, resume
//! is replay: rebuild the identical rig, run to the journaled checkpoint,
//! assert the digest matches, and continue. The hook itself perturbs
//! nothing — it inserts the same events whether or not a crash occurs, so
//! a checkpointed run and its resumed twin share one event timeline.

use std::cell::RefCell;
use std::rc::Rc;

use simcore::{RunJournal, SimTime};

use crate::machine::{ControlHook, MachineView};

/// Control hook that records state digests into a shared run journal.
pub struct CheckpointHook {
    journal: Rc<RefCell<RunJournal>>,
}

impl std::fmt::Debug for CheckpointHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointHook").finish_non_exhaustive()
    }
}

impl CheckpointHook {
    /// Creates a hook feeding `journal`. Attach it with a period equal to
    /// (or dividing) the journal's checkpoint interval.
    pub fn new(journal: Rc<RefCell<RunJournal>>) -> Self {
        CheckpointHook { journal }
    }
}

impl ControlHook for CheckpointHook {
    fn on_tick(&mut self, now: SimTime, view: &mut MachineView<'_>) {
        let mut journal = self.journal.borrow_mut();
        if journal.is_due(now) {
            let digest = view.state_digest();
            journal.record_if_due(now, || digest);
        }
    }

    fn freeze(&self, w: &mut simcore::SnapshotWriter) -> Result<(), simcore::SnapshotError> {
        self.journal.borrow().freeze_into(w);
        Ok(())
    }

    fn thaw(&mut self, r: &mut simcore::SnapshotReader<'_>) -> Result<(), simcore::SnapshotError> {
        *self.journal.borrow_mut() = RunJournal::thaw_from(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Machine, MachineConfig};
    use crate::workload::ScriptedWorkload;
    use hw560x::PmPolicy;
    use simcore::SimDuration;

    fn rig(journal: Rc<RefCell<RunJournal>>) -> Machine {
        let mut m = Machine::new(MachineConfig {
            pm: PmPolicy::enabled(),
            ..Default::default()
        });
        m.add_process(Box::new(ScriptedWorkload::idle_for(
            "bg",
            SimDuration::from_secs(120),
        )));
        let period = journal.borrow().interval();
        m.add_hook(period, Box::new(CheckpointHook::new(journal)));
        m
    }

    /// Checkpoints land on the journal's interval and identical runs
    /// journal identical digests.
    #[test]
    fn identical_runs_journal_identical_digests() {
        let run = || {
            let journal = Rc::new(RefCell::new(RunJournal::new(SimDuration::from_secs(10))));
            let mut m = rig(journal.clone());
            let _ = m.run_until(SimTime::from_secs(60));
            let cks = journal.borrow().checkpoints().to_vec();
            cks
        };
        let a = run();
        let b = run();
        assert_eq!(a.len(), 6);
        assert_eq!(a, b);
        for (i, ck) in a.iter().enumerate() {
            assert_eq!(ck.t, SimTime::from_secs(10 * (i as u64 + 1)));
        }
    }
}
