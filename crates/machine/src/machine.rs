//! The machine executor.
//!
//! A [`Machine`] owns the device models, the shared link, a process table
//! of [`Workload`]s, and an event queue. Running it advances simulated
//! time event by event; between events all power-relevant state is
//! constant, so energy is integrated exactly and published to observers.
//!
//! The executor enforces the paper's power-management regime from
//! Section 3.2 when [`hw560x::PmPolicy::enabled`] is configured: the disk
//! spins down after 10 s of inactivity, the WaveLAN radio sleeps outside
//! RPC/bulk-transfer windows, the display level follows application demand
//! and dims after prolonged user inactivity. With the policy disabled
//! (the paper's "Baseline"), every device idles at full readiness and the
//! display stays bright.

use std::collections::{BTreeMap, VecDeque};

use hw560x::cpu::intensity;
use hw560x::{
    DeviceStates, DiskModel, DiskState, DisplayState, EnergySource, PlatformPower, PlatformSpec,
    PmPolicy, RadioModel,
};
use netsim::{FlowId, LinkFaultTimeline, SharedLink, RPC_LATENCY, WAVELAN_CAPACITY_BPS};
use simcore::event::EventId;
use simcore::{
    EventQueue, SimDuration, SimRng, SimTime, TimeSeries, TraceCategory, TraceEvent, TraceHandle,
};

use crate::activity::{Activity, AdaptDirection, FidelityView, Step};
use crate::energy::{Ledger, RunReport};
use crate::faults::FaultConfig;
use crate::observer::{IntervalObserver, IntervalRecord, ShareEntry};
use crate::workload::Workload;
use crate::{BUCKET_IDLE, BUCKET_KERNEL, BUCKET_ODYSSEY, BUCKET_WAVELAN, BUCKET_X};

/// Round-robin scheduling quantum.
const QUANTUM: SimDuration = SimDuration::from_millis(10);

/// CPU-occupancy fraction stolen by interrupt handling per active transfer
/// (protocol processing of the 2 Mb/s stream), capped below.
const INT_FRAC_PER_TRANSFER: f64 = 0.12;
const INT_FRAC_CAP: f64 = 0.30;

/// CPU-occupancy fraction of the Odyssey viceroy/warden data path while
/// data is moving through it.
const ODYSSEY_FRAC: f64 = 0.05;

/// CPU-occupancy fraction of kernel disk handling while the disk services
/// requests.
const DISK_KERNEL_FRAC: f64 = 0.05;

/// Scales a work duration by the warden's datapath clamp.
fn scale_duration(d: SimDuration, clamp: f64) -> SimDuration {
    if clamp >= 1.0 {
        d
    } else {
        d.mul_f64(clamp)
    }
}

/// Scales a transfer/read size by the warden's datapath clamp, keeping at
/// least one byte so zero-size special cases never appear.
fn scale_bytes(bytes: u64, clamp: f64) -> u64 {
    if clamp >= 1.0 {
        bytes
    } else {
        ((bytes as f64 * clamp).round() as u64).max(1)
    }
}

/// Identifies a process (workload instance) on the machine.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Pid(usize);

impl Pid {
    /// Index into the process table.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Machine configuration.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Platform power model parameters.
    pub spec: PlatformSpec,
    /// Hardware power-management policy.
    pub pm: PmPolicy,
    /// Wireless link capacity, bits per second.
    pub link_bps: f64,
    /// Energy supply.
    pub source: EnergySource,
    /// Constant power drawn by energy monitoring itself, W (Section
    /// 5.1.4: ~10 mW for SmartBattery-class measurement plus ~4 mW for
    /// demand prediction). Zero when no monitor is deployed.
    pub monitor_overhead_w: f64,
    /// Substrate fault model; [`FaultConfig::clean`] (the default)
    /// reproduces the paper's bench conditions exactly.
    pub faults: FaultConfig,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            spec: PlatformSpec::thinkpad_560x(),
            pm: PmPolicy::enabled(),
            link_bps: WAVELAN_CAPACITY_BPS,
            source: EnergySource::External,
            monitor_overhead_w: 0.0,
            faults: FaultConfig::clean(),
        }
    }
}

impl MachineConfig {
    /// The paper's baseline configuration: no hardware power management.
    pub fn baseline() -> Self {
        MachineConfig {
            pm: PmPolicy::disabled(),
            ..Default::default()
        }
    }
}

/// Summary of one process for controllers.
#[derive(Clone, Copy, Debug)]
pub struct ProcessInfo {
    /// Process id.
    pub pid: Pid,
    /// Workload name.
    pub name: &'static str,
    /// Current fidelity.
    pub fidelity: FidelityView,
    /// True once the workload has finished.
    pub done: bool,
    /// True while the process is quarantined by the supervisor.
    pub suspended: bool,
}

/// A controller invoked on a fixed period (the Odyssey viceroy).
pub trait ControlHook {
    /// Called every period with a view of the machine.
    fn on_tick(&mut self, now: SimTime, view: &mut MachineView<'_>);

    /// Encodes the hook's mutable state into a snapshot payload. Hooks
    /// that don't implement the pair make the whole machine
    /// non-freezable — [`Machine::freeze`] surfaces the error and the
    /// caller falls back to replay-based resume.
    fn freeze(&self, w: &mut simcore::SnapshotWriter) -> Result<(), simcore::SnapshotError> {
        let _ = w;
        Err(simcore::SnapshotError::Unsupported(
            "control hook does not implement freeze",
        ))
    }

    /// Restores the state written by [`ControlHook::freeze`] onto this
    /// freshly-rebuilt hook.
    fn thaw(&mut self, r: &mut simcore::SnapshotReader<'_>) -> Result<(), simcore::SnapshotError> {
        let _ = r;
        Err(simcore::SnapshotError::Unsupported(
            "control hook does not implement thaw",
        ))
    }
}

/// Controller-facing view of a running machine.
pub struct MachineView<'a> {
    m: &'a mut Machine,
}

impl std::fmt::Debug for MachineView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MachineView").finish_non_exhaustive()
    }
}

impl MachineView<'_> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.m.clock
    }

    /// Total energy consumed since the run began, J.
    pub fn energy_consumed_j(&self) -> f64 {
        self.m.ledger.total_j()
    }

    /// Energy remaining in the supply as the battery gauge reports it, J
    /// (∞ for an external supply). Under a faulty gauge this is what a
    /// deployed controller would actually see; use
    /// [`MachineView::true_residual_j`] for ground truth.
    pub fn residual_j(&self) -> f64 {
        self.m
            .cfg
            .faults
            .gauge
            .read(self.m.clock, self.m.source.remaining_j())
    }

    /// Ground-truth energy remaining in the supply, J. Only rigs and
    /// tests should read this; controllers see [`MachineView::residual_j`].
    pub fn true_residual_j(&self) -> f64 {
        self.m.source.remaining_j()
    }

    /// Snapshot of all processes.
    pub fn processes(&self) -> Vec<ProcessInfo> {
        self.m
            .procs
            .iter()
            .enumerate()
            .map(|(i, p)| ProcessInfo {
                pid: Pid(i),
                name: p.workload.name(),
                fidelity: p.workload.fidelity(),
                done: matches!(p.state, ProcState::Done),
                suspended: p.suspended,
            })
            .collect()
    }

    /// Issues a fidelity upcall to a process. Returns `true` if the
    /// workload changed level.
    pub fn upcall(&mut self, pid: Pid, dir: AdaptDirection) -> bool {
        let now = self.m.clock;
        let p = &mut self.m.procs[pid.0];
        let changed = p.workload.on_upcall(dir, now);
        if changed {
            let level = p.workload.fidelity().level;
            let name = p.workload.name();
            self.m.fidelity_series[pid.0].record(now, level as f64);
            self.m.trace_emit(TraceEvent::FidelityChange {
                pid: pid.0 as u64,
                name,
                direction: match dir {
                    AdaptDirection::Degrade => "down",
                    AdaptDirection::Upgrade => "up",
                },
                level: level as u64,
            });
        }
        changed
    }

    /// Bytes a process has received over the link so far.
    pub fn bytes_received_of(&self, pid: Pid) -> u64 {
        self.m.procs[pid.0].bytes_received
    }

    /// Goodput of the process's most recent completed receive, bits/s —
    /// the passive bandwidth-supply estimate Odyssey derives from its own
    /// transfers (`None` before the first receive completes).
    pub fn transfer_rate_of(&self, pid: Pid) -> Option<f64> {
        self.m.procs[pid.0].last_transfer_bps
    }

    /// Instant of the process's most recent `poll` — the supervisor's
    /// watchdog signal. A workload that keeps the CPU without yielding
    /// back through `poll` stops advancing this.
    pub fn last_poll_at(&self, pid: Pid) -> SimTime {
        self.m.procs[pid.0].last_poll_at
    }

    /// Cumulative energy attributed to the process's bucket so far, J —
    /// the PowerScope attribution the supervisor cross-checks declared
    /// demand against. Idle (think-time) power is attributed to the Idle
    /// bucket, not the process, so a blocked app reads near zero here
    /// while a hung spin does not.
    pub fn attributed_energy_j(&self, pid: Pid) -> f64 {
        self.m.ledger.bucket_j(self.m.procs[pid.0].workload.name())
    }

    /// The procedure PowerScope attribution bills most of the process's
    /// energy to so far, with that energy, J — the demand-accounting
    /// detail a supervisor cites when it strikes an app whose power
    /// exceeds its declaration. `None` before any energy is attributed.
    pub fn attributed_hot_procedure(&self, pid: Pid) -> Option<(&'static str, f64)> {
        self.m
            .ledger
            .hot_procedure_j(self.m.procs[pid.0].workload.name())
    }

    /// Quarantines a process: aborts any in-flight network attempt,
    /// removes it from the CPU queue, and parks it so it draws no power
    /// until [`MachineView::restart`]. Returns `false` if the process is
    /// already suspended or done.
    pub fn suspend(&mut self, pid: Pid) -> bool {
        self.m.suspend_proc(pid)
    }

    /// Restarts a suspended or crashed process via
    /// [`Workload::on_restart`]. Returns `true` if the workload accepted
    /// the restart and is running again.
    pub fn restart(&mut self, pid: Pid) -> bool {
        self.m.restart_proc(pid)
    }

    /// Sets the warden's datapath clamp for a process: all subsequent CPU
    /// bursts, transfer sizes, and disk reads are scaled by `factor` —
    /// the forced-fidelity response to an app that misdeclares demand.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is in `(0, 1]`.
    pub fn set_datapath_clamp(&mut self, pid: Pid, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0 && factor <= 1.0,
            "invalid datapath clamp: {factor}"
        );
        self.m.procs[pid.0].clamp = factor;
        self.m.trace_emit(TraceEvent::DatapathClamp {
            pid: pid.0 as u64,
            factor,
        });
    }

    /// 64-bit digest of the machine's live state: the clock, supply,
    /// ledger, counters, and every process's state/fidelity. Two runs of
    /// the same configuration digest equal at equal instants iff their
    /// evolution is bit-identical — the checkpoint/resume proof.
    pub fn state_digest(&self) -> u64 {
        self.m.state_digest()
    }

    /// Requests that the run stop after the current event.
    pub fn request_stop(&mut self) {
        self.m.stopped = true;
    }

    /// Emits a trace event at the current clock (no-op when no trace is
    /// attached) — how control-plane hooks report their decisions into
    /// the machine's shared event stream.
    pub fn emit_trace(&mut self, event: TraceEvent) {
        self.m.trace_emit(event);
    }

    /// Whether a trace is attached and records `cat`.
    pub fn trace_enabled(&self, cat: TraceCategory) -> bool {
        self.m.trace_enabled(cat)
    }
}

#[derive(Clone, Copy, Debug)]
struct CpuJob {
    remaining: SimDuration,
    intensity: f64,
    procedure: &'static str,
    /// Attribution override (e.g. the web proxy); defaults to the
    /// workload's own name.
    bucket: Option<&'static str>,
}

#[derive(Clone, Copy, Debug)]
struct RpcPlan {
    request_bytes: u64,
    reply_bytes: u64,
    server_time: SimDuration,
    /// Bulk fetches skip the request/server phases entirely.
    is_bulk: bool,
}

#[derive(Debug)]
enum ProcState {
    Start,
    ReadyCpu(CpuJob),
    NetAwaitTx(RpcPlan),
    NetTx(RpcPlan),
    NetServerWait(RpcPlan),
    NetRx(RpcPlan),
    /// Timed out; waiting out the retry backoff with the radio held open.
    NetBackoff(RpcPlan),
    DiskSpinup {
        bytes: u64,
    },
    DiskBusy,
    Waiting,
    /// Quarantined by the supervisor: parked off every device queue,
    /// drawing no power, until restarted.
    Suspended,
    Done,
}

impl ProcState {
    /// Stable discriminant for state digests.
    fn tag(&self) -> u64 {
        match self {
            ProcState::Start => 0,
            ProcState::ReadyCpu(_) => 1,
            ProcState::NetAwaitTx(_) => 2,
            ProcState::NetTx(_) => 3,
            ProcState::NetServerWait(_) => 4,
            ProcState::NetRx(_) => 5,
            ProcState::NetBackoff(_) => 6,
            ProcState::DiskSpinup { .. } => 7,
            ProcState::DiskBusy => 8,
            ProcState::Waiting => 9,
            ProcState::Suspended => 10,
            ProcState::Done => 11,
        }
    }
}

struct ProcEntry {
    workload: Box<dyn Workload>,
    state: ProcState,
    background: bool,
    /// Bytes this process has received over the link (reply/bulk legs).
    bytes_received: u64,
    /// Goodput of the last completed receive leg, bits/s — the passive
    /// bandwidth-supply estimate the original Odyssey derived from its
    /// RPC transfers.
    last_transfer_bps: Option<f64>,
    /// Attempt number of the RPC in flight (1-based; 0 when idle).
    attempts: u32,
    /// The flow currently on the link for this process, if any.
    flow: Option<FlowId>,
    /// Pending RPC timeout event, cancelled on completion.
    timeout_ev: Option<EventId>,
    /// Pending NetTimer event, cancelled when an attempt is aborted.
    net_timer_ev: Option<EventId>,
    /// Pending Timer (think-time) event, cancelled on suspension.
    wait_timer_ev: Option<EventId>,
    /// Pending NetRetry event, cancelled on suspension.
    retry_ev: Option<EventId>,
    /// True while the supervisor holds this process off the machine.
    suspended: bool,
    /// Datapath clamp in `(0, 1]`: the warden scales this process's CPU
    /// bursts, transfers, and disk reads by this factor (a forced-fidelity
    /// response to misdeclared demand). 1.0 = unclamped.
    clamp: f64,
    /// Instant of the most recent `poll` — the watchdog's liveness signal.
    last_poll_at: SimTime,
    /// True while this foreground process counts toward `alive`.
    alive_counted: bool,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Source {
    Proc(Pid),
    XServer,
}

#[derive(Clone, Copy, Debug)]
enum Event {
    Poll(Pid),
    CpuDone,
    LinkWake,
    NetTimer(Pid),
    Timer(Pid),
    DiskSpinupDone(Pid),
    DiskDone(Pid),
    SpinDownCheck,
    DimCheck,
    HookTick(usize),
    /// The link-fault timeline has a capacity transition now.
    LinkFault,
    /// The RPC in flight for this process has exceeded its timeout.
    RpcTimeout(Pid),
    /// Retry backoff expired; reissue the aborted RPC.
    NetRetry(Pid),
}

struct HookSlot {
    hook: Option<Box<dyn ControlHook>>,
    period: SimDuration,
}

#[derive(Clone, Copy, Debug)]
struct FlowCtx {
    pid: Pid,
    /// Bytes credited to the receiver on completion (0 for request legs).
    rx_bytes: u64,
    started: SimTime,
}

// ---- Snapshot codecs for the private scheduler types -------------------

fn freeze_cpu_job(job: &CpuJob, w: &mut simcore::SnapshotWriter) {
    w.put_duration(job.remaining);
    w.put_f64(job.intensity);
    w.put_str(job.procedure);
    match job.bucket {
        None => w.put_u64(0),
        Some(b) => {
            w.put_u64(1);
            w.put_str(b);
        }
    }
}

fn thaw_cpu_job(r: &mut simcore::SnapshotReader<'_>) -> Result<CpuJob, simcore::SnapshotError> {
    let remaining = r.take_duration()?;
    let intensity = r.take_f64()?;
    if !intensity.is_finite() || !(0.0..=1.0).contains(&intensity) {
        return Err(simcore::SnapshotError::Corrupt("cpu job intensity"));
    }
    let procedure = r.take_static_str()?;
    let bucket = match r.take_u64()? {
        0 => None,
        1 => Some(r.take_static_str()?),
        _ => return Err(simcore::SnapshotError::Corrupt("cpu job bucket tag")),
    };
    Ok(CpuJob {
        remaining,
        intensity,
        procedure,
        bucket,
    })
}

fn freeze_rpc_plan(plan: &RpcPlan, w: &mut simcore::SnapshotWriter) {
    w.put_u64(plan.request_bytes);
    w.put_u64(plan.reply_bytes);
    w.put_duration(plan.server_time);
    w.put_bool(plan.is_bulk);
}

fn thaw_rpc_plan(r: &mut simcore::SnapshotReader<'_>) -> Result<RpcPlan, simcore::SnapshotError> {
    Ok(RpcPlan {
        request_bytes: r.take_u64()?,
        reply_bytes: r.take_u64()?,
        server_time: r.take_duration()?,
        is_bulk: r.take_bool()?,
    })
}

fn freeze_proc_state(state: &ProcState, w: &mut simcore::SnapshotWriter) {
    w.put_u64(state.tag());
    match state {
        ProcState::ReadyCpu(job) => freeze_cpu_job(job, w),
        ProcState::NetAwaitTx(plan)
        | ProcState::NetTx(plan)
        | ProcState::NetServerWait(plan)
        | ProcState::NetRx(plan)
        | ProcState::NetBackoff(plan) => freeze_rpc_plan(plan, w),
        ProcState::DiskSpinup { bytes } => w.put_u64(*bytes),
        ProcState::Start
        | ProcState::DiskBusy
        | ProcState::Waiting
        | ProcState::Suspended
        | ProcState::Done => {}
    }
}

fn thaw_proc_state(
    r: &mut simcore::SnapshotReader<'_>,
) -> Result<ProcState, simcore::SnapshotError> {
    Ok(match r.take_u64()? {
        0 => ProcState::Start,
        1 => ProcState::ReadyCpu(thaw_cpu_job(r)?),
        2 => ProcState::NetAwaitTx(thaw_rpc_plan(r)?),
        3 => ProcState::NetTx(thaw_rpc_plan(r)?),
        4 => ProcState::NetServerWait(thaw_rpc_plan(r)?),
        5 => ProcState::NetRx(thaw_rpc_plan(r)?),
        6 => ProcState::NetBackoff(thaw_rpc_plan(r)?),
        7 => ProcState::DiskSpinup {
            bytes: r.take_u64()?,
        },
        8 => ProcState::DiskBusy,
        9 => ProcState::Waiting,
        10 => ProcState::Suspended,
        11 => ProcState::Done,
        _ => return Err(simcore::SnapshotError::Corrupt("proc state tag")),
    })
}

fn freeze_source(src: Source, w: &mut simcore::SnapshotWriter) {
    match src {
        Source::Proc(pid) => {
            w.put_u64(0);
            w.put_usize(pid.0);
        }
        Source::XServer => w.put_u64(1),
    }
}

fn thaw_source(
    r: &mut simcore::SnapshotReader<'_>,
    n_procs: usize,
) -> Result<Source, simcore::SnapshotError> {
    Ok(match r.take_u64()? {
        0 => {
            let pid = r.take_usize()?;
            if pid >= n_procs {
                return Err(simcore::SnapshotError::Corrupt("source pid out of range"));
            }
            Source::Proc(Pid(pid))
        }
        1 => Source::XServer,
        _ => return Err(simcore::SnapshotError::Corrupt("source tag")),
    })
}

fn freeze_event(ev: &Event, w: &mut simcore::SnapshotWriter) {
    match *ev {
        Event::Poll(pid) => {
            w.put_u64(0);
            w.put_usize(pid.0);
        }
        Event::CpuDone => w.put_u64(1),
        Event::LinkWake => w.put_u64(2),
        Event::NetTimer(pid) => {
            w.put_u64(3);
            w.put_usize(pid.0);
        }
        Event::Timer(pid) => {
            w.put_u64(4);
            w.put_usize(pid.0);
        }
        Event::DiskSpinupDone(pid) => {
            w.put_u64(5);
            w.put_usize(pid.0);
        }
        Event::DiskDone(pid) => {
            w.put_u64(6);
            w.put_usize(pid.0);
        }
        Event::SpinDownCheck => w.put_u64(7),
        Event::DimCheck => w.put_u64(8),
        Event::HookTick(idx) => {
            w.put_u64(9);
            w.put_usize(idx);
        }
        Event::LinkFault => w.put_u64(10),
        Event::RpcTimeout(pid) => {
            w.put_u64(11);
            w.put_usize(pid.0);
        }
        Event::NetRetry(pid) => {
            w.put_u64(12);
            w.put_usize(pid.0);
        }
    }
}

fn thaw_event(
    r: &mut simcore::SnapshotReader<'_>,
    n_procs: usize,
    n_hooks: usize,
) -> Result<Event, simcore::SnapshotError> {
    fn pid(
        r: &mut simcore::SnapshotReader<'_>,
        n_procs: usize,
    ) -> Result<Pid, simcore::SnapshotError> {
        let idx = r.take_usize()?;
        if idx >= n_procs {
            return Err(simcore::SnapshotError::Corrupt("event pid out of range"));
        }
        Ok(Pid(idx))
    }
    let tag = r.take_u64()?;
    Ok(match tag {
        0 => Event::Poll(pid(r, n_procs)?),
        1 => Event::CpuDone,
        2 => Event::LinkWake,
        3 => Event::NetTimer(pid(r, n_procs)?),
        4 => Event::Timer(pid(r, n_procs)?),
        5 => Event::DiskSpinupDone(pid(r, n_procs)?),
        6 => Event::DiskDone(pid(r, n_procs)?),
        7 => Event::SpinDownCheck,
        8 => Event::DimCheck,
        9 => {
            let idx = r.take_usize()?;
            if idx >= n_hooks {
                return Err(simcore::SnapshotError::Corrupt(
                    "hook tick index out of range",
                ));
            }
            Event::HookTick(idx)
        }
        10 => Event::LinkFault,
        11 => Event::RpcTimeout(pid(r, n_procs)?),
        12 => Event::NetRetry(pid(r, n_procs)?),
        _ => return Err(simcore::SnapshotError::Corrupt("event tag")),
    })
}

/// The simulated mobile client.
pub struct Machine {
    cfg: MachineConfig,
    power: PlatformPower,
    clock: SimTime,
    queue: EventQueue<Event>,
    procs: Vec<ProcEntry>,
    fidelity_series: Vec<TimeSeries>,
    alive: usize,
    // CPU scheduler.
    run_queue: VecDeque<Source>,
    x_queue: VecDeque<CpuJob>,
    x_enqueued: bool,
    current: Option<(Source, SimDuration)>,
    // Devices.
    disk: DiskModel,
    radio: RadioModel,
    link: SharedLink,
    link_faults: LinkFaultTimeline,
    flows: BTreeMap<FlowId, FlowCtx>,
    link_event: Option<EventId>,
    rpc_timeouts: u64,
    rpc_retries: u64,
    // Display dimming.
    quiet_since: Option<SimTime>,
    dim_active: bool,
    dim_event: Option<EventId>,
    // Accounting.
    ledger: Ledger,
    source: EnergySource,
    observers: Vec<Box<dyn IntervalObserver>>,
    hooks: Vec<HookSlot>,
    share_buf: Vec<ShareEntry>,
    trace: Option<TraceHandle>,
    stopped: bool,
    exhausted: bool,
    started: bool,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("clock", &self.clock)
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Creates a machine from a configuration.
    pub fn new(cfg: MachineConfig) -> Self {
        let power = PlatformPower::new(cfg.spec.clone());
        let disk = DiskModel::new(cfg.pm.disk_policy(), cfg.spec.disk_spinup_time);
        let radio = RadioModel::new(cfg.pm.radio_policy());
        let link = SharedLink::new(cfg.link_bps);
        let link_faults = cfg
            .faults
            .link
            .compile(&SimRng::new(cfg.faults.seed), cfg.faults.horizon);
        let source = cfg.source;
        Machine {
            cfg,
            power,
            clock: SimTime::ZERO,
            queue: EventQueue::new(),
            procs: Vec::new(),
            fidelity_series: Vec::new(),
            alive: 0,
            run_queue: VecDeque::new(),
            x_queue: VecDeque::new(),
            x_enqueued: false,
            current: None,
            disk,
            radio,
            link,
            link_faults,
            flows: BTreeMap::new(),
            link_event: None,
            rpc_timeouts: 0,
            rpc_retries: 0,
            quiet_since: None,
            dim_active: false,
            dim_event: None,
            ledger: Ledger::default(),
            source,
            observers: Vec::new(),
            hooks: Vec::new(),
            share_buf: Vec::new(),
            trace: None,
            stopped: false,
            exhausted: false,
            started: false,
        }
    }

    /// Attaches a simtrace handle: every load-bearing transition — CPU
    /// dispatch, ledger delta, RPC timeout/retry, link fault, fidelity
    /// change, suspend/restart — is emitted as a typed event from now on.
    /// The handle is shared with the link and exposed to control hooks
    /// through [`MachineView::trace`].
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.link.set_trace(trace.clone());
        self.trace = Some(trace);
    }

    /// Emits `event` at the current clock if a trace is attached.
    fn trace_emit(&self, event: TraceEvent) {
        if let Some(tr) = &self.trace {
            tr.emit(self.clock, event);
        }
    }

    /// Whether a trace is attached and records `cat` (lets hot paths skip
    /// building high-frequency payloads).
    fn trace_enabled(&self, cat: TraceCategory) -> bool {
        self.trace.as_ref().is_some_and(|tr| tr.enabled(cat))
    }

    /// Adds a workload; must be called before the run starts.
    ///
    /// # Panics
    ///
    /// Panics if the run has already started.
    pub fn add_process(&mut self, workload: Box<dyn Workload>) -> Pid {
        self.add_process_inner(workload, false)
    }

    /// Adds a *background* workload: it runs like any other process but
    /// does not keep the machine alive — [`Machine::run`] ends when every
    /// foreground workload finishes (the paper's "background newsfeed"
    /// video in Sections 3.7 and 5).
    ///
    /// # Panics
    ///
    /// Panics if the run has already started.
    pub fn add_background_process(&mut self, workload: Box<dyn Workload>) -> Pid {
        self.add_process_inner(workload, true)
    }

    fn add_process_inner(&mut self, workload: Box<dyn Workload>, background: bool) -> Pid {
        assert!(!self.started, "processes must be added before run()");
        let pid = Pid(self.procs.len());
        let mut series = TimeSeries::new(workload.name());
        series.record(SimTime::ZERO, workload.fidelity().level as f64);
        self.fidelity_series.push(series);
        self.procs.push(ProcEntry {
            workload,
            state: ProcState::Start,
            background,
            bytes_received: 0,
            last_transfer_bps: None,
            attempts: 0,
            flow: None,
            timeout_ev: None,
            net_timer_ev: None,
            wait_timer_ev: None,
            retry_ev: None,
            suspended: false,
            clamp: 1.0,
            last_poll_at: SimTime::ZERO,
            alive_counted: !background,
        });
        if !background {
            self.alive += 1;
        }
        self.queue.push(SimTime::ZERO, Event::Poll(pid));
        pid
    }

    /// Registers an interval observer.
    pub fn add_observer(&mut self, obs: Box<dyn IntervalObserver>) {
        self.observers.push(obs);
    }

    /// Registers a periodic control hook; the first tick fires one period
    /// into the run.
    pub fn add_hook(&mut self, period: SimDuration, hook: Box<dyn ControlHook>) {
        assert!(!period.is_zero(), "hook period must be positive");
        let idx = self.hooks.len();
        self.hooks.push(HookSlot {
            hook: Some(hook),
            period,
        });
        self.queue
            .push(SimTime::ZERO + period, Event::HookTick(idx));
    }

    /// Runs until every workload finishes, a controller stops the run, or
    /// the energy supply is exhausted.
    pub fn run(&mut self) -> RunReport {
        self.run_inner(None)
    }

    /// Runs until `horizon` (or an earlier stop/exhaustion). Unlike
    /// [`Machine::run`], completion of all workloads does not end the run —
    /// useful for measuring background power.
    pub fn run_until(&mut self, horizon: SimTime) -> RunReport {
        self.run_inner(Some(horizon))
    }

    fn run_inner(&mut self, horizon: Option<SimTime>) -> RunReport {
        if !self.started {
            self.started = true;
            // The disk is idle from boot; arm the initial spin-down timer.
            if let Some(dl) = self.disk.spin_down_deadline() {
                self.queue.push(dl, Event::SpinDownCheck);
            }
            // Arm the link-fault timeline.
            if !self.link_faults.is_clean() {
                let f = self.link_faults.capacity_factor_at(SimTime::ZERO);
                self.link.set_rate_factor(SimTime::ZERO, f);
                if let Some(t) = self
                    .link_faults
                    .next_capacity_transition_after(SimTime::ZERO)
                {
                    self.queue.push(t, Event::LinkFault);
                }
            }
        }
        loop {
            if self.stopped {
                break;
            }
            if horizon.is_none() && self.alive == 0 {
                break;
            }
            let Some(t_next) = self.queue.peek_time() else {
                if let Some(h) = horizon {
                    if h > self.clock {
                        self.advance_to(h);
                    }
                }
                break;
            };
            if let Some(h) = horizon {
                if t_next > h {
                    self.advance_to(h);
                    break;
                }
            }
            // simlint: allow(D5) — peek_time just returned Some; the queue cannot be empty here
            let (t, ev) = self.queue.pop().expect("peeked event vanished");
            self.advance_to(t);
            if self.stopped {
                break;
            }
            self.handle(ev);
            self.update_quiet_tracking();
        }
        self.report()
    }

    fn report(&self) -> RunReport {
        RunReport {
            end: self.clock,
            total_j: self.ledger.total_j(),
            buckets: self.ledger.snapshot_buckets(),
            components: self.ledger.components(),
            detail: self.ledger.snapshot_detail(),
            fidelity: self.fidelity_series.clone(),
            exhausted: self.exhausted,
            residual_j: self.source.remaining_j(),
            bytes_carried: self.link.total_bytes_carried(),
            rpc_timeouts: self.rpc_timeouts,
            rpc_retries: self.rpc_retries,
        }
    }

    // ---- Energy integration -------------------------------------------

    fn device_states(&self) -> (DeviceStates, f64) {
        let cpu_load = self.fill_share_buf_load();
        (
            DeviceStates {
                display: self.display_state(),
                disk: self.disk.state(),
                radio: self.radio.state(),
                cpu_load,
            },
            cpu_load,
        )
    }

    /// Populates `share_buf` and returns the effective CPU load.
    fn fill_share_buf_load(&self) -> f64 {
        // `share_buf` is logically mutable scratch; interior mutation is
        // routed through `advance_to`, which owns `&mut self`. Here we only
        // compute the load; the share vector is built in `advance_to`.
        let transfers = self.link.active_count();
        let int_frac = if transfers > 0 {
            (INT_FRAC_PER_TRANSFER * transfers as f64).min(INT_FRAC_CAP)
        } else {
            0.0
        };
        let ody_frac = if transfers > 0 { ODYSSEY_FRAC } else { 0.0 };
        let disk_busy = matches!(self.disk.state(), DiskState::Active | DiskState::SpinningUp);
        let kern_frac = if disk_busy { DISK_KERNEL_FRAC } else { 0.0 };
        let main_frac = 1.0 - int_frac - ody_frac - kern_frac;
        let mut load = int_frac * intensity::KERNEL_INTERRUPT
            + ody_frac * intensity::ODYSSEY
            + kern_frac * intensity::KERNEL_INTERRUPT;
        if let Some((src, _)) = self.current {
            let job_intensity = match src {
                Source::Proc(pid) => match &self.procs[pid.0].state {
                    ProcState::ReadyCpu(job) => job.intensity,
                    _ => 0.0,
                },
                Source::XServer => self.x_queue.front().map(|j| j.intensity).unwrap_or(0.0),
            };
            load += main_frac * job_intensity;
        }
        load
    }

    fn build_shares(&mut self) {
        self.share_buf.clear();
        let transfers = self.link.active_count();
        let int_frac = if transfers > 0 {
            (INT_FRAC_PER_TRANSFER * transfers as f64).min(INT_FRAC_CAP)
        } else {
            0.0
        };
        let ody_frac = if transfers > 0 { ODYSSEY_FRAC } else { 0.0 };
        let disk_busy = matches!(self.disk.state(), DiskState::Active | DiskState::SpinningUp);
        let kern_frac = if disk_busy { DISK_KERNEL_FRAC } else { 0.0 };
        let main_frac = 1.0 - int_frac - ody_frac - kern_frac;
        match self.current {
            Some((Source::Proc(pid), _)) => {
                let p = &self.procs[pid.0];
                let (procedure, bucket) = match &p.state {
                    ProcState::ReadyCpu(job) => {
                        (job.procedure, job.bucket.unwrap_or(p.workload.name()))
                    }
                    _ => ("unknown", p.workload.name()),
                };
                self.share_buf.push(ShareEntry {
                    bucket,
                    procedure,
                    fraction: main_frac,
                });
            }
            Some((Source::XServer, _)) => self.share_buf.push(ShareEntry {
                bucket: BUCKET_X,
                procedure: "render",
                fraction: main_frac,
            }),
            None => self.share_buf.push(ShareEntry {
                bucket: BUCKET_IDLE,
                procedure: "idle_hlt",
                fraction: main_frac,
            }),
        }
        if int_frac > 0.0 {
            self.share_buf.push(ShareEntry {
                bucket: BUCKET_WAVELAN,
                procedure: "wavelan_intr",
                fraction: int_frac,
            });
        }
        if ody_frac > 0.0 {
            self.share_buf.push(ShareEntry {
                bucket: BUCKET_ODYSSEY,
                procedure: "viceroy_datapath",
                fraction: ody_frac,
            });
        }
        if kern_frac > 0.0 {
            self.share_buf.push(ShareEntry {
                bucket: BUCKET_KERNEL,
                procedure: "disk_intr",
                fraction: kern_frac,
            });
        }
    }

    fn display_state(&self) -> DisplayState {
        if !self.cfg.pm.enabled {
            return DisplayState::Bright;
        }
        let mut need = DisplayState::Off;
        for p in &self.procs {
            if !matches!(p.state, ProcState::Done | ProcState::Suspended) {
                need = need.max(p.workload.display_need());
            }
        }
        if self.dim_active && need == DisplayState::Bright {
            DisplayState::Dim
        } else {
            need
        }
    }

    fn advance_to(&mut self, t: SimTime) {
        if t <= self.clock {
            return;
        }
        let (states, _) = self.device_states();
        self.build_shares();
        let mut breakdown = self.power.breakdown(&states);
        // Monitoring hardware draws a constant trickle, booked as base.
        breakdown.base_w += self.cfg.monitor_overhead_w;
        let power_w = breakdown.total_w();
        let mut t1 = t;
        let dt = t.since(self.clock).as_secs_f64();
        let needed = power_w * dt;
        let mut ran_dry = false;
        if self.source.remaining_j() < needed {
            // The supply runs out mid-interval; integrate only to the
            // exhaustion instant and stop the run.
            let live = (self.source.remaining_j() / power_w).max(0.0);
            t1 = self.clock + SimDuration::from_secs_f64(live);
            self.exhausted = true;
            self.stopped = true;
            ran_dry = true;
        }
        let dt1 = t1.since(self.clock).as_secs_f64();
        if dt1 > 0.0 {
            self.source.drain(power_w * dt1);
            self.ledger.add(dt1, power_w, &breakdown, &self.share_buf);
            if self.trace_enabled(TraceCategory::Energy) {
                if let Some(tr) = &self.trace {
                    // Mirror the ledger's per-share arithmetic exactly, so
                    // summing a run's deltas reproduces its bucket totals
                    // bit for bit.
                    let energy = power_w * dt1;
                    for s in &self.share_buf {
                        tr.emit(
                            t1,
                            TraceEvent::EnergyDelta {
                                bucket: s.bucket,
                                energy_j: energy * s.fraction,
                            },
                        );
                    }
                }
            }
            let rec = IntervalRecord {
                t0: self.clock,
                t1,
                power_w,
                breakdown,
                states,
                shares: &self.share_buf,
            };
            for obs in &mut self.observers {
                obs.on_interval(&rec);
            }
        }
        self.clock = t1;
        if ran_dry {
            self.trace_emit(TraceEvent::SupplyExhausted {
                residual_j: self.source.remaining_j(),
            });
        }
    }

    // ---- Event handling ------------------------------------------------

    fn handle(&mut self, ev: Event) {
        match ev {
            Event::Poll(pid) => self.do_poll(pid),
            Event::CpuDone => self.on_cpu_done(),
            Event::LinkWake => self.on_link_wake(),
            Event::NetTimer(pid) => self.on_net_timer(pid),
            Event::Timer(pid) => {
                self.procs[pid.0].wait_timer_ev = None;
                // A timer surviving a suspend/restart cycle is stale;
                // only a Waiting process wakes on it.
                if matches!(self.procs[pid.0].state, ProcState::Waiting) {
                    self.schedule_poll(pid);
                }
            }
            Event::DiskSpinupDone(pid) => self.on_disk_spinup(pid),
            Event::DiskDone(pid) => self.on_disk_done(pid),
            Event::SpinDownCheck => {
                if !self.disk.try_spin_down(self.clock) {
                    if let Some(dl) = self.disk.spin_down_deadline() {
                        if dl > self.clock {
                            self.queue.push(dl, Event::SpinDownCheck);
                        }
                    }
                }
            }
            Event::DimCheck => {
                self.dim_event = None;
                if let Some(s) = self.quiet_since {
                    if self.clock.saturating_since(s) >= self.cfg.pm.display_dim_after {
                        self.dim_active = true;
                    }
                }
            }
            Event::HookTick(i) => self.on_hook_tick(i),
            Event::LinkFault => self.on_link_fault(),
            Event::RpcTimeout(pid) => self.on_rpc_timeout(pid),
            Event::NetRetry(pid) => self.on_net_retry(pid),
        }
    }

    fn schedule_poll(&mut self, pid: Pid) {
        if self.procs[pid.0].suspended {
            // A device operation finished while the process was being
            // quarantined; park instead of polling.
            self.procs[pid.0].state = ProcState::Suspended;
            return;
        }
        self.procs[pid.0].state = ProcState::Start;
        self.queue.push(self.clock, Event::Poll(pid));
    }

    fn do_poll(&mut self, pid: Pid) {
        if self.procs[pid.0].suspended {
            self.procs[pid.0].state = ProcState::Suspended;
            return;
        }
        self.procs[pid.0].last_poll_at = self.clock;
        let mut budget = 10_000u32;
        loop {
            budget -= 1;
            assert!(budget > 0, "workload {pid:?} livelocked at zero time");
            let now = self.clock;
            let clamp = self.procs[pid.0].clamp;
            let step = self.procs[pid.0].workload.poll(now);
            match step {
                Step::Done => {
                    self.procs[pid.0].state = ProcState::Done;
                    self.release_alive(pid);
                    break;
                }
                Step::Run(Activity::Cpu {
                    duration,
                    intensity,
                    procedure,
                })
                | Step::Run(Activity::CpuAs {
                    duration,
                    intensity,
                    procedure,
                    ..
                }) => {
                    let bucket = match step {
                        Step::Run(Activity::CpuAs { bucket, .. }) => Some(bucket),
                        _ => None,
                    };
                    assert!(
                        (0.0..=1.0).contains(&intensity),
                        "invalid intensity {intensity}"
                    );
                    let duration = scale_duration(duration, clamp);
                    if duration.is_zero() {
                        continue;
                    }
                    self.procs[pid.0].state = ProcState::ReadyCpu(CpuJob {
                        remaining: duration,
                        intensity,
                        procedure,
                        bucket,
                    });
                    self.run_queue.push_back(Source::Proc(pid));
                    self.dispatch();
                    break;
                }
                Step::Run(Activity::XRender { cost }) => {
                    let cost = scale_duration(cost, clamp);
                    if !cost.is_zero() {
                        self.x_queue.push_back(CpuJob {
                            remaining: cost,
                            intensity: intensity::X_RENDER,
                            procedure: "render",
                            bucket: None,
                        });
                        if !self.x_enqueued {
                            self.x_enqueued = true;
                            self.run_queue.push_back(Source::XServer);
                        }
                        self.dispatch();
                    }
                    continue;
                }
                Step::Run(Activity::Rpc { spec, procedure: _ }) => {
                    self.radio.open_window();
                    self.procs[pid.0].attempts = 1;
                    self.begin_attempt(
                        pid,
                        RpcPlan {
                            request_bytes: spec.request_bytes,
                            reply_bytes: scale_bytes(spec.reply_bytes, clamp),
                            server_time: spec.server_time,
                            is_bulk: false,
                        },
                    );
                    break;
                }
                Step::Run(Activity::BulkFetch {
                    bytes,
                    procedure: _,
                }) => {
                    self.radio.open_window();
                    self.procs[pid.0].attempts = 1;
                    self.begin_attempt(
                        pid,
                        RpcPlan {
                            request_bytes: 0,
                            reply_bytes: scale_bytes(bytes, clamp),
                            server_time: SimDuration::ZERO,
                            is_bulk: true,
                        },
                    );
                    break;
                }
                Step::Run(Activity::DiskRead {
                    bytes,
                    procedure: _,
                }) => {
                    let bytes = scale_bytes(bytes, clamp);
                    let delay = self.disk.begin_access(now);
                    if delay.is_zero() {
                        let t = self.disk_transfer_time(bytes);
                        self.procs[pid.0].state = ProcState::DiskBusy;
                        self.queue.push(now + t, Event::DiskDone(pid));
                    } else {
                        self.procs[pid.0].state = ProcState::DiskSpinup { bytes };
                        self.queue.push(now + delay, Event::DiskSpinupDone(pid));
                    }
                    break;
                }
                Step::Run(Activity::Wait { until }) => {
                    if until <= now {
                        continue;
                    }
                    self.procs[pid.0].state = ProcState::Waiting;
                    self.procs[pid.0].wait_timer_ev =
                        Some(self.queue.push(until, Event::Timer(pid)));
                    break;
                }
            }
        }
    }

    fn disk_transfer_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.cfg.spec.disk_rate_bps)
            .max(SimDuration::from_micros(100))
    }

    // ---- Supervision primitives ----------------------------------------

    /// Releases this process's claim on `alive` (once).
    fn release_alive(&mut self, pid: Pid) {
        let p = &mut self.procs[pid.0];
        if p.alive_counted {
            p.alive_counted = false;
            self.alive -= 1;
        }
    }

    /// Re-acquires the `alive` claim for a restarted foreground process.
    fn acquire_alive(&mut self, pid: Pid) {
        let p = &mut self.procs[pid.0];
        if !p.background && !p.alive_counted {
            p.alive_counted = true;
            self.alive += 1;
        }
    }

    fn suspend_proc(&mut self, pid: Pid) -> bool {
        if self.procs[pid.0].suspended || matches!(self.procs[pid.0].state, ProcState::Done) {
            return false;
        }
        self.procs[pid.0].suspended = true;
        for ev in [
            self.procs[pid.0].timeout_ev.take(),
            self.procs[pid.0].net_timer_ev.take(),
            self.procs[pid.0].wait_timer_ev.take(),
            self.procs[pid.0].retry_ev.take(),
        ]
        .into_iter()
        .flatten()
        {
            self.queue.cancel(ev);
        }
        let running = matches!(self.current, Some((Source::Proc(q), _)) if q == pid);
        match self.procs[pid.0].state {
            ProcState::NetTx(_) | ProcState::NetRx(_) => {
                if let Some(flow) = self.procs[pid.0].flow.take() {
                    self.flows.remove(&flow);
                    self.link.cancel_flow(self.clock, flow);
                    self.relink();
                }
                self.radio.end_transfer();
                self.radio.close_window();
                self.procs[pid.0].attempts = 0;
                self.procs[pid.0].state = ProcState::Suspended;
            }
            ProcState::NetAwaitTx(_) | ProcState::NetServerWait(_) | ProcState::NetBackoff(_) => {
                // No transfer is active in these phases, but the radio
                // window opened at issue is still held; release it.
                self.radio.close_window();
                self.procs[pid.0].attempts = 0;
                self.procs[pid.0].state = ProcState::Suspended;
            }
            ProcState::ReadyCpu(_) if running => {
                // Mid-slice on the CPU: the quantum finishes (at most
                // 10 ms away) and `on_cpu_done` parks the process.
            }
            ProcState::ReadyCpu(_) => {
                self.run_queue.retain(|s| *s != Source::Proc(pid));
                self.procs[pid.0].state = ProcState::Suspended;
            }
            ProcState::DiskSpinup { .. } | ProcState::DiskBusy => {
                // Let the disk operation complete so the disk model's
                // accounting stays consistent; the post-op poll parks.
            }
            ProcState::Waiting | ProcState::Start => {
                self.procs[pid.0].state = ProcState::Suspended;
            }
            ProcState::Suspended | ProcState::Done => unreachable!("filtered above"),
        }
        self.release_alive(pid);
        self.trace_emit(TraceEvent::Suspend {
            pid: pid.0 as u64,
            name: self.procs[pid.0].workload.name(),
        });
        true
    }

    fn restart_proc(&mut self, pid: Pid) -> bool {
        let restartable =
            self.procs[pid.0].suspended || matches!(self.procs[pid.0].state, ProcState::Done);
        if !restartable {
            return false;
        }
        let now = self.clock;
        if !self.procs[pid.0].workload.on_restart(now) {
            return false;
        }
        self.procs[pid.0].suspended = false;
        self.procs[pid.0].attempts = 0;
        self.procs[pid.0].state = ProcState::Start;
        self.queue.push(now, Event::Poll(pid));
        self.acquire_alive(pid);
        let level = self.procs[pid.0].workload.fidelity().level as f64;
        self.fidelity_series[pid.0].record(now, level);
        self.trace_emit(TraceEvent::Restart {
            pid: pid.0 as u64,
            name: self.procs[pid.0].workload.name(),
        });
        true
    }

    /// 64-bit digest of the machine's live state; see
    /// [`MachineView::state_digest`].
    pub fn state_digest(&self) -> u64 {
        let mut h = simcore::SnapshotHasher::new();
        h.write_u64(self.clock.as_micros());
        h.write_f64(self.ledger.total_j());
        h.write_f64(self.source.remaining_j());
        h.write_u64(self.exhausted as u64);
        h.write_u64(self.rpc_timeouts);
        h.write_u64(self.rpc_retries);
        h.write_u64(self.link.total_bytes_carried());
        let c = self.ledger.components();
        for v in [
            c.display_j,
            c.disk_j,
            c.radio_j,
            c.cpu_j,
            c.base_j,
            c.superlinear_j,
        ] {
            h.write_f64(v);
        }
        h.write_u64(self.procs.len() as u64);
        for p in &self.procs {
            h.write_u64(p.state.tag());
            let f = p.workload.fidelity();
            h.write_u64(f.level as u64);
            h.write_u64(f.levels as u64);
            h.write_u64(p.bytes_received);
            h.write_u64(p.attempts as u64);
            h.write_u64(p.suspended as u64);
            h.write_f64(p.clamp);
            h.write_u64(p.last_poll_at.as_micros());
            match p.last_transfer_bps {
                None => h.write_u64(0),
                Some(bps) => {
                    h.write_u64(1);
                    h.write_f64(bps);
                }
            }
        }
        h.finish()
    }

    // ---- Snapshot freeze/thaw ------------------------------------------

    /// Encodes the machine's full mutable state into a snapshot payload,
    /// in struct-field order. Construction-time state (config, power
    /// model, compiled fault timeline, trace attachment) is not written:
    /// thaw targets a machine freshly rebuilt from the identical
    /// configuration.
    ///
    /// Fails with [`SnapshotError::Unsupported`] when any attached
    /// workload or hook lacks a freeze implementation, or when interval
    /// observers are attached (observers accumulate state the machine
    /// cannot see) — the caller then falls back to replay-based resume.
    ///
    /// [`SnapshotError::Unsupported`]: simcore::SnapshotError::Unsupported
    pub fn freeze(&self, w: &mut simcore::SnapshotWriter) -> Result<(), simcore::SnapshotError> {
        if !self.observers.is_empty() {
            return Err(simcore::SnapshotError::Unsupported(
                "machine with interval observers",
            ));
        }
        w.put_time(self.clock);
        let entries = self.queue.export_entries();
        w.put_u64(self.queue.next_seq());
        w.put_usize(entries.len());
        for (at, seq, ev) in entries {
            w.put_time(at);
            w.put_u64(seq);
            freeze_event(ev, w);
        }
        w.put_usize(self.procs.len());
        for p in &self.procs {
            p.workload.freeze(w)?;
            freeze_proc_state(&p.state, w);
            w.put_u64(p.bytes_received);
            w.put_opt_f64(p.last_transfer_bps);
            w.put_u64(p.attempts as u64);
            w.put_opt_u64(p.flow.map(FlowId::raw));
            w.put_opt_u64(p.timeout_ev.map(EventId::raw));
            w.put_opt_u64(p.net_timer_ev.map(EventId::raw));
            w.put_opt_u64(p.wait_timer_ev.map(EventId::raw));
            w.put_opt_u64(p.retry_ev.map(EventId::raw));
            w.put_bool(p.suspended);
            w.put_f64(p.clamp);
            w.put_time(p.last_poll_at);
            w.put_bool(p.alive_counted);
        }
        for s in &self.fidelity_series {
            s.freeze_into(w);
        }
        w.put_usize(self.alive);
        w.put_usize(self.run_queue.len());
        for src in &self.run_queue {
            freeze_source(*src, w);
        }
        w.put_usize(self.x_queue.len());
        for job in &self.x_queue {
            freeze_cpu_job(job, w);
        }
        w.put_bool(self.x_enqueued);
        match self.current {
            None => w.put_u64(0),
            Some((src, slice)) => {
                w.put_u64(1);
                freeze_source(src, w);
                w.put_duration(slice);
            }
        }
        self.disk.freeze_into(w);
        self.radio.freeze_into(w);
        self.link.freeze_into(w);
        w.put_usize(self.flows.len());
        for (id, ctx) in &self.flows {
            w.put_u64(id.raw());
            w.put_usize(ctx.pid.0);
            w.put_u64(ctx.rx_bytes);
            w.put_time(ctx.started);
        }
        w.put_opt_u64(self.link_event.map(EventId::raw));
        w.put_u64(self.rpc_timeouts);
        w.put_u64(self.rpc_retries);
        w.put_opt_time(self.quiet_since);
        w.put_bool(self.dim_active);
        w.put_opt_u64(self.dim_event.map(EventId::raw));
        self.ledger.freeze_into(w);
        match self.source {
            EnergySource::External => w.put_u64(0),
            EnergySource::Battery { remaining_j } => {
                w.put_u64(1);
                w.put_f64(remaining_j);
            }
        }
        w.put_usize(self.hooks.len());
        for slot in &self.hooks {
            match &slot.hook {
                Some(hook) => hook.freeze(w)?,
                None => {
                    return Err(simcore::SnapshotError::Unsupported(
                        "freeze during hook tick",
                    ))
                }
            }
        }
        w.put_bool(self.stopped);
        w.put_bool(self.exhausted);
        w.put_bool(self.started);
        Ok(())
    }

    /// Restores the state written by [`Machine::freeze`] onto this
    /// machine, which must have been freshly rebuilt from the identical
    /// configuration (same processes, hooks, and config, not yet run).
    ///
    /// On error the machine may be partially mutated — callers must
    /// discard it and fall back to replay.
    pub fn thaw(
        &mut self,
        r: &mut simcore::SnapshotReader<'_>,
    ) -> Result<(), simcore::SnapshotError> {
        if !self.observers.is_empty() {
            return Err(simcore::SnapshotError::Unsupported(
                "machine with interval observers",
            ));
        }
        let n_procs = self.procs.len();
        let n_hooks = self.hooks.len();
        self.clock = r.take_time()?;
        let next_seq = r.take_u64()?;
        let n_events = r.take_usize()?;
        let mut entries = Vec::with_capacity(n_events.min(1024));
        for _ in 0..n_events {
            let at = r.take_time()?;
            let seq = r.take_u64()?;
            entries.push((at, seq, thaw_event(r, n_procs, n_hooks)?));
        }
        self.queue = EventQueue::restore(next_seq, entries)?;
        if r.take_usize()? != n_procs {
            return Err(simcore::SnapshotError::Corrupt("process count mismatch"));
        }
        for p in &mut self.procs {
            p.workload.thaw(r)?;
            p.state = thaw_proc_state(r)?;
            p.bytes_received = r.take_u64()?;
            p.last_transfer_bps = r.take_opt_f64()?;
            p.attempts = u32::try_from(r.take_u64()?)
                .map_err(|_| simcore::SnapshotError::Corrupt("attempt count"))?;
            p.flow = r.take_opt_u64()?.map(FlowId::from_raw);
            p.timeout_ev = r.take_opt_u64()?.map(EventId::from_raw);
            p.net_timer_ev = r.take_opt_u64()?.map(EventId::from_raw);
            p.wait_timer_ev = r.take_opt_u64()?.map(EventId::from_raw);
            p.retry_ev = r.take_opt_u64()?.map(EventId::from_raw);
            p.suspended = r.take_bool()?;
            let clamp = r.take_f64()?;
            if !clamp.is_finite() || clamp <= 0.0 || clamp > 1.0 {
                return Err(simcore::SnapshotError::Corrupt("datapath clamp"));
            }
            p.clamp = clamp;
            p.last_poll_at = r.take_time()?;
            p.alive_counted = r.take_bool()?;
        }
        for s in &mut self.fidelity_series {
            *s = TimeSeries::thaw_from(r)?;
        }
        let alive = r.take_usize()?;
        if alive != self.procs.iter().filter(|p| p.alive_counted).count() {
            return Err(simcore::SnapshotError::Corrupt("alive count mismatch"));
        }
        self.alive = alive;
        let n_run = r.take_usize()?;
        self.run_queue.clear();
        for _ in 0..n_run {
            self.run_queue.push_back(thaw_source(r, n_procs)?);
        }
        let n_x = r.take_usize()?;
        self.x_queue.clear();
        for _ in 0..n_x {
            self.x_queue.push_back(thaw_cpu_job(r)?);
        }
        self.x_enqueued = r.take_bool()?;
        self.current = match r.take_u64()? {
            0 => None,
            1 => {
                let src = thaw_source(r, n_procs)?;
                let slice = r.take_duration()?;
                Some((src, slice))
            }
            _ => return Err(simcore::SnapshotError::Corrupt("current tag")),
        };
        self.disk.thaw_from(r)?;
        self.radio.thaw_from(r)?;
        self.link.thaw_from(r)?;
        let n_flows = r.take_usize()?;
        self.flows.clear();
        for _ in 0..n_flows {
            let id = FlowId::from_raw(r.take_u64()?);
            let pid = r.take_usize()?;
            if pid >= n_procs {
                return Err(simcore::SnapshotError::Corrupt("flow pid out of range"));
            }
            let rx_bytes = r.take_u64()?;
            let started = r.take_time()?;
            self.flows.insert(
                id,
                FlowCtx {
                    pid: Pid(pid),
                    rx_bytes,
                    started,
                },
            );
        }
        self.link_event = r.take_opt_u64()?.map(EventId::from_raw);
        self.rpc_timeouts = r.take_u64()?;
        self.rpc_retries = r.take_u64()?;
        self.quiet_since = r.take_opt_time()?;
        self.dim_active = r.take_bool()?;
        self.dim_event = r.take_opt_u64()?.map(EventId::from_raw);
        self.ledger = Ledger::thaw_from(r)?;
        self.source = match r.take_u64()? {
            0 => EnergySource::External,
            1 => {
                let remaining_j = r.take_f64()?;
                if !remaining_j.is_finite() || remaining_j < 0.0 {
                    return Err(simcore::SnapshotError::Corrupt("battery residual"));
                }
                EnergySource::Battery { remaining_j }
            }
            _ => return Err(simcore::SnapshotError::Corrupt("energy source tag")),
        };
        if r.take_usize()? != n_hooks {
            return Err(simcore::SnapshotError::Corrupt("hook count mismatch"));
        }
        for slot in &mut self.hooks {
            match &mut slot.hook {
                Some(hook) => hook.thaw(r)?,
                None => return Err(simcore::SnapshotError::Unsupported("thaw during hook tick")),
            }
        }
        self.stopped = r.take_bool()?;
        self.exhausted = r.take_bool()?;
        self.started = r.take_bool()?;
        Ok(())
    }

    // ---- CPU scheduler --------------------------------------------------

    fn dispatch(&mut self) {
        if self.current.is_some() {
            return;
        }
        while let Some(src) = self.run_queue.pop_front() {
            let remaining = match src {
                Source::Proc(pid) => match &self.procs[pid.0].state {
                    ProcState::ReadyCpu(job) => job.remaining,
                    // The process left the CPU path (should not happen);
                    // skip defensively.
                    _ => continue,
                },
                Source::XServer => match self.x_queue.front() {
                    Some(job) => job.remaining,
                    None => {
                        self.x_enqueued = false;
                        continue;
                    }
                },
            };
            let slice = remaining.min(QUANTUM);
            if self.trace_enabled(TraceCategory::Sched) {
                if let Source::Proc(pid) = src {
                    if let ProcState::ReadyCpu(job) = &self.procs[pid.0].state {
                        let procedure = job.procedure;
                        self.trace_emit(TraceEvent::SchedDispatch {
                            pid: pid.0 as u64,
                            procedure,
                        });
                    }
                }
            }
            self.current = Some((src, slice));
            self.queue.push(self.clock + slice, Event::CpuDone);
            return;
        }
    }

    fn on_cpu_done(&mut self) {
        // simlint: allow(D5) — CpuDone is only scheduled while a slice is running
        let (src, slice) = self.current.take().expect("CpuDone without current");
        match src {
            Source::Proc(pid) => {
                let finished = {
                    let ProcState::ReadyCpu(job) = &mut self.procs[pid.0].state else {
                        panic!("running process not in ReadyCpu state");
                    };
                    job.remaining = job.remaining.saturating_sub(slice);
                    job.remaining.is_zero()
                };
                if self.procs[pid.0].suspended {
                    // Quarantined mid-slice: park instead of re-queueing.
                    self.procs[pid.0].state = ProcState::Suspended;
                } else if finished {
                    self.schedule_poll(pid);
                } else {
                    self.run_queue.push_back(src);
                }
            }
            Source::XServer => {
                let front = self
                    .x_queue
                    .front_mut()
                    // simlint: allow(D5) — scheduler invariant: the X source only runs with queued jobs
                    .expect("X running with empty queue");
                front.remaining = front.remaining.saturating_sub(slice);
                if front.remaining.is_zero() {
                    self.x_queue.pop_front();
                }
                if self.x_queue.is_empty() {
                    self.x_enqueued = false;
                } else {
                    self.run_queue.push_back(Source::XServer);
                }
            }
        }
        self.dispatch();
    }

    // ---- Network ---------------------------------------------------------

    fn relink(&mut self) {
        if let Some(id) = self.link_event.take() {
            self.queue.cancel(id);
        }
        if let Some((t, _)) = self.link.next_completion(self.clock) {
            self.link_event = Some(self.queue.push(t, Event::LinkWake));
        }
    }

    /// Launches one RPC attempt: arms the media-access timer (inflated by
    /// any active latency spike) and, under a retry policy, the attempt's
    /// timeout. The caller sets `attempts` and holds the radio window.
    fn begin_attempt(&mut self, pid: Pid, plan: RpcPlan) {
        let now = self.clock;
        let lat = RPC_LATENCY + self.link_faults.extra_latency_at(now);
        self.procs[pid.0].state = if plan.is_bulk {
            ProcState::NetServerWait(plan)
        } else {
            ProcState::NetAwaitTx(plan)
        };
        self.procs[pid.0].net_timer_ev = Some(self.queue.push(now + lat, Event::NetTimer(pid)));
        if let Some(policy) = self.cfg.faults.rpc {
            self.procs[pid.0].timeout_ev = Some(
                self.queue
                    .push(now + policy.timeout, Event::RpcTimeout(pid)),
            );
        }
    }

    fn on_net_timer(&mut self, pid: Pid) {
        self.procs[pid.0].net_timer_ev = None;
        let state = std::mem::replace(&mut self.procs[pid.0].state, ProcState::Start);
        match state {
            ProcState::NetAwaitTx(plan) => {
                let flow = self.link.start_flow(self.clock, plan.request_bytes.max(1));
                self.flows.insert(
                    flow,
                    FlowCtx {
                        pid,
                        rx_bytes: 0,
                        started: self.clock,
                    },
                );
                self.procs[pid.0].flow = Some(flow);
                self.radio.begin_transfer();
                self.procs[pid.0].state = ProcState::NetTx(plan);
                self.relink();
            }
            ProcState::NetServerWait(plan) => {
                let flow = self.link.start_flow(self.clock, plan.reply_bytes.max(1));
                self.flows.insert(
                    flow,
                    FlowCtx {
                        pid,
                        rx_bytes: plan.reply_bytes,
                        started: self.clock,
                    },
                );
                self.procs[pid.0].flow = Some(flow);
                self.radio.begin_transfer();
                self.procs[pid.0].state = ProcState::NetRx(plan);
                self.relink();
            }
            other => panic!("NetTimer in unexpected state {other:?}"),
        }
    }

    // ---- Fault handling ---------------------------------------------------

    /// Applies the link-fault timeline's capacity factor at the current
    /// instant and re-arms both the completion event (shares changed) and
    /// the next fault transition.
    fn on_link_fault(&mut self) {
        let f = self.link_faults.capacity_factor_at(self.clock);
        self.link.set_rate_factor(self.clock, f);
        self.relink();
        if let Some(t) = self.link_faults.next_capacity_transition_after(self.clock) {
            self.queue.push(t, Event::LinkFault);
        }
    }

    /// Aborts the RPC attempt in flight for `pid` and parks the process in
    /// backoff. Partial transfer progress is lost — the retry resends from
    /// scratch — and the radio window stays open throughout, so every
    /// retry costs real energy.
    fn on_rpc_timeout(&mut self, pid: Pid) {
        self.procs[pid.0].timeout_ev = None;
        let state = std::mem::replace(&mut self.procs[pid.0].state, ProcState::Start);
        let plan = match state {
            ProcState::NetAwaitTx(p) | ProcState::NetServerWait(p) => {
                // The attempt is still in a media-access wait; disarm it.
                if let Some(id) = self.procs[pid.0].net_timer_ev.take() {
                    self.queue.cancel(id);
                }
                p
            }
            ProcState::NetTx(p) | ProcState::NetRx(p) => {
                if let Some(flow) = self.procs[pid.0].flow.take() {
                    self.flows.remove(&flow);
                    self.link.cancel_flow(self.clock, flow);
                    self.relink();
                }
                self.radio.end_transfer();
                p
            }
            // The RPC completed at this very instant; nothing to abort.
            other => {
                self.procs[pid.0].state = other;
                return;
            }
        };
        self.rpc_timeouts += 1;
        self.trace_emit(TraceEvent::RpcTimeout {
            pid: pid.0 as u64,
            name: self.procs[pid.0].workload.name(),
            attempt: self.procs[pid.0].attempts as u64 + 1,
        });
        // simlint: allow(D5) — RpcTimeout events are only scheduled when a retry policy exists
        let policy = self.cfg.faults.rpc.expect("RpcTimeout without a policy");
        let backoff = policy.backoff_after(self.procs[pid.0].attempts);
        self.procs[pid.0].state = ProcState::NetBackoff(plan);
        self.procs[pid.0].retry_ev =
            Some(self.queue.push(self.clock + backoff, Event::NetRetry(pid)));
    }

    fn on_net_retry(&mut self, pid: Pid) {
        self.procs[pid.0].retry_ev = None;
        let state = std::mem::replace(&mut self.procs[pid.0].state, ProcState::Start);
        let ProcState::NetBackoff(plan) = state else {
            // Stale retry after a suspend/restart cycle.
            self.procs[pid.0].state = state;
            return;
        };
        self.rpc_retries += 1;
        self.procs[pid.0].attempts += 1;
        self.trace_emit(TraceEvent::RpcRetry {
            pid: pid.0 as u64,
            name: self.procs[pid.0].workload.name(),
            attempt: self.procs[pid.0].attempts as u64 + 1,
        });
        self.begin_attempt(pid, plan);
    }

    fn on_link_wake(&mut self) {
        self.link_event = None;
        self.link.advance(self.clock);
        while let Some(flow) = self.link.take_completed() {
            // simlint: allow(D5) — every completed flow was registered by start_flow
            let ctx = self.flows.remove(&flow).expect("completed unknown flow");
            let pid = ctx.pid;
            self.procs[pid.0].flow = None;
            if ctx.rx_bytes > 0 {
                self.procs[pid.0].bytes_received += ctx.rx_bytes;
                let secs = self.clock.since(ctx.started).as_secs_f64();
                if secs > 0.0 {
                    self.procs[pid.0].last_transfer_bps = Some(ctx.rx_bytes as f64 * 8.0 / secs);
                }
            }
            self.radio.end_transfer();
            let state = std::mem::replace(&mut self.procs[pid.0].state, ProcState::Start);
            match state {
                ProcState::NetTx(plan) => {
                    self.procs[pid.0].state = ProcState::NetServerWait(plan);
                    let lat = RPC_LATENCY + self.link_faults.extra_latency_at(self.clock);
                    self.procs[pid.0].net_timer_ev = Some(
                        self.queue
                            .push(self.clock + plan.server_time + lat, Event::NetTimer(pid)),
                    );
                }
                ProcState::NetRx(_) => {
                    if let Some(id) = self.procs[pid.0].timeout_ev.take() {
                        self.queue.cancel(id);
                    }
                    self.procs[pid.0].attempts = 0;
                    self.radio.close_window();
                    self.schedule_poll(pid);
                }
                other => panic!("flow completion in unexpected state {other:?}"),
            }
        }
        self.relink();
    }

    // ---- Disk -------------------------------------------------------------

    fn on_disk_spinup(&mut self, pid: Pid) {
        self.disk.spinup_complete(self.clock);
        let ProcState::DiskSpinup { bytes } = self.procs[pid.0].state else {
            panic!("DiskSpinupDone in unexpected state");
        };
        let t = self.disk_transfer_time(bytes);
        self.procs[pid.0].state = ProcState::DiskBusy;
        self.queue.push(self.clock + t, Event::DiskDone(pid));
    }

    fn on_disk_done(&mut self, pid: Pid) {
        self.disk.end_access(self.clock);
        if let Some(dl) = self.disk.spin_down_deadline() {
            self.queue.push(dl, Event::SpinDownCheck);
        }
        self.schedule_poll(pid);
    }

    // ---- Hooks -------------------------------------------------------------

    fn on_hook_tick(&mut self, i: usize) {
        // simlint: allow(D5) — hooks are leased out one tick at a time; re-entry is a bug worth crashing on
        let mut hook = self.hooks[i].hook.take().expect("hook re-entered");
        let now = self.clock;
        hook.on_tick(now, &mut MachineView { m: self });
        self.hooks[i].hook = Some(hook);
        if !self.stopped {
            let period = self.hooks[i].period;
            self.queue.push(now + period, Event::HookTick(i));
        }
    }

    // ---- Display dim tracking ------------------------------------------------

    fn is_quiet(&self) -> bool {
        if self.current.is_some() || !self.x_queue.is_empty() || self.link.active_count() > 0 {
            return false;
        }
        self.procs.iter().all(|p| {
            matches!(
                p.state,
                ProcState::Waiting | ProcState::Done | ProcState::Suspended
            )
        })
    }

    fn update_quiet_tracking(&mut self) {
        if !self.cfg.pm.enabled {
            return;
        }
        let quiet = self.is_quiet();
        match (quiet, self.quiet_since) {
            (true, None) => {
                self.quiet_since = Some(self.clock);
                let at = self.clock + self.cfg.pm.display_dim_after;
                self.dim_event = Some(self.queue.push(at, Event::DimCheck));
            }
            (false, Some(_)) => {
                self.quiet_since = None;
                self.dim_active = false;
                if let Some(id) = self.dim_event.take() {
                    self.queue.cancel(id);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::CheckpointHook;
    use crate::workload::ScriptedWorkload;
    use netsim::RpcSpec;
    use simcore::RunJournal;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn idle_machine(pm: PmPolicy) -> Machine {
        Machine::new(MachineConfig {
            pm,
            ..Default::default()
        })
    }

    /// A rig that keeps events, flows, a disk read, and a hook in flight
    /// across the freeze instant.
    fn snapshot_rig() -> (Machine, Rc<RefCell<RunJournal>>) {
        let mut m = idle_machine(PmPolicy::enabled());
        m.add_process(Box::new(ScriptedWorkload::new(
            "mix",
            vec![
                Activity::Cpu {
                    duration: SimDuration::from_secs(3),
                    intensity: 0.8,
                    procedure: "warm",
                },
                Activity::Rpc {
                    spec: RpcSpec {
                        request_bytes: 10_000,
                        reply_bytes: 200_000,
                        server_time: SimDuration::from_millis(300),
                    },
                    procedure: "fetch",
                },
                Activity::DiskRead {
                    bytes: 4 << 20,
                    procedure: "load",
                },
                Activity::Wait {
                    until: SimTime::from_secs(40),
                },
                Activity::Cpu {
                    duration: SimDuration::from_secs(2),
                    intensity: 1.0,
                    procedure: "finish",
                },
            ],
        )));
        m.add_process(Box::new(ScriptedWorkload::idle_for(
            "bg",
            SimDuration::from_secs(80),
        )));
        let journal = Rc::new(RefCell::new(RunJournal::new(SimDuration::from_secs(10))));
        m.add_hook(
            SimDuration::from_secs(10),
            Box::new(CheckpointHook::new(journal.clone())),
        );
        (m, journal)
    }

    /// Freeze at an arbitrary mid-run instant, thaw onto an identically
    /// built rig, and continue: the restored machine's present and future
    /// are bit-identical to a run that paused at the same instant.
    ///
    /// Both runs stop at the freeze boundary: energy integration splits an
    /// interval there, and f64 accumulation is not associative, so digest
    /// equivalence is defined over runs with identical horizon stops (the
    /// serving layer always steps at sample boundaries on both paths).
    #[test]
    fn freeze_thaw_round_trip_preserves_future() {
        let (mut base, base_journal) = snapshot_rig();
        let _ = base.run_until(SimTime::from_secs(7));
        let base_report = base.run_until(SimTime::from_secs(90));
        let want = base.state_digest();

        let (mut m, _journal) = snapshot_rig();
        let _ = m.run_until(SimTime::from_secs(7));
        let mut w = simcore::SnapshotWriter::new();
        m.freeze(&mut w).expect("freeze");
        let bytes = w.seal();
        let mid = m.state_digest();

        let (mut restored, restored_journal) = snapshot_rig();
        let mut r = simcore::SnapshotReader::open(&bytes).expect("open");
        restored.thaw(&mut r).expect("thaw");
        r.finish().expect("payload fully consumed");
        assert_eq!(restored.state_digest(), mid, "state restored exactly");

        let restored_report = restored.run_until(SimTime::from_secs(90));
        assert_eq!(restored.state_digest(), want, "future identical");
        assert_eq!(
            restored_journal.borrow().checkpoints(),
            base_journal.borrow().checkpoints(),
            "checkpoint hook state carried through the snapshot"
        );
        assert!(
            (restored_report.total_j - base_report.total_j).abs() < 1e-9,
            "ledger carried through the snapshot: {} vs {}",
            restored_report.total_j,
            base_report.total_j
        );
    }

    /// A freeze taken while observers are attached is refused (the caller
    /// falls back to replay), and corrupted payload interiors surface as
    /// errors rather than panics.
    #[test]
    fn freeze_refuses_observers_and_thaw_rejects_bad_interiors() {
        let (mut m, _j) = snapshot_rig();
        let _ = m.run_until(SimTime::from_secs(7));
        let mut w = simcore::SnapshotWriter::new();
        m.freeze(&mut w).expect("freeze");
        let payload_len = w.len();
        let bytes = w.seal();

        // Flip one byte in every interior position: thaw must never panic,
        // and must either fail or produce a digest mismatch the caller
        // detects. (The envelope checksum catches all of these; bypassing
        // it is exercised at the simcore layer.)
        let header = bytes.len() - payload_len - 8;
        for i in (header..header + payload_len).step_by(97) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                simcore::SnapshotReader::open(&bad).is_err(),
                "checksum must catch interior flip at {i}"
            );
        }

        let (mut observed, _j2) = snapshot_rig();
        observed.add_observer(Box::new(crate::observer::EnergyProbe::new()));
        let mut w2 = simcore::SnapshotWriter::new();
        assert!(matches!(
            observed.freeze(&mut w2),
            Err(simcore::SnapshotError::Unsupported(_))
        ));
    }

    /// A 10-second empty run with PM disabled must cost exactly the
    /// full-on idle power (display bright, disk and radio idle): 102.8 J.
    #[test]
    fn idle_baseline_power_is_full_on() {
        let mut m = idle_machine(PmPolicy::disabled());
        let report = m.run_until(SimTime::from_secs(10));
        assert!(
            (report.total_j - 102.8).abs() < 0.1,
            "got {} J",
            report.total_j
        );
        assert_eq!(report.bucket_j(BUCKET_IDLE), report.total_j);
    }

    /// With PM enabled and no workloads, devices sleep and the display is
    /// off (no demand): ≈ 3.47 W.
    #[test]
    fn idle_pm_power_is_all_off() {
        let mut m = idle_machine(PmPolicy::enabled());
        let report = m.run_until(SimTime::from_secs(100));
        let avg = report.total_j / 100.0;
        // Display off (no demand), disk and radio in standby: ≈ 3.47 W.
        assert!((3.4..=3.6).contains(&avg), "avg power {avg}");
    }

    /// A single CPU burst: duration is respected and energy is attributed
    /// to the process.
    #[test]
    fn cpu_burst_accounting() {
        let mut m = idle_machine(PmPolicy::disabled());
        m.add_process(Box::new(ScriptedWorkload::new(
            "burner",
            vec![Activity::Cpu {
                duration: SimDuration::from_secs(5),
                intensity: 1.0,
                procedure: "spin",
            }],
        )));
        let report = m.run();
        assert!(
            (report.duration_s() - 5.0).abs() < 0.01,
            "end {}",
            report.end
        );
        // Full-on idle 10.28 W + 9.5 W CPU + superlinearity on the CPU.
        let expected_power = 10.28 + 9.5 * (1.0 + 0.0299);
        assert!(
            (report.total_j - expected_power * 5.0).abs() < 0.5,
            "total {} vs expected {}",
            report.total_j,
            expected_power * 5.0
        );
        let burner = report.bucket_j("burner");
        assert!(
            (burner - report.total_j).abs() < 1e-6,
            "all energy attributed to the running process"
        );
        assert_eq!(report.detail[0].process, "burner");
        assert_eq!(report.detail[0].procedure, "spin");
        assert!((report.detail[0].cpu_secs - 5.0).abs() < 0.01);
    }

    /// Two equal CPU-bound processes share the CPU round-robin: both
    /// finish at ~2x their solo time, and split the energy evenly.
    #[test]
    fn round_robin_sharing() {
        let mut m = idle_machine(PmPolicy::disabled());
        for name in ["a", "b"] {
            m.add_process(Box::new(ScriptedWorkload::new(
                name,
                vec![Activity::Cpu {
                    duration: SimDuration::from_secs(2),
                    intensity: 1.0,
                    procedure: "spin",
                }],
            )));
        }
        let report = m.run();
        assert!((report.duration_s() - 4.0).abs() < 0.05);
        let a = report.bucket_j("a");
        let b = report.bucket_j("b");
        assert!((a - b).abs() < 0.5, "a={a} b={b}");
    }

    /// An RPC blocks the caller for at least the physical minimum and the
    /// radio sleeps before/after under PM.
    #[test]
    fn rpc_timing_and_radio_windows() {
        let spec = RpcSpec {
            request_bytes: 25_000,
            reply_bytes: 250_000,
            server_time: SimDuration::from_millis(500),
        };
        let mut m = idle_machine(PmPolicy::enabled());
        m.add_process(Box::new(
            ScriptedWorkload::new(
                "client",
                vec![Activity::Rpc {
                    spec,
                    procedure: "fetch",
                }],
            )
            .with_display(DisplayState::Off),
        ));
        let report = m.run();
        let min = spec
            .min_duration(WAVELAN_CAPACITY_BPS, RPC_LATENCY)
            .as_secs_f64();
        assert!(
            report.duration_s() >= min - 1e-6,
            "RPC faster than physics: {} < {min}",
            report.duration_s()
        );
        assert!(report.duration_s() < min + 0.1);
        // Energy was attributed to WaveLAN interrupts and Odyssey during
        // the transfer phases.
        assert!(report.bucket_j(BUCKET_WAVELAN) > 0.0);
        assert!(report.bucket_j(BUCKET_ODYSSEY) > 0.0);
    }

    /// A bulk fetch takes bytes/bandwidth and drives radio-active power.
    #[test]
    fn bulk_fetch_duration() {
        let mut m = idle_machine(PmPolicy::enabled());
        m.add_process(Box::new(ScriptedWorkload::new(
            "dl",
            vec![Activity::BulkFetch {
                bytes: 500_000, // 2 s at 2 Mb/s.
                procedure: "fetch",
            }],
        )));
        let report = m.run();
        assert!(
            (report.duration_s() - 2.0).abs() < 0.05,
            "{}",
            report.duration_s()
        );
        assert_eq!(report.bytes_carried, 500_000);
    }

    /// Wait (think time) is attributed to Idle.
    #[test]
    fn think_time_is_idle() {
        let mut m = idle_machine(PmPolicy::disabled());
        m.add_process(Box::new(ScriptedWorkload::new(
            "thinker",
            vec![Activity::Wait {
                until: SimTime::from_secs(5),
            }],
        )));
        let report = m.run();
        assert!((report.bucket_j(BUCKET_IDLE) - report.total_j).abs() < 1e-9);
    }

    /// Under PM, a long think period dims the display after the timeout.
    #[test]
    fn display_dims_after_inactivity() {
        let mut m = idle_machine(PmPolicy::enabled());
        m.add_process(Box::new(ScriptedWorkload::new(
            "reader",
            vec![Activity::Wait {
                until: SimTime::from_secs(30),
            }],
        )));
        let report = m.run();
        // 10 s bright (4.54 W) then 20 s dim (2.066 W) on the display.
        let expected_display = 10.0 * 4.54 + 20.0 * 2.066;
        assert!(
            (report.components.display_j - expected_display).abs() < 0.5,
            "display {} vs {}",
            report.components.display_j,
            expected_display
        );
    }

    /// Without PM the display never dims.
    #[test]
    fn display_never_dims_at_baseline() {
        let mut m = idle_machine(PmPolicy::disabled());
        m.add_process(Box::new(ScriptedWorkload::new(
            "reader",
            vec![Activity::Wait {
                until: SimTime::from_secs(30),
            }],
        )));
        let report = m.run();
        assert!((report.components.display_j - 30.0 * 4.54).abs() < 0.01);
    }

    /// Disk reads spin the disk up from standby and back down after the
    /// spin-down timeout.
    #[test]
    fn disk_spin_cycle() {
        let mut m = idle_machine(PmPolicy::enabled());
        m.add_process(Box::new(
            ScriptedWorkload::new(
                "dbuser",
                vec![
                    Activity::Wait {
                        until: SimTime::from_secs(20),
                    },
                    Activity::DiskRead {
                        bytes: 3_000_000, // 1 s at 3 MB/s.
                        procedure: "read_model",
                    },
                    Activity::Wait {
                        until: SimTime::from_secs(60),
                    },
                ],
            )
            .with_display(DisplayState::Off),
        ));
        let report = m.run();
        // Timeline: standby 0-20 (the PM disk starts spun down), spin-up
        // 20-21.5, active 21.5-22.5, idle 22.5-32.5, standby 32.5-60.
        let d = report.components.disk_j;
        let expected = 20.0 * 0.24 + 1.5 * 3.0 + 1.0 * 2.25 + 10.0 * 0.95 + 27.5 * 0.24;
        assert!(
            (d - expected).abs() < 1.0,
            "disk energy {d} vs expected {expected}"
        );
        assert!((report.duration_s() - 60.0).abs() < 0.01);
    }

    /// XRender work is attributed to the X Server bucket and does not
    /// block the submitting process.
    #[test]
    fn x_server_accounting() {
        let mut m = idle_machine(PmPolicy::disabled());
        m.add_process(Box::new(ScriptedWorkload::new(
            "app",
            vec![
                Activity::XRender {
                    cost: SimDuration::from_secs(1),
                },
                Activity::Wait {
                    until: SimTime::from_secs(4),
                },
            ],
        )));
        let report = m.run();
        assert!((report.duration_s() - 4.0).abs() < 0.01);
        assert!(report.bucket_j(BUCKET_X) > 0.0);
        let x_detail = report
            .detail
            .iter()
            .find(|d| d.process == BUCKET_X)
            .unwrap();
        assert!((x_detail.cpu_secs - 1.0).abs() < 0.02);
    }

    /// A finite battery stops the run at the exhaustion instant.
    #[test]
    fn battery_exhaustion_stops_run() {
        let mut m = Machine::new(MachineConfig {
            pm: PmPolicy::disabled(),
            source: EnergySource::battery(102.8), // exactly 10 s of idle.
            ..Default::default()
        });
        m.add_process(Box::new(ScriptedWorkload::new(
            "idler",
            vec![Activity::Wait {
                until: SimTime::from_secs(100),
            }],
        )));
        let report = m.run();
        assert!(report.exhausted);
        assert!(
            (report.duration_s() - 10.0).abs() < 0.05,
            "died at {}",
            report.duration_s()
        );
        // Exhaustion time is rounded to the microsecond grid, so a few
        // µJ may remain.
        assert!(report.residual_j.abs() < 1e-3);
    }

    /// Hooks fire on their period and can stop the run.
    #[test]
    fn hook_ticks_and_stop() {
        struct Stopper {
            ticks: usize,
        }
        impl ControlHook for Stopper {
            fn on_tick(&mut self, _now: SimTime, view: &mut MachineView<'_>) {
                self.ticks += 1;
                if self.ticks == 5 {
                    view.request_stop();
                }
            }
        }
        let mut m = idle_machine(PmPolicy::disabled());
        m.add_hook(SimDuration::from_secs(1), Box::new(Stopper { ticks: 0 }));
        let report = m.run_until(SimTime::from_secs(100));
        assert!((report.duration_s() - 5.0).abs() < 1e-6);
    }

    /// Upcalls reach the workload and fidelity changes are recorded.
    #[test]
    fn upcall_changes_are_recorded() {
        struct Adaptive {
            level: usize,
            until: SimTime,
        }
        impl Workload for Adaptive {
            fn name(&self) -> &'static str {
                "adaptive"
            }
            fn poll(&mut self, now: SimTime) -> Step {
                if now >= self.until {
                    Step::Done
                } else {
                    Step::Run(Activity::Wait { until: self.until })
                }
            }
            fn fidelity(&self) -> FidelityView {
                FidelityView::new(self.level, 3)
            }
            fn on_upcall(&mut self, dir: AdaptDirection, _now: SimTime) -> bool {
                match dir {
                    AdaptDirection::Degrade if self.level > 0 => {
                        self.level -= 1;
                        true
                    }
                    AdaptDirection::Upgrade if self.level < 2 => {
                        self.level += 1;
                        true
                    }
                    _ => false,
                }
            }
        }
        struct Degrader;
        impl ControlHook for Degrader {
            fn on_tick(&mut self, _now: SimTime, view: &mut MachineView<'_>) {
                let procs = view.processes();
                if let Some(p) = procs.iter().find(|p| p.fidelity.can_degrade()) {
                    view.upcall(p.pid, AdaptDirection::Degrade);
                }
            }
        }
        let mut m = idle_machine(PmPolicy::disabled());
        m.add_process(Box::new(Adaptive {
            level: 2,
            until: SimTime::from_secs(10),
        }));
        m.add_hook(SimDuration::from_secs(2), Box::new(Degrader));
        let report = m.run();
        assert_eq!(report.adaptations_of("adaptive"), 2);
        let series = &report.fidelity[0];
        assert_eq!(series.value_at(SimTime::from_secs(1)), Some(2.0));
        assert_eq!(series.value_at(SimTime::from_secs(9)), Some(0.0));
    }

    /// Observer totals agree with the ledger exactly.
    #[test]
    fn observer_conservation() {
        use crate::observer::EnergyProbe;
        // EnergyProbe asserts interval sanity internally; share totals and
        // energy must match the report.
        struct Probe(std::rc::Rc<std::cell::RefCell<EnergyProbe>>);
        impl IntervalObserver for Probe {
            fn on_interval(&mut self, rec: &IntervalRecord<'_>) {
                self.0.borrow_mut().on_interval(rec);
            }
        }
        let shared = std::rc::Rc::new(std::cell::RefCell::new(EnergyProbe::new()));
        let mut m = idle_machine(PmPolicy::enabled());
        m.add_observer(Box::new(Probe(shared.clone())));
        m.add_process(Box::new(ScriptedWorkload::new(
            "mixed",
            vec![
                Activity::Cpu {
                    duration: SimDuration::from_millis(500),
                    intensity: 0.7,
                    procedure: "work",
                },
                Activity::BulkFetch {
                    bytes: 100_000,
                    procedure: "fetch",
                },
                Activity::Wait {
                    until: SimTime::from_secs(3),
                },
            ],
        )));
        let report = m.run();
        let observed = shared.borrow().total_j();
        assert!(
            (observed - report.total_j).abs() < 1e-9,
            "observer {observed} vs ledger {}",
            report.total_j
        );
    }

    /// Bucket energies always sum to the total.
    #[test]
    fn buckets_sum_to_total() {
        let mut m = idle_machine(PmPolicy::enabled());
        m.add_process(Box::new(ScriptedWorkload::new(
            "w",
            vec![
                Activity::Cpu {
                    duration: SimDuration::from_millis(300),
                    intensity: 1.0,
                    procedure: "a",
                },
                Activity::BulkFetch {
                    bytes: 50_000,
                    procedure: "b",
                },
                Activity::XRender {
                    cost: SimDuration::from_millis(100),
                },
                Activity::Wait {
                    until: SimTime::from_secs(2),
                },
            ],
        )));
        let report = m.run();
        let sum: f64 = report.buckets.iter().map(|(_, e)| e).sum();
        assert!((sum - report.total_j).abs() < 1e-6);
        let comp = report.components.total_j();
        assert!((comp - report.total_j).abs() < 1e-6);
    }

    /// run_until integrates the tail even with no events pending.
    #[test]
    fn run_until_covers_tail() {
        let mut m = idle_machine(PmPolicy::disabled());
        m.add_process(Box::new(ScriptedWorkload::new(
            "quick",
            vec![Activity::Cpu {
                duration: SimDuration::from_millis(100),
                intensity: 1.0,
                procedure: "x",
            }],
        )));
        let report = m.run_until(SimTime::from_secs(10));
        assert!((report.duration_s() - 10.0).abs() < 1e-6);
    }

    /// Monitoring overhead is booked as base power.
    #[test]
    fn monitor_overhead_is_accounted() {
        let mut m = Machine::new(MachineConfig {
            pm: PmPolicy::disabled(),
            monitor_overhead_w: 0.014,
            ..Default::default()
        });
        m.add_process(Box::new(ScriptedWorkload::idle_for(
            "w",
            SimDuration::from_secs(100),
        )));
        let report = m.run();
        // 100 s of full-on idle plus 1.4 J of monitoring.
        assert!(
            (report.total_j - (1028.0 + 1.4)).abs() < 0.5,
            "total {}",
            report.total_j
        );
    }

    /// Under heavy outages the retry policy aborts and reissues RPCs; the
    /// workload still completes, and the retries cost real energy.
    #[test]
    fn rpc_retries_survive_outages_and_cost_energy() {
        use crate::faults::{FaultConfig, RpcPolicy};
        use hw560x::BatteryGauge;
        use netsim::LinkFaultPlan;
        use simcore::FaultPlan;

        let fetch = || {
            Box::new(
                ScriptedWorkload::new(
                    "dl",
                    vec![Activity::BulkFetch {
                        bytes: 250_000, // 1 s at 2 Mb/s when clean.
                        procedure: "fetch",
                    }],
                )
                .with_display(DisplayState::Off),
            )
        };
        let clean_j = {
            let mut m = idle_machine(PmPolicy::enabled());
            m.add_process(fetch());
            m.run().total_j
        };
        let mut saw_timeout = false;
        for seed in 0..12 {
            let faults = FaultConfig {
                seed,
                horizon: SimTime::from_secs(600),
                link: LinkFaultPlan {
                    // Outage-dominated link: ~5 s outages every ~3 s quiet.
                    outage: Some(FaultPlan::new(
                        SimDuration::from_secs(3),
                        SimDuration::from_secs(5),
                    )),
                    dip: None,
                    latency: None,
                },
                rpc: Some(RpcPolicy::standard()),
                gauge: BatteryGauge::ideal(),
            };
            let mut m = Machine::new(MachineConfig {
                faults,
                ..Default::default()
            });
            m.add_process(fetch());
            let report = m.run();
            assert_eq!(report.rpc_retries, report.rpc_timeouts);
            if report.rpc_timeouts > 0 {
                saw_timeout = true;
                assert!(
                    report.total_j > clean_j,
                    "retries must cost energy: {} vs clean {clean_j}",
                    report.total_j
                );
                assert!(report.duration_s() > 1.0);
            }
        }
        assert!(saw_timeout, "no seed in 0..12 produced a timeout");
    }

    /// The controller sees the gauge's lie; the report keeps ground truth.
    #[test]
    fn gauge_distorts_controller_view_only() {
        use crate::faults::FaultConfig;
        use hw560x::BatteryGauge;

        struct Reader {
            gauged: f64,
            truth: f64,
        }
        impl ControlHook for Reader {
            fn on_tick(&mut self, _now: SimTime, view: &mut MachineView<'_>) {
                self.gauged = view.residual_j();
                self.truth = view.true_residual_j();
                view.request_stop();
            }
        }
        let shared = std::rc::Rc::new(std::cell::RefCell::new(Reader {
            gauged: 0.0,
            truth: 0.0,
        }));
        struct Probe(std::rc::Rc<std::cell::RefCell<Reader>>);
        impl ControlHook for Probe {
            fn on_tick(&mut self, now: SimTime, view: &mut MachineView<'_>) {
                self.0.borrow_mut().on_tick(now, view);
            }
        }
        let mut m = Machine::new(MachineConfig {
            pm: PmPolicy::disabled(),
            source: EnergySource::battery(10_000.0),
            faults: FaultConfig {
                gauge: BatteryGauge::hostile(3, 1.0),
                ..FaultConfig::clean()
            },
            ..Default::default()
        });
        m.add_hook(SimDuration::from_secs(60), Box::new(Probe(shared.clone())));
        let _ = m.run_until(SimTime::from_secs(600));
        let r = shared.borrow();
        // 60 s of full-on idle (10.28 W) leaves ~9383 J; the hostile gauge
        // reads ~20% high plus 30 J of drift.
        assert!((r.truth - (10_000.0 - 60.0 * 10.28)).abs() < 5.0);
        assert!(r.gauged > r.truth + 1_000.0, "gauge should lie high");
    }

    #[test]
    #[should_panic(expected = "before run")]
    fn add_process_after_start_panics() {
        let mut m = idle_machine(PmPolicy::disabled());
        let _ = m.run_until(SimTime::from_secs(1));
        m.add_process(Box::new(ScriptedWorkload::new("late", vec![])));
    }
}
