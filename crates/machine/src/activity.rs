//! Activities: the phases a workload executes.
//!
//! A workload describes its execution as a pull-mode sequence of phases.
//! Each phase maps onto machine resources the way the paper's applications
//! do: Xanim alternates `BulkFetch` (stream video data through Odyssey),
//! `Cpu` (decode), `XRender` (display) and `Wait` (frame pacing); Janus is
//! one long `Cpu` burst; Anvil is an `Rpc` (fetch the map) followed by
//! `Cpu` (rasterise), `XRender` and a think-time `Wait`.

use netsim::RpcSpec;
use simcore::{SimDuration, SimTime};

/// One phase of a workload's execution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Activity {
    /// Burn CPU for `duration` (of dedicated CPU time) at the given
    /// workload `intensity`, attributed to `procedure`.
    Cpu {
        /// CPU time required.
        duration: SimDuration,
        /// Power intensity in `[0, 1]` (see `hw560x::cpu`).
        intensity: f64,
        /// Procedure label for profiling.
        procedure: &'static str,
    },
    /// Burn CPU attributed to a different bucket than the workload's own
    /// process — e.g. the web browser's local proxy, or the Janus library
    /// the speech front-end links against, which the paper's profiles
    /// show as separate processes.
    CpuAs {
        /// Bucket (process name) to attribute to.
        bucket: &'static str,
        /// CPU time required.
        duration: SimDuration,
        /// Power intensity in `[0, 1]`.
        intensity: f64,
        /// Procedure label for profiling.
        procedure: &'static str,
    },
    /// Hand a rendering job to the X server and continue immediately.
    XRender {
        /// X server CPU time required.
        cost: SimDuration,
    },
    /// Perform a remote procedure call; blocks until the reply arrives.
    /// The radio stays awake for the whole window.
    Rpc {
        /// Payload sizes and server residence time.
        spec: RpcSpec,
        /// Procedure label for profiling.
        procedure: &'static str,
    },
    /// Receive `bytes` of streamed data; blocks until complete.
    BulkFetch {
        /// Bytes to receive.
        bytes: u64,
        /// Procedure label for profiling.
        procedure: &'static str,
    },
    /// Read `bytes` from the local disk; blocks until complete (including
    /// any spin-up from standby).
    DiskRead {
        /// Bytes to read.
        bytes: u64,
        /// Procedure label for profiling.
        procedure: &'static str,
    },
    /// Block until `until` (frame pacing, user think time). Think time is
    /// attributed to Idle, matching the paper's treatment of it as part of
    /// the application's execution whose energy shows up in the idle state.
    Wait {
        /// Wake-up instant.
        until: SimTime,
    },
}

impl Activity {
    /// Convenience constructor for a wait of `d` starting at `now`.
    pub fn wait_for(now: SimTime, d: SimDuration) -> Activity {
        Activity::Wait { until: now + d }
    }

    /// Encodes the activity into a snapshot payload.
    pub fn freeze_into(&self, w: &mut simcore::SnapshotWriter) {
        match *self {
            Activity::Cpu {
                duration,
                intensity,
                procedure,
            } => {
                w.put_u64(0);
                w.put_duration(duration);
                w.put_f64(intensity);
                w.put_str(procedure);
            }
            Activity::CpuAs {
                bucket,
                duration,
                intensity,
                procedure,
            } => {
                w.put_u64(1);
                w.put_str(bucket);
                w.put_duration(duration);
                w.put_f64(intensity);
                w.put_str(procedure);
            }
            Activity::XRender { cost } => {
                w.put_u64(2);
                w.put_duration(cost);
            }
            Activity::Rpc { spec, procedure } => {
                w.put_u64(3);
                w.put_u64(spec.request_bytes);
                w.put_u64(spec.reply_bytes);
                w.put_duration(spec.server_time);
                w.put_str(procedure);
            }
            Activity::BulkFetch { bytes, procedure } => {
                w.put_u64(4);
                w.put_u64(bytes);
                w.put_str(procedure);
            }
            Activity::DiskRead { bytes, procedure } => {
                w.put_u64(5);
                w.put_u64(bytes);
                w.put_str(procedure);
            }
            Activity::Wait { until } => {
                w.put_u64(6);
                w.put_time(until);
            }
        }
    }

    /// Decodes an activity written by [`Self::freeze_into`].
    pub fn thaw_from(
        r: &mut simcore::SnapshotReader<'_>,
    ) -> Result<Activity, simcore::SnapshotError> {
        Ok(match r.take_u64()? {
            0 => Activity::Cpu {
                duration: r.take_duration()?,
                intensity: r.take_f64()?,
                procedure: r.take_static_str()?,
            },
            1 => Activity::CpuAs {
                bucket: r.take_static_str()?,
                duration: r.take_duration()?,
                intensity: r.take_f64()?,
                procedure: r.take_static_str()?,
            },
            2 => Activity::XRender {
                cost: r.take_duration()?,
            },
            3 => Activity::Rpc {
                spec: RpcSpec {
                    request_bytes: r.take_u64()?,
                    reply_bytes: r.take_u64()?,
                    server_time: r.take_duration()?,
                },
                procedure: r.take_static_str()?,
            },
            4 => Activity::BulkFetch {
                bytes: r.take_u64()?,
                procedure: r.take_static_str()?,
            },
            5 => Activity::DiskRead {
                bytes: r.take_u64()?,
                procedure: r.take_static_str()?,
            },
            6 => Activity::Wait {
                until: r.take_time()?,
            },
            _ => return Err(simcore::SnapshotError::Corrupt("activity tag")),
        })
    }
}

/// What a workload does next.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Step {
    /// Execute this activity.
    Run(Activity),
    /// The workload has finished.
    Done,
}

/// Direction of an Odyssey fidelity upcall.
///
/// The paper's Odyssey notifies an application when the energy balance
/// leaves its expectation window; the application responds by moving one
/// step down (or up) its own fidelity scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdaptDirection {
    /// Reduce fidelity to save energy.
    Degrade,
    /// Restore fidelity; energy is plentiful.
    Upgrade,
}

/// A workload's position on its fidelity scale.
///
/// Level `levels - 1` is full fidelity; level 0 is the lowest the
/// application supports. Non-adaptive workloads report a single level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FidelityView {
    /// Current level (0 = lowest fidelity).
    pub level: usize,
    /// Number of levels (≥ 1).
    pub levels: usize,
}

impl FidelityView {
    /// A non-adaptive workload: one fixed level.
    pub fn fixed() -> FidelityView {
        FidelityView {
            level: 0,
            levels: 1,
        }
    }

    /// Creates a view.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is zero or `level` is out of range.
    pub fn new(level: usize, levels: usize) -> FidelityView {
        assert!(levels >= 1 && level < levels, "invalid fidelity view");
        FidelityView { level, levels }
    }

    /// True if the workload can degrade further.
    pub fn can_degrade(&self) -> bool {
        self.level > 0
    }

    /// True if the workload can upgrade further.
    pub fn can_upgrade(&self) -> bool {
        self.level + 1 < self.levels
    }

    /// True at full fidelity.
    pub fn is_full(&self) -> bool {
        self.level + 1 == self.levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_for_adds_duration() {
        let now = SimTime::from_secs(10);
        let a = Activity::wait_for(now, SimDuration::from_secs(5));
        assert_eq!(
            a,
            Activity::Wait {
                until: SimTime::from_secs(15)
            }
        );
    }

    #[test]
    fn fidelity_view_bounds() {
        let v = FidelityView::new(0, 3);
        assert!(v.can_upgrade() && !v.can_degrade() && !v.is_full());
        let v = FidelityView::new(2, 3);
        assert!(!v.can_upgrade() && v.can_degrade() && v.is_full());
        let fixed = FidelityView::fixed();
        assert!(!fixed.can_upgrade() && !fixed.can_degrade() && fixed.is_full());
    }

    #[test]
    #[should_panic(expected = "invalid fidelity view")]
    fn out_of_range_level_panics() {
        let _ = FidelityView::new(3, 3);
    }
}
