//! The energy ledger and run reports.
//!
//! The ledger integrates platform power exactly between events and keeps
//! three views the experiments need:
//!
//! - **buckets**: energy per software component (Idle, each application,
//!   X Server, Odyssey, WaveLAN, Kernel) — the shadings of the paper's
//!   bar charts;
//! - **components**: energy per hardware component — Figure 4's view;
//! - **procedure detail**: energy and CPU time per `(process, procedure)`
//!   pair — the rows of a PowerScope profile (Figure 2).

use std::collections::BTreeMap;

use hw560x::platform::PowerBreakdown;
use simcore::{SimTime, TimeSeries};

use crate::observer::ShareEntry;

/// Energy per hardware component over a run, J.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ComponentTotals {
    /// Display backlight.
    pub display_j: f64,
    /// Disk.
    pub disk_j: f64,
    /// WaveLAN radio.
    pub radio_j: f64,
    /// CPU + memory excess over halt.
    pub cpu_j: f64,
    /// Base (chipset, DRAM refresh, CPU halt).
    pub base_j: f64,
    /// Superlinear correction.
    pub superlinear_j: f64,
}

impl ComponentTotals {
    /// Sum over all components, J.
    pub fn total_j(&self) -> f64 {
        self.display_j + self.disk_j + self.radio_j + self.cpu_j + self.base_j + self.superlinear_j
    }
}

/// One `(process, procedure)` row of the profile detail.
#[derive(Clone, Debug, PartialEq)]
pub struct ProcDetail {
    /// Process (bucket) name.
    pub process: &'static str,
    /// Procedure name.
    pub procedure: &'static str,
    /// Attributed CPU-occupancy time, seconds.
    pub cpu_secs: f64,
    /// Attributed energy, J.
    pub energy_j: f64,
}

#[derive(Debug, Default)]
pub(crate) struct Ledger {
    total_j: f64,
    // BTreeMaps, not hash maps: the ledger is replayed state, and its
    // iteration order must not depend on the process's hash seed.
    buckets: BTreeMap<&'static str, f64>,
    detail: BTreeMap<(&'static str, &'static str), (f64, f64)>,
    components: ComponentTotals,
}

impl Ledger {
    pub(crate) fn total_j(&self) -> f64 {
        self.total_j
    }

    pub(crate) fn add(
        &mut self,
        dt_secs: f64,
        power_w: f64,
        b: &PowerBreakdown,
        shares: &[ShareEntry],
    ) {
        debug_assert!(dt_secs >= 0.0);
        let energy = power_w * dt_secs;
        self.total_j += energy;
        self.components.display_j += b.display_w * dt_secs;
        self.components.disk_j += b.disk_w * dt_secs;
        self.components.radio_j += b.radio_w * dt_secs;
        self.components.cpu_j += b.cpu_w * dt_secs;
        self.components.base_j += b.base_w * dt_secs;
        self.components.superlinear_j += b.superlinear_w * dt_secs;
        for s in shares {
            *self.buckets.entry(s.bucket).or_insert(0.0) += energy * s.fraction;
            let d = self
                .detail
                .entry((s.bucket, s.procedure))
                .or_insert((0.0, 0.0));
            d.0 += dt_secs * s.fraction;
            d.1 += energy * s.fraction;
        }
    }

    /// Energy attributed to one bucket so far, J (0 when absent). This is
    /// the live PowerScope-attribution feed the supervisor cross-checks
    /// declarations against.
    pub(crate) fn bucket_j(&self, name: &str) -> f64 {
        self.buckets.get(name).copied().unwrap_or(0.0)
    }

    /// The procedure with the most attributed energy inside one bucket,
    /// with its energy, J — the live counterpart of the profile detail's
    /// top row (ties break toward the lexicographically first name, so
    /// the answer is replay-stable).
    pub(crate) fn hot_procedure_j(&self, bucket: &str) -> Option<(&'static str, f64)> {
        self.detail
            .iter()
            .filter(|((b, _), _)| *b == bucket)
            .map(|((_, procedure), (_, j))| (*procedure, *j))
            .max_by(|a, b| a.1.total_cmp(&b.1).then_with(|| b.0.cmp(a.0)))
    }

    pub(crate) fn snapshot_buckets(&self) -> Vec<(String, f64)> {
        let mut v: Vec<(String, f64)> = self
            .buckets
            .iter()
            .map(|(k, e)| (k.to_string(), *e))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }

    pub(crate) fn snapshot_detail(&self) -> Vec<ProcDetail> {
        let mut v: Vec<ProcDetail> = self
            .detail
            .iter()
            .map(|((p, f), (secs, j))| ProcDetail {
                process: p,
                procedure: f,
                cpu_secs: *secs,
                energy_j: *j,
            })
            .collect();
        v.sort_by(|a, b| {
            b.energy_j
                .total_cmp(&a.energy_j)
                .then_with(|| (a.process, a.procedure).cmp(&(b.process, b.procedure)))
        });
        v
    }

    pub(crate) fn components(&self) -> ComponentTotals {
        self.components
    }

    pub(crate) fn freeze_into(&self, w: &mut simcore::SnapshotWriter) {
        w.put_f64(self.total_j);
        w.put_usize(self.buckets.len());
        for (name, j) in &self.buckets {
            w.put_str(name);
            w.put_f64(*j);
        }
        w.put_usize(self.detail.len());
        for ((process, procedure), (secs, j)) in &self.detail {
            w.put_str(process);
            w.put_str(procedure);
            w.put_f64(*secs);
            w.put_f64(*j);
        }
        w.put_f64(self.components.display_j);
        w.put_f64(self.components.disk_j);
        w.put_f64(self.components.radio_j);
        w.put_f64(self.components.cpu_j);
        w.put_f64(self.components.base_j);
        w.put_f64(self.components.superlinear_j);
    }

    pub(crate) fn thaw_from(
        r: &mut simcore::SnapshotReader<'_>,
    ) -> Result<Ledger, simcore::SnapshotError> {
        let total_j = r.take_f64()?;
        let n = r.take_usize()?;
        let mut buckets = BTreeMap::new();
        for _ in 0..n {
            let name = r.take_static_str()?;
            buckets.insert(name, r.take_f64()?);
        }
        let n = r.take_usize()?;
        let mut detail = BTreeMap::new();
        for _ in 0..n {
            let process = r.take_static_str()?;
            let procedure = r.take_static_str()?;
            let secs = r.take_f64()?;
            let j = r.take_f64()?;
            detail.insert((process, procedure), (secs, j));
        }
        let components = ComponentTotals {
            display_j: r.take_f64()?,
            disk_j: r.take_f64()?,
            radio_j: r.take_f64()?,
            cpu_j: r.take_f64()?,
            base_j: r.take_f64()?,
            superlinear_j: r.take_f64()?,
        };
        Ok(Ledger {
            total_j,
            buckets,
            detail,
            components,
        })
    }
}

/// The result of one machine run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Instant the run ended.
    pub end: SimTime,
    /// Total energy consumed, J.
    pub total_j: f64,
    /// Energy per software bucket, sorted descending.
    pub buckets: Vec<(String, f64)>,
    /// Energy per hardware component.
    pub components: ComponentTotals,
    /// Energy and CPU time per `(process, procedure)` pair.
    pub detail: Vec<ProcDetail>,
    /// Fidelity level over time, one series per adaptive workload
    /// (named after the workload).
    pub fidelity: Vec<TimeSeries>,
    /// True if a finite energy supply ran out before the workload ended.
    pub exhausted: bool,
    /// Energy remaining in the supply at the end (∞ for external).
    pub residual_j: f64,
    /// Bytes carried over the wireless link (including aborted attempts).
    pub bytes_carried: u64,
    /// RPC attempts aborted by the retry policy's timeout.
    pub rpc_timeouts: u64,
    /// RPC attempts re-issued after a timeout.
    pub rpc_retries: u64,
}

impl RunReport {
    /// Energy attributed to `bucket`, J (0 when absent).
    pub fn bucket_j(&self, bucket: &str) -> f64 {
        self.buckets
            .iter()
            .find(|(b, _)| b == bucket)
            .map(|(_, e)| *e)
            .unwrap_or(0.0)
    }

    /// Total adaptations (fidelity changes) performed by `workload`.
    pub fn adaptations_of(&self, workload: &str) -> usize {
        self.fidelity
            .iter()
            .find(|s| s.name() == workload)
            .map(|s| s.change_count())
            .unwrap_or(0)
    }

    /// Wall-clock duration of the run, seconds.
    pub fn duration_s(&self) -> f64 {
        self.end.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BUCKET_IDLE, BUCKET_WAVELAN};

    fn share(bucket: &'static str, f: f64) -> ShareEntry {
        ShareEntry {
            bucket,
            procedure: "p",
            fraction: f,
        }
    }

    #[test]
    fn ledger_conserves_energy_across_buckets() {
        let mut l = Ledger::default();
        let b = PowerBreakdown {
            base_w: 10.0,
            ..Default::default()
        };
        l.add(
            2.0,
            10.0,
            &b,
            &[share(BUCKET_IDLE, 0.75), share(BUCKET_WAVELAN, 0.25)],
        );
        assert!((l.total_j() - 20.0).abs() < 1e-12);
        let buckets = l.snapshot_buckets();
        let sum: f64 = buckets.iter().map(|(_, e)| e).sum();
        assert!((sum - 20.0).abs() < 1e-12);
        assert_eq!(buckets[0].0, BUCKET_IDLE);
        assert!((buckets[0].1 - 15.0).abs() < 1e-12);
    }

    #[test]
    fn component_totals_track_breakdown() {
        let mut l = Ledger::default();
        let b = PowerBreakdown {
            display_w: 4.0,
            disk_w: 1.0,
            radio_w: 2.0,
            cpu_w: 3.0,
            base_w: 5.0,
            superlinear_w: 0.5,
        };
        l.add(4.0, b.total_w(), &b, &[share(BUCKET_IDLE, 1.0)]);
        let c = l.components();
        assert!((c.display_j - 16.0).abs() < 1e-12);
        assert!((c.total_j() - l.total_j()).abs() < 1e-9);
    }

    #[test]
    fn detail_accumulates_cpu_time() {
        let mut l = Ledger::default();
        let b = PowerBreakdown::default();
        for _ in 0..3 {
            l.add(1.0, 5.0, &b, &[share("janus", 1.0)]);
        }
        let d = l.snapshot_detail();
        assert_eq!(d.len(), 1);
        assert!((d[0].cpu_secs - 3.0).abs() < 1e-12);
        assert!((d[0].energy_j - 15.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_order_is_insertion_order_independent() {
        // Regression test for the HashMap → BTreeMap conversion: report
        // iteration order must depend only on the data, never on the
        // order buckets were first touched (or, before the conversion, on
        // the process's hash seed). The ties are deliberate — with every
        // bucket at equal energy, ordering falls entirely to the
        // name-based tie-break.
        let names = ["janus", "Idle", "xanim", "WaveLAN", "netscape"];
        let b = PowerBreakdown::default();
        let mut forward = Ledger::default();
        for n in names {
            forward.add(1.0, 5.0, &b, &[share(n, 1.0)]);
        }
        let mut reversed = Ledger::default();
        for n in names.iter().rev() {
            reversed.add(1.0, 5.0, &b, &[share(n, 1.0)]);
        }
        assert_eq!(forward.snapshot_buckets(), reversed.snapshot_buckets());
        assert_eq!(forward.snapshot_detail(), reversed.snapshot_detail());
        let buckets = forward.snapshot_buckets();
        let order: Vec<&str> = buckets.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            order,
            ["Idle", "WaveLAN", "janus", "netscape", "xanim"],
            "equal energies must fall back to name order"
        );
    }

    #[test]
    fn report_lookup_helpers() {
        let report = RunReport {
            end: SimTime::from_secs(10),
            total_j: 50.0,
            buckets: vec![("Idle".into(), 30.0), ("xanim".into(), 20.0)],
            components: ComponentTotals::default(),
            detail: vec![],
            fidelity: vec![],
            exhausted: false,
            residual_j: f64::INFINITY,
            bytes_carried: 0,
            rpc_timeouts: 0,
            rpc_retries: 0,
        };
        assert_eq!(report.bucket_j("xanim"), 20.0);
        assert_eq!(report.bucket_j("nope"), 0.0);
        assert_eq!(report.adaptations_of("xanim"), 0);
        assert_eq!(report.duration_s(), 10.0);
    }
}
