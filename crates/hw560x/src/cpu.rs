//! CPU + memory-system power model.
//!
//! The 560X's processor has no DVS; the only power distinction the paper's
//! platform exposes is *halt* (the kernel idle loop executes a Pentium
//! `hlt`, folded into the platform's base power) versus *busy*. How much
//! busy costs depends on the workload: a cache-hostile Viterbi search
//! (Janus) drives the CPU and DRAM much harder than a Cinepak decode loop.
//! We model this with a per-activity *intensity* in `[0, 1]` scaling the
//! platform's maximum CPU excess power.

use crate::calib::PlatformSpec;

/// Returns the CPU + memory excess power over halt, W, at `load`.
///
/// `load` is the product of the fraction of the interval the CPU was busy
/// and the running activity's intensity; values are clamped to `[0, 1]`.
///
/// # Examples
///
/// ```
/// use hw560x::PlatformSpec;
///
/// let spec = PlatformSpec::default();
/// assert_eq!(hw560x::cpu::excess_power_w(&spec, 0.0), 0.0);
/// assert_eq!(hw560x::cpu::excess_power_w(&spec, 1.0), spec.cpu_max_excess_w);
/// ```
pub fn excess_power_w(spec: &PlatformSpec, load: f64) -> f64 {
    spec.cpu_max_excess_w * load.clamp(0.0, 1.0)
}

/// Nominal intensities for the workload classes in the paper, used by the
/// application models. Centralizing them keeps cross-application energy
/// comparisons consistent.
pub mod intensity {
    /// Janus speech recognition search: FP + pointer-chasing over large
    /// models; the heaviest load the client sees.
    pub const SPEECH_SEARCH: f64 = 1.0;
    /// Speech front-end signal processing.
    pub const SPEECH_FRONTEND: f64 = 0.70;
    /// Cinepak video decode (MMX-friendly, moderate).
    pub const VIDEO_DECODE: f64 = 0.45;
    /// X server blit/scale work.
    pub const X_RENDER: f64 = 0.55;
    /// Map vector rasterisation.
    pub const MAP_RENDER: f64 = 0.60;
    /// HTML/GIF handling in the browser and proxy.
    pub const WEB_RENDER: f64 = 0.50;
    /// Kernel interrupt handling and protocol processing.
    pub const KERNEL_INTERRUPT: f64 = 0.40;
    /// Odyssey viceroy/warden data-path work.
    pub const ODYSSEY: f64 = 0.40;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_is_clamped() {
        let spec = PlatformSpec::default();
        assert_eq!(excess_power_w(&spec, -1.0), 0.0);
        assert_eq!(excess_power_w(&spec, 2.0), spec.cpu_max_excess_w);
    }

    #[test]
    fn power_is_linear_in_load() {
        let spec = PlatformSpec::default();
        let half = excess_power_w(&spec, 0.5);
        assert!((half - spec.cpu_max_excess_w / 2.0).abs() < 1e-12);
    }

    #[test]
    fn intensities_are_valid_fractions() {
        for i in [
            intensity::SPEECH_SEARCH,
            intensity::SPEECH_FRONTEND,
            intensity::VIDEO_DECODE,
            intensity::X_RENDER,
            intensity::MAP_RENDER,
            intensity::WEB_RENDER,
            intensity::KERNEL_INTERRUPT,
            intensity::ODYSSEY,
        ] {
            assert!((0.0..=1.0).contains(&i));
        }
    }

    #[test]
    fn speech_search_is_the_heaviest() {
        for i in [
            intensity::SPEECH_FRONTEND,
            intensity::VIDEO_DECODE,
            intensity::X_RENDER,
            intensity::MAP_RENDER,
            intensity::WEB_RENDER,
            intensity::KERNEL_INTERRUPT,
            intensity::ODYSSEY,
        ] {
            assert!(i <= intensity::SPEECH_SEARCH);
        }
    }
}
