//! WaveLAN radio power-state machine.
//!
//! Section 3.2: "we modified the network communication package used by
//! Odyssey to place the wireless network interface in standby mode except
//! during remote procedure calls or bulk transfers". This module models
//! that policy as reference-counted *wake windows* (one per outstanding
//! RPC or bulk transfer) plus a *transfer* count (flows actually moving
//! bytes). The radio is Active while bytes move, Idle while awake but
//! quiet (e.g. waiting for an RPC reply), and Standby otherwise — unless
//! power management is disabled, in which case it never drops below Idle.

use crate::calib::PlatformSpec;

/// Radio power state.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RadioState {
    /// Transmitting or receiving.
    Active,
    /// Awake, no bytes in flight.
    Idle,
    /// Power-save standby.
    Standby,
}

impl RadioState {
    /// Power drawn in this state, W.
    pub fn power_w(self, spec: &PlatformSpec) -> f64 {
        match self {
            RadioState::Active => spec.radio_active_w,
            RadioState::Idle => spec.radio_idle_w,
            RadioState::Standby => spec.radio_standby_w,
        }
    }
}

/// Radio wake-window bookkeeping.
#[derive(Clone, Debug)]
pub struct RadioModel {
    /// True when the RPC-scoped standby policy is in force.
    rpc_scoped_standby: bool,
    wake_windows: usize,
    transfers: usize,
}

impl RadioModel {
    /// Creates a radio; `rpc_scoped_standby = false` models disabled
    /// hardware power management (the radio idles instead of sleeping).
    pub fn new(rpc_scoped_standby: bool) -> Self {
        RadioModel {
            rpc_scoped_standby,
            wake_windows: 0,
            transfers: 0,
        }
    }

    /// Opens a wake window (an RPC began or a bulk transfer was set up).
    pub fn open_window(&mut self) {
        self.wake_windows += 1;
    }

    /// Encodes the radio's mutable counters into a snapshot payload.
    pub fn freeze_into(&self, w: &mut simcore::SnapshotWriter) {
        w.put_usize(self.wake_windows);
        w.put_usize(self.transfers);
    }

    /// Restores the counters written by [`Self::freeze_into`].
    pub fn thaw_from(
        &mut self,
        r: &mut simcore::SnapshotReader<'_>,
    ) -> Result<(), simcore::SnapshotError> {
        self.wake_windows = r.take_usize()?;
        self.transfers = r.take_usize()?;
        Ok(())
    }

    /// Closes a wake window.
    ///
    /// # Panics
    ///
    /// Panics if no window is open.
    pub fn close_window(&mut self) {
        assert!(self.wake_windows > 0, "close_window without open_window");
        self.wake_windows -= 1;
    }

    /// Marks the start of byte movement.
    pub fn begin_transfer(&mut self) {
        self.transfers += 1;
    }

    /// Marks the end of byte movement.
    ///
    /// # Panics
    ///
    /// Panics if no transfer is in progress.
    pub fn end_transfer(&mut self) {
        assert!(self.transfers > 0, "end_transfer without begin_transfer");
        self.transfers -= 1;
    }

    /// Current power state under the configured policy.
    pub fn state(&self) -> RadioState {
        if self.transfers > 0 {
            RadioState::Active
        } else if self.wake_windows > 0 || !self.rpc_scoped_standby {
            RadioState::Idle
        } else {
            RadioState::Standby
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pm_radio_sleeps_when_quiet() {
        let r = RadioModel::new(true);
        assert_eq!(r.state(), RadioState::Standby);
    }

    #[test]
    fn no_pm_radio_idles_when_quiet() {
        let r = RadioModel::new(false);
        assert_eq!(r.state(), RadioState::Idle);
    }

    #[test]
    fn rpc_window_keeps_radio_awake_while_waiting() {
        let mut r = RadioModel::new(true);
        r.open_window();
        r.begin_transfer();
        assert_eq!(r.state(), RadioState::Active);
        r.end_transfer();
        // Waiting for the server's reply: awake but not transferring.
        assert_eq!(r.state(), RadioState::Idle);
        r.begin_transfer();
        assert_eq!(r.state(), RadioState::Active);
        r.end_transfer();
        r.close_window();
        assert_eq!(r.state(), RadioState::Standby);
    }

    #[test]
    fn nested_windows() {
        let mut r = RadioModel::new(true);
        r.open_window();
        r.open_window();
        r.close_window();
        assert_eq!(r.state(), RadioState::Idle);
        r.close_window();
        assert_eq!(r.state(), RadioState::Standby);
    }

    #[test]
    fn transfer_dominates_state() {
        let mut r = RadioModel::new(false);
        r.begin_transfer();
        assert_eq!(r.state(), RadioState::Active);
        r.end_transfer();
        assert_eq!(r.state(), RadioState::Idle);
    }

    #[test]
    #[should_panic(expected = "close_window")]
    fn unbalanced_close_panics() {
        RadioModel::new(true).close_window();
    }

    #[test]
    #[should_panic(expected = "end_transfer")]
    fn unbalanced_end_transfer_panics() {
        RadioModel::new(true).end_transfer();
    }

    #[test]
    fn power_levels_ordered() {
        let spec = PlatformSpec::default();
        assert!(RadioState::Standby.power_w(&spec) < RadioState::Idle.power_w(&spec));
        assert!(RadioState::Idle.power_w(&spec) < RadioState::Active.power_w(&spec));
    }
}
