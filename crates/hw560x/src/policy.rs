//! Hardware power-management policy configuration.
//!
//! Section 3.2 describes the policy regime behind the paper's
//! "Hardware-Only Power Mgmt." bars: BIOS power management disabled for
//! experimental control, the disk placed in standby after 10 seconds of
//! inactivity, the WaveLAN interface in standby except during RPCs and
//! bulk transfers, and the display turned off for the speech application
//! (the only one with no visual output). The baseline bars disable all of
//! it. This module is pure configuration; enforcement lives in the
//! `machine` crate's device drivers.

use simcore::SimDuration;

/// Hardware power-management policy knobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PmPolicy {
    /// Master switch; `false` reproduces the paper's "Baseline" bars.
    pub enabled: bool,
    /// Disk spin-down after this much inactivity (paper: 10 s).
    pub disk_spin_down: SimDuration,
    /// Radio in standby except during RPC / bulk-transfer windows.
    pub radio_rpc_scoped: bool,
    /// Dim the display after this much user inactivity. Think time counts
    /// as activity up to this threshold: the paper keeps the display
    /// backlit through a 5-second think pause, while its linear think-time
    /// models trend toward the 5.6 W dim background for long pauses.
    pub display_dim_after: SimDuration,
}

impl PmPolicy {
    /// The paper's hardware power management regime.
    pub fn enabled() -> Self {
        PmPolicy {
            enabled: true,
            disk_spin_down: SimDuration::from_secs(10),
            radio_rpc_scoped: true,
            display_dim_after: SimDuration::from_secs(10),
        }
    }

    /// The paper's baseline: all hardware power management off.
    pub fn disabled() -> Self {
        PmPolicy {
            enabled: false,
            disk_spin_down: SimDuration::from_secs(10),
            radio_rpc_scoped: false,
            display_dim_after: SimDuration::from_secs(10),
        }
    }

    /// Spin-down policy to hand the disk model (`None` when disabled).
    pub fn disk_policy(&self) -> Option<SimDuration> {
        if self.enabled {
            Some(self.disk_spin_down)
        } else {
            None
        }
    }

    /// Whether the radio may enter standby.
    pub fn radio_policy(&self) -> bool {
        self.enabled && self.radio_rpc_scoped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_policy_matches_paper() {
        let p = PmPolicy::enabled();
        assert!(p.enabled);
        assert_eq!(p.disk_policy(), Some(SimDuration::from_secs(10)));
        assert!(p.radio_policy());
    }

    #[test]
    fn disabled_policy_turns_everything_off() {
        let p = PmPolicy::disabled();
        assert!(!p.enabled);
        assert_eq!(p.disk_policy(), None);
        assert!(!p.radio_policy());
    }
}
