//! Disk power-state machine.
//!
//! The paper's hardware power management places the disk in standby after
//! 10 seconds of inactivity; leaving standby costs a spin-up delay (and
//! extra power) on the next access. With power management disabled the
//! disk spins (Idle) for the whole experiment — the single biggest lever
//! behind the "Hardware-Only Power Mgmt." bars for the streaming video
//! workload, whose disk "remains in standby mode for the entire duration".

use simcore::{SimDuration, SimTime};

use crate::calib::PlatformSpec;

/// Disk power state.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DiskState {
    /// Servicing a request.
    Active,
    /// Spinning, no request in flight.
    Idle,
    /// Spun down.
    Standby,
    /// Transitioning from Standby to Active.
    SpinningUp,
}

impl DiskState {
    /// Power drawn in this state, W.
    pub fn power_w(self, spec: &PlatformSpec) -> f64 {
        match self {
            DiskState::Active => spec.disk_active_w,
            DiskState::Idle => spec.disk_idle_w,
            DiskState::Standby => spec.disk_standby_w,
            DiskState::SpinningUp => spec.disk_spinup_w,
        }
    }
}

/// Disk state machine with an optional spin-down policy.
///
/// `spin_down_after: None` models disabled hardware power management: the
/// disk never leaves Idle except to service requests. With a policy set,
/// the disk *starts* in Standby — the machine was quiet before the
/// experiment began, matching the paper's observation that the disk
/// "remains in standby mode for the entire duration" of workloads that
/// never touch it.
#[derive(Clone, Debug)]
pub struct DiskModel {
    state: DiskState,
    spin_down_after: Option<SimDuration>,
    spinup_time: SimDuration,
    last_activity: SimTime,
    pending_reads: usize,
}

impl DiskModel {
    /// Creates a disk: idle (spinning) without a policy, standby with one.
    pub fn new(spin_down_after: Option<SimDuration>, spinup_time: SimDuration) -> Self {
        DiskModel {
            state: if spin_down_after.is_some() {
                DiskState::Standby
            } else {
                DiskState::Idle
            },
            spin_down_after,
            spinup_time,
            last_activity: SimTime::ZERO,
            pending_reads: 0,
        }
    }

    /// Current power state.
    pub fn state(&self) -> DiskState {
        self.state
    }

    /// Encodes the disk's mutable state (the policy parameters are
    /// construction-time) into a snapshot payload.
    pub fn freeze_into(&self, w: &mut simcore::SnapshotWriter) {
        w.put_u64(match self.state {
            DiskState::Active => 0,
            DiskState::Idle => 1,
            DiskState::Standby => 2,
            DiskState::SpinningUp => 3,
        });
        w.put_time(self.last_activity);
        w.put_usize(self.pending_reads);
    }

    /// Restores the mutable state written by [`Self::freeze_into`] onto
    /// this (freshly built) disk.
    pub fn thaw_from(
        &mut self,
        r: &mut simcore::SnapshotReader<'_>,
    ) -> Result<(), simcore::SnapshotError> {
        let state = match r.take_u64()? {
            0 => DiskState::Active,
            1 => DiskState::Idle,
            2 => DiskState::Standby,
            3 => DiskState::SpinningUp,
            _ => return Err(simcore::SnapshotError::Corrupt("disk state tag")),
        };
        let last_activity = r.take_time()?;
        let pending_reads = r.take_usize()?;
        self.state = state;
        self.last_activity = last_activity;
        self.pending_reads = pending_reads;
        Ok(())
    }

    /// Begins a request; returns the delay before data transfer can start
    /// (non-zero when a spin-up from standby is needed).
    pub fn begin_access(&mut self, now: SimTime) -> SimDuration {
        self.pending_reads += 1;
        self.last_activity = now;
        match self.state {
            DiskState::Standby => {
                self.state = DiskState::SpinningUp;
                self.spinup_time
            }
            DiskState::SpinningUp => self.spinup_time,
            DiskState::Idle | DiskState::Active => {
                self.state = DiskState::Active;
                SimDuration::ZERO
            }
        }
    }

    /// Marks the end of a spin-up: the disk starts servicing the queued
    /// request(s).
    pub fn spinup_complete(&mut self, now: SimTime) {
        debug_assert_eq!(self.state, DiskState::SpinningUp);
        self.last_activity = now;
        self.state = if self.pending_reads > 0 {
            DiskState::Active
        } else {
            DiskState::Idle
        };
    }

    /// Completes one request.
    ///
    /// # Panics
    ///
    /// Panics if no request is outstanding.
    pub fn end_access(&mut self, now: SimTime) {
        assert!(self.pending_reads > 0, "end_access without begin_access");
        self.pending_reads -= 1;
        self.last_activity = now;
        if self.pending_reads == 0 && self.state == DiskState::Active {
            self.state = DiskState::Idle;
        }
    }

    /// When the spin-down timer will fire, if a spin-down is pending.
    ///
    /// The caller (the machine) schedules an event at this instant and then
    /// calls [`DiskModel::try_spin_down`]; if activity intervened, the call
    /// is a no-op and a new deadline is exposed.
    pub fn spin_down_deadline(&self) -> Option<SimTime> {
        match (self.state, self.spin_down_after) {
            (DiskState::Idle, Some(after)) => Some(self.last_activity + after),
            _ => None,
        }
    }

    /// Spins down if the disk has been idle for the policy duration.
    /// Returns `true` if the state changed.
    pub fn try_spin_down(&mut self, now: SimTime) -> bool {
        if let (DiskState::Idle, Some(after)) = (self.state, self.spin_down_after) {
            if now.saturating_since(self.last_activity) >= after {
                self.state = DiskState::Standby;
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pm_disk() -> DiskModel {
        DiskModel::new(
            Some(SimDuration::from_secs(10)),
            SimDuration::from_millis(1500),
        )
    }

    #[test]
    fn pm_disk_starts_in_standby() {
        assert_eq!(pm_disk().state(), DiskState::Standby);
        let no_pm = DiskModel::new(None, SimDuration::from_millis(1500));
        assert_eq!(no_pm.state(), DiskState::Idle);
    }

    #[test]
    fn access_from_idle_is_instant() {
        let mut d = DiskModel::new(None, SimDuration::from_millis(1500));
        assert_eq!(d.begin_access(SimTime::from_secs(1)), SimDuration::ZERO);
        assert_eq!(d.state(), DiskState::Active);
        d.end_access(SimTime::from_secs(2));
        assert_eq!(d.state(), DiskState::Idle);
    }

    fn spun_up_pm_disk() -> DiskModel {
        let mut d = pm_disk();
        d.begin_access(SimTime::ZERO);
        d.spinup_complete(SimTime::ZERO);
        d
    }

    #[test]
    fn spin_down_after_timeout() {
        let mut d = spun_up_pm_disk();
        d.end_access(SimTime::from_secs(1));
        let deadline = d.spin_down_deadline().unwrap();
        assert_eq!(deadline, SimTime::from_secs(11));
        assert!(!d.try_spin_down(SimTime::from_secs(5)), "too early");
        assert!(d.try_spin_down(deadline));
        assert_eq!(d.state(), DiskState::Standby);
    }

    #[test]
    fn access_from_standby_requires_spinup() {
        let mut d = pm_disk();
        let delay = d.begin_access(SimTime::from_secs(20));
        assert_eq!(delay, SimDuration::from_millis(1500));
        assert_eq!(d.state(), DiskState::SpinningUp);
        d.spinup_complete(SimTime::from_secs(22));
        assert_eq!(d.state(), DiskState::Active);
        d.end_access(SimTime::from_secs(23));
        assert_eq!(d.state(), DiskState::Idle);
    }

    #[test]
    fn no_policy_never_spins_down() {
        let mut d = DiskModel::new(None, SimDuration::from_millis(1500));
        d.begin_access(SimTime::from_secs(0));
        d.end_access(SimTime::from_secs(0));
        assert_eq!(d.spin_down_deadline(), None);
        assert!(!d.try_spin_down(SimTime::from_secs(1_000)));
        assert_eq!(d.state(), DiskState::Idle);
    }

    #[test]
    fn intervening_activity_resets_deadline() {
        let mut d = spun_up_pm_disk();
        d.end_access(SimTime::from_secs(1));
        // The machine scheduled a spin-down for t=11, but a new access at
        // t=5 must invalidate it.
        d.begin_access(SimTime::from_secs(5));
        d.end_access(SimTime::from_secs(6));
        assert!(!d.try_spin_down(SimTime::from_secs(11)));
        assert_eq!(d.spin_down_deadline(), Some(SimTime::from_secs(16)));
        assert!(d.try_spin_down(SimTime::from_secs(16)));
    }

    #[test]
    fn overlapping_accesses_stay_active() {
        let mut d = spun_up_pm_disk(); // one access already outstanding
        d.begin_access(SimTime::from_secs(0));
        d.end_access(SimTime::from_secs(1));
        assert_eq!(d.state(), DiskState::Active, "one access still pending");
        d.end_access(SimTime::from_secs(2));
        assert_eq!(d.state(), DiskState::Idle);
    }

    #[test]
    fn power_levels_ordered() {
        let spec = PlatformSpec::default();
        assert!(DiskState::Standby.power_w(&spec) < DiskState::Idle.power_w(&spec));
        assert!(DiskState::Idle.power_w(&spec) < DiskState::Active.power_w(&spec));
        assert!(DiskState::Active.power_w(&spec) <= DiskState::SpinningUp.power_w(&spec));
    }

    #[test]
    #[should_panic(expected = "without begin_access")]
    fn unbalanced_end_access_panics() {
        let mut d = pm_disk();
        d.end_access(SimTime::ZERO);
    }
}
