//! Whole-platform power aggregation.
//!
//! Given the instantaneous state of every component, this module answers
//! what the external multimeter would read. The paper observed that total
//! power is "slightly but consistently superlinear" in the components
//! (0.21 W above the sum at full-on); we model that as a correction
//! proportional to the component sum's excess over the base, which
//! reproduces both of the paper's anchor totals (see `calib`).

use crate::calib::PlatformSpec;
use crate::cpu;
use crate::disk::DiskState;
use crate::display::DisplayState;
use crate::wavelan::RadioState;

/// Instantaneous state of all power-relevant components.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceStates {
    /// Backlight state.
    pub display: DisplayState,
    /// Disk state.
    pub disk: DiskState,
    /// Radio state.
    pub radio: RadioState,
    /// Effective CPU load in `[0, 1]` (busy fraction × workload intensity).
    pub cpu_load: f64,
}

impl DeviceStates {
    /// Everything quiet with the display bright — the paper's 10.28 W
    /// reference state.
    pub fn full_on_idle() -> Self {
        DeviceStates {
            display: DisplayState::Bright,
            disk: DiskState::Idle,
            radio: RadioState::Idle,
            cpu_load: 0.0,
        }
    }

    /// The paper's 5.6 W background state: display dim, disk and radio in
    /// standby.
    pub fn background() -> Self {
        DeviceStates {
            display: DisplayState::Dim,
            disk: DiskState::Standby,
            radio: RadioState::Standby,
            cpu_load: 0.0,
        }
    }
}

/// Per-component decomposition of platform power, W.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PowerBreakdown {
    /// Display backlight.
    pub display_w: f64,
    /// Disk.
    pub disk_w: f64,
    /// WaveLAN radio.
    pub radio_w: f64,
    /// CPU + memory excess over halt.
    pub cpu_w: f64,
    /// Chipset, DRAM refresh, regulators, CPU halt.
    pub base_w: f64,
    /// Superlinear correction.
    pub superlinear_w: f64,
}

impl PowerBreakdown {
    /// Total platform power, W.
    pub fn total_w(&self) -> f64 {
        self.display_w + self.disk_w + self.radio_w + self.cpu_w + self.base_w + self.superlinear_w
    }
}

/// The platform power model.
#[derive(Clone, Debug)]
pub struct PlatformPower {
    spec: PlatformSpec,
}

impl PlatformPower {
    /// Creates a model from a spec.
    pub fn new(spec: PlatformSpec) -> Self {
        PlatformPower { spec }
    }

    /// The spec this model was built from.
    pub fn spec(&self) -> &PlatformSpec {
        &self.spec
    }

    /// Per-component power at the given states.
    pub fn breakdown(&self, s: &DeviceStates) -> PowerBreakdown {
        let display_w = s.display.power_w(&self.spec);
        let disk_w = s.disk.power_w(&self.spec);
        let radio_w = s.radio.power_w(&self.spec);
        let cpu_w = cpu::excess_power_w(&self.spec, s.cpu_load);
        let base_w = self.spec.base_other_w;
        let component_excess = display_w + disk_w + radio_w + cpu_w;
        let superlinear_w = self.spec.superlinear_coeff * component_excess;
        PowerBreakdown {
            display_w,
            disk_w,
            radio_w,
            cpu_w,
            base_w,
            superlinear_w,
        }
    }

    /// Total platform power at the given states, W.
    pub fn power_w(&self, s: &DeviceStates) -> f64 {
        self.breakdown(s).total_w()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PlatformPower {
        PlatformPower::new(PlatformSpec::default())
    }

    #[test]
    fn breakdown_sums_to_total() {
        let m = model();
        let s = DeviceStates {
            display: DisplayState::Bright,
            disk: DiskState::Active,
            radio: RadioState::Active,
            cpu_load: 0.7,
        };
        let b = m.breakdown(&s);
        assert!((b.total_w() - m.power_w(&s)).abs() < 1e-12);
    }

    #[test]
    fn reference_states_match_paper() {
        let m = model();
        assert!((m.power_w(&DeviceStates::full_on_idle()) - 10.28).abs() < 0.01);
        assert!((m.power_w(&DeviceStates::background()) - 5.60).abs() < 0.01);
    }

    #[test]
    fn cpu_load_raises_power() {
        let m = model();
        let mut s = DeviceStates::full_on_idle();
        let idle = m.power_w(&s);
        s.cpu_load = 1.0;
        let busy = m.power_w(&s);
        assert!(busy > idle + m.spec().cpu_max_excess_w * 0.99);
    }

    #[test]
    fn superlinearity_grows_with_component_power() {
        let m = model();
        let quiet = m.breakdown(&DeviceStates::background()).superlinear_w;
        let loud = m
            .breakdown(&DeviceStates {
                display: DisplayState::Bright,
                disk: DiskState::Active,
                radio: RadioState::Active,
                cpu_load: 1.0,
            })
            .superlinear_w;
        assert!(loud > quiet);
    }

    #[test]
    fn power_is_monotone_in_each_component() {
        let m = model();
        let base = DeviceStates::background();
        let p0 = m.power_w(&base);
        for s in [
            DeviceStates {
                display: DisplayState::Bright,
                ..base
            },
            DeviceStates {
                disk: DiskState::Idle,
                ..base
            },
            DeviceStates {
                radio: RadioState::Idle,
                ..base
            },
            DeviceStates {
                cpu_load: 0.5,
                ..base
            },
        ] {
            assert!(m.power_w(&s) > p0, "raising {s:?} must raise power");
        }
    }
}
