#![forbid(unsafe_code)]
//! Power-state model of the paper's mobile client.
//!
//! All measurements in the paper were taken on a 233 MHz Pentium IBM
//! ThinkPad 560X with a 900 MHz 2 Mb/s WaveLAN interface, profiled through
//! an external multimeter. We have no such machine, so this crate is the
//! substitution: a component-level power model calibrated against the
//! paper's Figure 4 and the consistency identities stated in its prose
//! (total power 10.28 W at "screen brightest, disk and network idle",
//! 0.21 W of superlinearity, 5.60 W background with display dim and
//! disk/WaveLAN in standby, ~3.47 W with everything off).
//!
//! The crate deliberately knows nothing about scheduling or applications:
//! it answers exactly one question — *given these device states and this
//! CPU load, what is the platform drawing right now?* — plus the small
//! state machines (disk spin-down, radio wake windows, display dimming)
//! that hardware power management manipulates.

pub mod battery;
pub mod calib;
pub mod cpu;
pub mod disk;
pub mod display;
pub mod platform;
pub mod policy;
pub mod wavelan;

pub use battery::{BatteryGauge, EnergySource};
pub use calib::PlatformSpec;
pub use disk::{DiskModel, DiskState};
pub use display::{DisplayModel, DisplayState};
pub use platform::{DeviceStates, PlatformPower, PowerBreakdown};
pub use policy::PmPolicy;
pub use wavelan::{RadioModel, RadioState};
