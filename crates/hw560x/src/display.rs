//! Display backlight model.
//!
//! The paper identifies the display as "the Achilles heel of power
//! management": it cannot be turned off while a user is watching video or
//! reading a map, which is what motivates Section 4's zoned backlighting.
//! This module models the conventional single-zone backlight with three
//! states; the zoned projection lives in the `backlight` crate.

use crate::calib::PlatformSpec;

/// Backlight state.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum DisplayState {
    /// Backlight off (speech-only interaction).
    Off,
    /// Backlight dimmed (background/inactivity level).
    Dim,
    /// Backlight at full brightness.
    Bright,
}

impl DisplayState {
    /// Power drawn in this state, W.
    pub fn power_w(self, spec: &PlatformSpec) -> f64 {
        match self {
            DisplayState::Bright => spec.display_bright_w,
            DisplayState::Dim => spec.display_dim_w,
            DisplayState::Off => 0.0,
        }
    }

    /// The brighter of two states (used to aggregate concurrent demands).
    pub fn max(self, other: DisplayState) -> DisplayState {
        if self >= other {
            self
        } else {
            other
        }
    }
}

/// Aggregates display demands from concurrently-running applications.
///
/// Once the screen has to be on for one application, no additional energy
/// is required to keep it on for a second (Section 3.7's amortization
/// argument) — so the effective state is the maximum demand.
///
/// # Examples
///
/// ```
/// use hw560x::display::{DisplayModel, DisplayState};
///
/// let mut d = DisplayModel::new();
/// let a = d.register(DisplayState::Off);
/// let b = d.register(DisplayState::Bright);
/// assert_eq!(d.effective(), DisplayState::Bright);
/// d.set_demand(b, DisplayState::Off);
/// assert_eq!(d.effective(), DisplayState::Off);
/// let _ = (a, b);
/// ```
#[derive(Clone, Debug, Default)]
pub struct DisplayModel {
    demands: Vec<DisplayState>,
}

/// Handle to one registered demand slot.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DemandSlot(usize);

impl DisplayModel {
    /// Creates a model with no registered demands (effective state Off).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new demand source and returns its slot.
    pub fn register(&mut self, initial: DisplayState) -> DemandSlot {
        self.demands.push(initial);
        DemandSlot(self.demands.len() - 1)
    }

    /// Updates the demand of a slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot was not issued by this model.
    pub fn set_demand(&mut self, slot: DemandSlot, state: DisplayState) {
        self.demands[slot.0] = state;
    }

    /// The effective backlight state: the maximum over all demands, or Off
    /// when none are registered.
    pub fn effective(&self) -> DisplayState {
        self.demands
            .iter()
            .copied()
            .fold(DisplayState::Off, DisplayState::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_ordering_matches_state_ordering() {
        let spec = PlatformSpec::default();
        assert!(
            DisplayState::Off.power_w(&spec) < DisplayState::Dim.power_w(&spec)
                && DisplayState::Dim.power_w(&spec) < DisplayState::Bright.power_w(&spec)
        );
        assert_eq!(DisplayState::Off.power_w(&spec), 0.0);
    }

    #[test]
    fn max_picks_brighter() {
        assert_eq!(
            DisplayState::Dim.max(DisplayState::Bright),
            DisplayState::Bright
        );
        assert_eq!(DisplayState::Off.max(DisplayState::Dim), DisplayState::Dim);
        assert_eq!(DisplayState::Off.max(DisplayState::Off), DisplayState::Off);
    }

    #[test]
    fn empty_model_is_off() {
        assert_eq!(DisplayModel::new().effective(), DisplayState::Off);
    }

    #[test]
    fn aggregation_tracks_demand_changes() {
        let mut d = DisplayModel::new();
        let video = d.register(DisplayState::Bright);
        let speech = d.register(DisplayState::Off);
        assert_eq!(d.effective(), DisplayState::Bright);
        d.set_demand(video, DisplayState::Dim);
        assert_eq!(d.effective(), DisplayState::Dim);
        d.set_demand(speech, DisplayState::Bright);
        assert_eq!(d.effective(), DisplayState::Bright);
    }
}
