//! Energy supply model.
//!
//! For the measurement experiments (Section 3) the paper removed the
//! battery and ran from an external supply "to avoid confounding effects
//! due to non-ideal battery behavior" — energy is unbounded and merely
//! metered. For the goal-directed experiments (Section 5) Odyssey is given
//! an initial energy value (12,000 J, 13,000 J, or 90,000 J) and the
//! experiment ends when the workload completes or the supply reaches zero.

use simcore::{fault::hash_noise, SimTime};

/// An energy supply being drained by the platform.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EnergySource {
    /// External supply: unlimited energy, consumption metered only.
    External,
    /// Finite store with the given remaining energy, J.
    Battery {
        /// Energy remaining, J.
        remaining_j: f64,
    },
}

impl EnergySource {
    /// Creates a finite supply with `initial_j` Joules.
    ///
    /// # Panics
    ///
    /// Panics if `initial_j` is negative or not finite.
    pub fn battery(initial_j: f64) -> Self {
        assert!(
            initial_j.is_finite() && initial_j >= 0.0,
            "invalid initial energy: {initial_j}"
        );
        EnergySource::Battery {
            remaining_j: initial_j,
        }
    }

    /// Draws `joules` from the supply; returns the amount actually drawn
    /// (less than requested only when a battery runs out).
    ///
    /// # Panics
    ///
    /// Panics if `joules` is negative or not finite.
    pub fn drain(&mut self, joules: f64) -> f64 {
        assert!(
            joules.is_finite() && joules >= 0.0,
            "invalid drain: {joules}"
        );
        match self {
            EnergySource::External => joules,
            EnergySource::Battery { remaining_j } => {
                let drawn = joules.min(*remaining_j);
                *remaining_j -= drawn;
                drawn
            }
        }
    }

    /// Energy remaining, J (`f64::INFINITY` for an external supply).
    pub fn remaining_j(&self) -> f64 {
        match self {
            EnergySource::External => f64::INFINITY,
            EnergySource::Battery { remaining_j } => *remaining_j,
        }
    }

    /// True once a battery is fully drained.
    pub fn is_exhausted(&self) -> bool {
        match self {
            EnergySource::External => false,
            EnergySource::Battery { remaining_j } => *remaining_j <= 0.0,
        }
    }
}

/// Error model of the battery fuel gauge: what the software *reads*, as
/// opposed to what the cell *holds*.
///
/// The paper sidesteps gauge error by running from an external supply and
/// handing Odyssey an exact initial-energy figure; a deployed client gets
/// neither luxury. The model composes four effects observed in smart
/// batteries: a proportional calibration bias, a coulomb-counter drift
/// that grows linearly with time, zero-mean proportional read noise, and
/// quantization to the gauge's reporting step.
///
/// `read` is a pure function of `(now, true_j)` — per-instant noise comes
/// from [`hash_noise`], not an rng stream — so a read-only probe can call
/// it any number of times without perturbing determinism.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BatteryGauge {
    /// Seed for the per-read noise hash.
    pub seed: u64,
    /// Proportional calibration bias: +0.1 reads 10% optimistic.
    pub bias_frac: f64,
    /// Coulomb-counter drift, J of over-report per simulated second.
    pub drift_j_per_s: f64,
    /// Standard-deviation-scale read noise as a fraction of the reading.
    pub noise_frac: f64,
    /// Reporting quantum, J (readings are floored to a multiple of it).
    pub quantum_j: f64,
}

impl BatteryGauge {
    /// An ideal gauge: reads the true value exactly.
    pub fn ideal() -> Self {
        BatteryGauge {
            seed: 0,
            bias_frac: 0.0,
            drift_j_per_s: 0.0,
            noise_frac: 0.0,
            quantum_j: 0.0,
        }
    }

    /// A hostile gauge scaled by `intensity` in `[0, 1]`: at full
    /// intensity it reads 20% optimistic, drifts upward 0.5 J/s, carries
    /// 2% read noise, and reports in 50 J steps. The optimistic sign is
    /// the dangerous one — a pessimistic gauge merely wastes fidelity,
    /// an optimistic one walks the client into a dead battery.
    ///
    /// # Panics
    ///
    /// Panics if `intensity` is outside `[0, 1]`.
    pub fn hostile(seed: u64, intensity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&intensity),
            "invalid intensity: {intensity}"
        );
        BatteryGauge {
            seed,
            bias_frac: 0.20 * intensity,
            drift_j_per_s: 0.5 * intensity,
            noise_frac: 0.02 * intensity,
            quantum_j: 50.0 * intensity,
        }
    }

    /// True when the gauge introduces no error at all.
    pub fn is_ideal(&self) -> bool {
        self.bias_frac == 0.0
            && self.drift_j_per_s == 0.0
            && self.noise_frac == 0.0
            && self.quantum_j == 0.0
    }

    /// What the gauge reports at `now` when the cell truly holds
    /// `true_j`. Deterministic in `(now, true_j)`; never negative; an
    /// infinite `true_j` (external supply) passes through untouched.
    pub fn read(&self, now: SimTime, true_j: f64) -> f64 {
        if self.is_ideal() || true_j.is_infinite() {
            return true_j;
        }
        let mut v = true_j * (1.0 + self.bias_frac) + self.drift_j_per_s * now.as_secs_f64();
        if self.noise_frac > 0.0 {
            // One noise draw per 100 ms bucket so back-to-back reads agree.
            let tick = now.as_micros() / 100_000;
            v *= 1.0 + self.noise_frac * hash_noise(self.seed, tick);
        }
        if self.quantum_j > 0.0 {
            v = (v / self.quantum_j).floor() * self.quantum_j;
        }
        v.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimDuration;

    #[test]
    fn external_is_never_exhausted() {
        let mut s = EnergySource::External;
        assert_eq!(s.drain(1e9), 1e9);
        assert!(!s.is_exhausted());
        assert_eq!(s.remaining_j(), f64::INFINITY);
    }

    #[test]
    fn battery_drains_to_zero() {
        let mut s = EnergySource::battery(100.0);
        assert_eq!(s.drain(60.0), 60.0);
        assert!((s.remaining_j() - 40.0).abs() < 1e-12);
        assert!(!s.is_exhausted());
        // Over-draw is clamped to what remains.
        assert_eq!(s.drain(60.0), 40.0);
        assert!(s.is_exhausted());
        assert_eq!(s.drain(1.0), 0.0);
    }

    #[test]
    fn zero_capacity_battery_is_exhausted() {
        let s = EnergySource::battery(0.0);
        assert!(s.is_exhausted());
    }

    #[test]
    #[should_panic(expected = "invalid initial energy")]
    fn negative_capacity_panics() {
        let _ = EnergySource::battery(-1.0);
    }

    #[test]
    #[should_panic(expected = "invalid drain")]
    fn negative_drain_panics() {
        EnergySource::External.drain(-1.0);
    }

    #[test]
    fn ideal_gauge_is_transparent() {
        let g = BatteryGauge::ideal();
        assert!(g.is_ideal());
        assert_eq!(g.read(SimTime::from_secs(100), 5_000.0), 5_000.0);
        assert_eq!(g.read(SimTime::ZERO, f64::INFINITY), f64::INFINITY);
    }

    #[test]
    fn hostile_gauge_reads_optimistic_and_deterministic() {
        let g = BatteryGauge::hostile(7, 1.0);
        let now = SimTime::from_secs(600);
        let a = g.read(now, 6_000.0);
        let b = g.read(now, 6_000.0);
        assert_eq!(a, b, "same instant, same reading");
        // Bias +20% and drift +0.5 J/s dominate the ±2% noise.
        assert!(a > 6_000.0, "hostile gauge should over-report: {a}");
        // Quantized to 50 J steps.
        assert_eq!(a % 50.0, 0.0);
        // Noise means two different instants read differently even at
        // equal true energy (drift aside).
        let later = g.read(now + SimDuration::from_secs(1), 6_000.0);
        assert_ne!(a, later);
    }

    #[test]
    fn gauge_never_goes_negative() {
        let g = BatteryGauge::hostile(3, 1.0);
        for s in 0..100 {
            let v = g.read(SimTime::from_secs(s), 1.0);
            assert!(v >= 0.0, "{v}");
        }
    }

    #[test]
    fn zero_intensity_gauge_is_ideal() {
        assert!(BatteryGauge::hostile(1, 0.0).is_ideal());
    }
}
