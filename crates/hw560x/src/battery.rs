//! Energy supply model.
//!
//! For the measurement experiments (Section 3) the paper removed the
//! battery and ran from an external supply "to avoid confounding effects
//! due to non-ideal battery behavior" — energy is unbounded and merely
//! metered. For the goal-directed experiments (Section 5) Odyssey is given
//! an initial energy value (12,000 J, 13,000 J, or 90,000 J) and the
//! experiment ends when the workload completes or the supply reaches zero.

/// An energy supply being drained by the platform.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EnergySource {
    /// External supply: unlimited energy, consumption metered only.
    External,
    /// Finite store with the given remaining energy, J.
    Battery {
        /// Energy remaining, J.
        remaining_j: f64,
    },
}

impl EnergySource {
    /// Creates a finite supply with `initial_j` Joules.
    ///
    /// # Panics
    ///
    /// Panics if `initial_j` is negative or not finite.
    pub fn battery(initial_j: f64) -> Self {
        assert!(
            initial_j.is_finite() && initial_j >= 0.0,
            "invalid initial energy: {initial_j}"
        );
        EnergySource::Battery {
            remaining_j: initial_j,
        }
    }

    /// Draws `joules` from the supply; returns the amount actually drawn
    /// (less than requested only when a battery runs out).
    ///
    /// # Panics
    ///
    /// Panics if `joules` is negative or not finite.
    pub fn drain(&mut self, joules: f64) -> f64 {
        assert!(
            joules.is_finite() && joules >= 0.0,
            "invalid drain: {joules}"
        );
        match self {
            EnergySource::External => joules,
            EnergySource::Battery { remaining_j } => {
                let drawn = joules.min(*remaining_j);
                *remaining_j -= drawn;
                drawn
            }
        }
    }

    /// Energy remaining, J (`f64::INFINITY` for an external supply).
    pub fn remaining_j(&self) -> f64 {
        match self {
            EnergySource::External => f64::INFINITY,
            EnergySource::Battery { remaining_j } => *remaining_j,
        }
    }

    /// True once a battery is fully drained.
    pub fn is_exhausted(&self) -> bool {
        match self {
            EnergySource::External => false,
            EnergySource::Battery { remaining_j } => *remaining_j <= 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn external_is_never_exhausted() {
        let mut s = EnergySource::External;
        assert_eq!(s.drain(1e9), 1e9);
        assert!(!s.is_exhausted());
        assert_eq!(s.remaining_j(), f64::INFINITY);
    }

    #[test]
    fn battery_drains_to_zero() {
        let mut s = EnergySource::battery(100.0);
        assert_eq!(s.drain(60.0), 60.0);
        assert!((s.remaining_j() - 40.0).abs() < 1e-12);
        assert!(!s.is_exhausted());
        // Over-draw is clamped to what remains.
        assert_eq!(s.drain(60.0), 40.0);
        assert!(s.is_exhausted());
        assert_eq!(s.drain(1.0), 0.0);
    }

    #[test]
    fn zero_capacity_battery_is_exhausted() {
        let s = EnergySource::battery(0.0);
        assert!(s.is_exhausted());
    }

    #[test]
    #[should_panic(expected = "invalid initial energy")]
    fn negative_capacity_panics() {
        let _ = EnergySource::battery(-1.0);
    }

    #[test]
    #[should_panic(expected = "invalid drain")]
    fn negative_drain_panics() {
        EnergySource::External.drain(-1.0);
    }
}
