//! Calibration constants reconstructed from the paper's Figure 4.
//!
//! Figure 4 ("Power consumption of IBM ThinkPad 560X") is partially garbled
//! in our source text, so the constants below were reconstructed to satisfy
//! every consistency identity the prose states. The identities, and the
//! doc tests that pin them, are:
//!
//! 1. "the laptop uses 10.28 W when the screen is brightest and the disk
//!    and network are idle — 0.21 W more than the sum of the individual
//!    power usage of each component" → bright + radio idle + disk idle +
//!    base = 10.07 W, plus 0.21 W superlinearity = 10.28 W.
//! 2. "Background (display dim, WaveLAN & disk standby) = 5.6 W".
//! 3. "The last row shows the power used when the disk, screen, and
//!    network are all powered off" ≈ 3.47 W (the token `3.46` survives in
//!    the garbled table).
//! 4. The display "is responsible for nearly 35% of the background energy
//!    usage" → dim display ≈ 0.35-0.38 of 5.6 W.
//!
//! The CPU's maximum active excess (9.5 W over halt) is calibrated from
//! Section 3.4: hardware-only power management saves 33-34% on the
//! compute-bound speech workload by turning off display/network/disk
//! (≈ 6.8 W), which pins the busy-platform total near 20 W. A mobile
//! Pentium MMX 233 plus its memory system under a cache-hostile search
//! workload plausibly draws that much above halt at the wall.

use simcore::SimDuration;

/// Power model parameters for one client platform.
///
/// `Default` yields the calibrated IBM ThinkPad 560X. Experiments that
/// explore other platforms (or ablate the superlinearity term) construct
/// modified specs.
#[derive(Clone, Debug, PartialEq)]
pub struct PlatformSpec {
    /// Display backlight at full brightness, W.
    pub display_bright_w: f64,
    /// Display backlight dimmed, W.
    pub display_dim_w: f64,
    /// WaveLAN interface awake but not transferring, W.
    pub radio_idle_w: f64,
    /// WaveLAN interface in standby, W.
    pub radio_standby_w: f64,
    /// WaveLAN interface actively transmitting/receiving, W.
    pub radio_active_w: f64,
    /// Disk spinning but idle, W.
    pub disk_idle_w: f64,
    /// Disk in standby (spun down), W.
    pub disk_standby_w: f64,
    /// Disk servicing requests, W.
    pub disk_active_w: f64,
    /// Disk power while spinning up, W.
    pub disk_spinup_w: f64,
    /// Time to spin the disk up from standby.
    pub disk_spinup_time: SimDuration,
    /// Everything else (CPU in halt, chipset, DRAM refresh, regulators), W.
    pub base_other_w: f64,
    /// Additional power of CPU + memory system at full load, W.
    pub cpu_max_excess_w: f64,
    /// Superlinearity coefficient: measured total exceeds the component sum
    /// by this fraction of the sum's excess over `base_other_w`.
    pub superlinear_coeff: f64,
    /// Disk transfer rate, bytes per second.
    pub disk_rate_bps: f64,
}

/// Nominal capacity of a fully charged ThinkPad 560X battery, Joules.
///
/// Section 5.2 notes the 12,000 J supply used in the short experiments "is
/// only about 14% of the nominal energy in the IBM 560X battery"; 12,000 /
/// 0.14 ≈ 86 kJ, and Section 5.4's 90,000 J supply "roughly matches a
/// fully-charged ThinkPad 560X battery".
pub const NOMINAL_BATTERY_J: f64 = 90_000.0;

impl Default for PlatformSpec {
    fn default() -> Self {
        PlatformSpec {
            display_bright_w: 4.54,
            // Derived from identity (2); see `background_identity` test.
            display_dim_w: 2.066,
            radio_idle_w: 1.54,
            radio_standby_w: 0.18,
            radio_active_w: 2.90,
            disk_idle_w: 0.95,
            disk_standby_w: 0.24,
            disk_active_w: 2.25,
            disk_spinup_w: 3.00,
            disk_spinup_time: SimDuration::from_millis(1500),
            base_other_w: 3.04,
            cpu_max_excess_w: 9.5,
            superlinear_coeff: 0.0299,
            disk_rate_bps: 3.0e6,
        }
    }
}

impl PlatformSpec {
    /// The calibrated IBM ThinkPad 560X.
    pub fn thinkpad_560x() -> Self {
        Self::default()
    }

    /// A variant with the superlinearity term removed, for ablations.
    pub fn without_superlinearity(mut self) -> Self {
        self.superlinear_coeff = 0.0;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{DeviceStates, PlatformPower};
    use crate::{DiskState, DisplayState, RadioState};

    fn power(display: DisplayState, disk: DiskState, radio: RadioState) -> f64 {
        let p = PlatformPower::new(PlatformSpec::default());
        p.power_w(&DeviceStates {
            display,
            disk,
            radio,
            cpu_load: 0.0,
        })
    }

    /// Identity (1): screen brightest, disk and network idle → 10.28 W.
    #[test]
    fn full_on_identity() {
        let total = power(DisplayState::Bright, DiskState::Idle, RadioState::Idle);
        assert!(
            (total - 10.28).abs() < 0.01,
            "full-on power {total} != 10.28"
        );
    }

    /// Identity (2): display dim, WaveLAN & disk standby → 5.60 W.
    #[test]
    fn background_identity() {
        let total = power(DisplayState::Dim, DiskState::Standby, RadioState::Standby);
        assert!(
            (total - 5.60).abs() < 0.01,
            "background power {total} != 5.60"
        );
    }

    /// Identity (3): disk, screen, network all "off" → ≈ 3.47 W.
    #[test]
    fn all_off_identity() {
        let total = power(DisplayState::Off, DiskState::Standby, RadioState::Standby);
        assert!(
            (total - 3.47).abs() < 0.01,
            "all-off power {total} not ≈ 3.47"
        );
    }

    /// Identity (4): display is "nearly 35%" of background power.
    #[test]
    fn display_share_of_background() {
        let spec = PlatformSpec::default();
        let frac = spec.display_dim_w / 5.60;
        assert!(
            (0.33..=0.40).contains(&frac),
            "dim display fraction {frac} outside the 'nearly 35%' band"
        );
    }

    /// Superlinearity: full-on exceeds the component sum by ≈ 0.21 W.
    #[test]
    fn superlinearity_magnitude() {
        let spec = PlatformSpec::default();
        let sum = spec.display_bright_w + spec.radio_idle_w + spec.disk_idle_w + spec.base_other_w;
        let total = power(DisplayState::Bright, DiskState::Idle, RadioState::Idle);
        assert!(((total - sum) - 0.21).abs() < 0.01);
    }

    /// Ablated spec has no superlinearity.
    #[test]
    fn without_superlinearity_is_additive() {
        let spec = PlatformSpec::default().without_superlinearity();
        let sum = spec.display_bright_w + spec.radio_idle_w + spec.disk_idle_w + spec.base_other_w;
        let p = PlatformPower::new(spec);
        let total = p.power_w(&DeviceStates {
            display: DisplayState::Bright,
            disk: DiskState::Idle,
            radio: RadioState::Idle,
            cpu_load: 0.0,
        });
        assert!((total - sum).abs() < 1e-12);
    }
}
