//! CLI-level contract of the `energymap --check` gate: exit codes and
//! divergence naming, driven through the real binary. The library-level
//! gate behavior lives in `tests/energy_regression.rs` at the workspace
//! root; this pins what CI actually invokes.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_odyssey-experiments"))
}

/// Seeded +2 % decode inflation makes `energymap --check` exit non-zero
/// and print the exact diverging call path on stderr.
#[test]
fn check_exits_nonzero_naming_the_inflated_path() {
    let out = bin()
        .args(["energymap", "--check", "--inflate-decode", "1.02"])
        .output()
        .expect("spawn odyssey-experiments");
    assert!(
        !out.status.success(),
        "inflated energymap --check exited zero"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("xanim path video_playback/frame_pipeline/decode_frame"),
        "stderr does not name the inflated block:\n{stderr}"
    );
    assert!(
        stderr.contains("fresh table saved to"),
        "no CI artifact path reported:\n{stderr}"
    );
}

/// Flag validation: a non-positive inflation ratio is a usage error
/// (exit 2), not a silent no-op.
#[test]
fn inflate_decode_rejects_nonpositive_ratios() {
    let out = bin()
        .args(["energymap", "--check", "--inflate-decode", "0"])
        .output()
        .expect("spawn odyssey-experiments");
    assert_eq!(out.status.code(), Some(2), "expected usage error");
}
