//! Figure 2: a sample PowerScope energy profile.
//!
//! The paper's example profiles a video playback: the summary table lists
//! xanim, the X server, WaveLAN interrupts, Odyssey and the kernel idle
//! loop; the detail table breaks one process into procedures. We
//! regenerate the same artefact by profiling 30 seconds of full-fidelity
//! video playback with the simulated multimeter and correlating offline.

use machine::{Machine, MachineConfig};
use odyssey_apps::datasets::{VideoClip, VIDEO_CLIPS};
use odyssey_apps::{VideoPlayer, VideoVariant};
use powerscope::{correlate, EnergyProfile, PowerScope};
use simcore::SimRng;

use crate::harness::Trials;

/// Profiled playback length, seconds (long enough for ~18k samples).
const PROFILE_SECS: f64 = 30.0;

/// Builds the profiling rig: the baseline machine playing 30 s of
/// full-fidelity video with a PowerScope session attached. The trace
/// recorder uses this too, so the rng draw order here defines the run.
pub fn build(seed: u64) -> (PowerScope, Machine) {
    build_with(seed, 1.0)
}

/// [`build`] with a seeded inflation of the decode block's CPU time —
/// the energy-regression gate's negative control. Production callers
/// pass 1.0 (and get byte-identical behavior to [`build`]).
pub fn build_with(seed: u64, decode_inflation: f64) -> (PowerScope, Machine) {
    let mut rng = SimRng::new(seed).fork("fig2");
    let clip = VideoClip {
        duration_s: PROFILE_SECS,
        ..VIDEO_CLIPS[0]
    };
    let (mut scope, observer) = PowerScope::new(seed);
    scope.set_resolver(odyssey_apps::call_path);
    let mut m = Machine::new(MachineConfig::baseline());
    m.add_observer(observer);
    m.add_process(Box::new(
        VideoPlayer::fixed(clip, VideoVariant::Full, &mut rng)
            .with_decode_inflation(decode_inflation),
    ));
    (scope, m)
}

/// Runs the profiling session and returns the correlated profile.
pub fn run(trials: &Trials) -> EnergyProfile {
    let (scope, mut m) = build(trials.seed);
    let _ = m.run();
    drop(m);
    correlate(&scope.into_run())
}

/// Renders the profile in the paper's Figure 2 layout.
pub fn render(trials: &Trials) -> String {
    format!(
        "== Figure 2: PowerScope energy profile (video playback) ==\n{}",
        run(trials).format()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_contains_expected_processes() {
        let p = run(&Trials::single());
        let names: Vec<&str> = p.processes.iter().map(|r| r.process.as_str()).collect();
        for expected in ["xanim", "Idle", "X Server", "WaveLAN", "Odyssey"] {
            assert!(names.contains(&expected), "missing {expected} in {names:?}");
        }
    }

    #[test]
    fn sampled_totals_match_exact_energy_within_noise() {
        let p = run(&Trials::single());
        // 30 s of full-fidelity baseline playback at ~12 W.
        let total = p.total_energy_j();
        assert!(
            (250.0..=450.0).contains(&total),
            "sampled total {total} J implausible"
        );
    }

    #[test]
    fn render_produces_both_tables() {
        let s = render(&Trials::single());
        assert!(s.contains("Process"));
        assert!(s.contains("Energy Usage Detail"));
    }
}
