//! The `bench` CLI verb: thread-scaling sweep over canonical scenarios.
//!
//! Five scenarios spanning the workload spectrum are timed at each
//! requested worker-thread count:
//!
//! | id        | workload                                                |
//! |-----------|---------------------------------------------------------|
//! | fig2      | one PowerScope profiling session (inherently serial)    |
//! | fig16     | web sweep at one think time (one wide cell fan-out)     |
//! | goal      | one hardened composite goal run (inherently serial)     |
//! | supervise | supervised/unsupervised k=2 pair (trial-flattened fan)  |
//! | serve     | always-on session replaying the supervise golden trace (sustained directive throughput, inherently serial) |
//!
//! Besides timing, every parallel run's output digest is checked against
//! the serial digest of the same scenario — the bench doubles as the
//! determinism gate CI runs on multi-core machines, where a merge-order
//! bug would actually have room to express itself.

use bench::sweep::{time_reps, BenchRecord};
use simcore::SnapshotHasher;

use crate::harness::Trials;
use crate::{fig16, fig2, serve, supervise, tracerec};

/// Scenario identifiers the sweep times, in run order.
pub const SCENARIOS: [&str; 5] = ["fig2", "fig16", "goal", "supervise", "serve"];

/// Runs one scenario at the given trial configuration and returns a
/// digest of its complete output. Byte-identical output ⇒ equal digest.
pub fn digest(scenario: &str, trials: &Trials) -> u64 {
    let mut h = SnapshotHasher::new();
    match scenario {
        "fig2" => h.write_bytes(fig2::render(trials).as_bytes()),
        "fig16" => {
            let f = fig16::run_with_thinks(trials, &[5.0]);
            h.write_bytes(format!("{f:?}").as_bytes());
        }
        "goal" => {
            // The golden-trace goal scenario: a single machine, so the
            // sweep also shows where parallelism has nothing to offer.
            let lines = tracerec::record("goal", trials.seed)
                .unwrap_or_else(|e| panic!("bench goal scenario: {e}"));
            for line in lines {
                h.write_bytes(line.as_bytes());
            }
        }
        "supervise" => {
            let s = supervise::run_sweep(trials, &[2]);
            h.write_bytes(format!("{:?}", s.cells).as_bytes());
        }
        "serve" => {
            // Sustained stepping through the service API: one session
            // replaying the supervise golden schedule. Inherently
            // serial, like `goal` — the sweep shows the step API adds
            // no scaling artifact.
            let samples =
                serve::schedule(1).unwrap_or_else(|e| panic!("bench serve scenario: {e}"));
            let run = serve::replay(trials.seed, &samples, None)
                .unwrap_or_else(|e| panic!("bench serve scenario: {e}"));
            h.write_u64(run.final_digest);
            h.write_u64(run.directives as u64);
            for line in &run.trace {
                h.write_bytes(line.as_bytes());
            }
        }
        other => panic!("unknown bench scenario: {other} (have {SCENARIOS:?})"),
    }
    h.finish()
}

/// A completed sweep: the measurements plus any determinism violations.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// One record per (scenario, thread count), scenario-major.
    pub records: Vec<BenchRecord>,
    /// `scenario@threads` entries whose output digest diverged from the
    /// serial run — non-empty means the parallel merge is broken.
    pub divergent: Vec<String>,
}

/// Times every scenario at every thread count (`reps` timed repetitions
/// each, after a warm-up) and cross-checks parallel digests against
/// serial. Thread count 1 is always measured first as the speedup
/// baseline, even if absent from `thread_counts`.
// simlint: allow(P1) — the bench sweep times real execution by design;
// wall-clock reach stops here, no simulation result depends on it
pub fn run_sweep(trials: &Trials, thread_counts: &[usize], reps: usize) -> SweepOutcome {
    let mut counts: Vec<usize> = thread_counts.to_vec();
    if !counts.contains(&1) {
        counts.insert(0, 1);
    }
    counts.sort_unstable();
    counts.dedup();

    let mut records = Vec::new();
    let mut divergent = Vec::new();
    for scenario in SCENARIOS {
        // The serve scenario has a countable unit of work: directives
        // issued over the replayed stream. The count is a pure function
        // of the seed, so one replay prices every thread count's rows.
        let work_units: Option<u64> = (scenario == "serve").then(|| {
            let samples =
                serve::schedule(1).unwrap_or_else(|e| panic!("bench serve scenario: {e}"));
            let run = serve::replay(trials.seed, &samples, None)
                .unwrap_or_else(|e| panic!("bench serve scenario: {e}"));
            run.directives as u64
        });
        let serial_digest = digest(scenario, &trials.with_threads(1));
        let mut serial_median_ms = 0.0f64;
        for &threads in &counts {
            let t = trials.with_threads(threads);
            // The divergence-check run doubles as the telemetry probe:
            // bracketing exactly one digest() with reset/snapshot
            // yields the pool's dispatch metadata for this
            // (scenario, threads) cell, untouched by the timing reps.
            simcore::par::telemetry::reset();
            if digest(scenario, &t) != serial_digest {
                divergent.push(format!("{scenario}@{threads}"));
            }
            let pool = simcore::par::telemetry::snapshot();
            let (median_ms, min_ms) = time_reps(reps, || {
                std::hint::black_box(digest(scenario, std::hint::black_box(&t)));
            });
            if threads == 1 {
                serial_median_ms = median_ms;
            }
            records.push(BenchRecord {
                scenario: scenario.to_string(),
                threads,
                reps,
                median_wall_ms: median_ms,
                min_wall_ms: min_ms,
                speedup_vs_serial: if median_ms > 0.0 {
                    serial_median_ms / median_ms
                } else {
                    1.0
                },
                work_per_s: work_units
                    .and_then(|units| (median_ms > 0.0).then(|| units as f64 / (median_ms / 1e3))),
                host_threads: simcore::par::available_threads(),
                pool_dispatches: pool.dispatches,
                pool_inline_runs: pool.inline_runs,
                pool_chunks: pool.chunks,
                pool_workers: pool.workers,
            });
        }
    }
    SweepOutcome { records, divergent }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every scenario digests deterministically, and the digest actually
    /// depends on the seed (i.e. it reflects the run, not a constant).
    #[test]
    fn digests_are_stable_and_seed_sensitive() {
        let t = Trials {
            n: 1,
            seed: 42,
            threads: 1,
        };
        for scenario in SCENARIOS {
            let a = digest(scenario, &t);
            let b = digest(scenario, &t);
            assert_eq!(a, b, "{scenario} digest unstable");
            let other = digest(scenario, &Trials { seed: 43, ..t });
            assert_ne!(a, other, "{scenario} digest ignores the seed");
        }
    }

    /// Parallel digests match serial for every scenario — the in-process
    /// version of the gate CI runs via the bench verb.
    #[test]
    fn parallel_digests_match_serial() {
        let t = Trials {
            n: 2,
            seed: 42,
            threads: 1,
        };
        for scenario in SCENARIOS {
            let serial = digest(scenario, &t);
            for threads in [2, 8] {
                assert_eq!(
                    serial,
                    digest(scenario, &t.with_threads(threads)),
                    "{scenario} diverges at {threads} threads"
                );
            }
        }
    }

    /// The sweep emits scenario-major records with a serial baseline row
    /// and flags no divergence.
    #[test]
    fn sweep_shape() {
        let t = Trials {
            n: 1,
            seed: 42,
            threads: 1,
        };
        let out = run_sweep(&t, &[2], 1);
        assert!(out.divergent.is_empty(), "{:?}", out.divergent);
        assert_eq!(out.records.len(), SCENARIOS.len() * 2);
        for pair in out.records.chunks(2) {
            assert_eq!(pair[0].threads, 1);
            assert_eq!(pair[1].threads, 2);
            assert_eq!(pair[0].scenario, pair[1].scenario);
            assert!((pair[0].speedup_vs_serial - 1.0).abs() < 1e-12);
            // Only the serve rows measure a directive rate, and it is a
            // real (positive, finite) throughput.
            if pair[0].scenario == "serve" {
                for r in pair {
                    let rate = r.work_per_s.expect("serve row without a rate");
                    assert!(rate.is_finite() && rate > 0.0, "rate {rate}");
                }
            } else {
                assert!(pair[0].work_per_s.is_none());
            }
        }
    }
}
