//! Figure 13: energy impact of fidelity for Web browsing.
//!
//! Four GIF images × six bars: baseline, hardware-only, and four levels
//! of lossy JPEG transcoding at the distillation server. The paper's
//! message is negative: "the energy benefits of fidelity reduction are
//! disappointing" — 4-14% below hardware-only at best, because think-time
//! background power dominates.

use machine::{Machine, MachineConfig};
use odyssey_apps::datasets::{WebImage, WEB_IMAGES};
use odyssey_apps::{WebBrowser, WebFidelity};
use simcore::{SimDuration, SimRng};

use crate::barchart::BarChart;
use crate::harness::{run_trials, Trials};

/// The six experimental conditions, in figure order.
pub const CONDITIONS: [(&str, WebFidelity, bool); 6] = [
    ("Baseline", WebFidelity::Full, false),
    ("Hardware-Only Power Mgmt.", WebFidelity::Full, true),
    ("JPEG-75", WebFidelity::Jpeg75, true),
    ("JPEG-50", WebFidelity::Jpeg50, true),
    ("JPEG-25", WebFidelity::Jpeg25, true),
    ("JPEG-5", WebFidelity::Jpeg5, true),
];

/// Builds one experimental cell: a machine browsing `images` at the given
/// fidelity and think time, with or without hardware power management.
/// Public so the trace recorder can replay a canonical condition.
pub fn build(
    images: Vec<WebImage>,
    fidelity: WebFidelity,
    pm: bool,
    think_s: f64,
    rng: &mut SimRng,
) -> Machine {
    let cfg = if pm {
        MachineConfig::default()
    } else {
        MachineConfig::baseline()
    };
    let mut m = Machine::new(cfg);
    m.add_process(Box::new(
        WebBrowser::fixed(images, fidelity, rng)
            .with_think_time(SimDuration::from_secs_f64(think_s)),
    ));
    m
}

/// Runs the full figure at a given think time (Figure 13 uses 5 s).
pub fn run_at_think(trials: &Trials, think_s: f64) -> BarChart {
    // The paper uses ten trials (twice the video/speech count) for this
    // application; scale whatever the caller asked for accordingly.
    let trials = &Trials {
        n: trials.n * 2,
        ..*trials
    };
    let mut chart = BarChart::new(format!(
        "Figure 13: Energy impact of fidelity for Web browsing (J, think={think_s}s)"
    ));
    for image in &WEB_IMAGES {
        for (name, fidelity, pm) in CONDITIONS {
            let label = format!("fig13/{}/{}", image.name, name);
            let reports = run_trials(trials, &label, |rng| {
                build(vec![*image], fidelity, pm, think_s, rng)
            });
            chart.push(image.name, name, &reports);
        }
    }
    chart
}

/// Runs the figure at the default 5-second think time.
pub fn run(trials: &Trials) -> BarChart {
    run_at_think(trials, 5.0)
}

/// Renders the figure as a table.
pub fn render(trials: &Trials) -> String {
    run(trials).to_table().render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> BarChart {
        run(&Trials::quick())
    }

    /// Paper: hardware-only achieves 22-26% (29-34% relative numbers also
    /// appear for baseline at other think times; we pin the 5-second row).
    #[test]
    fn hw_only_band() {
        let c = chart();
        let (lo, hi) = c.saving_band("Hardware-Only Power Mgmt.", "Baseline");
        assert!(lo > 15.0 && hi < 33.0, "hw-only band {lo}-{hi}%");
    }

    /// Paper: even JPEG-5 saves merely 4-14% below hardware-only.
    #[test]
    fn fidelity_savings_are_disappointing() {
        let c = chart();
        let (lo, hi) = c.saving_band("JPEG-5", "Hardware-Only Power Mgmt.");
        assert!((-1.0..6.0).contains(&lo), "jpeg-5 low end {lo}%");
        assert!(hi > 3.0 && hi < 20.0, "jpeg-5 high end {hi}%");
    }

    /// The tiny image gains essentially nothing from transcoding.
    #[test]
    fn tiny_image_flat() {
        let c = chart();
        let s = c.saving_pct("Image 4", "JPEG-5", "Hardware-Only Power Mgmt.");
        assert!(s.abs() < 3.0, "110-byte image saved {s}%");
    }

    /// JPEG levels are monotone for the largest image.
    #[test]
    fn jpeg_levels_monotone_for_large_image() {
        let c = chart();
        let levels = ["JPEG-75", "JPEG-50", "JPEG-25", "JPEG-5"];
        let energies: Vec<f64> = levels.iter().map(|l| c.energy_j("Image 1", l)).collect();
        for w in energies.windows(2) {
            assert!(w[1] <= w[0] * 1.001, "not monotone: {energies:?}");
        }
    }
}
