//! Plain-text table rendering for the CLI and EXPERIMENTS.md.

use std::fmt::Write as _;

/// A rectangular table with a title and column headers.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Title printed above the table.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Rows of cells; ragged rows are padded.
    pub rows: Vec<Vec<String>>,
    /// Optional caption printed below.
    pub caption: String,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            caption: String::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Sets the caption.
    pub fn with_caption(mut self, caption: impl Into<String>) -> Self {
        self.caption = caption.into();
        self
    }

    /// Renders as CSV (RFC-4180-style quoting for cells containing
    /// commas or quotes), header first; the caption is omitted.
    pub fn to_csv(&self) -> String {
        fn cell(c: &str) -> String {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        }
        let mut out = String::new();
        if !self.header.is_empty() {
            let _ = writeln!(
                out,
                "{}",
                self.header
                    .iter()
                    .map(|c| cell(c))
                    .collect::<Vec<_>>()
                    .join(",")
            );
        }
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                r.iter().map(|c| cell(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Renders with aligned columns (first column left, rest right).
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let measure = |widths: &mut Vec<usize>, row: &[String]| {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        };
        measure(&mut widths, &self.header);
        for r in &self.rows {
            measure(&mut widths, r);
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let fmt_row = |row: &[String]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                if i == 0 {
                    let _ = write!(line, "{cell:<w$}");
                } else {
                    let _ = write!(line, "  {cell:>w$}");
                }
            }
            line.trim_end().to_string()
        };
        if !self.header.is_empty() {
            let _ = writeln!(out, "{}", fmt_row(&self.header));
            let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
            let _ = writeln!(out, "{}", "-".repeat(total));
        }
        for r in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(r));
        }
        if !self.caption.is_empty() {
            let _ = writeln!(out, "{}", self.caption);
        }
        out
    }
}

/// Formats a Joule value.
pub fn j(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a value ± its confidence half-width.
pub fn pm(mean: f64, ci: f64) -> String {
    format!("{mean:.1} ±{ci:.1}")
}

/// Formats a percentage.
pub fn pct(v: f64) -> String {
    format!("{v:.1}%")
}

/// Formats a ratio with two decimals (Figure 16 style).
pub fn ratio(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a min-max ratio band (Figure 16 style).
pub fn band(min: f64, max: f64) -> String {
    format!("{min:.2}-{max:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["Row", "A", "B"]);
        t.push_row(vec!["first".into(), "1.0".into(), "22.5".into()]);
        t.push_row(vec!["second-longer".into(), "333.0".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // Title, header, rule, two rows.
        assert_eq!(lines.len(), 5);
        assert!(lines[2].starts_with('-'));
        // Right-aligned numeric columns line up.
        let c1 = lines[3].rfind("22.5").unwrap() + 4;
        let c2 = lines[4].rfind('4').unwrap() + 1;
        assert_eq!(c1, c2);
    }

    #[test]
    fn ragged_rows_are_padded() {
        let mut t = Table::new("", &["A", "B", "C"]);
        t.push_row(vec!["x".into()]);
        let s = t.render();
        assert!(s.contains('x'));
    }

    #[test]
    fn formatters() {
        assert_eq!(j(12.34), "12.3");
        assert_eq!(pm(10.0, 0.5), "10.0 ±0.5");
        assert_eq!(pct(33.333), "33.3%");
        assert_eq!(ratio(0.666), "0.67");
        assert_eq!(band(0.1, 0.25), "0.10-0.25");
    }

    #[test]
    fn csv_quotes_awkward_cells() {
        let mut t = Table::new("t", &["A", "B"]);
        t.push_row(vec!["plain".into(), "has,comma".into()]);
        t.push_row(vec!["has\"quote".into(), "x".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "A,B");
        assert_eq!(lines[1], "plain,\"has,comma\"");
        assert_eq!(lines[2], "\"has\"\"quote\",x");
    }

    #[test]
    fn caption_is_rendered() {
        let t = Table::new("t", &["A"]).with_caption("note");
        assert!(t.render().contains("note"));
    }
}
