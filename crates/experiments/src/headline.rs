//! The paper's headline numbers (Sections 1 and 3.8).
//!
//! "Our results show energy reductions in the range of 7% to 72%, with a
//! mean of 36%. Combined with hardware power management, we achieve
//! overall reductions between 31% and 76%, with a mean of 50% — in
//! effect, doubling battery life."
//!
//! This module aggregates the Figure 16 summary into those statistics.

use crate::fig16::{self, Condition};
use crate::harness::Trials;
use crate::table::Table;

/// The headline aggregate.
#[derive(Clone, Debug)]
pub struct Headline {
    /// Fidelity-reduction savings across all rows/objects: (min, max, mean).
    pub fidelity: (f64, f64, f64),
    /// Combined savings: (min, max, mean).
    pub combined: (f64, f64, f64),
    /// Battery-life multiplier implied by the combined mean.
    pub battery_multiplier: f64,
}

/// Computes the headline statistics from the Figure 16 summary.
pub fn run(trials: &Trials) -> Headline {
    let f = fig16::run_with_thinks(trials, &[5.0, 10.0]);
    let collect = |c: Condition| -> (f64, f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let mut n = 0usize;
        for row in &f.rows {
            let (bl, bh) = row
                .bands
                .iter()
                .find(|(rc, _, _)| *rc == c)
                .map(|(_, l, h)| (*l, *h))
                // simlint: allow(D5) — fig16 rows carry every condition
                .expect("condition");
            lo = lo.min(1.0 - bh);
            hi = hi.max(1.0 - bl);
            // simlint: allow(D5) — fig16 rows carry every condition's mean
            let mean = row.means.iter().find(|(rc, _)| *rc == c).unwrap().1;
            sum += 1.0 - mean;
            n += 1;
        }
        (lo, hi, sum / n as f64)
    };
    let fidelity = collect(Condition::FidelityReduction);
    let combined = collect(Condition::Combined);
    Headline {
        fidelity,
        combined,
        battery_multiplier: 1.0 / (1.0 - combined.2),
    }
}

/// Renders the headline comparison against the paper's claims.
pub fn render(trials: &Trials) -> String {
    let h = run(trials);
    let mut t = Table::new(
        "Headline: overall energy savings (Sections 1, 3.8)",
        &["Metric", "Paper", "Measured"],
    );
    t.push_row(vec![
        "Fidelity reduction, range".into(),
        "7-72%".into(),
        format!("{:.0}-{:.0}%", h.fidelity.0 * 100.0, h.fidelity.1 * 100.0),
    ]);
    t.push_row(vec![
        "Fidelity reduction, mean".into(),
        "36%".into(),
        format!("{:.0}%", h.fidelity.2 * 100.0),
    ]);
    t.push_row(vec![
        "Combined, range".into(),
        "31-76%".into(),
        format!("{:.0}-{:.0}%", h.combined.0 * 100.0, h.combined.1 * 100.0),
    ]);
    t.push_row(vec![
        "Combined, mean".into(),
        "~50%".into(),
        format!("{:.0}%", h.combined.2 * 100.0),
    ]);
    t.push_row(vec![
        "Battery-life multiplier".into(),
        "~2.0x".into(),
        format!("{:.2}x", h.battery_multiplier),
    ]);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_statistics_match_paper_shape() {
        let h = run(&Trials::single());
        let (f_lo, f_hi, f_mean) = h.fidelity;
        let (c_lo, c_hi, c_mean) = h.combined;
        // Wide range with a low floor (web) and a high ceiling (speech).
        assert!(f_lo < 0.15, "fidelity floor {f_lo}");
        assert!(f_hi > 0.45, "fidelity ceiling {f_hi}");
        assert!((0.20..=0.55).contains(&f_mean), "fidelity mean {f_mean}");
        // Combined improves on both ends.
        assert!(c_lo >= f_lo - 0.02, "combined floor {c_lo}");
        assert!(c_hi >= f_hi, "combined ceiling {c_hi}");
        assert!((0.35..=0.65).contains(&c_mean), "combined mean {c_mean}");
        // Roughly doubled battery life.
        assert!(
            (1.5..=2.8).contains(&h.battery_multiplier),
            "multiplier {}",
            h.battery_multiplier
        );
    }
}
