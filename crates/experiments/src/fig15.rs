//! Figure 15: effect of concurrent applications.
//!
//! The composite application (six loop iterations) runs in isolation and
//! then concurrently with the background video player, under three
//! regimes: baseline, hardware-only power management, and lowest
//! fidelity. The paper's key message: concurrency amortizes background
//! power, so the *added* cost of the video shrinks as power management
//! and fidelity reduction bite — and concurrency can therefore magnify
//! the relative benefit of lowering fidelity.

use machine::{Machine, MachineConfig};
use odyssey_apps::composite::{composite_members, CompositeMode};
use odyssey_apps::datasets::VIDEO_CLIPS;
use odyssey_apps::{VideoPlayer, VideoVariant};
use simcore::{SimRng, SimTime, TrialStats};

use crate::barchart::BarChart;
use crate::harness::{energy_stats, run_trials, Trials};

/// Loop iterations (paper: six).
pub const ITERATIONS: usize = 6;

/// The three regimes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Regime {
    /// Full fidelity, no power management.
    Baseline,
    /// Full fidelity with hardware power management.
    HwOnly,
    /// Lowest fidelity with hardware power management.
    Lowest,
}

impl Regime {
    /// All regimes in figure order.
    pub fn all() -> [Regime; 3] {
        [Regime::Baseline, Regime::HwOnly, Regime::Lowest]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Regime::Baseline => "Baseline",
            Regime::HwOnly => "Hardware-Only Power Mgmt.",
            Regime::Lowest => "Lowest Fidelity",
        }
    }
}

fn build(regime: Regime, with_video: bool, rng: &mut SimRng) -> Machine {
    let cfg = match regime {
        Regime::Baseline => MachineConfig::baseline(),
        _ => MachineConfig::default(),
    };
    let mut m = Machine::new(cfg);
    for member in composite_members(CompositeMode::Iterations(ITERATIONS), false, rng) {
        let member = if regime == Regime::Lowest {
            member.at_lowest_fidelity()
        } else {
            member
        };
        m.add_process(Box::new(member));
    }
    if with_video {
        let variant = if regime == Regime::Lowest {
            VideoVariant::Combined
        } else {
            VideoVariant::Full
        };
        let player = VideoPlayer::fixed(VIDEO_CLIPS[0], variant, rng)
            .looping_until(SimTime::from_secs(100_000));
        m.add_background_process(Box::new(player));
    }
    m
}

/// Result: the six bars plus derived concurrency metrics.
#[derive(Clone, Debug)]
pub struct Fig15 {
    /// The bar chart: three regimes × {isolation, concurrent}.
    pub chart: BarChart,
    /// Per-regime (isolation stats, concurrent stats).
    pub pairs: Vec<(Regime, TrialStats, TrialStats)>,
}

impl Fig15 {
    /// Extra energy the video adds, as a fraction of isolation energy.
    pub fn added_fraction(&self, regime: Regime) -> f64 {
        let (_, iso, conc) = self
            .pairs
            .iter()
            .find(|(r, _, _)| *r == regime)
            // simlint: allow(D5) — run() always measures both regimes
            .expect("regime present");
        conc.mean / iso.mean - 1.0
    }
}

/// Runs the figure.
pub fn run(trials: &Trials) -> Fig15 {
    let mut chart = BarChart::new("Figure 15: Effect of concurrent applications (J)");
    let mut pairs = Vec::new();
    for regime in Regime::all() {
        let iso_label = format!("fig15/{}/iso", regime.name());
        let iso = run_trials(trials, &iso_label, |rng| build(regime, false, rng));
        let conc_label = format!("fig15/{}/conc", regime.name());
        let conc = run_trials(trials, &conc_label, |rng| build(regime, true, rng));
        chart.push(regime.name(), "Isolation", &iso);
        chart.push(regime.name(), "Concurrent with video", &conc);
        pairs.push((regime, energy_stats(&iso), energy_stats(&conc)));
    }
    Fig15 { chart, pairs }
}

/// Renders the figure.
pub fn render(trials: &Trials) -> String {
    let f = run(trials);
    let mut s = f.chart.to_table_plain().render();
    s.push('\n');
    for regime in Regime::all() {
        s.push_str(&format!(
            "{}: video adds {:.0}% energy\n",
            regime.name(),
            f.added_fraction(regime) * 100.0
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Fig15 {
        run(&Trials::quick())
    }

    /// Concurrency always costs something, but less than doubling.
    #[test]
    fn video_adds_bounded_energy() {
        let f = fig();
        for regime in Regime::all() {
            let added = f.added_fraction(regime);
            assert!(
                (0.05..1.0).contains(&added),
                "{}: added {added}",
                regime.name()
            );
        }
    }

    /// The paper's amortization effect: at lowest fidelity the video adds
    /// a smaller fraction than at baseline.
    #[test]
    fn amortization_shrinks_added_cost() {
        let f = fig();
        let base = f.added_fraction(Regime::Baseline);
        let low = f.added_fraction(Regime::Lowest);
        assert!(
            low < base,
            "lowest-fidelity added {low} not below baseline {base}"
        );
    }

    /// Concurrency magnifies the benefit of lowering fidelity: the
    /// concurrent lowest/baseline ratio is below the isolated ratio.
    #[test]
    fn concurrency_magnifies_fidelity_benefit() {
        let f = fig();
        let iso = |r: Regime| f.pairs.iter().find(|(x, _, _)| *x == r).unwrap().1.mean;
        let conc = |r: Regime| f.pairs.iter().find(|(x, _, _)| *x == r).unwrap().2.mean;
        let iso_ratio = iso(Regime::Lowest) / iso(Regime::Baseline);
        let conc_ratio = conc(Regime::Lowest) / conc(Regime::Baseline);
        assert!(
            conc_ratio < iso_ratio,
            "concurrent ratio {conc_ratio} not below isolated {iso_ratio}"
        );
    }
}
