//! Per-path energy tables and the energy-regression gate.
//!
//! The golden traces (PR 4's `tracerec`/`tracediff`) pin each canonical
//! scenario's *event stream*; this module pins its *energy shape*. Every
//! scenario is replayed with a PowerScope session and the workload
//! call-tree resolver attached, and the correlated per-call-path table
//! ([`powerscope::correlate_paths`]) is compared row-by-row against the
//! golden copy under `tests/golden/`. The gate fails — naming the exact
//! diverging path — when any path's exclusive or inclusive energy drifts
//! beyond [`TOLERANCE_REL`] (with an absolute floor for near-zero rows),
//! or when a path appears or disappears.
//!
//! Tolerance rationale (DESIGN.md §17): the simulation is bit-exact at a
//! fixed seed, so the band does not absorb run-to-run noise — it gives
//! intentional refactors room for float reassociation (≪0.1%) while a
//! real energy change to any block (the seeded +2% decode inflation the
//! negative test injects) lands well outside it.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use machine::FaultConfig;
use odyssey::{GoalConfig, Hardening};
use odyssey_apps::datasets::WEB_IMAGES;
use odyssey_apps::WebFidelity;
use powerscope::{correlate_paths, PathProfile, PowerScope};
use simcore::{SimDuration, SimRng};

use crate::tracerec::{GOLDEN_SEED, SCENARIOS};
use crate::{fig13, fig2, goalrig, supervise};

/// Relative per-path energy drift the gate tolerates.
pub const TOLERANCE_REL: f64 = 0.01;

/// Absolute drift floor, J, so sub-joule rows don't flap on float
/// reassociation while still catching any real change.
pub const TOLERANCE_ABS_J: f64 = 0.05;

/// Goal-scenario scale, matching the trace recorder's goal golden.
const GOAL_ENERGY_J: f64 = 3000.0;

/// Goal-scenario duration, seconds.
const GOAL_SECS: u64 = 240;

/// Replays one scenario with a profiling session attached and returns
/// the raw collected run (samples + symbol tables), so callers can
/// correlate it flat, by path, or both (the reconciliation property
/// test needs both from the *same* run). `decode_inflation` scales the
/// video decode block (fig2 only) — the negative-control hook;
/// production callers pass 1.0.
pub fn collect(
    scenario: &str,
    seed: u64,
    decode_inflation: f64,
) -> Result<powerscope::CollectedRun, String> {
    let run = match scenario {
        "fig2" => {
            let (scope, mut m) = fig2::build_with(seed, decode_inflation);
            let _ = m.run();
            drop(m);
            scope.into_run()
        }
        "fig13" => {
            let mut rng = SimRng::new(seed).fork("fig13/trace");
            let mut m = fig13::build(
                WEB_IMAGES.to_vec(),
                WebFidelity::Jpeg50,
                true,
                5.0,
                &mut rng,
            );
            let (mut scope, observer) = PowerScope::new(seed);
            scope.set_resolver(odyssey_apps::call_path);
            m.add_observer(observer);
            let _ = m.run();
            drop(m);
            scope.into_run()
        }
        "goal" => {
            let mut rng = SimRng::new(seed).fork("goal/trace");
            let cfg = GoalConfig::paper(GOAL_ENERGY_J, SimDuration::from_secs(GOAL_SECS))
                .with_hardening(Hardening::standard());
            let rig = goalrig::build_composite_goal(&cfg, false, FaultConfig::clean(), &mut rng);
            let mut m = rig.machine;
            let (mut scope, observer) = PowerScope::new(seed);
            scope.set_resolver(odyssey_apps::call_path);
            m.add_observer(observer);
            let _ = goalrig::finish(m, cfg, rig.priorities, rig.horizon);
            scope.into_run()
        }
        "supervise" => {
            let mut rng = SimRng::new(seed).fork_indexed("supervise/2", 0);
            let mut rig = supervise::build_one(2, true, &mut rng);
            let (mut scope, observer) = PowerScope::new(seed);
            scope.set_resolver(odyssey_apps::call_path);
            rig.machine.add_observer(observer);
            let _ = rig.machine.run_until(rig.horizon);
            drop(rig);
            scope.into_run()
        }
        other => {
            return Err(format!(
                "unknown energymap scenario: {other} (have {SCENARIOS:?})"
            ))
        }
    };
    Ok(run)
}

/// One scenario's per-call-path profile.
pub fn profile(scenario: &str, seed: u64, decode_inflation: f64) -> Result<PathProfile, String> {
    collect(scenario, seed, decode_inflation).map(|run| correlate_paths(&run))
}

/// One scenario's rendered energy-by-path table.
pub fn table(scenario: &str, seed: u64, decode_inflation: f64) -> Result<String, String> {
    profile(scenario, seed, decode_inflation).map(|p| p.format_table())
}

/// Renders every scenario's table at [`GOLDEN_SEED`], fanned out over
/// `threads` workers. Output is byte-identical at any thread count (the
/// parallel-identity test pins this). A handful of whole-scenario
/// profiles with very different runtimes: grain 1, one chunk each.
pub fn render_all(threads: usize) -> Result<Vec<(&'static str, String)>, String> {
    let cfg = simcore::par::PoolConfig::new(threads).grain(1);
    let (outputs, _) = simcore::par::map_stats(&cfg, &SCENARIOS, |_, scenario| {
        table(scenario, GOLDEN_SEED, 1.0)
    });
    SCENARIOS
        .iter()
        .zip(outputs)
        .map(|(s, t)| t.map(|t| (*s, t)))
        .collect()
}

/// Path of the checked-in golden table for a scenario.
pub fn golden_path(scenario: &str) -> PathBuf {
    crate::tracerec::golden_dir().join(format!("energymap_{scenario}.txt"))
}

/// One parsed table row's comparable quantities.
#[derive(Clone, Copy, Debug, PartialEq)]
struct RowEnergy {
    samples: u64,
    self_energy_j: f64,
    inclusive_energy_j: f64,
}

/// Parses a rendered table into `(process, path) -> energies`.
fn parse_table(text: &str) -> Result<BTreeMap<(String, String), RowEnergy>, String> {
    let mut rows = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        if i == 0 {
            if !line.starts_with("process\t") {
                return Err(format!("bad energymap table header: {line:?}"));
            }
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        let [process, path, samples, _self_s, self_j, _incl_s, incl_j] = fields.as_slice() else {
            return Err(format!("bad energymap row at line {}: {line:?}", i + 1));
        };
        let parse = |v: &str, what: &str| -> Result<f64, String> {
            v.parse::<f64>()
                .map_err(|e| format!("bad {what} at line {}: {e}", i + 1))
        };
        let row = RowEnergy {
            samples: samples
                .parse::<u64>()
                .map_err(|e| format!("bad sample count at line {}: {e}", i + 1))?,
            self_energy_j: parse(self_j, "self_energy_j")?,
            inclusive_energy_j: parse(incl_j, "inclusive_energy_j")?,
        };
        if rows
            .insert((process.to_string(), path.to_string()), row)
            .is_some()
        {
            return Err(format!("duplicate row at line {}: {line:?}", i + 1));
        }
    }
    Ok(rows)
}

/// True when `fresh` drifted from `golden` beyond the gate's band.
fn drifted(golden_j: f64, fresh_j: f64) -> bool {
    (fresh_j - golden_j).abs() > TOLERANCE_ABS_J.max(TOLERANCE_REL * golden_j.abs())
}

/// Replays `scenario` at [`GOLDEN_SEED`] and compares its table against
/// the checked-in golden. `Ok` carries the number of matching rows;
/// `Err` carries a report naming every diverging path plus the fresh
/// table (for CI artifact upload).
pub fn check(scenario: &str, decode_inflation: f64) -> Result<usize, (String, String)> {
    let fresh_text =
        table(scenario, GOLDEN_SEED, decode_inflation).map_err(|e| (e, String::new()))?;
    let path = golden_path(scenario);
    let golden_text = match fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            return Err((
                format!(
                    "energymap: {scenario}: cannot read golden table {}: {e}\n\
                     regenerate with: cargo run --release -p experiments -- energymaprec",
                    path.display()
                ),
                fresh_text,
            ))
        }
    };
    let golden = parse_table(&golden_text).map_err(|e| (e, fresh_text.clone()))?;
    let fresh = parse_table(&fresh_text).map_err(|e| (e, fresh_text.clone()))?;
    let mut report = String::new();
    for ((process, path), g) in &golden {
        match fresh.get(&(process.clone(), path.clone())) {
            None => {
                report.push_str(&format!(
                    "energymap: {scenario}: {process} path {path}: missing from fresh table\n"
                ));
            }
            Some(f) => {
                for (field, gj, fj) in [
                    ("self_energy_j", g.self_energy_j, f.self_energy_j),
                    (
                        "inclusive_energy_j",
                        g.inclusive_energy_j,
                        f.inclusive_energy_j,
                    ),
                ] {
                    if drifted(gj, fj) {
                        report.push_str(&format!(
                            "energymap: {scenario}: {process} path {path}: {field} drifted \
                             {gj:.6} -> {fj:.6} J ({:+.2}%, tolerance {:.0}%)\n",
                            if gj.abs() > 0.0 {
                                (fj - gj) / gj * 100.0
                            } else {
                                f64::INFINITY
                            },
                            TOLERANCE_REL * 100.0
                        ));
                    }
                }
            }
        }
    }
    for (process, path) in fresh.keys() {
        if !golden.contains_key(&(process.clone(), path.clone())) {
            report.push_str(&format!(
                "energymap: {scenario}: {process} path {path}: new path absent from golden\n"
            ));
        }
    }
    if report.is_empty() {
        Ok(golden.len())
    } else {
        Err((report, fresh_text))
    }
}

/// Checks every scenario, writing diverging fresh tables to
/// `target/energymap/` for CI artifact upload. `Err` carries the
/// concatenated divergence reports.
pub fn check_all(decode_inflation: f64) -> Result<String, String> {
    let mut summary = String::new();
    let mut failures = String::new();
    for scenario in SCENARIOS {
        match check(scenario, decode_inflation) {
            Ok(n) => summary.push_str(&format!("energymap: {scenario}: OK ({n} paths)\n")),
            Err((report, fresh)) => {
                failures.push_str(&report);
                if !fresh.is_empty() {
                    let dir =
                        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/energymap");
                    if fs::create_dir_all(&dir).is_ok() {
                        let path = dir.join(format!("{scenario}.fresh.txt"));
                        if fs::write(&path, &fresh).is_ok() {
                            failures
                                .push_str(&format!("  fresh table saved to {}\n", path.display()));
                        }
                    }
                }
            }
        }
    }
    if failures.is_empty() {
        Ok(summary)
    } else {
        Err(format!("{summary}{failures}"))
    }
}

/// Rewrites every golden table at [`GOLDEN_SEED`]. Returns a summary.
pub fn regenerate() -> Result<String, String> {
    let dir = crate::tracerec::golden_dir();
    fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let mut summary = String::new();
    for scenario in SCENARIOS {
        let text = table(scenario, GOLDEN_SEED, 1.0)?;
        let path = golden_path(scenario);
        fs::write(&path, &text).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        summary.push_str(&format!(
            "energymaprec: wrote {} ({} rows)\n",
            path.display(),
            text.lines().count().saturating_sub(1)
        ));
    }
    Ok(summary)
}

/// The plain `energymap` verb: renders every scenario's table, writes
/// each to `DIR/energymap_<scenario>.txt`, and returns the concatenated
/// text for printing.
pub fn write_results(dir: &Path, threads: usize) -> Result<String, String> {
    fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let mut out = String::new();
    for (scenario, text) in render_all(threads)? {
        let path = dir.join(format!("energymap_{scenario}.txt"));
        fs::write(&path, &text).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        out.push_str(&format!("== energymap: {scenario} ==\n{text}\n"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_profile_has_nested_video_paths() {
        let p = profile("fig2", 7, 1.0).unwrap();
        let xanim = p.process("xanim").expect("xanim present");
        let paths: Vec<&str> = xanim.rows.iter().map(|r| r.path.as_str()).collect();
        assert!(
            paths.contains(&"video_playback/frame_pipeline/decode_frame"),
            "{paths:?}"
        );
        // The interior pipeline node carries its children's energy.
        let pipeline = xanim
            .rows
            .iter()
            .find(|r| r.path == "video_playback/frame_pipeline")
            .expect("pipeline row");
        assert!(pipeline.inclusive_energy_j > 0.0);
        assert_eq!(pipeline.samples, 0, "interior node sampled as a leaf");
    }

    #[test]
    fn unknown_scenario_is_an_error() {
        assert!(profile("fig99", 1, 1.0).is_err());
        assert!(table("fig99", 1, 1.0).is_err());
    }

    #[test]
    fn tables_are_deterministic() {
        let a = table("fig2", 7, 1.0).unwrap();
        let b = table("fig2", 7, 1.0).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn drift_band_has_absolute_floor_and_relative_slope() {
        assert!(!drifted(0.0, TOLERANCE_ABS_J * 0.9));
        assert!(drifted(0.0, TOLERANCE_ABS_J * 1.1));
        assert!(!drifted(100.0, 100.9));
        assert!(drifted(100.0, 101.1));
    }

    #[test]
    fn parse_round_trips_a_rendered_table() {
        let text = table("fig2", 7, 1.0).unwrap();
        let rows = parse_table(&text).unwrap();
        assert!(!rows.is_empty());
        let total: f64 = rows.values().map(|r| r.self_energy_j).sum();
        assert!(total > 0.0);
        assert!(rows
            .keys()
            .any(|(p, path)| p == "xanim" && path.ends_with("decode_frame")));
    }

    #[test]
    fn parse_rejects_malformed_tables() {
        assert!(parse_table("nonsense\n").is_err());
        let bad_row = "process\tpath\tsamples\tself_time_s\tself_energy_j\t\
                       inclusive_time_s\tinclusive_energy_j\np\ta\tnot_a_number\t0\t0\t0\t0\n";
        assert!(parse_table(bad_row).is_err());
    }
}
