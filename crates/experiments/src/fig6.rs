//! Figure 6: energy impact of fidelity for video playing.
//!
//! Four clips × six bars: baseline (full fidelity, no power management),
//! hardware-only power management, Premiere-B, Premiere-C, reduced
//! window, and combined — the last four with hardware power management
//! enabled, as in the paper's protocol (Section 3.1).

use machine::{Machine, MachineConfig};
use odyssey_apps::datasets::{VideoClip, VIDEO_CLIPS};
use odyssey_apps::{VideoPlayer, VideoVariant};
use simcore::SimRng;

use crate::barchart::BarChart;
use crate::harness::{run_trials, Trials};

/// The six experimental conditions, in figure order.
pub const CONDITIONS: [(&str, VideoVariant, bool); 6] = [
    ("Baseline", VideoVariant::Full, false),
    ("Hardware-Only Power Mgmt.", VideoVariant::Full, true),
    ("Premiere-B", VideoVariant::PremiereB, true),
    ("Premiere-C", VideoVariant::PremiereC, true),
    ("Reduced Window", VideoVariant::ReducedWindow, true),
    ("Combined", VideoVariant::Combined, true),
];

fn build(clip: VideoClip, variant: VideoVariant, pm: bool, rng: &mut SimRng) -> Machine {
    let cfg = if pm {
        MachineConfig::default()
    } else {
        MachineConfig::baseline()
    };
    let mut m = Machine::new(cfg);
    m.add_process(Box::new(VideoPlayer::fixed(clip, variant, rng)));
    m
}

/// Runs the full figure.
pub fn run(trials: &Trials) -> BarChart {
    run_clips(trials, &VIDEO_CLIPS)
}

/// Runs the figure over a chosen clip set (tests use shortened clips).
pub fn run_clips(trials: &Trials, clips: &[VideoClip]) -> BarChart {
    let mut chart = BarChart::new("Figure 6: Energy impact of fidelity for video playing (J)");
    for clip in clips {
        for (name, variant, pm) in CONDITIONS {
            let label = format!("fig6/{}/{}", clip.name, name);
            let reports = run_trials(trials, &label, |rng| build(*clip, variant, pm, rng));
            chart.push(clip.name, name, &reports);
        }
    }
    chart
}

/// Renders the figure as a table.
pub fn render(trials: &Trials) -> String {
    run(trials).to_table().render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_clips() -> Vec<VideoClip> {
        VIDEO_CLIPS
            .iter()
            .map(|c| VideoClip {
                duration_s: 20.0,
                ..*c
            })
            .collect()
    }

    fn chart() -> BarChart {
        run_clips(&Trials::quick(), &short_clips()[..2])
    }

    /// Paper: hardware-only PM reduces video energy by a mere 9-10%.
    #[test]
    fn hw_only_band() {
        let c = chart();
        let (lo, hi) = c.saving_band("Hardware-Only Power Mgmt.", "Baseline");
        assert!(lo > 5.0 && hi < 16.0, "hw-only band {lo}-{hi}%");
    }

    /// Paper: Premiere-C consumes 16-17% less than hardware-only.
    #[test]
    fn premiere_c_band() {
        let c = chart();
        let (lo, hi) = c.saving_band("Premiere-C", "Hardware-Only Power Mgmt.");
        assert!(lo > 8.0 && hi < 28.0, "premiere-c band {lo}-{hi}%");
    }

    /// Paper: reduced window saves 19-20% beyond hardware-only.
    #[test]
    fn reduced_window_band() {
        let c = chart();
        let (lo, hi) = c.saving_band("Reduced Window", "Hardware-Only Power Mgmt.");
        assert!(lo > 12.0 && hi < 30.0, "reduced-window band {lo}-{hi}%");
    }

    /// Paper: combined yields 28-30% vs hardware-only, ~35% vs baseline.
    #[test]
    fn combined_bands() {
        let c = chart();
        let (lo, hi) = c.saving_band("Combined", "Hardware-Only Power Mgmt.");
        assert!(lo > 20.0 && hi < 40.0, "combined vs hw band {lo}-{hi}%");
        let (lo_b, hi_b) = c.saving_band("Combined", "Baseline");
        assert!(
            lo_b > 27.0 && hi_b < 47.0,
            "combined vs baseline {lo_b}-{hi_b}%"
        );
    }

    /// Bars are ordered: each fidelity step cheaper than the previous.
    #[test]
    fn monotone_conditions() {
        let c = chart();
        for object in c.objects() {
            let energies: Vec<f64> = [
                "Baseline",
                "Hardware-Only Power Mgmt.",
                "Premiere-C",
                "Combined",
            ]
            .iter()
            .map(|cond| c.energy_j(&object, cond))
            .collect();
            for w in energies.windows(2) {
                assert!(w[1] < w[0], "{object}: {energies:?}");
            }
        }
    }
}
