//! Figure 20: summary of goal-directed adaptation.
//!
//! Battery-duration goals of 1200, 1320, 1440 and 1560 seconds — a 30%
//! spread — each run five times. The table reports the fraction of trials
//! in which the supply lasted the full duration, the residual energy at
//! the end (large residue = Odyssey was too conservative), and the number
//! of adaptations each application performed.

use odyssey::GoalConfig;
use simcore::{SimDuration, SimRng, TrialStats};

use crate::fig19::INITIAL_ENERGY_J;
use crate::goalrig::run_composite_goal;
use crate::harness::Trials;
use crate::table::Table;

/// The paper's goal set: 1200-1560 s in 120 s steps.
pub const GOALS_S: [u64; 4] = [1200, 1320, 1440, 1560];

/// Application names in priority order (lowest first), as reported.
pub const APPS: [&str; 4] = ["speech", "xanim", "anvil", "netscape"];

/// One goal's row.
#[derive(Clone, Debug)]
pub struct GoalRow {
    /// Goal duration, seconds.
    pub goal_s: u64,
    /// Fraction of trials meeting the goal.
    pub met_fraction: f64,
    /// Residual energy statistics, J.
    pub residual: TrialStats,
    /// Adaptation-count statistics per application, in [`APPS`] order.
    pub adaptations: Vec<TrialStats>,
}

/// The full figure.
#[derive(Clone, Debug)]
pub struct Fig20 {
    /// One row per goal.
    pub rows: Vec<GoalRow>,
    /// Energy supply used, J.
    pub initial_energy_j: f64,
}

/// Runs the paper's goal set.
pub fn run(trials: &Trials) -> Fig20 {
    run_goals(trials, &GOALS_S, INITIAL_ENERGY_J)
}

/// Runs an arbitrary goal set.
pub fn run_goals(trials: &Trials, goals: &[u64], initial_energy_j: f64) -> Fig20 {
    let root = SimRng::new(trials.seed);
    let rows = goals
        .iter()
        .map(|&goal_s| {
            let mut met = 0usize;
            let mut residuals = Vec::new();
            let mut adapt: Vec<Vec<f64>> = vec![Vec::new(); APPS.len()];
            for i in 0..trials.n {
                let mut rng = root.fork_indexed(&format!("fig20/{goal_s}"), i as u64);
                let cfg = GoalConfig::paper(initial_energy_j, SimDuration::from_secs(goal_s));
                let run = run_composite_goal(cfg, &mut rng);
                if run.outcome.goal_met {
                    met += 1;
                }
                residuals.push(run.report.residual_j);
                for (k, app) in APPS.iter().enumerate() {
                    adapt[k].push(run.adaptations_of(app) as f64);
                }
            }
            GoalRow {
                goal_s,
                met_fraction: met as f64 / trials.n as f64,
                residual: TrialStats::from_values(&residuals),
                adaptations: adapt.iter().map(|v| TrialStats::from_values(v)).collect(),
            }
        })
        .collect();
    Fig20 {
        rows,
        initial_energy_j,
    }
}

/// Renders the summary table.
pub fn render(trials: &Trials) -> String {
    let f = run(trials);
    let mut t = Table::new(
        format!(
            "Figure 20: Summary of goal-directed adaptation ({:.0} J supply)",
            f.initial_energy_j
        ),
        &[
            "Duration (s)",
            "Goal Met",
            "Residue (J)",
            "Adapt speech",
            "Adapt video",
            "Adapt map",
            "Adapt web",
        ],
    );
    for r in &f.rows {
        let mut row = vec![
            r.goal_s.to_string(),
            format!("{:.0}%", r.met_fraction * 100.0),
            format!("{:.1} ({:.1})", r.residual.mean, r.residual.sd),
        ];
        for a in &r.adaptations {
            row.push(format!("{:.1} ({:.1})", a.mean, a.sd));
        }
        t.push_row(row);
    }
    t.with_caption(
        "Paper: every goal from 1200 to 1560 s met in 100% of trials, residues < 1.2% of supply.",
    )
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's central claim: goals spanning 30% are all met.
    /// (Two trials of the two extreme goals keeps test time bounded; the
    /// full sweep runs in the CLI and benches.)
    #[test]
    fn extreme_goals_are_met() {
        let f = run_goals(&Trials::quick(), &[1200, 1560], INITIAL_ENERGY_J);
        for r in &f.rows {
            assert!(
                r.met_fraction >= 1.0,
                "goal {}s met only {:.0}%",
                r.goal_s,
                r.met_fraction * 100.0
            );
        }
    }

    /// Residue stays a small fraction of the supply (Odyssey is not too
    /// conservative), and the longer goal forces more adaptation overall.
    #[test]
    fn residue_small_and_adaptation_grows() {
        let f = run_goals(&Trials::quick(), &[1200, 1560], INITIAL_ENERGY_J);
        for r in &f.rows {
            assert!(
                r.residual.mean < INITIAL_ENERGY_J * 0.08,
                "goal {}s residue {:.0} J too conservative",
                r.goal_s,
                r.residual.mean
            );
        }
        // Both goals require the controller to act at least once; the
        // paper's counts peak mid-range, so no ordering is asserted.
        let total_adapt = |r: &GoalRow| -> f64 { r.adaptations.iter().map(|a| a.mean).sum() };
        assert!(total_adapt(&f.rows[0]) >= 1.0);
        assert!(total_adapt(&f.rows[1]) >= 1.0);
    }

    /// An obviously infeasible goal is not falsely reported as met.
    #[test]
    fn infeasible_goal_is_missed() {
        let f = run_goals(&Trials::single(), &[3600], INITIAL_ENERGY_J);
        assert_eq!(f.rows[0].met_fraction, 0.0);
    }
}
