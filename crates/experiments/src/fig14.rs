//! Figure 14: effect of user think time for Web browsing.
//!
//! Image 1 is displayed with think times of 0, 5, 10 and 20 seconds under
//! baseline, hardware-only and lowest fidelity (JPEG-5); the linear model
//! of Section 3.5.2 "fits observations well for all three cases", with
//! the latter two closely spaced — fidelity reduction buys little.

use machine::{Machine, MachineConfig};
use odyssey_apps::datasets::WEB_IMAGES;
use odyssey_apps::{WebBrowser, WebFidelity};
use simcore::{LinearFit, SimDuration, SimRng, TrialStats};

use crate::harness::{energy_stats, run_trials, Trials};
use crate::table::{self, Table};

/// Think times swept, seconds.
pub const THINK_TIMES: [f64; 4] = [0.0, 5.0, 10.0, 20.0];

/// One regime's sweep (same shape as Figure 11's).
#[derive(Clone, Debug)]
pub struct ThinkSweep {
    /// Regime name.
    pub case: &'static str,
    /// (think time s, energy stats) per point.
    pub points: Vec<(f64, TrialStats)>,
    /// Least-squares fit.
    pub fit: LinearFit,
}

/// The full figure.
#[derive(Clone, Debug)]
pub struct Fig14 {
    /// Baseline, hardware-only, lowest fidelity.
    pub sweeps: Vec<ThinkSweep>,
}

fn build(fidelity: WebFidelity, pm: bool, think_s: f64, rng: &mut SimRng) -> Machine {
    let cfg = if pm {
        MachineConfig::default()
    } else {
        MachineConfig::baseline()
    };
    let mut m = Machine::new(cfg);
    m.add_process(Box::new(
        WebBrowser::fixed(vec![WEB_IMAGES[0]], fidelity, rng)
            .with_think_time(SimDuration::from_secs_f64(think_s)),
    ));
    m
}

/// Runs the sweep.
pub fn run(trials: &Trials) -> Fig14 {
    let cases: [(&'static str, WebFidelity, bool); 3] = [
        ("Baseline", WebFidelity::Full, false),
        ("Hardware-Only Power Mgmt.", WebFidelity::Full, true),
        ("Lowest Fidelity", WebFidelity::Jpeg5, true),
    ];
    // The paper uses ten trials for this application.
    let trials = &Trials {
        n: trials.n * 2,
        ..*trials
    };
    let sweeps = cases
        .into_iter()
        .map(|(case, fidelity, pm)| {
            let points: Vec<(f64, TrialStats)> = THINK_TIMES
                .iter()
                .map(|&t| {
                    let label = format!("fig14/{case}/{t}");
                    let reports = run_trials(trials, &label, |rng| build(fidelity, pm, t, rng));
                    (t, energy_stats(&reports))
                })
                .collect();
            let fit_points: Vec<(f64, f64)> = points.iter().map(|(t, s)| (*t, s.mean)).collect();
            ThinkSweep {
                case,
                points,
                fit: LinearFit::fit(&fit_points),
            }
        })
        .collect();
    Fig14 { sweeps }
}

/// Renders the figure as a table with fitted models.
pub fn render(trials: &Trials) -> String {
    let f = run(trials);
    let mut header = vec!["Case".to_string()];
    for t in THINK_TIMES {
        header.push(format!("t={t}s"));
    }
    header.push("E0 (J)".into());
    header.push("P_B (W)".into());
    header.push("r²".into());
    let mut table = Table::new(
        "Figure 14: Effect of user think time for Web browsing (Image 1, J)",
        &[],
    );
    table.header = header;
    for s in &f.sweeps {
        let mut row = vec![s.case.to_string()];
        for (_, stats) in &s.points {
            row.push(table::pm(stats.mean, stats.ci90));
        }
        row.push(format!("{:.1}", s.fit.intercept));
        row.push(format!("{:.2}", s.fit.slope));
        row.push(format!("{:.4}", s.fit.r_squared));
        table.push_row(row);
    }
    table
        .with_caption(
            "Paper: hardware-only and lowest-fidelity lines are closely spaced — \
             transcoding buys little once think-time power dominates.",
        )
        .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Fig14 {
        run(&Trials::quick())
    }

    #[test]
    fn linear_model_fits() {
        for s in fig().sweeps {
            assert!(
                s.fit.r_squared > 0.975,
                "{}: r² {}",
                s.case,
                s.fit.r_squared
            );
        }
    }

    /// Hardware-only and lowest fidelity are closely spaced relative to
    /// the baseline gap.
    #[test]
    fn lowest_is_close_to_hw_only() {
        let f = fig();
        let at = |case: &str, t: f64| {
            f.sweeps
                .iter()
                .find(|s| s.case == case)
                .unwrap()
                .fit
                .predict(t)
        };
        let t = 10.0;
        let base = at("Baseline", t);
        let hw = at("Hardware-Only Power Mgmt.", t);
        let low = at("Lowest Fidelity", t);
        let big_gap = base - hw;
        let small_gap = hw - low;
        assert!(
            small_gap < big_gap * 0.45,
            "fidelity gap {small_gap} not small vs PM gap {big_gap}"
        );
        assert!(small_gap >= -0.5, "lowest must not exceed hw-only");
    }

    /// The hardware-only slope drops below baseline (divergence), as in
    /// Figure 11.
    #[test]
    fn divergence_under_pm() {
        let f = fig();
        let slope = |case: &str| f.sweeps.iter().find(|s| s.case == case).unwrap().fit.slope;
        assert!(slope("Hardware-Only Power Mgmt.") < slope("Baseline") - 1.0);
    }
}
