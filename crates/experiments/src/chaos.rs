//! Chaos sweep: the goal controller against a hostile substrate.
//!
//! The paper's Section 5 experiments assume the substrate tells the
//! truth: the gauge reports residual energy exactly, the meter never
//! drops a sample, and the network delivers every RPC. This experiment
//! sweeps a fault-intensity knob from 0 (the paper's clean world) to 1
//! (WaveLAN outages and dips, RPC timeouts and retries that cost real
//! energy, a battery gauge that reads high and drifts, an energy meter
//! that drops and jitters samples) and compares the paper's controller
//! against the hardened one on the Figure 20 composite workload.
//!
//! Reported per cell: the fraction of trials in which the supply lasted
//! the full goal, the fraction lasting at least 95% of it, how early the
//! client died, the residue, the energy overhead relative to the clean
//! cell of the same controller, and the fault-path counters (retries,
//! stale decisions, infeasibility alerts).

use machine::{FaultConfig, RpcPolicy};
use odyssey::{GoalConfig, Hardening};
use powerscope::MeterFaultPlan;
use simcore::{SimDuration, SimRng, TrialStats};

use crate::goalrig::{composite_horizon, run_composite_goal_faulted};
use crate::harness::Trials;
use crate::table::Table;

/// The swept fault intensities.
pub const INTENSITIES: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// Battery-duration goal, seconds — the Figure 20 upper goal, where the
/// paper's residue is under 1.2% of the supply. The margin is thin
/// enough that a controller believing an optimistic gauge overspends.
pub const GOAL_S: u64 = 1560;

/// Supply for the sweep, J: Figure 20's 16 600 J plus ~5% headroom, so
/// the goal stays feasible at lowest fidelity even after fault-path
/// energy overheads (retries, outage airtime). Without the headroom the
/// sweep would only measure infeasibility, not controller quality.
pub const CHAOS_ENERGY_J: f64 = 17_400.0;

/// One (intensity, controller) cell of the sweep.
#[derive(Clone, Debug)]
pub struct ChaosCell {
    /// Fault intensity in `[0, 1]`.
    pub intensity: f64,
    /// True if the hardened controller ran this cell.
    pub hardened: bool,
    /// Fraction of trials where the supply lasted the full goal.
    pub met_fraction: f64,
    /// Fraction of trials lasting at least 95% of the goal.
    pub hit95_fraction: f64,
    /// Shortfall of run duration vs the goal, percent (0 when met).
    pub shortfall_pct: TrialStats,
    /// Residual energy at the end, J.
    pub residual: TrialStats,
    /// Total energy consumed, J.
    pub energy: TrialStats,
    /// Fidelity changes across all applications.
    pub adaptations: TrialStats,
    /// RPC attempts aborted by timeout.
    pub rpc_timeouts: TrialStats,
    /// RPC attempts re-issued after a timeout.
    pub rpc_retries: TrialStats,
    /// Decisions skipped on stale power data (hardened only).
    pub stale_decisions: TrialStats,
    /// Infeasibility alerts raised (the goal-is-hopeless signal).
    pub infeasible_signals: TrialStats,
}

/// The full sweep.
#[derive(Clone, Debug)]
pub struct Chaos {
    /// Cells in sweep order: for each intensity, naive then hardened.
    pub cells: Vec<ChaosCell>,
    /// Energy supply used, J.
    pub initial_energy_j: f64,
    /// Goal duration, seconds.
    pub goal_s: u64,
}

impl Chaos {
    /// The cell for an intensity/controller pair.
    pub fn cell(&self, intensity: f64, hardened: bool) -> &ChaosCell {
        self.cells
            .iter()
            .find(|c| c.intensity == intensity && c.hardened == hardened)
            // simlint: allow(D5) — run_sweep populates every (intensity, hardened) cell
            .expect("cell present")
    }
}

/// Runs the default sweep.
pub fn run(trials: &Trials) -> Chaos {
    run_sweep(trials, &INTENSITIES, GOAL_S, CHAOS_ENERGY_J)
}

/// Runs an arbitrary intensity sweep.
///
/// The fan-out unit is one *(cell, trial)* run — every trial stream is
/// keyed purely by `(seed, intensity, trial)`, so all `cells × trials.n`
/// runs are independent jobs. Flattening to trial granularity keeps
/// every worker busy even on narrow sweeps, and the index-ordered merge
/// reduces each cell from its trials in trial order — byte-identical to
/// the serial run at any thread count.
pub fn run_sweep(
    trials: &Trials,
    intensities: &[f64],
    goal_s: u64,
    initial_energy_j: f64,
) -> Chaos {
    let specs: Vec<(f64, bool)> = intensities
        .iter()
        .flat_map(|&intensity| [(intensity, false), (intensity, true)])
        .collect();
    let n = trials.n.max(1);
    let mut jobs: Vec<(f64, bool, usize)> = Vec::with_capacity(specs.len() * n);
    for &(intensity, hardened) in &specs {
        for i in 0..n {
            jobs.push((intensity, hardened, i));
        }
    }
    let root = SimRng::new(trials.seed);
    let goal = SimDuration::from_secs(goal_s);
    let runs = simcore::par::map(trials.threads, &jobs, |_, &(intensity, hardened, i)| {
        // Workload and fault streams are keyed by intensity and
        // trial only, so the naive and hardened controllers face
        // the identical substrate — a paired comparison.
        let label = format!("chaos/{intensity:.2}");
        let mut rng = root.fork_indexed(&label, i as u64);
        let fault_seed = root.fork_indexed(&label, i as u64).fork("faults").seed();
        let mut faults = FaultConfig::hostile(fault_seed, intensity, composite_horizon(goal));
        // The composite workload multiplexes several transfers
        // over the shared link; a timeout sized for a lone RPC
        // would fire on legitimately slow concurrent ones.
        faults.rpc = Some(RpcPolicy {
            timeout: SimDuration::from_secs(12),
            ..RpcPolicy::standard()
        });
        let mut cfg = GoalConfig::paper(initial_energy_j, goal)
            .with_meter_faults(MeterFaultPlan::degraded(fault_seed, intensity));
        if hardened {
            cfg = cfg.with_hardening(Hardening::standard());
        }
        run_composite_goal_faulted(cfg, faults, &mut rng)
    });
    let cells = specs
        .iter()
        .zip(runs.chunks(n))
        .map(|(&(intensity, hardened), cell_runs)| {
            reduce_cell(trials, intensity, hardened, goal_s, cell_runs)
        })
        .collect();
    Chaos {
        cells,
        initial_energy_j,
        goal_s,
    }
}

/// Reduces one (intensity, controller) cell from its `trials.n` paired
/// trial runs (in trial order).
fn reduce_cell(
    trials: &Trials,
    intensity: f64,
    hardened: bool,
    goal_s: u64,
    runs: &[crate::goalrig::GoalRun],
) -> ChaosCell {
    let mut met = 0usize;
    let mut hit95 = 0usize;
    let mut infeasible = Vec::new();
    let mut shortfall = Vec::new();
    let mut residual = Vec::new();
    let mut energy = Vec::new();
    let mut adaptations = Vec::new();
    let mut timeouts = Vec::new();
    let mut retries = Vec::new();
    let mut stale = Vec::new();
    for run in runs {
        let dur = run.report.duration_s();
        if run.outcome.goal_met {
            met += 1;
        }
        if run.outcome.goal_met || dur >= 0.95 * goal_s as f64 {
            hit95 += 1;
        }
        infeasible.push(run.outcome.infeasible_signals as f64);
        let short = if run.outcome.goal_met {
            0.0
        } else {
            (goal_s as f64 - dur.min(goal_s as f64)) / goal_s as f64 * 100.0
        };
        shortfall.push(short);
        residual.push(run.report.residual_j);
        energy.push(run.report.total_j);
        adaptations.push((run.outcome.degrades + run.outcome.upgrades) as f64);
        timeouts.push(run.report.rpc_timeouts as f64);
        retries.push(run.report.rpc_retries as f64);
        stale.push(run.outcome.stale_decisions as f64);
    }
    ChaosCell {
        intensity,
        hardened,
        met_fraction: met as f64 / trials.n as f64,
        hit95_fraction: hit95 as f64 / trials.n as f64,
        shortfall_pct: TrialStats::from_values(&shortfall),
        residual: TrialStats::from_values(&residual),
        energy: TrialStats::from_values(&energy),
        adaptations: TrialStats::from_values(&adaptations),
        rpc_timeouts: TrialStats::from_values(&timeouts),
        rpc_retries: TrialStats::from_values(&retries),
        stale_decisions: TrialStats::from_values(&stale),
        infeasible_signals: TrialStats::from_values(&infeasible),
    }
}

/// Renders the sweep table.
pub fn render(trials: &Trials) -> String {
    let c = run(trials);
    let mut t = Table::new(
        format!(
            "Chaos sweep: {} s goal on {:.0} J under substrate faults",
            c.goal_s, c.initial_energy_j
        ),
        &[
            "Intensity",
            "Controller",
            "Goal met",
            "Lasted >=95%",
            "Shortfall %",
            "Residue (J)",
            "Energy +%",
            "Adapts",
            "Retries",
            "Stale",
            "Infeasible",
        ],
    );
    for cell in &c.cells {
        let clean = c.cell(c.cells[0].intensity, cell.hardened);
        let overhead_pct = if clean.energy.mean > 0.0 {
            (cell.energy.mean / clean.energy.mean - 1.0) * 100.0
        } else {
            0.0
        };
        t.push_row(vec![
            format!("{:.2}", cell.intensity),
            if cell.hardened { "hardened" } else { "paper" }.to_string(),
            format!("{:.0}%", cell.met_fraction * 100.0),
            format!("{:.0}%", cell.hit95_fraction * 100.0),
            format!(
                "{:.1} ({:.1})",
                cell.shortfall_pct.mean, cell.shortfall_pct.sd
            ),
            format!("{:.0} ({:.0})", cell.residual.mean, cell.residual.sd),
            format!("{overhead_pct:+.1}"),
            format!("{:.1}", cell.adaptations.mean),
            format!("{:.1}", cell.rpc_retries.mean),
            format!("{:.1}", cell.stale_decisions.mean),
            format!("{:.1}", cell.infeasible_signals.mean),
        ]);
    }
    t.with_caption(
        "Beyond the paper: the paper's controller trusts the gauge and dies early as \
         intensity rises; the hardened controller holds the goal within 5%.",
    )
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// At intensity 0 the sweep reduces to the paper's clean world: both
    /// controllers meet the goal.
    #[test]
    fn clean_cells_meet_the_goal() {
        let c = run_sweep(&Trials::single(), &[0.0], GOAL_S, CHAOS_ENERGY_J);
        assert_eq!(c.cell(0.0, false).met_fraction, 1.0);
        assert_eq!(c.cell(0.0, true).met_fraction, 1.0);
    }

    /// The headline robustness claim: under moderate faults the hardened
    /// controller keeps the client alive to within 5% of the goal while
    /// the paper's controller, trusting the optimistic gauge, dies short.
    #[test]
    fn hardened_holds_goal_where_naive_dies() {
        let c = run_sweep(&Trials::quick(), &[1.0], GOAL_S, CHAOS_ENERGY_J);
        let naive = c.cell(1.0, false);
        let hard = c.cell(1.0, true);
        assert_eq!(hard.hit95_fraction, 1.0, "hardened: {hard:?}");
        assert!(
            naive.met_fraction < 1.0,
            "naive unexpectedly survived the lying gauge: {naive:?}"
        );
        assert!(
            hard.shortfall_pct.mean <= naive.shortfall_pct.mean,
            "hardened shortfall {:.2}% worse than naive {:.2}%",
            hard.shortfall_pct.mean,
            naive.shortfall_pct.mean
        );
    }

    /// Same seed, same sweep — byte-identical rendering.
    #[test]
    fn sweep_is_deterministic() {
        let t = Trials {
            n: 1,
            seed: 7,
            threads: 1,
        };
        let a = render_cells(&run_sweep(&t, &[0.5], GOAL_S, CHAOS_ENERGY_J));
        let b = render_cells(&run_sweep(&t, &[0.5], GOAL_S, CHAOS_ENERGY_J));
        assert_eq!(a, b);
    }

    fn render_cells(c: &Chaos) -> String {
        format!("{:?}", c.cells)
    }
}
